// Out-of-core / parallel one-vs-rest training benchmark.
//
// Measures multiclass PNrule training wall-clock on a kdd_sim split at
// class-thread counts {1, 2, 4, 8}, for three data paths:
//
//   * in-RAM:       the generated Dataset as-is;
//   * sharded:      the same rows round-tripped through a 4-shard
//                   columnar store (data/shard_store.h) and fully decoded;
//   * out-of-core:  a demand-paged view of that store with the resident
//                   feature-column budget capped at 1/8 of the decoded
//                   column bytes, so training provably spills and refaults.
//
// The determinism contract is enforced, not assumed: the binary refuses to
// write BENCH_train.json (and exits nonzero) unless every configuration's
// serialized committee is byte-identical to the serial in-RAM reference.
// The JSON also records the machine's core count — wall-clock speedup from
// class-parallel training is only observable with cores > 1, and honest
// single-core numbers are still valid evidence for the identity claims and
// the paging behaviour (peak residency, evictions).
//
// Knobs:
//   PNR_BENCH_ROWS           training rows to generate (default 60000)
//   PNR_BENCH_COMPARE_ITERS  timed runs per configuration, best-of
//                            (default 1; training is expensive)
//   PNR_BENCH_JSON           write the machine-readable report here
//   --quick                  6000 rows, 1 iteration (the ctest smoke)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "data/shard_store.h"
#include "pnrule/model_io.h"
#include "pnrule/multiclass.h"
#include "pnrule/pnrule.h"
#include "synth/kdd_sim.h"

namespace {

using namespace pnr;

size_t BenchRows(bool quick) {
  const char* s = std::getenv("PNR_BENCH_ROWS");
  const long n = s != nullptr ? std::atol(s) : 0;
  if (n > 0) return static_cast<size_t>(n);
  return quick ? 6000 : 60000;
}

int CompareIters() {
  const char* s = std::getenv("PNR_BENCH_COMPARE_ITERS");
  const int n = s != nullptr ? std::atoi(s) : 0;
  return n > 0 ? n : 1;
}

std::string Fmt(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return buf;
}

// Best-of-N wall-clock seconds for one training run whose serialized model
// is returned through `out` (from the last run; all runs are identical by
// the determinism contract this binary verifies).
double SecondsPerRun(const std::function<std::string()>& run, int iterations,
                     std::string* out) {
  double best = 0.0;
  for (int i = 0; i < iterations; ++i) {
    Timer timer;
    *out = run();
    const double s = timer.ElapsedSeconds();
    if (i == 0 || s < best) best = s;
  }
  return best;
}

std::string TrainCommittee(const Dataset& data, size_t class_threads) {
  PnruleConfig config;
  MultiClassPnruleLearner learner(config);
  learner.set_train_threads(class_threads);
  auto committee = learner.Train(data);
  if (!committee.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 committee.status().ToString().c_str());
    std::exit(1);
  }
  return SerializeMultiClassModel(*committee, data.schema());
}

struct PathReport {
  std::string json;
  bool all_identical = true;
};

// Times {1,2,4,8} class-threads on `data`, comparing every serialization
// against `reference`. `extra` appends path-specific fields (residency
// counters for the paged run) after the timing array.
PathReport TimePath(const std::string& name, const Dataset& data,
                    const std::string& reference, int iterations,
                    const std::function<std::string()>& extra) {
  PathReport report;
  report.json = "    {\"path\": \"" + name + "\",\n";
  report.json += "     \"runs\": [\n";
  const size_t thread_counts[] = {1, 2, 4, 8};
  double serial_seconds = 0.0;
  for (size_t t = 0; t < 4; ++t) {
    std::string model;
    const double seconds = SecondsPerRun(
        [&] { return TrainCommittee(data, thread_counts[t]); }, iterations,
        &model);
    const bool identical = model == reference;
    report.all_identical = report.all_identical && identical;
    if (t == 0) serial_seconds = seconds;
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    report.json +=
        "      {\"class_threads\": " + std::to_string(thread_counts[t]) +
        ", \"wall_seconds\": " + Fmt("%.3f", seconds) +
        ", \"speedup_vs_serial\": " + Fmt("%.2f", speedup) +
        ", \"bytes_identical_to_reference\": " +
        (identical ? "true" : "false") + "}";
    report.json += t + 1 < 4 ? ",\n" : "\n";
  }
  report.json += "     ]";
  const std::string extra_fields = extra();
  if (!extra_fields.empty()) report.json += ",\n" + extra_fields;
  report.json += "}";
  return report;
}

int Run(bool quick) {
  KddSimParams params;
  params.train_records = BenchRows(quick);
  params.test_records = 1000;  // generator minimum; only train is used
  auto generated = GenerateKddSim(params);
  if (!generated.ok()) {
    std::fprintf(stderr, "kdd_sim generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const Dataset& train = generated->train;
  const int iterations = CompareIters();

  // Serial in-RAM training is the reference every other configuration must
  // reproduce byte-for-byte.
  const std::string reference = TrainCommittee(train, 1);

  ShardStoreWriteOptions options;
  options.num_shards = 4;
  auto bytes = SerializeShardStore(train, options);
  if (!bytes.ok()) {
    std::fprintf(stderr, "shard serialization failed: %s\n",
                 bytes.status().ToString().c_str());
    return 1;
  }
  const size_t store_bytes = bytes->size();
  auto reader = ShardStoreReader::OpenBuffer(std::move(bytes).value(),
                                             "bench-train.pns");
  if (!reader.ok()) {
    std::fprintf(stderr, "shard open failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  auto sharded = (*reader)->LoadDataset();
  if (!sharded.ok()) {
    std::fprintf(stderr, "shard load failed: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  const size_t column_bytes = (*reader)->column_bytes();
  const size_t budget = column_bytes / 8;
  auto paged = MakePagedDataset(*reader, budget);
  if (!paged.ok()) {
    std::fprintf(stderr, "paged dataset failed: %s\n",
                 paged.status().ToString().c_str());
    return 1;
  }

  const PathReport in_ram = TimePath("in_ram", train, reference, iterations,
                                     [] { return std::string(); });
  const PathReport shard_ram =
      TimePath("sharded_in_ram", *sharded, reference, iterations,
               [] { return std::string(); });
  const PathReport out_of_core = TimePath(
      "out_of_core", *paged, reference, iterations, [&] {
        std::string extra;
        extra += "     \"resident_budget_bytes\": " + std::to_string(budget) +
                 ",\n";
        extra += "     \"column_bytes\": " + std::to_string(column_bytes) +
                 ",\n";
        extra += "     \"peak_resident_column_bytes\": " +
                 std::to_string(paged->peak_resident_column_bytes()) + ",\n";
        extra += "     \"column_faults\": " +
                 std::to_string(paged->column_fault_count()) + ",\n";
        extra += "     \"column_evictions\": " +
                 std::to_string(paged->column_evict_count());
        return extra;
      });

  const bool all_identical = in_ram.all_identical &&
                             shard_ram.all_identical &&
                             out_of_core.all_identical;
  const bool spilled = paged->column_evict_count() > 0;

  std::string json = "{\n";
  json += "  \"benchmark\": \"train\",\n";
  json += "  \"dataset\": {\"generator\": \"kdd_sim\", \"rows\": " +
          std::to_string(train.num_rows()) + ", \"attributes\": " +
          std::to_string(train.schema().num_attributes()) +
          ", \"classes\": " + std::to_string(train.schema().num_classes()) +
          "},\n";
  json += "  \"shard_store\": {\"shards\": 4, \"file_bytes\": " +
          std::to_string(store_bytes) + "},\n";
  json += "  \"iterations\": " + std::to_string(iterations) + ",\n";
  json += "  \"timing\": \"best-of-iterations wall seconds per full "
          "one-vs-rest train\",\n";
  json += "  \"cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"paths\": [\n";
  json += in_ram.json + ",\n";
  json += shard_ram.json + ",\n";
  json += out_of_core.json + "\n";
  json += "  ],\n";
  json += std::string("  \"out_of_core_spilled\": ") +
          (spilled ? "true" : "false") + ",\n";
  json += std::string("  \"all_bytes_identical\": ") +
          (all_identical ? "true" : "false") + "\n";
  json += "}\n";

  std::printf("%s", json.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: some configuration's model bytes differ from the "
                 "serial in-RAM reference\n");
    return 1;
  }
  if (!spilled) {
    std::fprintf(stderr,
                 "FAIL: the out-of-core budget never forced an eviction — "
                 "the paged path was not actually out of core\n");
    return 1;
  }

  const char* json_path = std::getenv("PNR_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  return Run(quick);
}
