// Reproduces Table 3: categorical-only datasets coa1..coa6 and
// coad1..coad4, comparing C4.5rules, RIPPER and PNrule.
//
// Paper shape to verify: RIPPER keeps 100% recall with hopeless precision
// (13-17% on coa*, ~2-7% on coad*); C4.5rules degrades as the number of
// non-target subclasses/signatures grows and collapses on coad2 (F=.0060);
// PNrule stays between .58 and .92 everywhere.
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>

#include <cstdio>

#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace pnr;
  const ExperimentScale scale = ScaleFromArgs(argc, argv);
  std::printf("Table 3: categorical-only datasets (%s)\n\n",
              DescribeScale(scale).c_str());

  const std::vector<std::string> names = {"coa1",  "coa2",  "coa3", "coa4",
                                          "coa5",  "coa6",  "coad1",
                                          "coad2", "coad3", "coad4"};
  const std::vector<std::string> variants = {"C", "R", "P"};
  TablePrinter table({"dataset", "M", "Rec", "Prec", "F"});
  uint64_t salt = 200;
  for (const std::string& name : names) {
    const CategoricalModelParams params = CoaParams(name);
    const TrainTestPair data = MakeCategoricalPair(
        params, scale.train_records, scale.test_records, scale.seed + ++salt);
    for (const std::string& variant : variants) {
      auto result = RunVariant(variant, data, "C", scale.seed);
      if (!result.ok()) {
        std::fprintf(stderr, "%s %s: %s\n", name.c_str(), variant.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> row = {name, result->variant};
      AppendMetricsCells(*result, &row);
      table.AddRow(std::move(row));
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper F: coa1 C=.9035 R=.2868 P=.8462 | "
              "coa6 C=.3685 R=.2326 P=.8323 | "
              "coad2 C=.0060 R=.1325 P=.5758 | coad4 C=.3454 R=.0377 "
              "P=.8377\n");
  return 0;
}
