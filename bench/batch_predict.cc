// Batch-prediction benchmark: the interpreted per-row Score loop against
// the compiled ScoreBatch engine (rules/compiled_rule_set.h + eval/batch.h)
// on a kdd_sim training set, for PNrule, RIPPER, and the C4.5 tree.
//
// Besides the google-benchmark output, the binary writes a machine-readable
// interpreted-vs-compiled comparison to the path in the PNR_BENCH_JSON
// environment variable when it is set (see BENCH_batch_predict.json at the
// repo root). Knobs:
//   PNR_BENCH_ROWS           rows to generate/score (default 100000)
//   PNR_BENCH_COMPARE_ITERS  timed calls per configuration (default 5)
//
// The JSON also records two correctness bits per model: whether the
// compiled scores are bitwise identical to the interpreted ones, and
// whether they are bitwise identical across thread counts 1/2/8.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "c45/tree_classifier.h"
#include "common/thread_pool.h"
#include "eval/classifier.h"
#include "pnrule/multiclass.h"
#include "pnrule/pnrule.h"
#include "ripper/ripper.h"
#include "synth/kdd_sim.h"

namespace {

using namespace pnr;

size_t BenchRows() {
  const char* s = std::getenv("PNR_BENCH_ROWS");
  const long n = s != nullptr ? std::atol(s) : 0;
  return n > 0 ? static_cast<size_t>(n) : 100000;
}

const Dataset& SharedKdd() {
  static const Dataset data = [] {
    KddSimParams params;
    params.train_records = BenchRows();
    params.test_records = 1000;  // generator minimum; only train is scored
    auto generated = GenerateKddSim(params);
    if (!generated.ok()) {
      std::fprintf(stderr, "kdd_sim generation failed: %s\n",
                   generated.status().ToString().c_str());
      std::abort();
    }
    return std::move(generated).value().train;
  }();
  return data;
}

CategoryId Target() {
  return SharedKdd().schema().class_attr().FindCategory("probe");
}

// One trained model per family, shared by all benchmarks.
template <typename Learner>
const BinaryClassifier& SharedModel() {
  static const auto model = [] {
    auto trained = Learner().Train(SharedKdd(), Target());
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.status().ToString().c_str());
      std::abort();
    }
    return std::move(trained).value();
  }();
  return model;
}

void InterpretedBody(benchmark::State& state, const BinaryClassifier& model) {
  const Dataset& data = SharedKdd();
  for (auto _ : state) {
    double total = 0.0;
    for (RowId row = 0; row < data.num_rows(); ++row) {
      total += model.Score(data, row);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.num_rows()));
}

void CompiledBody(benchmark::State& state, const BinaryClassifier& model) {
  const Dataset& data = SharedKdd();
  std::vector<RowId> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<double> scores(rows.size());
  BatchScoreOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    model.ScoreBatch(data, rows.data(), rows.size(), scores.data(), options);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.num_rows()));
}

void BM_PnruleInterpreted(benchmark::State& state) {
  InterpretedBody(state, SharedModel<PnruleLearner>());
}
BENCHMARK(BM_PnruleInterpreted)->Unit(benchmark::kMillisecond);

void BM_PnruleCompiled(benchmark::State& state) {
  CompiledBody(state, SharedModel<PnruleLearner>());
}
BENCHMARK(BM_PnruleCompiled)->Arg(1)->Arg(2)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_RipperInterpreted(benchmark::State& state) {
  InterpretedBody(state, SharedModel<RipperLearner>());
}
BENCHMARK(BM_RipperInterpreted)->Unit(benchmark::kMillisecond);

void BM_RipperCompiled(benchmark::State& state) {
  CompiledBody(state, SharedModel<RipperLearner>());
}
BENCHMARK(BM_RipperCompiled)->Arg(1)->Arg(2)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_C45TreeInterpreted(benchmark::State& state) {
  InterpretedBody(state, SharedModel<C45TreeLearner>());
}
BENCHMARK(BM_C45TreeInterpreted)->Unit(benchmark::kMillisecond);

void BM_C45TreeCompiled(benchmark::State& state) {
  CompiledBody(state, SharedModel<C45TreeLearner>());
}
BENCHMARK(BM_C45TreeCompiled)->Arg(1)->Arg(2)->Arg(8)->Unit(
    benchmark::kMillisecond);

// One-vs-rest committee shared by the multiclass benchmarks. `zero_weight`
// gives the majority class weight 0, which ClassifyBatch answers by
// skipping that class's whole ScoreBatch pass.
const MultiClassPnruleClassifier& SharedMultiClass(bool zero_weight) {
  auto train = [](bool zeroed) {
    MultiClassPnruleLearner learner;
    if (zeroed) {
      const Schema& schema = SharedKdd().schema();
      std::vector<double> weights(schema.num_classes(), 1.0);
      const CategoryId normal = schema.class_attr().FindCategory("normal");
      weights[static_cast<size_t>(normal)] = 0.0;
      learner.set_class_weights(std::move(weights));
    }
    auto trained = learner.Train(SharedKdd());
    if (!trained.ok()) {
      std::fprintf(stderr, "multiclass training failed: %s\n",
                   trained.status().ToString().c_str());
      std::abort();
    }
    return std::move(trained).value();
  };
  static const auto all = train(false);
  static const auto zeroed = train(true);
  return zero_weight ? zeroed : all;
}

void BM_MultiClassPerRow(benchmark::State& state) {
  const Dataset& data = SharedKdd();
  const MultiClassPnruleClassifier& model = SharedMultiClass(false);
  for (auto _ : state) {
    size_t agree = 0;
    for (RowId row = 0; row < data.num_rows(); ++row) {
      if (model.Classify(data, row) == data.label(row)) ++agree;
    }
    benchmark::DoNotOptimize(agree);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_MultiClassPerRow)->Unit(benchmark::kMillisecond);

void MultiClassBatchBody(benchmark::State& state, bool zero_weight) {
  const Dataset& data = SharedKdd();
  const MultiClassPnruleClassifier& model = SharedMultiClass(zero_weight);
  std::vector<RowId> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<CategoryId> predicted(rows.size());
  BatchScoreOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    model.ClassifyBatch(data, rows.data(), rows.size(), predicted.data(),
                        options);
    benchmark::DoNotOptimize(predicted.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.num_rows()));
}

void BM_MultiClassCompiledBatch(benchmark::State& state) {
  MultiClassBatchBody(state, /*zero_weight=*/false);
}
BENCHMARK(BM_MultiClassCompiledBatch)->Arg(1)->Arg(2)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_MultiClassCompiledBatchZeroWeight(benchmark::State& state) {
  MultiClassBatchBody(state, /*zero_weight=*/true);
}
BENCHMARK(BM_MultiClassCompiledBatchZeroWeight)
    ->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Interpreted-vs-compiled comparison written as JSON (acceptance evidence).

// Best-of-N process-CPU milliseconds for one call. CPU time (all threads)
// instead of wall clock and min instead of mean keep the comparison stable
// on shared machines: co-tenant load inflates wall time arbitrarily but
// never the cycles this process itself spends.
double MillisPerCall(const std::function<void()>& call, int iterations) {
  call();  // warm-up
  double best = 0.0;
  for (int i = 0; i < iterations; ++i) {
    const std::clock_t start = std::clock();
    call();
    const std::clock_t stop = std::clock();
    const double ms = 1000.0 * static_cast<double>(stop - start) /
                      static_cast<double>(CLOCKS_PER_SEC);
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::string Fmt(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return buf;
}

struct ModelReport {
  std::string json;
  double single_thread_speedup = 0.0;
  bool matches_interpreted = false;
  bool identical_across_threads = false;
};

ModelReport CompareModel(const std::string& name,
                         const BinaryClassifier& model, int iterations) {
  const Dataset& data = SharedKdd();
  std::vector<RowId> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});

  std::vector<double> interpreted_scores(rows.size());
  const double interpreted_ms = MillisPerCall(
      [&] {
        for (size_t i = 0; i < rows.size(); ++i) {
          interpreted_scores[i] = model.Score(data, rows[i]);
        }
      },
      iterations);

  ModelReport report;
  report.json = "    {\"model\": \"" + name + "\",\n";
  report.json += "     \"interpreted_ms_per_pass\": " +
                 Fmt("%.4f", interpreted_ms) + ",\n";
  report.json += "     \"compiled\": [\n";

  report.matches_interpreted = true;
  report.identical_across_threads = true;
  std::vector<double> reference;  // single-thread compiled scores
  const size_t thread_counts[] = {1, 2, 8};
  for (size_t t = 0; t < 3; ++t) {
    BatchScoreOptions options;
    options.num_threads = thread_counts[t];
    std::vector<double> scores(rows.size());
    const double ms = MillisPerCall(
        [&] {
          model.ScoreBatch(data, rows.data(), rows.size(), scores.data(),
                           options);
        },
        iterations);
    const bool vs_interpreted = BitIdentical(scores, interpreted_scores);
    report.matches_interpreted =
        report.matches_interpreted && vs_interpreted;
    if (t == 0) {
      reference = scores;
      report.single_thread_speedup = ms > 0.0 ? interpreted_ms / ms : 0.0;
    } else {
      report.identical_across_threads =
          report.identical_across_threads && BitIdentical(scores, reference);
    }
    const double speedup = ms > 0.0 ? interpreted_ms / ms : 0.0;
    report.json += "      {\"threads\": " + std::to_string(thread_counts[t]) +
                   ", \"threads_effective\": " +
                   std::to_string(ThreadPool::ClampThreadsForRows(
                       thread_counts[t], rows.size())) +
                   ", \"ms_per_pass\": " + Fmt("%.4f", ms) +
                   ", \"speedup_vs_interpreted\": " + Fmt("%.2f", speedup) +
                   ", \"bitwise_equal_to_interpreted\": " +
                   (vs_interpreted ? "true" : "false") + "}";
    report.json += t + 1 < 3 ? ",\n" : "\n";
  }
  report.json += "     ],\n";
  report.json += "     \"single_thread_speedup\": " +
                 Fmt("%.2f", report.single_thread_speedup) + ",\n";
  report.json += std::string("     \"bitwise_identical_across_threads\": ") +
                 (report.identical_across_threads ? "true" : "false") + "}";
  return report;
}

struct MultiClassReport {
  std::string json;
  bool matches_per_row = false;
  bool identical_across_threads = false;
};

// Per-row Classify against the batched ClassifyBatch path (which hoists its
// score scratch into thread_locals and skips zero-weight classes outright).
// Also times the committee with the majority class zero-weighted: the skip
// drops that class's entire ScoreBatch pass, so the delta against the
// all-weights committee is the pass it no longer pays for.
MultiClassReport CompareMultiClass(int iterations) {
  const Dataset& data = SharedKdd();
  std::vector<RowId> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  const MultiClassPnruleClassifier& model = SharedMultiClass(false);
  const MultiClassPnruleClassifier& zeroed = SharedMultiClass(true);

  std::vector<CategoryId> per_row(rows.size());
  const double per_row_ms = MillisPerCall(
      [&] {
        for (size_t i = 0; i < rows.size(); ++i) {
          per_row[i] = model.Classify(data, rows[i]);
        }
      },
      iterations);

  MultiClassReport report;
  report.matches_per_row = true;
  report.identical_across_threads = true;
  report.json = "  \"multiclass\": {\n";
  report.json += "    \"classes\": " +
                 std::to_string(model.num_classes()) + ",\n";
  report.json += "    \"per_row_ms_per_pass\": " + Fmt("%.4f", per_row_ms) +
                 ",\n";
  report.json += "    \"batched\": [\n";
  std::vector<CategoryId> reference;
  const size_t thread_counts[] = {1, 2, 8};
  for (size_t t = 0; t < 3; ++t) {
    BatchScoreOptions options;
    options.num_threads = thread_counts[t];
    std::vector<CategoryId> predicted(rows.size());
    const double ms = MillisPerCall(
        [&] {
          model.ClassifyBatch(data, rows.data(), rows.size(),
                              predicted.data(), options);
        },
        iterations);
    const bool vs_per_row = predicted == per_row;
    report.matches_per_row = report.matches_per_row && vs_per_row;
    if (t == 0) {
      reference = predicted;
    } else {
      report.identical_across_threads =
          report.identical_across_threads && predicted == reference;
    }
    report.json += "      {\"threads\": " + std::to_string(thread_counts[t]) +
                   ", \"ms_per_pass\": " + Fmt("%.4f", ms) +
                   ", \"speedup_vs_per_row\": " +
                   Fmt("%.2f", ms > 0.0 ? per_row_ms / ms : 0.0) +
                   ", \"identical_to_per_row\": " +
                   (vs_per_row ? "true" : "false") + "}";
    report.json += t + 1 < 3 ? ",\n" : "\n";
  }
  report.json += "    ],\n";

  // The zero-weight committee is a different model (its own predictions),
  // so it is gated on batched-equals-per-row for itself, not on `model`.
  std::vector<CategoryId> zero_per_row(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    zero_per_row[i] = zeroed.Classify(data, rows[i]);
  }
  std::vector<CategoryId> zero_batched(rows.size());
  const double zero_ms = MillisPerCall(
      [&] {
        zeroed.ClassifyBatch(data, rows.data(), rows.size(),
                             zero_batched.data(), BatchScoreOptions{});
      },
      iterations);
  report.matches_per_row =
      report.matches_per_row && zero_batched == zero_per_row;
  report.json += "    \"majority_zero_weight_ms_per_pass\": " +
                 Fmt("%.4f", zero_ms) + ",\n";
  report.json +=
      std::string("    \"identical_to_per_row\": ") +
      (report.matches_per_row ? "true" : "false") + ",\n";
  report.json +=
      std::string("    \"identical_across_threads\": ") +
      (report.identical_across_threads ? "true" : "false") + "\n";
  report.json += "  },\n";
  return report;
}

int WriteBatchPredictComparison(const char* path) {
  const int iterations = [] {
    const char* s = std::getenv("PNR_BENCH_COMPARE_ITERS");
    const int n = s != nullptr ? std::atoi(s) : 0;
    return n > 0 ? n : 5;
  }();

  const Dataset& data = SharedKdd();
  std::string json = "{\n";
  json += "  \"benchmark\": \"batch_predict\",\n";
  json += "  \"dataset\": {\"generator\": \"kdd_sim\", \"rows\": " +
          std::to_string(data.num_rows()) + ", \"attributes\": " +
          std::to_string(data.schema().num_attributes()) +
          ", \"target\": \"probe\"},\n";
  json += "  \"iterations\": " + std::to_string(iterations) + ",\n";
  json += "  \"timing\": \"best-of-iterations process-CPU ms per pass\",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"min_rows_per_thread\": " +
          std::to_string(ThreadPool::kMinRowsPerThread) + ",\n";
  json += "  \"models\": [\n";

  const ModelReport reports[] = {
      CompareModel("pnrule", SharedModel<PnruleLearner>(), iterations),
      CompareModel("ripper", SharedModel<RipperLearner>(), iterations),
      CompareModel("c45_tree", SharedModel<C45TreeLearner>(), iterations),
  };
  double min_speedup = 0.0;
  bool all_exact = true;
  bool all_deterministic = true;
  for (size_t i = 0; i < 3; ++i) {
    json += reports[i].json;
    json += i + 1 < 3 ? ",\n" : "\n";
    if (i == 0 || reports[i].single_thread_speedup < min_speedup) {
      min_speedup = reports[i].single_thread_speedup;
    }
    all_exact = all_exact && reports[i].matches_interpreted;
    all_deterministic =
        all_deterministic && reports[i].identical_across_threads;
  }
  json += "  ],\n";
  const MultiClassReport multiclass = CompareMultiClass(iterations);
  json += multiclass.json;
  all_exact = all_exact && multiclass.matches_per_row;
  all_deterministic = all_deterministic && multiclass.identical_across_threads;
  json += "  \"min_single_thread_speedup\": " + Fmt("%.2f", min_speedup) +
          ",\n";
  json += std::string("  \"bitwise_equal_to_interpreted\": ") +
          (all_exact ? "true" : "false") + ",\n";
  json += std::string("  \"bitwise_identical_across_threads\": ") +
          (all_deterministic ? "true" : "false") + "\n";
  json += "}\n";

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf(
      "wrote %s (min single-thread speedup %.2fx, exact=%s, "
      "deterministic=%s)\n",
      path, min_speedup, all_exact ? "true" : "false",
      all_deterministic ? "true" : "false");
  return all_exact && all_deterministic ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Opt-in JSON comparison: set PNR_BENCH_JSON=<path> (kept out of the
  // default run so the ctest smoke registration stays fast).
  const char* json_path = std::getenv("PNR_BENCH_JSON");
  if (json_path != nullptr) return WriteBatchPredictComparison(json_path);
  return 0;
}
