// Streaming scoring-engine benchmark (`pnr stream` core loop).
//
// Replays the kdd_sim drift scenario — stationary pre-shift traffic
// followed by a rare-class surge — through a StreamEngine and measures
// sustained throughput (events/second: ingest + window scoring + drift
// detection + journal rendering) at score-thread counts {1, 2, 4}, with
// drift-triggered retraining on and off.
//
// The determinism contract is enforced, not assumed: the binary refuses
// to write BENCH_stream.json (and exits nonzero) unless, within each
// retrain mode, every thread count reproduces the serial run's journal
// byte-for-byte, the same swap count, and — when a retrain fired — a
// byte-identical retrained model file. The JSON records the machine's
// core count: wall-clock gains from score-thread fan-out are only
// observable with cores > 1, and honest single-core numbers are still
// valid evidence for the identity claims and the retrain behaviour.
//
// Knobs:
//   PNR_BENCH_ROWS           feed events to replay (default 60000)
//   PNR_BENCH_COMPARE_ITERS  timed runs per configuration, best-of
//                            (default 1)
//   PNR_BENCH_JSON           write the machine-readable report here
//   --quick                  7000 events, 1 iteration (the ctest smoke)

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "pnrule/model_io.h"
#include "pnrule/pnrule.h"
#include "serve/registry.h"
#include "stream/engine.h"
#include "synth/kdd_sim.h"

namespace {

using namespace pnr;

size_t BenchRows(bool quick) {
  const char* s = std::getenv("PNR_BENCH_ROWS");
  const long n = s != nullptr ? std::atol(s) : 0;
  if (n > 0) return static_cast<size_t>(n);
  return quick ? 7000 : 60000;
}

int CompareIters() {
  const char* s = std::getenv("PNR_BENCH_COMPARE_ITERS");
  const int n = s != nullptr ? std::atoi(s) : 0;
  return n > 0 ? n : 1;
}

std::string Fmt(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return buf;
}

// The replayed scenario: a base model trained on stationary traffic, and
// the feed whose back half carries the rare-class surge.
struct Scenario {
  Schema schema;
  CategoryId target = kInvalidCategory;
  std::string base_model_text;
  std::vector<ParsedRow> feed;
  uint64_t window_rows = 0;
  uint64_t retrain_rows = 0;
};

ParsedRow RowFromDataset(const Dataset& data, RowId row) {
  const Schema& schema = data.schema();
  ParsedRow out;
  out.numeric.resize(schema.num_attributes(), 0.0);
  out.categorical.resize(schema.num_attributes(), kInvalidCategory);
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const AttrIndex attr = static_cast<AttrIndex>(a);
    if (schema.attribute(attr).is_numeric()) {
      out.numeric[a] = data.numeric(row, attr);
    } else {
      out.categorical[a] = data.categorical(row, attr);
    }
  }
  out.label = data.label(row);
  out.line = row + 2;  // as if parsed from a feed with a header line
  return out;
}

Scenario BuildScenario(size_t events) {
  // Half the generated train split seeds the base model; the other half
  // plus the shifted test split is the feed. Window and retrain sizes
  // scale with the feed so the surge always confirms and retrains.
  Scenario scenario;
  KddSimParams params;
  params.train_records = events;
  params.test_records = (events * 3) / 7;
  params.seed = 427;
  auto generated = GenerateKddSim(params);
  if (!generated.ok()) {
    std::fprintf(stderr, "kdd_sim generation failed: %s\n",
                 generated.status().ToString().c_str());
    std::exit(1);
  }
  scenario.schema = generated->train.schema();
  scenario.target = scenario.schema.class_attr().FindCategory("r2l");
  if (scenario.target == kInvalidCategory) {
    std::fprintf(stderr, "kdd_sim schema lost the r2l class\n");
    std::exit(1);
  }

  const Dataset& train = generated->train;
  const RowId base_rows = static_cast<RowId>(train.num_rows() / 2);
  Dataset base(scenario.schema);
  for (RowId row = 0; row < base_rows; ++row) {
    const RowId dst = base.AddRow();
    for (size_t a = 0; a < scenario.schema.num_attributes(); ++a) {
      const AttrIndex attr = static_cast<AttrIndex>(a);
      if (scenario.schema.attribute(attr).is_numeric()) {
        base.set_numeric(dst, attr, train.numeric(row, attr));
      } else {
        base.set_categorical(dst, attr, train.categorical(row, attr));
      }
    }
    base.set_label(dst, train.label(row));
  }
  auto model = PnruleLearner(PnruleConfig()).Train(base, scenario.target);
  if (!model.ok()) {
    std::fprintf(stderr, "base training failed: %s\n",
                 model.status().ToString().c_str());
    std::exit(1);
  }
  scenario.base_model_text = SerializePnruleModel(*model, scenario.schema);

  for (RowId row = base_rows; row < train.num_rows(); ++row) {
    scenario.feed.push_back(RowFromDataset(train, row));
  }
  const Dataset& test = generated->test;
  for (RowId row = 0; row < test.num_rows(); ++row) {
    scenario.feed.push_back(RowFromDataset(test, row));
  }
  scenario.window_rows = scenario.feed.size() / 14;
  scenario.retrain_rows = scenario.window_rows * 6;
  return scenario;
}

// One engine replay's identity-relevant output.
struct RunOutput {
  std::string journal;
  uint64_t swaps = 0;
  uint64_t windows = 0;
  std::string model_bytes;  ///< retrained model file, empty when no swap
  double seconds = 0.0;
};

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::string();
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

RunOutput ReplayOnce(const Scenario& scenario, size_t score_threads,
                     bool retrain_enabled, const std::string& out_dir) {
  ModelRegistry registry;
  auto base = ParsePnruleModel(scenario.base_model_text, scenario.schema);
  if (!base.ok()) {
    std::fprintf(stderr, "base model parse failed: %s\n",
                 base.status().ToString().c_str());
    std::exit(1);
  }
  registry.Install("stream", scenario.schema, std::move(base).value());

  ThreadBudget budget(score_threads + 2);
  budget.Reserve(score_threads);

  StreamEngineOptions options;
  options.window_rows = scenario.window_rows;
  options.sliding_windows = 5;
  options.threshold = 0.5;
  options.score_threads = score_threads;
  options.target = scenario.target;
  options.retrain_enabled = retrain_enabled;
  options.retrain_rows = scenario.retrain_rows;
  options.model_path = out_dir + "/base_model.txt";
  options.retrain.out_dir = out_dir;
  options.retrain.want_threads = 2;

  StreamEngine engine(&scenario.schema, &registry, &budget, options);
  Status status = engine.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "engine start failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }

  RunOutput out;
  Timer timer;
  for (const ParsedRow& row : scenario.feed) {
    engine.Ingest(row);
    status = engine.Pump();
    if (!status.ok()) {
      std::fprintf(stderr, "pump failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  status = engine.FinishStream();
  if (!status.ok()) {
    std::fprintf(stderr, "finish failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  out.seconds = timer.ElapsedSeconds();
  for (const std::string& line : engine.journal()) {
    out.journal += line;
    out.journal += '\n';
  }
  out.swaps = engine.swaps_done();
  out.windows = engine.windows_processed();
  if (out.swaps > 0) out.model_bytes = ReadFileOrEmpty(engine.model_path());
  return out;
}

struct ModeReport {
  std::string json;
  bool identical = true;
  uint64_t swaps = 0;
};

// Times {1,2,4} score threads in one retrain mode; every run must match
// the mode's serial reference bit-for-bit.
ModeReport TimeMode(const Scenario& scenario, bool retrain_enabled,
                    int iterations, const std::string& dir_prefix) {
  ModeReport report;
  report.json = std::string("    {\"retrain\": ") +
                (retrain_enabled ? "true" : "false") + ",\n";
  report.json += "     \"runs\": [\n";
  const size_t thread_counts[] = {1, 2, 4};
  RunOutput reference;
  double serial_seconds = 0.0;
  for (size_t t = 0; t < 3; ++t) {
    const std::string out_dir =
        dir_prefix + "_t" + std::to_string(thread_counts[t]);
    ::mkdir(out_dir.c_str(), 0755);
    RunOutput best;
    for (int i = 0; i < iterations; ++i) {
      RunOutput run =
          ReplayOnce(scenario, thread_counts[t], retrain_enabled, out_dir);
      if (i == 0 || run.seconds < best.seconds) best = std::move(run);
    }
    if (t == 0) {
      reference = best;
      serial_seconds = best.seconds;
      report.swaps = best.swaps;
    }
    const bool identical = best.journal == reference.journal &&
                           best.swaps == reference.swaps &&
                           best.model_bytes == reference.model_bytes;
    report.identical = report.identical && identical;
    const double events_per_second =
        best.seconds > 0.0 ? scenario.feed.size() / best.seconds : 0.0;
    const double speedup =
        best.seconds > 0.0 ? serial_seconds / best.seconds : 0.0;
    report.json +=
        "      {\"score_threads\": " + std::to_string(thread_counts[t]) +
        ", \"wall_seconds\": " + Fmt("%.3f", best.seconds) +
        ", \"events_per_second\": " + Fmt("%.0f", events_per_second) +
        ", \"speedup_vs_serial\": " + Fmt("%.2f", speedup) +
        ", \"bytes_identical_to_reference\": " +
        (identical ? "true" : "false") + "}";
    report.json += t + 1 < 3 ? ",\n" : "\n";
  }
  report.json += "     ],\n";
  report.json += "     \"windows\": " + std::to_string(reference.windows) +
                 ",\n";
  report.json += "     \"swaps\": " + std::to_string(reference.swaps) + "}";
  return report;
}

int Run(bool quick) {
  const Scenario scenario = BuildScenario(BenchRows(quick));
  const int iterations = CompareIters();

  char dir_template[] = "/tmp/pnr_stream_bench_XXXXXX";
  const char* scratch = ::mkdtemp(dir_template);
  if (scratch == nullptr) {
    std::fprintf(stderr, "cannot create scratch directory\n");
    return 1;
  }

  const ModeReport with_retrain = TimeMode(
      scenario, true, iterations, std::string(scratch) + "/retrain_on");
  const ModeReport without_retrain = TimeMode(
      scenario, false, iterations, std::string(scratch) + "/retrain_off");

  const bool all_identical =
      with_retrain.identical && without_retrain.identical;
  const bool retrained = with_retrain.swaps > 0;

  std::string json = "{\n";
  json += "  \"benchmark\": \"stream\",\n";
  json += "  \"dataset\": {\"generator\": \"kdd_sim\", \"events\": " +
          std::to_string(scenario.feed.size()) +
          ", \"attributes\": " +
          std::to_string(scenario.schema.num_attributes()) +
          ", \"target\": \"r2l\"},\n";
  json += "  \"window_rows\": " + std::to_string(scenario.window_rows) +
          ",\n";
  json += "  \"retrain_rows\": " + std::to_string(scenario.retrain_rows) +
          ",\n";
  json += "  \"iterations\": " + std::to_string(iterations) + ",\n";
  json += "  \"timing\": \"best-of-iterations wall seconds per full feed "
          "replay (ingest + score + drift + journal + retrain)\",\n";
  json += "  \"cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"modes\": [\n";
  json += with_retrain.json + ",\n";
  json += without_retrain.json + "\n";
  json += "  ],\n";
  json += std::string("  \"drift_retrain_fired\": ") +
          (retrained ? "true" : "false") + ",\n";
  json += std::string("  \"all_bytes_identical\": ") +
          (all_identical ? "true" : "false") + "\n";
  json += "}\n";

  std::printf("%s", json.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: some thread count's journal/model bytes differ from "
                 "its mode's serial reference\n");
    return 1;
  }
  if (!retrained) {
    std::fprintf(stderr,
                 "FAIL: the drift scenario never triggered a retrain — the "
                 "retrain-on mode measured nothing\n");
    return 1;
  }

  const char* json_path = std::getenv("PNR_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  return Run(quick);
}
