// Flagship tuning race: tuned PNrule (winner of the 24-point default grid
// raced by src/tune/) against default-config PNrule, RIPPER, and C4.5rules
// on the simulated KDDCUP'99 data, with the rare class re-subsampled to
// three imbalance ratios — roughly 1%, 0.3%, and 0.1% of the training
// records.
//
// For each ratio the bench races ConfigSpace::Default() over stratified
// 5-fold CV on the training split (successive halving + confidence-bound
// elimination, exactly what `pnr tune` runs), then trains the winner and
// every baseline on the full training split and scores the shifted-
// distribution test split. The tuned and default rows also report their
// cross-validation recall/precision as mean ± sd over the folds each arm
// survived — the error bars behind the point estimates.
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>
// Env:   PNR_BENCH_JSON=<path> — write the race + test numbers as JSON
//        (the committed BENCH_tune.json is this file at default scale).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/string_util.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "synth/kdd_sim.h"
#include "tune/report.h"

namespace pnr {
namespace {

// Fraction of rows labeled `target`.
double TargetFraction(const Dataset& dataset, CategoryId target) {
  size_t count = 0;
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    count += dataset.label(r) == target;
  }
  return static_cast<double>(count) /
         static_cast<double>(dataset.num_rows());
}

// Keeps every non-target row and a `target_fraction` sample of the target
// rows — the mirror image of SubsampleNonTarget, for lowering a class's
// ratio below its natural rate.
Dataset ThinTarget(const Dataset& source, CategoryId target,
                   double target_fraction, Rng* rng) {
  Dataset out(source.schema());
  const Schema& schema = source.schema();
  for (RowId r = 0; r < source.num_rows(); ++r) {
    if (source.label(r) == target && !rng->NextBool(target_fraction)) {
      continue;
    }
    const RowId nr = out.AddRow();
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const AttrIndex attr = static_cast<AttrIndex>(a);
      if (schema.attribute(attr).is_numeric()) {
        out.set_numeric(nr, attr, source.numeric(r, attr));
      } else {
        out.set_categorical(nr, attr, source.categorical(r, attr));
      }
    }
    out.set_label(nr, source.label(r));
    out.set_weight(nr, source.weight(r));
  }
  return out;
}

// Re-subsamples `base` so the target class makes up ~`ratio` of the
// training split: thins non-target rows to raise the ratio, target rows to
// lower it. Both splits get the same transform so the test distribution
// shift stays comparable across ratios.
TrainTestPair AtRatio(const TrainTestPair& base, CategoryId target,
                      double ratio, uint64_t seed) {
  const double p = TargetFraction(base.train, target);
  if (ratio >= p) {
    const double keep = p * (1.0 - ratio) / (ratio * (1.0 - p));
    return SubsamplePair(base, target, std::min(1.0, keep), seed);
  }
  const double keep = ratio * (1.0 - p) / (p * (1.0 - ratio));
  Rng rng(seed);
  Rng train_rng = rng.Fork();
  Rng test_rng = rng.Fork();
  return TrainTestPair{ThinTarget(base.train, target, keep, &train_rng),
                       ThinTarget(base.test, target, keep, &test_rng)};
}

struct CvStats {
  double mean = 0.0;
  double sd = 0.0;
};

CvStats Summarize(const std::vector<FoldEval>& folds,
                  double (*pick)(const FoldEval&)) {
  CvStats out;
  if (folds.empty()) return out;
  for (const FoldEval& f : folds) out.mean += pick(f);
  out.mean /= static_cast<double>(folds.size());
  if (folds.size() >= 2) {
    double sq = 0.0;
    for (const FoldEval& f : folds) {
      const double d = pick(f) - out.mean;
      sq += d * d;
    }
    out.sd = std::sqrt(sq / static_cast<double>(folds.size() - 1));
  }
  return out;
}

std::string CvCell(const std::vector<FoldEval>& folds,
                   double (*pick)(const FoldEval&)) {
  const CvStats stats = Summarize(folds, pick);
  return FormatDouble(stats.mean, 3) + "±" + FormatDouble(stats.sd, 3);
}

double PickRecall(const FoldEval& f) { return f.recall; }
double PickPrecision(const FoldEval& f) { return f.precision; }

// Index of the stock PnruleConfig inside the enumerated default grid.
size_t DefaultConfigIndex(const std::vector<TrialConfig>& configs) {
  const PnruleConfig stock;
  for (size_t i = 0; i < configs.size(); ++i) {
    const PnruleConfig& c = configs[i].config;
    if (c.min_coverage_fraction == stock.min_coverage_fraction &&
        c.n_recall_lower_limit == stock.n_recall_lower_limit &&
        c.min_support_fraction == stock.min_support_fraction &&
        c.max_p_rule_length == stock.max_p_rule_length &&
        c.metric == stock.metric) {
      return i;
    }
  }
  return 0;
}

struct RatioOutcome {
  double ratio = 0.0;
  size_t train_rows = 0;
  size_t target_rows = 0;
  RaceResult race;
  std::vector<TrialConfig> configs;
  std::vector<VariantResult> test_results;  // C, R, P-default, P-tuned
};

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += static_cast<unsigned char>(c) < 0x20 ? ' ' : c;
  }
  return out;
}

void AppendVariantJson(const VariantResult& result, std::string* out) {
  *out += "{\"variant\": \"" + JsonEscape(result.variant) +
          "\", \"recall\": " + FormatDouble(result.metrics.recall, 6) +
          ", \"precision\": " + FormatDouble(result.metrics.precision, 6) +
          ", \"f\": " + FormatDouble(result.metrics.f_measure, 6) + "}";
}

std::string RenderJson(const std::vector<RatioOutcome>& outcomes,
                       const ExperimentScale& scale) {
  std::string out = "{\n  \"tool\": \"tune_race bench\",\n";
  out += "  \"dataset\": \"kdd_sim r2l\",\n";
  out += "  \"scale\": " + FormatDouble(scale.factor, 4) + ",\n";
  out += "  \"seed\": " + std::to_string(scale.seed) + ",\n";
  out += "  \"ratios\": [\n";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const RatioOutcome& outcome = outcomes[i];
    out += "    {\"ratio\": " + FormatDouble(outcome.ratio, 4) +
           ", \"train_rows\": " + std::to_string(outcome.train_rows) +
           ", \"target_rows\": " + std::to_string(outcome.target_rows) +
           ",\n     \"winner\": \"" +
           JsonEscape(outcome.configs[outcome.race.best_config].Describe()) +
           "\", \"evals_used\": " +
           std::to_string(outcome.race.evals_used) + ",\n     \"test\": [";
    for (size_t v = 0; v < outcome.test_results.size(); ++v) {
      if (v != 0) out += ", ";
      AppendVariantJson(outcome.test_results[v], &out);
    }
    out += "]}";
    out += i + 1 == outcomes.size() ? "\n" : ",\n";
  }
  out += "  ]\n}\n";
  return out;
}

int Run(int argc, char** argv) {
  const ExperimentScale scale = ScaleFromArgs(argc, argv);
  std::printf("Tuning race: PNrule (tuned vs default) vs RIPPER vs C4.5 "
              "on kdd_sim r2l (%s)\n\n",
              DescribeScale(scale).c_str());

  KddSimParams params;
  params.train_records = scale.train_records;
  params.test_records = scale.test_records;
  params.seed = scale.seed;
  auto data_or = GenerateKddSim(params);
  if (!data_or.ok()) {
    std::fprintf(stderr, "kdd_sim: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  KddSimData kdd = std::move(data_or).value();
  const TrainTestPair base{std::move(kdd.train), std::move(kdd.test)};
  const CategoryId target =
      base.train.schema().class_attr().FindCategory("r2l");

  const std::vector<TrialConfig> configs =
      ConfigSpace::Default().Enumerate(PnruleConfig{});
  const size_t default_index = DefaultConfigIndex(configs);

  std::vector<RatioOutcome> outcomes;
  for (double ratio : {0.01, 0.003, 0.001}) {
    const TrainTestPair data = AtRatio(base, target, ratio, scale.seed);
    RatioOutcome outcome;
    outcome.ratio = ratio;
    outcome.train_rows = data.train.num_rows();
    outcome.target_rows = static_cast<size_t>(
        TargetFraction(data.train, target) *
            static_cast<double>(data.train.num_rows()) +
        0.5);
    std::printf("ratio %.2f%%: %zu train rows, %zu rare\n", ratio * 100.0,
                outcome.train_rows, outcome.target_rows);
    std::fflush(stdout);

    RacerOptions options;
    options.num_folds = 5;
    options.seed = scale.seed;
    options.metric = TuneMetric::kFMeasure;
    options.num_threads = 0;  // hardware
    Racer racer(options);
    auto race = racer.Race(data.train, target, configs);
    if (!race.ok()) {
      std::fprintf(stderr, "race: %s\n", race.status().ToString().c_str());
      return 1;
    }
    outcome.race = std::move(race).value();
    outcome.configs = configs;

    // Test-split comparison: baselines, stock PNrule, tuned PNrule.
    for (const std::string& variant : {std::string("C"), std::string("R")}) {
      auto result = RunVariant(variant, data, "r2l", scale.seed);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", variant.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      outcome.test_results.push_back(std::move(result).value());
    }
    const size_t picks[] = {default_index, outcome.race.best_config};
    for (size_t v = 0; v < 2; ++v) {
      auto result =
          RunPnruleConfigured(configs[picks[v]].config, data, "r2l");
      if (!result.ok()) {
        std::fprintf(stderr, "PNrule: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      VariantResult configured = std::move(result).value();
      configured.variant = v == 0 ? "P-default" : "P-tuned";
      configured.detail = configs[picks[v]].Describe();
      outcome.test_results.push_back(std::move(configured));
    }
    // The grid contains the stock config, so "tuned" can never lose the
    // race to it — but it can tie (best_config == default_index).
    outcomes.push_back(std::move(outcome));
  }

  for (const RatioOutcome& outcome : outcomes) {
    std::printf("\n== rare-class ratio %.2f%% (%zu/%zu rare train rows) "
                "==\n\n",
                outcome.ratio * 100.0, outcome.target_rows,
                outcome.train_rows);
    const size_t evals_full = configs.size() * 5;
    std::printf("race: %zu/%zu evals (%.0f%% saved), winner `%s`\n\n",
                outcome.race.evals_used, evals_full,
                100.0 * (1.0 - static_cast<double>(outcome.race.evals_used) /
                                   static_cast<double>(evals_full)),
                outcome.configs[outcome.race.best_config].Describe().c_str());
    TablePrinter table({"M", "Rec", "Prec", "F", "cv Rec", "cv Prec"});
    for (const VariantResult& result : outcome.test_results) {
      std::vector<std::string> row = {result.variant};
      AppendMetricsCells(result, &row);
      if (result.variant == "P-default") {
        const TrialState& trial = outcome.race.trials[default_index];
        row.push_back(CvCell(trial.folds, PickRecall));
        row.push_back(CvCell(trial.folds, PickPrecision));
      } else if (result.variant == "P-tuned") {
        const TrialState& trial =
            outcome.race.trials[outcome.race.best_config];
        row.push_back(CvCell(trial.folds, PickRecall));
        row.push_back(CvCell(trial.folds, PickPrecision));
      } else {
        row.push_back("-");
        row.push_back("-");
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.Render().c_str());
  }

  if (const char* json_path = std::getenv("PNR_BENCH_JSON")) {
    const Status written =
        WriteStringToFile(RenderJson(outcomes, scale), json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\nJSON written to %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace pnr

int main(int argc, char** argv) { return pnr::Run(argc, argv); }
