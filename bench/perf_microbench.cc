// google-benchmark microbenchmarks: training and classification throughput
// of the three learners, plus the cost of the condition search with and
// without the paper's range-condition extra scan.

#include <benchmark/benchmark.h>

#include "c45/rules.h"
#include "c45/tree_classifier.h"
#include "induction/condition_search.h"
#include "induction/metric.h"
#include "pnrule/pnrule.h"
#include "ripper/ripper.h"
#include "synth/sweep.h"

namespace {

using namespace pnr;

const TrainTestPair& SharedData() {
  static const TrainTestPair data =
      MakeNumericPair(NsynParams(3), 20000, 10000, 99);
  return data;
}

CategoryId Target() {
  return SharedData().train.schema().class_attr().FindCategory("C");
}

void BM_TrainPnrule(benchmark::State& state) {
  const TrainTestPair& data = SharedData();
  PnruleLearner learner;
  for (auto _ : state) {
    auto model = learner.Train(data.train, Target());
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.train.num_rows()));
}
BENCHMARK(BM_TrainPnrule)->Unit(benchmark::kMillisecond);

void BM_TrainRipper(benchmark::State& state) {
  const TrainTestPair& data = SharedData();
  RipperLearner learner;
  for (auto _ : state) {
    auto model = learner.Train(data.train, Target());
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.train.num_rows()));
}
BENCHMARK(BM_TrainRipper)->Unit(benchmark::kMillisecond);

void BM_TrainC45Rules(benchmark::State& state) {
  const TrainTestPair& data = SharedData();
  C45RulesLearner learner;
  for (auto _ : state) {
    auto model = learner.Train(data.train, Target());
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.train.num_rows()));
}
BENCHMARK(BM_TrainC45Rules)->Unit(benchmark::kMillisecond);

void BM_ClassifyPnrule(benchmark::State& state) {
  const TrainTestPair& data = SharedData();
  PnruleLearner learner;
  auto model = learner.Train(data.train, Target());
  for (auto _ : state) {
    double total = 0.0;
    for (RowId row = 0; row < data.test.num_rows(); ++row) {
      total += model->Score(data.test, row);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.test.num_rows()));
}
BENCHMARK(BM_ClassifyPnrule)->Unit(benchmark::kMillisecond);

void ConditionSearchBody(benchmark::State& state, bool enable_ranges) {
  const TrainTestPair& data = SharedData();
  const RowSubset rows = data.train.AllRows();
  const auto metric = MakeRuleMetric(RuleMetricKind::kZNumber);
  ClassDistribution dist;
  dist.positives = data.train.ClassWeight(rows, Target());
  dist.negatives = data.train.TotalWeight(rows) - dist.positives;
  ConditionSearchOptions options;
  options.enable_range_conditions = enable_ranges;
  ConditionScorer scorer = [&](const RuleStats& stats) {
    return metric->Evaluate(stats, dist);
  };
  for (auto _ : state) {
    auto best =
        FindBestCondition(data.train, rows, Target(), scorer, options);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(rows.size()));
}

void BM_ConditionSearchWithRanges(benchmark::State& state) {
  ConditionSearchBody(state, true);
}
BENCHMARK(BM_ConditionSearchWithRanges)->Unit(benchmark::kMillisecond);

void BM_ConditionSearchOneSided(benchmark::State& state) {
  ConditionSearchBody(state, false);
}
BENCHMARK(BM_ConditionSearchOneSided)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
