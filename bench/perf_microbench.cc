// google-benchmark microbenchmarks: training and classification throughput
// of the three learners, plus the cost of the condition search with and
// without the paper's range-condition extra scan, and the persistent
// ConditionSearchEngine (sorted-column cache + thread pool) against the
// transient per-call search.
//
// Besides the regular google-benchmark output, the binary writes a
// machine-readable serial-vs-engine comparison to the path in the
// PNR_BENCH_JSON environment variable when it is set (see
// BENCH_condition_search.json at the repo root). PNR_BENCH_COMPARE_ITERS
// overrides the number of timed calls per configuration (default 20).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "c45/rules.h"
#include "c45/tree_classifier.h"
#include "common/thread_pool.h"
#include "induction/condition_search.h"
#include "induction/metric.h"
#include "pnrule/pnrule.h"
#include "ripper/ripper.h"
#include "synth/sweep.h"

namespace {

using namespace pnr;

const TrainTestPair& SharedData() {
  static const TrainTestPair data =
      MakeNumericPair(NsynParams(3), 20000, 10000, 99);
  return data;
}

// The JSON comparison runs on a much larger set than the microbenches:
// 200k rows clears ThreadPool::kMinRowsPerThread (16384) for 8 workers, so
// the 2- and 8-thread configurations genuinely fan out instead of being
// clamped to threads_effective = 1 (which is what the original 20k-row
// comparison recorded).
const TrainTestPair& CompareData() {
  static const TrainTestPair data =
      MakeNumericPair(NsynParams(3), 200000, 10000, 99);
  return data;
}

CategoryId Target() {
  return SharedData().train.schema().class_attr().FindCategory("C");
}

void BM_TrainPnrule(benchmark::State& state) {
  const TrainTestPair& data = SharedData();
  PnruleLearner learner;
  for (auto _ : state) {
    auto model = learner.Train(data.train, Target());
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.train.num_rows()));
}
BENCHMARK(BM_TrainPnrule)->Unit(benchmark::kMillisecond);

void BM_TrainRipper(benchmark::State& state) {
  const TrainTestPair& data = SharedData();
  RipperLearner learner;
  for (auto _ : state) {
    auto model = learner.Train(data.train, Target());
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.train.num_rows()));
}
BENCHMARK(BM_TrainRipper)->Unit(benchmark::kMillisecond);

void BM_TrainC45Rules(benchmark::State& state) {
  const TrainTestPair& data = SharedData();
  C45RulesLearner learner;
  for (auto _ : state) {
    auto model = learner.Train(data.train, Target());
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.train.num_rows()));
}
BENCHMARK(BM_TrainC45Rules)->Unit(benchmark::kMillisecond);

void BM_ClassifyPnrule(benchmark::State& state) {
  const TrainTestPair& data = SharedData();
  PnruleLearner learner;
  auto model = learner.Train(data.train, Target());
  for (auto _ : state) {
    double total = 0.0;
    for (RowId row = 0; row < data.test.num_rows(); ++row) {
      total += model->Score(data.test, row);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(data.test.num_rows()));
}
BENCHMARK(BM_ClassifyPnrule)->Unit(benchmark::kMillisecond);

// Scorer/options shared by every condition-search benchmark below.
struct SearchFixture {
  const TrainTestPair& data;
  RowSubset rows;
  CategoryId target;
  std::shared_ptr<RuleMetric> metric = MakeRuleMetric(RuleMetricKind::kZNumber);
  ClassDistribution dist;
  ConditionSearchOptions options;
  ConditionScorer scorer;

  explicit SearchFixture(bool enable_ranges,
                         const TrainTestPair& which = SharedData())
      : data(which),
        rows(data.train.AllRows()),
        target(data.train.schema().class_attr().FindCategory("C")) {
    dist.positives = data.train.ClassWeight(rows, target);
    dist.negatives = data.train.TotalWeight(rows) - dist.positives;
    options.enable_range_conditions = enable_ranges;
    scorer = [this](const RuleStats& stats) {
      return metric->Evaluate(stats, dist);
    };
  }
};

void ConditionSearchBody(benchmark::State& state, bool enable_ranges) {
  SearchFixture fx(enable_ranges);
  for (auto _ : state) {
    auto best =
        FindBestCondition(fx.data.train, fx.rows, fx.target, fx.scorer,
                          fx.options);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(fx.rows.size()));
}

void BM_ConditionSearchWithRanges(benchmark::State& state) {
  ConditionSearchBody(state, true);
}
BENCHMARK(BM_ConditionSearchWithRanges)->Unit(benchmark::kMillisecond);

void BM_ConditionSearchOneSided(benchmark::State& state) {
  ConditionSearchBody(state, false);
}
BENCHMARK(BM_ConditionSearchOneSided)->Unit(benchmark::kMillisecond);

// Persistent engine: the sorted-column cache is warm after the first call,
// so steady-state cost is the prefix-sum scans only. Arg = thread count.
void BM_ConditionSearchEngine(benchmark::State& state) {
  SearchFixture fx(/*enable_ranges=*/true);
  ConditionSearchEngine engine(fx.data.train,
                               static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto best = engine.FindBest(fx.rows, fx.target, fx.scorer, fx.options);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(fx.rows.size()));
}
BENCHMARK(BM_ConditionSearchEngine)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Serial-vs-engine comparison written as JSON (satellite: perf evidence).

// Best-of-N process-CPU time per call. CPU time is far less noisy than
// wall-clock on shared builders, and the minimum over N runs is the stable
// "cost when nothing else interferes" statistic (same scheme as
// bench/batch_predict.cc and bench/ingest.cc).
double MillisPerCall(const std::function<void()>& call, int iterations) {
  call();  // warm-up (also warms the engine's sorted-column cache)
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < iterations; ++i) {
    const std::clock_t start = std::clock();
    call();
    const std::clock_t stop = std::clock();
    const double ms =
        1000.0 * static_cast<double>(stop - start) / CLOCKS_PER_SEC;
    if (ms < best) best = ms;
  }
  return best;
}

int WriteConditionSearchComparison(const char* path) {
  const int iterations = [] {
    const char* s = std::getenv("PNR_BENCH_COMPARE_ITERS");
    const int n = s != nullptr ? std::atoi(s) : 0;
    return n > 0 ? n : 20;
  }();

  SearchFixture fx(/*enable_ranges=*/true, CompareData());
  const CategoryId target = fx.target;

  // Baseline: the transient search, which re-sorts every numeric column on
  // every call (the pre-engine behaviour all learners had).
  const double serial_ms = MillisPerCall(
      [&] {
        auto best = FindBestCondition(fx.data.train, fx.rows, target,
                                      fx.scorer, fx.options);
        benchmark::DoNotOptimize(best);
      },
      iterations);
  const auto reference =
      FindBestCondition(fx.data.train, fx.rows, target, fx.scorer, fx.options);

  std::string json = "{\n";
  json += "  \"benchmark\": \"condition_search\",\n";
  json += "  \"dataset\": {\"rows\": " +
          std::to_string(fx.data.train.num_rows()) + ", \"attributes\": " +
          std::to_string(fx.data.train.schema().num_attributes()) + "},\n";
  json += "  \"iterations\": " + std::to_string(iterations) + ",\n";
  json += "  \"timing\": \"best_of_n_process_cpu_ms\",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"min_rows_per_thread\": " +
          std::to_string(ThreadPool::kMinRowsPerThread) + ",\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", serial_ms);
  json += "  \"transient_search_ms_per_call\": " + std::string(buf) + ",\n";
  json += "  \"engine\": [\n";

  bool deterministic = true;
  double best_speedup = 0.0;
  const size_t thread_counts[] = {1, 2, 8};
  for (size_t t = 0; t < 3; ++t) {
    const size_t threads = thread_counts[t];
    ConditionSearchEngine engine(fx.data.train, threads);
    // Record what the configuration actually ran with: the resolved worker
    // count (0 = hardware threads) and the effective count after the
    // min-rows-per-thread clamp that gates the parallel scan.
    const size_t threads_resolved = engine.num_threads();
    const size_t threads_effective =
        ThreadPool::ClampThreadsForRows(threads, fx.rows.size());
    const double ms = MillisPerCall(
        [&] {
          auto best = engine.FindBest(fx.rows, target, fx.scorer, fx.options);
          benchmark::DoNotOptimize(best);
        },
        iterations);
    const auto got = engine.FindBest(fx.rows, target, fx.scorer, fx.options);
    const bool same =
        got.has_value() == reference.has_value() &&
        (!got.has_value() ||
         (!CandidateBetter(*got, *reference) &&
          !CandidateBetter(*reference, *got) &&
          got->value == reference->value));
    deterministic = deterministic && same;
    const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
    if (speedup > best_speedup) best_speedup = speedup;
    std::snprintf(buf, sizeof(buf), "%.4f", ms);
    json += "    {\"threads_requested\": " + std::to_string(threads) +
            ", \"threads_resolved\": " + std::to_string(threads_resolved) +
            ", \"threads_effective\": " + std::to_string(threads_effective) +
            ", \"ms_per_call\": " + std::string(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", speedup);
    json += ", \"speedup_vs_transient\": " + std::string(buf) +
            ", \"matches_serial_result\": " + (same ? "true" : "false") +
            "}";
    json += t + 1 < 3 ? ",\n" : "\n";
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf), "%.2f", best_speedup);
  json += "  \"best_speedup\": " + std::string(buf) + ",\n";
  json += std::string("  \"deterministic\": ") +
          (deterministic ? "true" : "false") + "\n";
  json += "}\n";

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s (best speedup %.2fx, deterministic=%s)\n", path,
              best_speedup, deterministic ? "true" : "false");
  return deterministic ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Opt-in JSON comparison: set PNR_BENCH_JSON=<path> (kept out of the
  // default run so the ctest smoke registration stays fast).
  const char* json_path = std::getenv("PNR_BENCH_JSON");
  if (json_path != nullptr) return WriteConditionSearchComparison(json_path);
  return 0;
}
