// Load generator for the sharded serving fleet: measures end-to-end
// latency (p50/p99) and aggregate row throughput across --shards 1/2/4/8
// at 64 pipelined keep-alive connections, plus the single-connection
// batching case (the PR 6 regression) and a compact-binary-protocol run,
// against an in-process fleet scoring a trained syngen model.
//
// Every response is checked bit-for-bit (memcmp on the raw doubles)
// against offline ScoreBatch of the same rows; the JSON writer
// (PNR_BENCH_JSON=<path>) refuses to write — and the binary exits
// nonzero — if any served score ever differed, so the committed numbers
// double as an equivalence proof.
//
// Requests carry one row each (the adversarial shape for a scoring
// service: maximal per-request overhead). Pipelined runs keep `depth`
// requests in flight per connection, sent as one write per burst — the
// shape the reactor's end-of-round batch flush is built for. The syngen
// schema uses a 500-value categorical vocabulary — the high-cardinality
// shape of production fraud/intrusion features — which makes the
// per-ScoreBatch-call setup cost visible: that setup is what
// micro-batching amortizes.
//
// The box's core count is recorded in the JSON (`cores`): shard scaling
// is only meaningful relative to the parallelism the box actually has.
//
// Flags: --quick (short runs) | --seconds=<f> | --seed=<n>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/net.h"
#include "common/string_util.h"
#include "serve/binary.h"
#include "serve/json.h"
#include "serve/server.h"
#include "synth/sweep.h"

namespace {

using namespace pnr;

constexpr double kPr4BaselineRowsPerS = 29379;  // 64 conns, thread pool

struct LoadSpec {
  const char* protocol = "json";  // "json" | "binary"
  size_t shards = 1;
  size_t connections = 1;
  size_t depth = 1;  // pipelined requests in flight per connection
  bool batching = true;
};

struct LoadResult {
  LoadSpec spec;
  size_t requests = 0;
  double seconds = 0;
  double rows_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
  double mean_batch_rows = 0;
  bool scores_identical = true;
};

double Percentile(std::vector<uint64_t>* latencies, double q) {
  if (latencies->empty()) return 0;
  const size_t k = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  std::nth_element(latencies->begin(), latencies->begin() + k,
                   latencies->end());
  return static_cast<double>((*latencies)[k]);
}

// One-row predict body for `row` of `data`, numerics rendered %.17g so the
// server recovers the exact doubles.
std::string RowBody(const Dataset& data, RowId row) {
  const Schema& schema = data.schema();
  std::string body = "{\"model\":\"m\",\"rows\":[{";
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    if (a > 0) body += ',';
    AppendJsonString(&body, schema.attribute(attr).name());
    body += ':';
    if (schema.attribute(attr).is_numeric()) {
      AppendJsonNumber(&body, data.numeric(row, attr));
    } else {
      AppendJsonString(&body, schema.attribute(attr).CategoryName(
                                  data.categorical(row, attr)));
    }
  }
  body += "}]}";
  return body;
}

// Full pipelinable HTTP request frame for one row.
std::string JsonFrame(const Dataset& data, RowId row) {
  const std::string body = RowBody(data, row);
  std::string frame = "POST /v1/predict HTTP/1.1\r\nHost: bench\r\n";
  frame += "Content-Type: application/json\r\n";
  frame += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  frame += body;
  return frame;
}

// Binary request frame for one row.
std::string BinaryFrame(const Dataset& data, RowId row) {
  std::string payload;
  EncodeBinaryRows(data, row, row + 1, &payload);
  return EncodeBinaryRequest("m", payload);
}

// Checks one served score against the offline reference, bit-for-bit.
bool SameBits(double served, double expected) {
  return std::memcmp(&served, &expected, sizeof(double)) == 0;
}

// One pipelined JSON connection: bursts of `depth` pre-rendered frames in
// a single send, then reads and verifies `depth` in-order responses.
struct JsonConn {
  explicit JsonConn(HttpClient client) : http(std::move(client)) {}
  HttpClient http;
  size_t next_row = 0;
  std::deque<size_t> inflight;
};

// One pipelined binary connection over a raw socket.
struct BinaryConn {
  explicit BinaryConn(UniqueFd socket) : fd(std::move(socket)) {}
  UniqueFd fd;
  std::string inbuf;
  size_t next_row = 0;
  std::deque<size_t> inflight;
};

LoadResult RunLoad(ModelRegistry* registry, const Dataset& test,
                   const std::vector<double>& expected, const LoadSpec& spec,
                   double seconds) {
  ServerConfig config;
  config.port = 0;
  config.num_shards = spec.shards;
  config.max_pipeline_depth = std::max<size_t>(64, 2 * spec.depth);
  config.batcher.enabled = spec.batching;
  PredictionServer server(config, registry);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    std::exit(1);
  }

  // Pre-render the request frames (the generator must not be the
  // bottleneck); each connection walks its own stride of the test set.
  const bool binary = std::strcmp(spec.protocol, "binary") == 0;
  const size_t num_rows = test.num_rows();
  std::vector<std::string> frames(num_rows);
  for (RowId row = 0; row < num_rows; ++row) {
    frames[row] = binary ? BinaryFrame(test, row) : JsonFrame(test, row);
  }

  // A few client threads multiplex the connections: on a small box the
  // client competes with the server for cores, so thread-per-connection
  // on the client side would measure scheduler thrash, not the fleet.
  const size_t num_threads = std::min<size_t>(spec.connections, 4);
  std::atomic<bool> stop{false};
  std::atomic<bool> mismatch{false};
  std::atomic<size_t> total_requests{0};
  std::vector<std::vector<uint64_t>> latencies(num_threads);
  std::vector<std::thread> clients;
  clients.reserve(num_threads);
  const auto bench_start = std::chrono::steady_clock::now();

  for (size_t t = 0; t < num_threads; ++t) {
    const size_t conns_here =
        spec.connections / num_threads +
        (t < spec.connections % num_threads ? 1 : 0);
    clients.emplace_back([&, t, conns_here] {
      size_t sent = 0;
      if (binary) {
        std::vector<BinaryConn> conns;
        for (size_t c = 0; c < conns_here; ++c) {
          auto fd = ConnectLoopback(server.port());
          if (!fd.ok()) { mismatch.store(true); return; }
          conns.emplace_back(std::move(fd).value());
          conns.back().next_row = (t * conns_here + c) % num_rows;
        }
        char buf[16384];
        while (!stop.load(std::memory_order_relaxed)) {
          for (BinaryConn& conn : conns) {
            std::string burst;
            for (size_t i = 0; i < spec.depth; ++i) {
              burst += frames[conn.next_row];
              conn.inflight.push_back(conn.next_row);
              conn.next_row = (conn.next_row + spec.connections) % num_rows;
            }
            const auto start = std::chrono::steady_clock::now();
            if (!SendAll(conn.fd.get(), burst).ok()) {
              mismatch.store(true);
              return;
            }
            while (!conn.inflight.empty()) {
              BinaryResponse response;
              size_t consumed = 0;
              const Status parsed =
                  ParseBinaryResponse(conn.inbuf, &response, &consumed);
              if (!parsed.ok()) { mismatch.store(true); return; }
              if (consumed == 0) {
                auto n = RecvSome(conn.fd.get(), buf, sizeof(buf), 30000);
                if (!n.ok() || *n == 0) { mismatch.store(true); return; }
                conn.inbuf.append(buf, *n);
                continue;
              }
              conn.inbuf.erase(0, consumed);
              const size_t row = conn.inflight.front();
              conn.inflight.pop_front();
              if (response.status != BinaryStatus::kOk ||
                  response.scores.size() != 1 ||
                  !SameBits(response.scores[0], expected[row])) {
                mismatch.store(true);
                return;
              }
              latencies[t].push_back(static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count()));
              ++sent;
            }
          }
        }
      } else {
        std::vector<JsonConn> conns;
        for (size_t c = 0; c < conns_here; ++c) {
          auto connect = HttpClient::Connect(server.port());
          if (!connect.ok()) { mismatch.store(true); return; }
          conns.emplace_back(std::move(connect).value());
          conns.back().next_row = (t * conns_here + c) % num_rows;
        }
        while (!stop.load(std::memory_order_relaxed)) {
          for (JsonConn& conn : conns) {
            std::string burst;
            for (size_t i = 0; i < spec.depth; ++i) {
              burst += frames[conn.next_row];
              conn.inflight.push_back(conn.next_row);
              conn.next_row = (conn.next_row + spec.connections) % num_rows;
            }
            const auto start = std::chrono::steady_clock::now();
            if (!conn.http.SendRaw(burst).ok()) {
              mismatch.store(true);
              return;
            }
            while (!conn.inflight.empty()) {
              auto response = conn.http.ReadResponse();
              const size_t row = conn.inflight.front();
              conn.inflight.pop_front();
              if (!response.ok() || response->status != 200) {
                mismatch.store(true);
                return;
              }
              auto doc = ParseJson(response->body);
              const JsonValue* scores =
                  doc.ok() ? doc->Find("scores") : nullptr;
              if (scores == nullptr || scores->array.size() != 1 ||
                  !SameBits(scores->array[0].number_value, expected[row])) {
                mismatch.store(true);
                return;
              }
              latencies[t].push_back(static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count()));
              ++sent;
            }
          }
        }
      }
      total_requests.fetch_add(sent);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& client : clients) client.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  const MetricsSnapshot totals = server.Totals();
  server.Shutdown();

  LoadResult result;
  result.spec = spec;
  result.requests = total_requests.load();
  result.seconds = elapsed;
  result.rows_per_s = static_cast<double>(result.requests) / elapsed;
  std::vector<uint64_t> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  result.p50_us = Percentile(&all, 0.50);
  result.p99_us = Percentile(&all, 0.99);
  result.mean_batch_rows =
      totals.batches_flushed == 0
          ? 0
          : static_cast<double>(totals.batch_rows.sum) /
                static_cast<double>(totals.batches_flushed);
  result.scores_identical = !mismatch.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  uint64_t seed = 17;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      seconds = 0.25;
    } else if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      ParseDouble(argv[i] + 10, &seconds);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      double value = 17;
      ParseDouble(argv[i] + 7, &value);
      seed = static_cast<uint64_t>(value);
    }
  }

  GeneralModelParams params;
  params.target_fraction = 0.05;
  params.vocab = 500;
  TrainTestPair data = MakeGeneralPair(params, 8000, 2000, seed);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  auto model = PnruleLearner().Train(data.train, target);
  if (!model.ok()) {
    std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::vector<RowId> rows(data.test.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<double> expected(rows.size());
  model->ScoreBatch(data.test, rows.data(), rows.size(), expected.data());

  ModelRegistry registry;
  registry.Install("m", data.train.schema(), std::move(model).value());

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("serve_load: 1-row requests, %.2fs per run, %u core(s)\n\n",
              seconds, cores);
  std::printf("%7s %7s %6s %6s %9s %10s %10s %10s %12s\n", "proto",
              "shards", "conns", "depth", "batching", "p50_us", "p99_us",
              "rows/s", "batch_rows");

  // The matrix: the single-connection regression pair (batching on must
  // not lose to off — the PR 6 fix), the shard sweep at 64 pipelined
  // connections over JSON, and the binary protocol at one and four shards.
  const LoadSpec kSpecs[] = {
      {"json", 1, 1, 1, false},
      {"json", 1, 1, 1, true},
      {"json", 1, 64, 16, true},
      {"json", 2, 64, 16, true},
      {"json", 4, 64, 16, true},
      {"json", 8, 64, 16, true},
      {"binary", 1, 64, 32, true},
      {"binary", 4, 64, 32, true},
  };
  std::vector<LoadResult> results;
  bool all_identical = true;
  for (const LoadSpec& spec : kSpecs) {
    LoadResult r = RunLoad(&registry, data.test, expected, spec, seconds);
    all_identical = all_identical && r.scores_identical;
    std::printf("%7s %7zu %6zu %6zu %9s %10.0f %10.0f %10.0f %12.1f%s\n",
                r.spec.protocol, r.spec.shards, r.spec.connections,
                r.spec.depth, r.spec.batching ? "on" : "off", r.p50_us,
                r.p99_us, r.rows_per_s, r.mean_batch_rows,
                r.scores_identical ? "" : "  SCORE MISMATCH");
    results.push_back(r);
  }

  auto find = [&](const char* proto, size_t shards, size_t conns,
                  bool batching) -> const LoadResult* {
    for (const LoadResult& r : results) {
      if (std::strcmp(r.spec.protocol, proto) == 0 &&
          r.spec.shards == shards && r.spec.connections == conns &&
          r.spec.batching == batching) {
        return &r;
      }
    }
    return nullptr;
  };
  const LoadResult* one_off = find("json", 1, 1, false);
  const LoadResult* one_on = find("json", 1, 1, true);
  const LoadResult* json1 = find("json", 1, 64, true);
  const LoadResult* json4 = find("json", 4, 64, true);
  const LoadResult* bin4 = find("binary", 4, 64, true);
  auto rate = [](const LoadResult* r) { return r ? r->rows_per_s : 0.0; };
  const double lone_ratio =
      rate(one_off) > 0 ? rate(one_on) / rate(one_off) : 0;
  const double scaling_1_to_4 =
      rate(json1) > 0 ? rate(json4) / rate(json1) : 0;
  double best_64 = 0;
  for (const LoadResult& r : results) {
    if (r.spec.connections == 64) best_64 = std::max(best_64, r.rows_per_s);
  }
  const double speedup_vs_pr4 = best_64 / kPr4BaselineRowsPerS;
  std::printf(
      "\nsingle-connection batching on/off: %.2fx\n"
      "json shard scaling 1 -> 4: %.2fx (on %u core(s))\n"
      "best 64-connection rows/s: %.0f (json %.0f, binary %.0f) = %.2fx "
      "the PR 4 baseline %.0f\n",
      lone_ratio, scaling_1_to_4, cores, best_64, rate(json4),
      rate(bin4), speedup_vs_pr4, kPr4BaselineRowsPerS);

  if (!all_identical) {
    std::fprintf(stderr,
                 "served scores differed from offline ScoreBatch; "
                 "refusing to write JSON\n");
    return 1;
  }
  const char* json_path = std::getenv("PNR_BENCH_JSON");
  if (json_path != nullptr) {
    FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"serve_load\",\n"
                 "  \"request_shape\": \"1 row, 8 attributes "
                 "(categorical vocab 500)\",\n"
                 "  \"seconds_per_run\": %.2f,\n"
                 "  \"cores\": %u,\n"
                 "  \"server\": {\"transport\": \"sharded epoll reactor\", "
                 "\"pipelining\": true, \"max_batch_rows\": 1024},\n"
                 "  \"runs\": [\n",
                 seconds, cores);
    for (size_t i = 0; i < results.size(); ++i) {
      const LoadResult& r = results[i];
      std::fprintf(
          out,
          "    {\"protocol\": \"%s\", \"shards\": %zu, "
          "\"connections\": %zu, \"pipeline_depth\": %zu, "
          "\"batching\": %s, \"requests\": %zu, \"p50_us\": %.0f, "
          "\"p99_us\": %.0f, \"rows_per_s\": %.0f, "
          "\"mean_batch_rows\": %.1f, \"scores_identical\": true}%s\n",
          r.spec.protocol, r.spec.shards, r.spec.connections, r.spec.depth,
          r.spec.batching ? "true" : "false", r.requests, r.p50_us,
          r.p99_us, r.rows_per_s, r.mean_batch_rows,
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(
        out,
        "  ],\n  \"single_connection_batching_on_over_off\": %.2f,\n"
        "  \"json_shard_scaling_1_to_4\": %.2f,\n"
        "  \"pr4_baseline_rows_per_s\": %.0f,\n"
        "  \"best_64_connection_rows_per_s\": %.0f,\n"
        "  \"speedup_vs_pr4_baseline\": %.2f,\n"
        "  \"bit_identical_to_offline\": true\n}\n",
        lone_ratio, scaling_1_to_4, kPr4BaselineRowsPerS, best_64,
        speedup_vs_pr4);
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
