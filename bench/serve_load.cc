// Load generator for the prediction server: measures end-to-end request
// latency (p50/p99) and row throughput at 1 / 8 / 64 concurrent
// connections, with micro-batching on vs off, against an in-process server
// scoring a trained syngen model.
//
// Every response is checked bit-for-bit against offline ScoreBatch of the
// same rows; the JSON writer (PNR_BENCH_JSON=<path>) refuses to write — and
// the binary exits nonzero — if any served score ever differed, so the
// committed numbers double as an equivalence proof.
//
// Requests carry one row each (the adversarial shape for a scoring
// service: maximal per-request overhead), and the batched runs use
// max_batch_rows = connections, the documented tuning of batch size to
// expected concurrency. The syngen schema uses a 500-value categorical
// vocabulary — the high-cardinality shape of production fraud/intrusion
// features — which makes the per-ScoreBatch-call setup cost (materializing
// the rows as a Dataset over the model schema) visible: that setup is what
// micro-batching amortizes.
//
// Flags: --quick (short runs) | --seconds=<f> | --seed=<n>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "serve/json.h"
#include "serve/server.h"
#include "synth/sweep.h"

namespace {

using namespace pnr;

struct LoadResult {
  size_t connections = 0;
  bool batching = false;
  size_t requests = 0;
  size_t rows = 0;
  double seconds = 0;
  double rows_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
  double mean_batch_rows = 0;
  bool scores_identical = true;
};

double Percentile(std::vector<uint64_t>* latencies, double q) {
  if (latencies->empty()) return 0;
  const size_t k = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  std::nth_element(latencies->begin(), latencies->begin() + k,
                   latencies->end());
  return static_cast<double>((*latencies)[k]);
}

// One-row predict body for `row` of `data`, numerics rendered %.17g so the
// server recovers the exact doubles.
std::string RowBody(const Dataset& data, RowId row) {
  const Schema& schema = data.schema();
  std::string body = "{\"model\":\"m\",\"rows\":[{";
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    if (a > 0) body += ',';
    AppendJsonString(&body, schema.attribute(attr).name());
    body += ':';
    if (schema.attribute(attr).is_numeric()) {
      AppendJsonNumber(&body, data.numeric(row, attr));
    } else {
      AppendJsonString(&body, schema.attribute(attr).CategoryName(
                                  data.categorical(row, attr)));
    }
  }
  body += "}]}";
  return body;
}

LoadResult RunLoad(ModelRegistry* registry, const Dataset& test,
                   const std::vector<double>& expected, size_t connections,
                   bool batching, double seconds) {
  ServerConfig config;
  config.port = 0;
  // Thread-per-connection so every client can have a request in flight —
  // the shape that lets an open batch actually fill.
  config.num_threads = connections;
  config.batcher.enabled = batching;
  config.batcher.max_batch_rows = connections;
  config.batcher.max_delay_us = 1000;
  PredictionServer server(config, registry);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    std::exit(1);
  }

  // Pre-render the request bodies (the generator must not be the
  // bottleneck); each client walks its own stride of the test set.
  const size_t num_bodies = test.num_rows();
  std::vector<std::string> bodies(num_bodies);
  for (RowId row = 0; row < num_bodies; ++row) {
    bodies[row] = RowBody(test, row);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> mismatch{false};
  std::atomic<size_t> total_requests{0};
  std::vector<std::vector<uint64_t>> latencies(connections);
  std::vector<std::thread> clients;
  clients.reserve(connections);
  const auto bench_start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      auto connect = HttpClient::Connect(server.port());
      if (!connect.ok()) {
        mismatch.store(true);
        return;
      }
      HttpClient client = std::move(connect).value();
      size_t row = c;  // stride the test set per client
      size_t sent = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        row = (row + connections) % num_bodies;
        const auto start = std::chrono::steady_clock::now();
        auto response =
            client.Roundtrip("POST", "/v1/predict", bodies[row]);
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (!response.ok() || response->status != 200) {
          mismatch.store(true);
          return;
        }
        auto doc = ParseJson(response->body);
        const JsonValue* scores = doc.ok() ? doc->Find("scores") : nullptr;
        if (scores == nullptr || scores->array.size() != 1 ||
            scores->array[0].number_value != expected[row]) {
          mismatch.store(true);
          return;
        }
        latencies[c].push_back(static_cast<uint64_t>(elapsed));
        ++sent;
      }
      total_requests.fetch_add(sent);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& client : clients) client.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  server.Shutdown();

  LoadResult result;
  result.connections = connections;
  result.batching = batching;
  result.requests = total_requests.load();
  result.rows = result.requests;  // one row per request
  result.seconds = elapsed;
  result.rows_per_s = static_cast<double>(result.rows) / elapsed;
  std::vector<uint64_t> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.p50_us = Percentile(&all, 0.50);
  result.p99_us = Percentile(&all, 0.99);
  const uint64_t flushed = server.metrics().batches_flushed.load();
  result.mean_batch_rows =
      flushed == 0 ? 0
                   : static_cast<double>(
                         server.metrics().batch_rows.sum()) /
                         static_cast<double>(flushed);
  result.scores_identical = !mismatch.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  uint64_t seed = 17;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      seconds = 0.25;
    } else if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      ParseDouble(argv[i] + 10, &seconds);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      double value = 17;
      ParseDouble(argv[i] + 7, &value);
      seed = static_cast<uint64_t>(value);
    }
  }

  GeneralModelParams params;
  params.target_fraction = 0.05;
  params.vocab = 500;
  TrainTestPair data = MakeGeneralPair(params, 8000, 2000, seed);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  auto model = PnruleLearner().Train(data.train, target);
  if (!model.ok()) {
    std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::vector<RowId> rows(data.test.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<double> expected(rows.size());
  model->ScoreBatch(data.test, rows.data(), rows.size(), expected.data());

  ModelRegistry registry;
  registry.Install("m", data.train.schema(), std::move(model).value());

  std::printf("serve_load: 1-row requests, %.2fs per run, "
              "threads = connections, max_batch = connections\n\n",
              seconds);
  std::printf("%5s %9s %10s %10s %10s %12s\n", "conns", "batching",
              "p50_us", "p99_us", "rows/s", "batch_rows");
  std::vector<LoadResult> results;
  bool all_identical = true;
  for (size_t connections : {1, 8, 64}) {
    for (bool batching : {false, true}) {
      LoadResult r = RunLoad(&registry, data.test, expected, connections,
                             batching, seconds);
      all_identical = all_identical && r.scores_identical;
      std::printf("%5zu %9s %10.0f %10.0f %10.0f %12.1f%s\n",
                  r.connections, r.batching ? "on" : "off", r.p50_us,
                  r.p99_us, r.rows_per_s, r.mean_batch_rows,
                  r.scores_identical ? "" : "  SCORE MISMATCH");
      results.push_back(r);
    }
  }

  double speedup_64 = 0;
  for (const LoadResult& r : results) {
    if (r.connections == 64 && r.batching) {
      for (const LoadResult& base : results) {
        if (base.connections == 64 && !base.batching &&
            base.rows_per_s > 0) {
          speedup_64 = r.rows_per_s / base.rows_per_s;
        }
      }
    }
  }
  std::printf("\nbatching speedup at 64 connections: %.2fx\n", speedup_64);

  if (!all_identical) {
    std::fprintf(stderr,
                 "served scores differed from offline ScoreBatch; "
                 "refusing to write JSON\n");
    return 1;
  }
  const char* json_path = std::getenv("PNR_BENCH_JSON");
  if (json_path != nullptr) {
    FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"serve_load\",\n"
                 "  \"request_shape\": \"1 row, 8 attributes "
                 "(categorical vocab 500)\",\n"
                 "  \"seconds_per_run\": %.2f,\n"
                 "  \"server\": {\"threads\": \"= connections\", "
                 "\"max_batch_rows\": \"= connections\", "
                 "\"max_delay_us\": 1000},\n  \"runs\": [\n",
                 seconds);
    for (size_t i = 0; i < results.size(); ++i) {
      const LoadResult& r = results[i];
      std::fprintf(out,
                   "    {\"connections\": %zu, \"batching\": %s, "
                   "\"requests\": %zu, \"p50_us\": %.0f, \"p99_us\": %.0f, "
                   "\"rows_per_s\": %.0f, \"mean_batch_rows\": %.1f, "
                   "\"scores_identical\": true}%s\n",
                   r.connections, r.batching ? "true" : "false", r.requests,
                   r.p50_us, r.p99_us, r.rows_per_s, r.mean_batch_rows,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"batching_speedup_at_64_connections\": %.2f,\n"
                 "  \"bit_identical_to_offline\": true\n}\n",
                 speedup_64);
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
