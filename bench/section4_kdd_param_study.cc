// Reproduces the section-4 parameter studies on the simulated KDD'99 data:
// the four small tables sweeping PNrule's rp (minimum target coverage in
// the P-phase) and rn (lower recall limit in the N-phase), with and without
// restricting P-rules to length 1 (the "r2l.P1" / "probe.P1" variants).
//
// Paper shape to verify:
//   * unrestricted P-rules: rn has little effect at rp=0.95; results are
//     close to RIPPER's;
//   * P-rule length 1 ("very general P-rules") boosts F substantially —
//     probe jumps from ~.80 to ~.88, r2l from ~.15 to ~.23 — because the
//     N-phase gets more collective false positives to learn from;
//   * rp too high overfits late P-rules; rn too low/high trades recall
//     against precision in the documented directions.
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>

#include <cstdio>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "synth/kdd_sim.h"

namespace {

void RunStudy(const pnr::TrainTestPair& data, const std::string& target,
              bool restrict_p_rule_length, bool use_info_gain) {
  using namespace pnr;
  std::printf("--- %s%s ---\n", target.c_str(),
              restrict_p_rule_length ? ".P1 (P-rule length = 1)" : "");
  TablePrinter table({"rp", "rn", "Rec", "Prec", "F", "detail"});
  for (double rp : {0.95, 0.995}) {
    for (double rn : {0.8, 0.9, 0.95, 0.995}) {
      PnruleConfig config;
      config.min_coverage_fraction = rp;
      config.n_recall_lower_limit = rn;
      // The paper ran these with RIPPER's information-gain metric inside
      // its framework; our split-based info-gain formulation is a poor
      // substitute on rare classes (see the ablation bench), so the study
      // uses the Z-number. Pass --info-gain to reproduce the weaker
      // variant.
      if (use_info_gain) config.metric = RuleMetricKind::kInfoGain;
      if (restrict_p_rule_length) config.max_p_rule_length = 1;
      auto result = RunPnruleConfigured(config, data, target);
      if (!result.ok()) {
        std::fprintf(stderr, "%s rp=%.3f rn=%.3f: %s\n", target.c_str(),
                     rp, rn, result.status().ToString().c_str());
        continue;
      }
      std::vector<std::string> row = {FormatDouble(rp, 3),
                                      FormatDouble(rn, 3)};
      AppendMetricsCells(*result, &row);
      row.push_back(result->detail);
      table.AddRow(std::move(row));
    }
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnr;
  const ExperimentScale scale = ScaleFromArgs(argc, argv);
  std::printf("Section 4: PNrule rp x rn parameter study on simulated "
              "KDD'99 (%s)\n\n",
              DescribeScale(scale).c_str());

  KddSimParams params;
  params.train_records = scale.train_records;
  params.test_records = scale.test_records;
  params.seed = scale.seed;
  auto data_or = GenerateKddSim(params);
  if (!data_or.ok()) {
    std::fprintf(stderr, "kdd_sim: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  KddSimData kdd = std::move(data_or).value();
  const TrainTestPair data{std::move(kdd.train), std::move(kdd.test)};

  bool use_info_gain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--info-gain") use_info_gain = true;
  }
  for (const std::string target : {"r2l", "probe"}) {
    RunStudy(data, target, /*restrict_p_rule_length=*/false, use_info_gain);
    RunStudy(data, target, /*restrict_p_rule_length=*/true, use_info_gain);
  }
  std::printf("paper best F: r2l rp=.995,rn=.995 -> .1531; "
              "r2l.P1 rp=.95,rn=.95 -> .2299; "
              "probe rp=.95 -> .8041; probe.P1 rp=.95,rn=.9 -> .8837\n");
  return 0;
}
