// Reproduces Table 2: dataset nsyn5 at the four (tr, nr) corners
// {0.2, 4.0} x {0.2, 4.0}, reporting the stratified variants (C4.5-we,
// RIPPER-we) and PNrule.
//
// Paper shape to verify: the stratified learners hold ~96% recall but lose
// precision catastrophically as widths grow (30% -> 2%); PNrule stays far
// ahead (F .96 at the easy corner, .57 at the hardest).
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>

#include <cstdio>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace pnr;
  const ExperimentScale scale = ScaleFromArgs(argc, argv);
  std::printf("Table 2: nsyn5 corners (%s)\n\n",
              DescribeScale(scale).c_str());

  const std::vector<std::string> variants = {"Cte", "Re", "P"};
  TablePrinter table({"tr", "nr", "M", "Rec", "Prec", "F"});
  uint64_t salt = 100;
  for (double tr : {0.2, 4.0}) {
    for (double nr : {0.2, 4.0}) {
      NumericModelParams params = NsynParams(5);
      params.tr = tr;
      params.nr = nr;
      const TrainTestPair data = MakeNumericPair(
          params, scale.train_records, scale.test_records,
          scale.seed + ++salt);
      for (const std::string& variant : variants) {
        auto result = RunVariant(variant, data, "C", scale.seed);
        if (!result.ok()) {
          std::fprintf(stderr, "tr=%.1f nr=%.1f %s: %s\n", tr, nr,
                       variant.c_str(),
                       result.status().ToString().c_str());
          return 1;
        }
        std::vector<std::string> row = {FormatDouble(tr, 1),
                                        FormatDouble(nr, 1),
                                        result->variant};
        AppendMetricsCells(*result, &row);
        table.AddRow(std::move(row));
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper F: (0.2,0.2) Cte=.4479 Re=.4532 P=.9607 | "
              "(0.2,4.0) Cte=.4654 Re=.4673 P=.7294 | "
              "(4.0,0.2) Cte=.0499 Re=.0507 P=.9493 | "
              "(4.0,4.0) Cte=.0469 Re=.0413 P=.5710\n");
  return 0;
}
