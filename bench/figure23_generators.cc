// Reproduces Figures 2 and 3 — the paper's dataset-description figures —
// empirically: generates samples from the categorical model (Figure 2) and
// the syngen model (Figure 3) and renders per-class distributions over the
// distinguishing attributes as ASCII histograms, so the signature structure
// (disjoint peaks / word blocks) is visible exactly as in the paper's
// plots.
//
// Flags: --seed=<n>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "synth/categorical_model.h"
#include "synth/general_model.h"

namespace {

using namespace pnr;

// Renders one row of a log-ish scaled histogram.
std::string Bar(size_t count, size_t max_count) {
  if (count == 0 || max_count == 0) return "";
  const double unit = 40.0 / static_cast<double>(max_count);
  const size_t width = std::max<size_t>(
      1, static_cast<size_t>(unit * static_cast<double>(count)));
  return std::string(width, '#');
}

void NumericHistogram(const Dataset& dataset, AttrIndex attr,
                      const std::vector<std::pair<std::string, CategoryId>>&
                          classes,
                      int bins) {
  std::printf("attribute %s\n",
              dataset.schema().attribute(attr).name().c_str());
  for (const auto& [label, cls] : classes) {
    std::vector<size_t> histogram(static_cast<size_t>(bins), 0);
    for (RowId r = 0; r < dataset.num_rows(); ++r) {
      if (dataset.label(r) != cls) continue;
      const double v = dataset.numeric(r, attr);
      const int bin = std::clamp(
          static_cast<int>(v / kNumericDomain * bins), 0, bins - 1);
      ++histogram[static_cast<size_t>(bin)];
    }
    const size_t max_count =
        *std::max_element(histogram.begin(), histogram.end());
    std::printf("  class %s:\n", label.c_str());
    for (int b = 0; b < bins; ++b) {
      const size_t count = histogram[static_cast<size_t>(b)];
      if (count == 0) continue;
      std::printf("    [%5.1f, %5.1f) %6zu %s\n",
                  kNumericDomain * b / bins, kNumericDomain * (b + 1) / bins,
                  count, Bar(count, max_count).c_str());
    }
  }
  std::printf("\n");
}

void CategoricalTopValues(const Dataset& dataset, AttrIndex attr,
                          const std::vector<std::pair<std::string,
                                                      CategoryId>>& classes,
                          size_t top) {
  const Attribute& attribute = dataset.schema().attribute(attr);
  std::printf("attribute %s (vocab %zu)\n", attribute.name().c_str(),
              attribute.num_categories());
  for (const auto& [label, cls] : classes) {
    std::vector<size_t> counts(attribute.num_categories(), 0);
    size_t total = 0;
    for (RowId r = 0; r < dataset.num_rows(); ++r) {
      if (dataset.label(r) != cls) continue;
      ++counts[static_cast<size_t>(dataset.categorical(r, attr))];
      ++total;
    }
    std::vector<size_t> order(counts.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return counts[a] > counts[b];
    });
    std::printf("  class %s (n=%zu): top values ", label.c_str(), total);
    for (size_t i = 0; i < std::min(top, order.size()); ++i) {
      if (counts[order[i]] == 0) break;
      std::printf("%s:%zu ", attribute.CategoryName(
                                 static_cast<CategoryId>(order[i]))
                                 .c_str(),
                  counts[order[i]]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const ExperimentScale scale = ScaleFromArgs(argc, argv);
  Rng rng(scale.seed);

  std::printf("=== Figure 2: categorical model (coa1 parameters) ===\n");
  std::printf("Each target subclass owns a pair of attributes; a signature\n"
              "is a conjunction of word blocks on the pair. Non-target\n"
              "records are uniform over the vocabulary.\n\n");
  const CategoricalModelParams coa = CoaParams("coa1");
  const Dataset cat = GenerateCategoricalDataset(coa, 60000, &rng);
  {
    const CategoryId c = cat.schema().class_attr().FindCategory("C");
    const CategoryId nc = cat.schema().class_attr().FindCategory("NC");
    const std::vector<std::pair<std::string, CategoryId>> classes = {
        {"C", c}, {"NC", nc}};
    CategoricalTopValues(cat, 0, classes, 8);  // ct0a: target's pair
    CategoricalTopValues(cat, 2, classes, 8);  // cn0a: non-target's pair
  }

  std::printf("=== Figure 3: syngen (tr = nr = 0.2) ===\n");
  std::printf("n0/n1 carry C1 and NC1 conjunctive peaks; n2/n3 carry the\n"
              "disjunctive C2 / NC2 peaks; c0..c3 carry the categorical\n"
              "C3 / NC3 signatures.\n\n");
  GeneralModelParams params;
  const Dataset gen = GenerateGeneralDataset(params, 120000, &rng);
  {
    const CategoryId c = gen.schema().class_attr().FindCategory("C");
    const CategoryId nc = gen.schema().class_attr().FindCategory("NC");
    const std::vector<std::pair<std::string, CategoryId>> classes = {
        {"C", c}, {"NC", nc}};
    for (AttrIndex attr = 0; attr < 4; ++attr) {
      NumericHistogram(gen, attr, classes, 25);
    }
    CategoricalTopValues(gen, 4, classes, 6);  // c0: C3's pair
    CategoricalTopValues(gen, 6, classes, 6);  // c2: NC3's pair
  }
  return 0;
}
