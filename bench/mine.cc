// CBA-vs-PNrule-vs-RIPPER/C4.5 at extreme imbalance: the syngen generator
// at 1% / 0.3% / 0.1% target prevalence, recall/precision/F per method,
// plus the miner's throughput and rescue statistics (DESIGN.md §16).
//
// The interesting comparison is the shape: database-coverage-selected CARs
// with a per-class support floor stay competitive on recall as the class
// rarifies (the floor is the point), while their precision trails PNrule's
// two-phase refinement.
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>
// Env:   PNR_BENCH_JSON=<path>  also write the machine-readable report

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "assoc/cba.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "harness/variants.h"

int main(int argc, char** argv) {
  using namespace pnr;
  const ExperimentScale scale = ScaleFromArgsWithDefault(argc, argv, 0.4);
  std::printf("CBA vs PNrule vs RIPPER/C4.5 at extreme imbalance (%s)\n\n",
              DescribeScale(scale).c_str());

  const std::vector<std::string> variants = {"C", "R", "P"};
  TablePrinter table({"tc%", "M", "Rec", "Prec", "F", "train-s"});
  std::string json = "{\n  \"bench\": \"mine\",\n  \"rows\": [\n";
  bool first_row = true;
  uint64_t salt = 0;

  for (double prevalence : {0.01, 0.003, 0.001}) {
    GeneralModelParams params;
    params.target_fraction = prevalence;
    const TrainTestPair data = MakeGeneralPair(
        params, scale.train_records, scale.test_records,
        scale.seed + 700 + ++salt);
    const CategoryId target =
        data.train.schema().class_attr().FindCategory("C");
    if (target == kInvalidCategory) {
      std::fprintf(stderr, "syngen pair has no class 'C'\n");
      return 1;
    }

    auto emit = [&](const char* method, const BinaryMetrics& metrics,
                    double seconds) {
      table.AddRow({FormatPercent(prevalence, 2), method,
                    FormatDouble(metrics.recall, 4),
                    FormatDouble(metrics.precision, 4),
                    FormatDouble(metrics.f_measure, 4),
                    FormatDouble(seconds, 2)});
      if (!first_row) json += ",\n";
      first_row = false;
      json += "    {\"prevalence\": " + FormatDouble(prevalence, 4) +
              ", \"method\": \"" + method +
              "\", \"recall\": " + FormatDouble(metrics.recall, 6) +
              ", \"precision\": " + FormatDouble(metrics.precision, 6) +
              ", \"f\": " + FormatDouble(metrics.f_measure, 6) +
              ", \"train_seconds\": " + FormatDouble(seconds, 3) + "}";
    };

    for (const std::string& variant : variants) {
      auto result = RunVariant(variant, data, "C", scale.seed);
      if (!result.ok()) {
        std::fprintf(stderr, "prevalence=%.4f %s: %s\n", prevalence,
                     variant.c_str(), result.status().ToString().c_str());
        return 1;
      }
      emit(result->variant.c_str(), result->metrics, result->train_seconds);
    }

    // CBA twice: with the per-class rescue floor (the tentpole feature)
    // and without it — the global 1% floor alone exceeds the prevalence at
    // the two rarest levels, so the delta isolates the rescue's value.
    RowSubset rows(data.train.num_rows());
    std::iota(rows.begin(), rows.end(), RowId{0});
    for (const bool rescue : {true, false}) {
      AssocMineOptions options;
      options.min_support = 0.05;
      options.per_class_min_support = rescue ? 0.05 : 0.0;
      options.min_confidence = 0.5;
      options.max_len = 3;
      options.discretize.max_bins = 16;
      options.discretize.candidate_bins = 64;
      options.num_threads = 0;  // all hardware threads; bytes invariant
      Timer timer;
      auto mined = MineCba(data.train, rows, target, options);
      const double mine_seconds = timer.ElapsedSeconds();
      if (!mined.ok()) {
        std::fprintf(stderr, "prevalence=%.4f CBA: %s\n", prevalence,
                     mined.status().ToString().c_str());
        return 1;
      }
      const Confusion confusion =
          EvaluateClassifier(mined->model, data.test, target);
      emit(rescue ? "CBA" : "CBA0", Metrics(confusion), mine_seconds);
      std::printf(
          "  tc=%s%% %s: miner %zu frequent (%zu rescued), %zu CARs -> %zu "
          "selected, %.0f rows/s\n",
          FormatPercent(prevalence, 2).c_str(), rescue ? "CBA " : "CBA0",
          mined->stats.frequent_itemsets, mined->stats.itemsets_rescued,
          mined->stats.rules_generated, mined->stats.rules_selected,
          static_cast<double>(data.train.num_rows()) / mine_seconds);
    }
  }

  json += "\n  ]\n}\n";
  std::printf("\n%s\n", table.Render().c_str());

  const char* json_path = std::getenv("PNR_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
