// Reproduces Table 5: the rarity sweep on syngen. Starting from the 0.3%
// target-class datasets, a fraction of the *non-target* records is sampled
// away (ntc-frac), raising the target proportion from 0.3% to 50%.
//
// Paper shape to verify: PNrule's edge over C4.5rules / RIPPER is largest
// when the class is rarest and shrinks as the class becomes prevalent —
// by 13-23% target share the three methods are within noise of each other.
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>
//        --hard (run the tr=4.0, nr=4.0 variant of Table 5's second half)

#include <cstdio>
#include <cstring>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace pnr;
  const ExperimentScale scale = ScaleFromArgsWithDefault(argc, argv, 0.4);
  bool hard = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hard") == 0) hard = true;
  }

  GeneralModelParams params;
  params.tr = hard ? 4.0 : 0.2;
  params.nr = hard ? 4.0 : 0.2;
  std::printf("Table 5: rarity sweep on syngen (tr=%.1f, nr=%.1f) (%s)\n\n",
              params.tr, params.nr, DescribeScale(scale).c_str());

  const TrainTestPair base = MakeGeneralPair(
      params, scale.train_records, scale.test_records, scale.seed + 400);
  const CategoryId target =
      base.train.schema().class_attr().FindCategory("C");

  const std::vector<std::string> variants = {"C", "R", "P"};
  TablePrinter table({"ntc-frac", "tc%", "M", "Rec", "Prec", "F"});
  uint64_t salt = 500;
  for (double fraction : {1.0, 0.5, 0.1, 0.05, 0.02, 0.01, 0.003}) {
    const TrainTestPair data =
        SubsamplePair(base, target, fraction, scale.seed + ++salt);
    const double tc_share =
        static_cast<double>(data.train.CountClass(target)) /
        static_cast<double>(data.train.num_rows());
    for (const std::string& variant : variants) {
      auto result = RunVariant(variant, data, "C", scale.seed);
      if (!result.ok()) {
        std::fprintf(stderr, "frac=%.3f %s: %s\n", fraction,
                     variant.c_str(), result.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> row = {FormatDouble(fraction, 3),
                                      FormatPercent(tc_share, 1),
                                      result->variant};
      AppendMetricsCells(*result, &row);
      table.AddRow(std::move(row));
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper F (tr=nr=0.2): 0.3%%: C=.4038 R=.2717 P=.8988 | "
              "5.7%%: C=.8261 R=.8643 P=.8709 | "
              "50%%: C=.9577 R=.9840 P=.9539\n");
  return 0;
}
