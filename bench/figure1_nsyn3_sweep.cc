// Reproduces Figure 1's result table: the effect of varying tr (target
// peak width) and nr (non-target peak width) on dataset nsyn3.
//
// Paper shape to verify (500k scale):
//   * widening target peaks (tr up) hurts everyone, but PNrule degrades
//     most gracefully (P keeps F >= ~.77 where C/R fall under .5);
//   * widening non-target peaks (nr up) erodes precision for the
//     splintered learners faster than for PNrule;
//   * the stratified variants (Cte, Re) get high recall but tiny precision
//     at every setting.
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>

#include <cstdio>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace pnr;
  const ExperimentScale scale = ScaleFromArgs(argc, argv);
  std::printf("Figure 1 (result table): nsyn3 with tr x nr sweep (%s)\n\n",
              DescribeScale(scale).c_str());

  TablePrinter table({"tr", "nr", "M", "Rec", "Prec", "F"});
  uint64_t salt = 0;
  for (double tr : {0.2, 2.0, 4.0}) {
    for (double nr : {0.2, 2.0, 4.0}) {
      NumericModelParams params = NsynParams(3);
      params.tr = tr;
      params.nr = nr;
      const TrainTestPair data = MakeNumericPair(
          params, scale.train_records, scale.test_records,
          scale.seed + ++salt);
      for (const std::string& variant : StandardVariants()) {
        auto result = RunVariant(variant, data, "C", scale.seed);
        if (!result.ok()) {
          std::fprintf(stderr, "tr=%.1f nr=%.1f %s: %s\n", tr, nr,
                       variant.c_str(),
                       result.status().ToString().c_str());
          return 1;
        }
        std::vector<std::string> row = {FormatDouble(tr, 1),
                                        FormatDouble(nr, 1),
                                        result->variant};
        AppendMetricsCells(*result, &row);
        table.AddRow(std::move(row));
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper F at (tr,nr): (0.2,0.2) C=.9792 R=.7096 P=.9728 | "
              "(0.2,4.0) C=.4586 R=.3714 P=.7978 | "
              "(4.0,0.2) C=.9585 R=.8440 P=.9721 | "
              "(4.0,4.0) C=.5604 R=.1335 P=.7715\n");
  return 0;
}
