// Reproduces Table 6: C4.5rules, RIPPER and the *old* (legacy-mode) PNrule
// on the two rare classes of the simulated KDDCUP'99 data — probe (0.83%
// of training) and r2l (0.23%).
//
// The test split has a shifted class distribution (probe 1.34%, r2l 5.2%)
// and novel test-only attack subclasses, which caps the achievable recall
// exactly as the paper describes (r2l especially).
//
// Paper shape to verify:
//   probe: C F=.7915, R F=.7951, old-PNrule F=.8542 (PNrule ahead);
//   r2l:   C F=.0993, R F=.1512, old-PNrule F=.2252 (everyone low because
//          of the distribution shift; PNrule still clearly best).
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>

#include <cstdio>

#include "harness/experiment.h"
#include "harness/table.h"
#include "synth/kdd_sim.h"

int main(int argc, char** argv) {
  using namespace pnr;
  const ExperimentScale scale = ScaleFromArgs(argc, argv);
  std::printf("Table 6: KDD'99 (simulated) baselines (%s)\n\n",
              DescribeScale(scale).c_str());

  KddSimParams params;
  params.train_records = scale.train_records;
  params.test_records = scale.test_records;
  params.seed = scale.seed;
  auto data_or = GenerateKddSim(params);
  if (!data_or.ok()) {
    std::fprintf(stderr, "kdd_sim: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  KddSimData kdd = std::move(data_or).value();
  const TrainTestPair data{std::move(kdd.train), std::move(kdd.test)};

  const std::vector<std::string> variants = {"C", "R", "Pold", "P", "P1"};
  TablePrinter table({"class", "M", "Rec", "Prec", "F"});
  for (const std::string target : {"probe", "r2l"}) {
    for (const std::string& variant : variants) {
      auto result = RunVariant(variant, data, target, scale.seed);
      if (!result.ok()) {
        std::fprintf(stderr, "%s %s: %s\n", target.c_str(),
                     variant.c_str(), result.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> row = {target, result->variant};
      AppendMetricsCells(*result, &row);
      table.AddRow(std::move(row));
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper: probe F: C=.7915 R=.7951 Pold=.8542 | "
              "r2l F: C=.0993 R=.1512 Pold=.2252\n");
  return 0;
}
