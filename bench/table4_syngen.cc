// Reproduces Table 4: the general mixed dataset syngen at the four
// (tr, nr) corners {0.2, 4.0} x {0.2, 4.0}, comparing C4.5rules,
// RIPPER-we and PNrule (the paper's reported columns).
//
// Paper shape to verify: PNrule dominates at every corner —
// F .8988/.6596/.8530/.5013 against best-competitor .4038/.4085/.4043/.1722.
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>

#include <cstdio>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace pnr;
  const ExperimentScale scale = ScaleFromArgsWithDefault(argc, argv, 0.4);
  std::printf("Table 4: syngen corners (%s)\n\n",
              DescribeScale(scale).c_str());

  const std::vector<std::string> variants = {"C", "Re", "P"};
  TablePrinter table({"tr", "nr", "M", "Rec", "Prec", "F"});
  uint64_t salt = 300;
  for (double tr : {0.2, 4.0}) {
    for (double nr : {0.2, 4.0}) {
      GeneralModelParams params;
      params.tr = tr;
      params.nr = nr;
      const TrainTestPair data = MakeGeneralPair(
          params, scale.train_records, scale.test_records,
          scale.seed + ++salt);
      for (const std::string& variant : variants) {
        auto result = RunVariant(variant, data, "C", scale.seed);
        if (!result.ok()) {
          std::fprintf(stderr, "tr=%.1f nr=%.1f %s: %s\n", tr, nr,
                       variant.c_str(),
                       result.status().ToString().c_str());
          return 1;
        }
        std::vector<std::string> row = {FormatDouble(tr, 1),
                                        FormatDouble(nr, 1),
                                        result->variant};
        AppendMetricsCells(*result, &row);
        table.AddRow(std::move(row));
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper F: (0.2,0.2) C=.4038 Re=.2717 P=.8988 | "
              "(0.2,4.0) C=.4085 Re=.2586 P=.6596 | "
              "(4.0,0.2) C=.4043 Re=.0444 P=.8530 | "
              "(4.0,4.0) C=.1722 Re=.0450 P=.5013\n");
  return 0;
}
