// Ablation study of PNrule's design choices (not a paper table; DESIGN.md
// calls these out as the load-bearing pieces of the method):
//
//   full         — PNrule as shipped (two phases, ScoreMatrix, ranges)
//   no-nphase    — P-rules only (classic sequential covering with relaxed
//                  accuracy): recall holds, precision collapses
//   no-score     — strict P AND NOT-N semantics (N-rules always veto):
//                  N-phase overfitting erases recall
//   no-range     — one-sided numeric conditions only: peak signatures need
//                  two conditions and may be cut off early
//   metric=gini / metric=info-gain — Z-number replaced by other metrics
//
// Run on nsyn3 (numeric peaks) and syngen (mixed).
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>

#include <cstdio>
#include <functional>

#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace pnr;
  const ExperimentScale scale = ScaleFromArgsWithDefault(argc, argv, 0.4);
  std::printf("PNrule ablations (%s)\n\n", DescribeScale(scale).c_str());

  struct Ablation {
    const char* name;
    std::function<void(PnruleConfig*)> apply;
  };
  const std::vector<Ablation> ablations = {
      {"full", [](PnruleConfig*) {}},
      {"no-nphase", [](PnruleConfig* c) { c->max_n_rules = 0; }},
      {"no-score", [](PnruleConfig* c) { c->use_score_matrix = false; }},
      {"no-range",
       [](PnruleConfig* c) { c->enable_range_conditions = false; }},
      {"metric=gini", [](PnruleConfig* c) { c->metric = RuleMetricKind::kGini; }},
      {"metric=info-gain",
       [](PnruleConfig* c) { c->metric = RuleMetricKind::kInfoGain; }},
  };

  TablePrinter table({"dataset", "ablation", "Rec", "Prec", "F"});
  for (const char* dataset : {"nsyn3", "syngen"}) {
    TrainTestPair data =
        dataset == std::string("nsyn3")
            ? MakeNumericPair(NsynParams(3), scale.train_records,
                              scale.test_records, scale.seed + 600)
            : MakeGeneralPair(GeneralModelParams{}, scale.train_records,
                              scale.test_records, scale.seed + 601);
    for (const Ablation& ablation : ablations) {
      PnruleConfig config;
      config.min_coverage_fraction = 0.99;
      config.n_recall_lower_limit = 0.95;
      ablation.apply(&config);
      auto result = RunPnruleConfigured(config, data, "C");
      if (!result.ok()) {
        std::fprintf(stderr, "%s %s: %s\n", dataset, ablation.name,
                     result.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> row = {dataset, ablation.name};
      AppendMetricsCells(*result, &row);
      table.AddRow(std::move(row));
    }
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}
