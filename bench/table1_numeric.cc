// Reproduces Table 1: nsyn1..nsyn6 (numeric-only datasets), comparing
// C4.5rules, C4.5-we (tree), RIPPER, RIPPER-we and PNrule.
//
// Paper shape to verify: all methods are strong on nsyn1/2; as the number
// of non-target subclasses and signatures grows (nsyn3 -> nsyn6, i.e. the
// combinations of non-signature regions grow from 16 to 216), C4.5rules and
// RIPPER collapse while PNrule stays high; the stratified variants trade
// all precision for recall.
//
// Flags: --paper-scale | --scale=<f> | --quick | --seed=<n>

#include <cstdio>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace pnr;
  const ExperimentScale scale = ScaleFromArgs(argc, argv);
  std::printf("Table 1: numeric-only datasets (%s)\n\n",
              DescribeScale(scale).c_str());

  TablePrinter table({"dataset", "M", "Rec", "Prec", "F", "train_s"});
  for (int i = 1; i <= 6; ++i) {
    const NumericModelParams params = NsynParams(i);
    const TrainTestPair data =
        MakeNumericPair(params, scale.train_records, scale.test_records,
                        scale.seed + static_cast<uint64_t>(i));
    for (const std::string& variant : StandardVariants()) {
      auto result = RunVariant(variant, data, "C", scale.seed);
      if (!result.ok()) {
        std::fprintf(stderr, "nsyn%d %s: %s\n", i, variant.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> row = {"nsyn" + std::to_string(i),
                                      result->variant};
      AppendMetricsCells(*result, &row);
      row.push_back(FormatDouble(result->train_seconds, 1));
      table.AddRow(std::move(row));
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("paper (500k scale): nsyn1 F: C=.9845 R=.9796 P=.9892 | "
              "nsyn5 F: C=.1249 R=.3730 P=.9607 | "
              "nsyn6 F: C=.1193 R=.1299 P=.9489\n");
  return 0;
}
