// Ingestion throughput: the serial reference CSV parser vs the
// memory-mapped chunk-parallel engine (data/ingest.h).
//
// Besides the regular google-benchmark output, the binary writes a
// machine-readable comparison to the path in the PNR_BENCH_JSON environment
// variable when set (see BENCH_ingest.json at the repo root). The synthetic
// CSV defaults to 100 MB; PNR_BENCH_MB overrides it, and
// PNR_BENCH_COMPARE_ITERS the number of timed runs per configuration
// (best-of-N process-CPU, default 3). The writer REFUSES to emit JSON and
// exits nonzero unless every engine configuration produced a Dataset
// bitwise-identical to the serial reference — the throughput numbers are
// only meaningful for a parse that is provably the same parse.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "data/ingest.h"

namespace {

using namespace pnr;

// Deterministic synthetic CSV: six numeric columns, two medium-cardinality
// categorical columns, one occasionally-quoted text column, and a rare
// binary class — the shape of the paper's intrusion/fraud workloads.
std::string MakeCsv(size_t target_bytes) {
  std::string text = "f0,f1,f2,f3,f4,f5,dev,site,note,label\n";
  text.reserve(target_bytes + 4096);
  uint64_t state = 0x9E3779B97F4A7C15ull;  // xorshift64
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  size_t row = 0;
  while (text.size() < target_bytes) {
    for (int c = 0; c < 6; ++c) {
      const uint64_t r = next();
      text += std::to_string(static_cast<long long>(r % 100000));
      text += '.';
      text += std::to_string(static_cast<long long>(r % 997));
      text += ',';
    }
    text += "dev" + std::to_string(next() % 64) + ",";
    text += "site" + std::to_string(next() % 512) + ",";
    if (row % 37 == 0) {  // exercise the quoted-field path
      text += "\"note, with \"\"id " + std::to_string(next() % 100) +
              "\"\"\",";
    } else {
      text += "note" + std::to_string(next() % 8) + ",";
    }
    text += (next() % 100 == 0) ? "rare\n" : "common\n";
    ++row;
  }
  return text;
}

// Bitwise dataset comparison: schema (names, types, dictionaries in id
// order), cell bits, labels, weights.
bool DatasetsIdentical(const Dataset& a, const Dataset& b) {
  const Schema& sa = a.schema();
  const Schema& sb = b.schema();
  if (sa.num_attributes() != sb.num_attributes()) return false;
  if (sa.num_classes() != sb.num_classes()) return false;
  for (size_t c = 0; c < sa.num_classes(); ++c) {
    if (sa.class_attr().CategoryName(static_cast<CategoryId>(c)) !=
        sb.class_attr().CategoryName(static_cast<CategoryId>(c))) {
      return false;
    }
  }
  for (size_t i = 0; i < sa.num_attributes(); ++i) {
    const Attribute& attr_a = sa.attribute(static_cast<AttrIndex>(i));
    const Attribute& attr_b = sb.attribute(static_cast<AttrIndex>(i));
    if (attr_a.name() != attr_b.name() || attr_a.type() != attr_b.type() ||
        attr_a.num_categories() != attr_b.num_categories()) {
      return false;
    }
    for (size_t c = 0; c < attr_a.num_categories(); ++c) {
      if (attr_a.CategoryName(static_cast<CategoryId>(c)) !=
          attr_b.CategoryName(static_cast<CategoryId>(c))) {
        return false;
      }
    }
  }
  if (a.num_rows() != b.num_rows()) return false;
  for (RowId r = 0; r < a.num_rows(); ++r) {
    if (a.label(r) != b.label(r)) return false;
    for (size_t i = 0; i < sa.num_attributes(); ++i) {
      const AttrIndex attr = static_cast<AttrIndex>(i);
      if (sa.attribute(attr).is_numeric()) {
        const double va = a.numeric(r, attr);
        const double vb = b.numeric(r, attr);
        if (std::memcmp(&va, &vb, sizeof(double)) != 0) return false;
      } else if (a.categorical(r, attr) != b.categorical(r, attr)) {
        return false;
      }
    }
  }
  return a.weights() == b.weights();
}

const std::string& SmallCsv() {
  static const std::string text = MakeCsv(size_t{2} << 20);  // 2 MB
  return text;
}

void BM_IngestSerial(benchmark::State& state) {
  const std::string& text = SmallCsv();
  for (auto _ : state) {
    auto dataset = IngestCsvSerial(text, {});
    benchmark::DoNotOptimize(dataset);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_IngestSerial)->Unit(benchmark::kMillisecond);

// Arg = requested thread count (chunking left on automatic).
void BM_IngestEngine(benchmark::State& state) {
  const std::string& text = SmallCsv();
  IngestOptions ingest;
  ingest.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto dataset = IngestCsvParallel(text, {}, ingest);
    benchmark::DoNotOptimize(dataset);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_IngestEngine)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Serial-vs-engine comparison written as JSON (perf evidence).

// Best-of-N process-CPU time per call: minimum over N runs, CPU time
// instead of wall-clock (same scheme as bench/batch_predict.cc).
template <typename Fn>
double MillisPerCall(const Fn& call, int iterations) {
  call();  // warm-up
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < iterations; ++i) {
    const std::clock_t start = std::clock();
    call();
    const std::clock_t stop = std::clock();
    const double ms =
        1000.0 * static_cast<double>(stop - start) / CLOCKS_PER_SEC;
    if (ms < best) best = ms;
  }
  return best;
}

std::string Rate(double ms, double amount) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f",
                ms > 0.0 ? amount / (ms / 1000.0) : 0.0);
  return buf;
}

int WriteIngestComparison(const char* path) {
  const int iterations = [] {
    const char* s = std::getenv("PNR_BENCH_COMPARE_ITERS");
    const int n = s != nullptr ? std::atoi(s) : 0;
    return n > 0 ? n : 3;
  }();
  const size_t megabytes = [] {
    const char* s = std::getenv("PNR_BENCH_MB");
    const long n = s != nullptr ? std::atol(s) : 0;
    return n > 0 ? static_cast<size_t>(n) : size_t{100};
  }();

  std::printf("generating %zu MB synthetic CSV...\n", megabytes);
  const std::string text = MakeCsv(megabytes << 20);
  const double mb = static_cast<double>(text.size()) / (1024.0 * 1024.0);

  const double serial_ms =
      MillisPerCall([&] { (void)IngestCsvSerial(text, {}); }, iterations);
  auto reference = IngestCsvSerial(text, {});
  if (!reference.ok()) {
    std::fprintf(stderr, "serial parse failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  const double rows = static_cast<double>(reference.value().num_rows());

  char buf[64];
  std::string json = "{\n";
  json += "  \"benchmark\": \"ingest\",\n";
  json += "  \"input\": {\"bytes\": " + std::to_string(text.size()) +
          ", \"rows\": " + std::to_string(reference.value().num_rows()) +
          ", \"columns\": 10},\n";
  json += "  \"iterations\": " + std::to_string(iterations) + ",\n";
  json += "  \"timing\": \"best_of_n_process_cpu_ms\",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"min_bytes_per_thread\": " +
          std::to_string(ThreadPool::kMinBytesPerThread) + ",\n";
  std::snprintf(buf, sizeof(buf), "%.2f", serial_ms);
  json += "  \"serial_reference\": {\"ms\": " + std::string(buf) +
          ", \"mb_per_s\": " + Rate(serial_ms, mb) +
          ", \"rows_per_s\": " + Rate(serial_ms, rows) + "},\n";
  json += "  \"engine\": [\n";

  bool deterministic = true;
  double best_speedup = 0.0;
  const size_t thread_counts[] = {1, 2, 8};
  for (size_t t = 0; t < 3; ++t) {
    const size_t threads = thread_counts[t];
    IngestOptions ingest;
    ingest.num_threads = threads;
    const size_t effective =
        ThreadPool::ClampThreadsForBytes(threads, text.size());
    const double ms = MillisPerCall(
        [&] { (void)IngestCsvParallel(text, {}, ingest); }, iterations);
    auto got = IngestCsvParallel(text, {}, ingest);
    const bool same =
        got.ok() && DatasetsIdentical(reference.value(), got.value());
    deterministic = deterministic && same;
    const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
    if (speedup > best_speedup) best_speedup = speedup;
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
    json += "    {\"threads_requested\": " + std::to_string(threads) +
            ", \"threads_effective\": " + std::to_string(effective) +
            ", \"ms\": " + std::string(buf) +
            ", \"mb_per_s\": " + Rate(ms, mb) +
            ", \"rows_per_s\": " + Rate(ms, rows);
    std::snprintf(buf, sizeof(buf), "%.2f", speedup);
    json += ", \"speedup_vs_serial\": " + std::string(buf) +
            std::string(", \"bitwise_identical\": ") +
            (same ? "true" : "false") + "}";
    json += t + 1 < 3 ? ",\n" : "\n";
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf), "%.2f", best_speedup);
  json += "  \"best_speedup\": " + std::string(buf) + ",\n";
  json += std::string("  \"deterministic\": ") +
          (deterministic ? "true" : "false") + "\n";
  json += "}\n";

  if (!deterministic) {
    std::fprintf(stderr,
                 "REFUSING to write %s: an engine configuration was not "
                 "bitwise-identical to the serial reference\n",
                 path);
    return 1;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s (best speedup %.2fx, deterministic=true)\n", path,
              best_speedup);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Opt-in JSON comparison: set PNR_BENCH_JSON=<path> (kept out of the
  // default run so the ctest smoke registration stays fast).
  const char* json_path = std::getenv("PNR_BENCH_JSON");
  if (json_path != nullptr) return WriteIngestComparison(json_path);
  return 0;
}
