// Entry points for the fuzz targets (fuzz_targets.h), built two ways:
//
//   * PNR_FUZZ_LIBFUZZER (set by -DPNR_FUZZ=ON, clang only): one libFuzzer
//     binary per target; PNR_FUZZ_TARGET selects which. Run with the seed
//     corpus:  ./fuzz_http fuzz/corpus/http -max_total_time=30
//
//   * otherwise (any compiler): the corpus-replay runner ctest invokes —
//     ./fuzz_replay <target> <file-or-dir>... runs every corpus file
//     through the target once. This is what keeps the checked-in corpora
//     (including every regression input from past findings) continuously
//     replayed under the sanitizer matrix without needing clang.

#include <cstdint>
#include <cstdio>

#include "fuzz_targets.h"

#ifdef PNR_FUZZ_LIBFUZZER

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const pnr::fuzz::TargetFn target =
      pnr::fuzz::FindTarget(PNR_FUZZ_TARGET);
  target(data, size);
  return 0;
}

#else  // corpus-replay runner

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/file_io.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <target> <corpus-file-or-dir>...\n", argv0);
  std::fprintf(stderr, "targets: %s\n", pnr::fuzz::TargetNames());
  return 2;
}

// Expands files and (recursively) directories into a sorted file list, so a
// replay failure is reproducible by name and independent of readdir order.
std::vector<std::string> CollectFiles(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const fs::path path(argv[i]);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(path.string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const pnr::fuzz::TargetFn target = pnr::fuzz::FindTarget(argv[1]);
  if (target == nullptr) {
    std::fprintf(stderr, "unknown fuzz target '%s'\n", argv[1]);
    return Usage(argv[0]);
  }
  const std::vector<std::string> files = CollectFiles(argc, argv);
  if (files.empty()) {
    std::fprintf(stderr, "no corpus files found\n");
    return 2;
  }
  for (const std::string& file : files) {
    auto bytes = pnr::ReadFileToString(file);
    if (!bytes.ok()) {
      std::fprintf(stderr, "cannot read corpus file %s: %s\n", file.c_str(),
                   bytes.status().ToString().c_str());
      return 1;
    }
    // An invariant violation aborts inside the target, naming the file last
    // printed here.
    std::fprintf(stderr, "replay %s (%zu bytes)\n", file.c_str(),
                 bytes->size());
    target(reinterpret_cast<const uint8_t*>(bytes->data()), bytes->size());
  }
  std::printf("replayed %zu inputs through '%s' with no findings\n",
              files.size(), argv[1]);
  return 0;
}

#endif  // PNR_FUZZ_LIBFUZZER
