// Structure-aware fuzz targets over every untrusted-input surface.
//
// One function per surface (CSV/ARFF ingest, model_io, schema_io, the HTTP
// request parser, the serve JSON parser, the binary predict protocol, the
// tune config-space parser, the columnar shard-store reader, the stream
// feed parser and checkpoint/drift state).
// Each target consumes an arbitrary
// byte string and asserts the surface's hardening contract:
//
//   * no crash, hang, or sanitizer report on any input;
//   * a rejected input yields an error Status (or parser error state) whose
//     message is non-empty — never a silent empty success;
//   * an accepted input round-trips: reparse of the serialized result is a
//     fixpoint (model/schema/json), serial and parallel parses are
//     bitwise-identical including their error text (ingest), incremental
//     and batch feeding reach the same state (http).
//
// The same functions back two binaries (see fuzz_main.cc): libFuzzer
// entry points in a -DPNR_FUZZ=ON clang build, and the corpus-replay
// runner that ctest executes on every checked-in seed in any build.

#ifndef PNR_FUZZ_FUZZ_TARGETS_H_
#define PNR_FUZZ_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pnr {
namespace fuzz {

/// A fuzz entry point: consumes arbitrary bytes, aborts on any invariant
/// violation, returns normally otherwise.
using TargetFn = void (*)(const uint8_t* data, size_t size);

void FuzzCsv(const uint8_t* data, size_t size);
void FuzzArff(const uint8_t* data, size_t size);
void FuzzModel(const uint8_t* data, size_t size);
void FuzzSchema(const uint8_t* data, size_t size);
void FuzzHttp(const uint8_t* data, size_t size);
void FuzzJson(const uint8_t* data, size_t size);
void FuzzServeBinary(const uint8_t* data, size_t size);
void FuzzTune(const uint8_t* data, size_t size);
void FuzzShard(const uint8_t* data, size_t size);
void FuzzStream(const uint8_t* data, size_t size);
void FuzzMine(const uint8_t* data, size_t size);

/// Looks a target up by its corpus name ("csv", "arff", "model", "schema",
/// "http", "json", "serve_binary", "tune", "shard", "stream", "mine");
/// nullptr when unknown.
TargetFn FindTarget(std::string_view name);

/// Space-separated list of valid target names (for usage messages).
const char* TargetNames();

}  // namespace fuzz
}  // namespace pnr

#endif  // PNR_FUZZ_FUZZ_TARGETS_H_
