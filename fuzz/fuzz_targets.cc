#include "fuzz_targets.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "assoc/cba.h"
#include "assoc/model_io.h"
#include "data/arff.h"
#include "data/csv.h"
#include "data/ingest.h"
#include "data/schema_io.h"
#include "data/shard_store.h"
#include "pnrule/model_io.h"
#include "serve/binary.h"
#include "serve/http.h"
#include "serve/json.h"
#include "stream/engine.h"
#include "tune/config_space.h"

namespace pnr {
namespace fuzz {
namespace {

// Aborting check: both libFuzzer and the replay runner treat abort() as a
// finding, and the message names the violated invariant.
#define FUZZ_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "fuzz invariant violated at %s:%d: %s\n",       \
                   __FILE__, __LINE__, msg);                               \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// Inputs past this size only slow exploration down without reaching new
// grammar states; both modes skip them (libFuzzer additionally uses
// -max_len, but replay must bound itself).
constexpr size_t kMaxInput = 1 << 18;

std::string_view AsText(const uint8_t* data, size_t size) {
  return std::string_view(reinterpret_cast<const char*>(data), size);
}

// Bitwise dataset equality — the fuzz-side mirror of the ingest test's
// ExpectBitwiseEqual, collapsed to a bool.
bool DatasetsBitwiseEqual(const Dataset& a, const Dataset& b) {
  const Schema& sa = a.schema();
  const Schema& sb = b.schema();
  if (sa.num_attributes() != sb.num_attributes()) return false;
  for (size_t i = 0; i < sa.num_attributes(); ++i) {
    const Attribute& attr_a = sa.attribute(static_cast<AttrIndex>(i));
    const Attribute& attr_b = sb.attribute(static_cast<AttrIndex>(i));
    if (attr_a.name() != attr_b.name()) return false;
    if (attr_a.type() != attr_b.type()) return false;
    if (attr_a.num_categories() != attr_b.num_categories()) return false;
    for (size_t c = 0; c < attr_a.num_categories(); ++c) {
      if (attr_a.CategoryName(static_cast<CategoryId>(c)) !=
          attr_b.CategoryName(static_cast<CategoryId>(c))) {
        return false;
      }
    }
  }
  if (sa.num_classes() != sb.num_classes()) return false;
  for (size_t c = 0; c < sa.num_classes(); ++c) {
    if (sa.class_attr().CategoryName(static_cast<CategoryId>(c)) !=
        sb.class_attr().CategoryName(static_cast<CategoryId>(c))) {
      return false;
    }
  }
  if (a.num_rows() != b.num_rows()) return false;
  for (RowId r = 0; r < a.num_rows(); ++r) {
    for (size_t i = 0; i < sa.num_attributes(); ++i) {
      const AttrIndex attr = static_cast<AttrIndex>(i);
      if (sa.attribute(attr).is_numeric()) {
        if (std::bit_cast<uint64_t>(a.numeric(r, attr)) !=
            std::bit_cast<uint64_t>(b.numeric(r, attr))) {
          return false;
        }
      } else if (a.categorical(r, attr) != b.categorical(r, attr)) {
        return false;
      }
    }
    if (a.label(r) != b.label(r)) return false;
  }
  return a.weights() == b.weights();
}

// The fixed schema the model target parses against: models reference
// attributes by name, so a hostile model file exercises unknown-attribute,
// unknown-category and wrong-type paths against these.
Schema ModelHarnessSchema() {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("a"));
  schema.AddAttribute(Attribute::Numeric("b"));
  schema.AddAttribute(
      Attribute::Categorical("color", {"red", "green", "blue"}));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  return schema;
}

// A rejected parse must say *where*: every located error in model/schema
// text names a line; the only unlocated rejection is version skew.
bool ErrorIsLocated(const Status& status) {
  const std::string text = status.ToString();
  return text.find("line") != std::string::npos ||
         text.find("version") != std::string::npos;
}

// Renders a parsed JSON tree back to text, reusing each number's original
// token so render→reparse→render is a byte fixpoint.
void RenderJson(const JsonValue& value, std::string* out) {
  switch (value.type) {
    case JsonValue::Type::kNull:
      *out += "null";
      break;
    case JsonValue::Type::kBool:
      *out += value.bool_value ? "true" : "false";
      break;
    case JsonValue::Type::kNumber:
      *out += value.text;
      break;
    case JsonValue::Type::kString:
      AppendJsonString(out, value.text);
      break;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.array) {
        if (!first) out->push_back(',');
        first = false;
        RenderJson(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, item] : value.object) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(out, key);
        out->push_back(':');
        RenderJson(item, out);
      }
      out->push_back('}');
      break;
    }
  }
}

bool JsonTreesEqual(const JsonValue& a, const JsonValue& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case JsonValue::Type::kNull:
      return true;
    case JsonValue::Type::kBool:
      return a.bool_value == b.bool_value;
    case JsonValue::Type::kNumber:
      return std::bit_cast<uint64_t>(a.number_value) ==
                 std::bit_cast<uint64_t>(b.number_value) &&
             a.text == b.text;
    case JsonValue::Type::kString:
      return a.text == b.text;
    case JsonValue::Type::kArray: {
      if (a.array.size() != b.array.size()) return false;
      for (size_t i = 0; i < a.array.size(); ++i) {
        if (!JsonTreesEqual(a.array[i], b.array[i])) return false;
      }
      return true;
    }
    case JsonValue::Type::kObject: {
      if (a.object.size() != b.object.size()) return false;
      for (size_t i = 0; i < a.object.size(); ++i) {
        if (a.object[i].first != b.object[i].first) return false;
        if (!JsonTreesEqual(a.object[i].second, b.object[i].second)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace

void FuzzCsv(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return;
  const std::string text(AsText(data, size));
  CsvReadOptions options;
  auto serial = IngestCsvSerial(text, options);
  // Aggressively small chunks push records across chunk seams — the place
  // where the parallel scanner's quote/newline handling can diverge.
  IngestOptions ingest;
  ingest.num_threads = 3;
  ingest.chunk_bytes = 7;
  auto parallel = IngestCsvParallel(text, options, ingest);
  FUZZ_CHECK(serial.ok() == parallel.ok(),
             "serial and parallel CSV parses disagree on acceptance");
  if (serial.ok()) {
    FUZZ_CHECK(DatasetsBitwiseEqual(*serial, *parallel),
               "serial and parallel CSV datasets differ");
  } else {
    FUZZ_CHECK(!serial.status().ToString().empty(),
               "CSV rejection with empty error");
    FUZZ_CHECK(serial.status().ToString() == parallel.status().ToString(),
               "serial and parallel CSV error text differ");
  }
}

void FuzzArff(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return;
  const std::string text(AsText(data, size));
  ArffReadOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = ReadArffFromString(text, serial_options);
  IngestOptions ingest;
  ingest.num_threads = 3;
  ingest.chunk_bytes = 7;
  auto parallel = IngestEngine(ingest).ParseArff(text, ArffReadOptions{});
  FUZZ_CHECK(serial.ok() == parallel.ok(),
             "serial and parallel ARFF parses disagree on acceptance");
  if (serial.ok()) {
    FUZZ_CHECK(DatasetsBitwiseEqual(*serial, *parallel),
               "serial and parallel ARFF datasets differ");
  } else {
    FUZZ_CHECK(!serial.status().ToString().empty(),
               "ARFF rejection with empty error");
    FUZZ_CHECK(serial.status().ToString() == parallel.status().ToString(),
               "serial and parallel ARFF error text differ");
  }
}

void FuzzModel(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return;
  const Schema schema = ModelHarnessSchema();
  const std::string text(AsText(data, size));
  auto model = ParsePnruleModel(text, schema);
  if (!model.ok()) {
    FUZZ_CHECK(ErrorIsLocated(model.status()),
               "model rejection without a location");
    return;
  }
  // Accepted input must reach a serialization fixpoint: what the writer
  // emits for the parsed model reparses to a byte-identical second write.
  const std::string first = SerializePnruleModel(*model, schema);
  auto reparsed = ParsePnruleModel(first, schema);
  FUZZ_CHECK(reparsed.ok(), "serialized model does not reparse");
  FUZZ_CHECK(SerializePnruleModel(*reparsed, schema) == first,
             "model serialize/reparse is not a fixpoint");
}

void FuzzSchema(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return;
  const std::string text(AsText(data, size));
  auto schema = ParseSchema(text);
  if (!schema.ok()) {
    FUZZ_CHECK(ErrorIsLocated(schema.status()),
               "schema rejection without a location");
    return;
  }
  const std::string first = SerializeSchema(*schema);
  auto reparsed = ParseSchema(first);
  FUZZ_CHECK(reparsed.ok(), "serialized schema does not reparse");
  FUZZ_CHECK(SerializeSchema(*reparsed) == first,
             "schema serialize/reparse is not a fixpoint");
}

namespace {

bool RequestsEqual(const HttpRequest& a, const HttpRequest& b) {
  return a.method == b.method && a.target == b.target &&
         a.version == b.version && a.headers == b.headers && a.body == b.body;
}

// Feeds `text` to a parser in `step`-byte slices, draining every completed
// request with Take the way the server's connection loop does. Returns the
// completed requests; the parser is left in its final state.
std::vector<HttpRequest> RunHttpParser(HttpRequestParser* parser,
                                       std::string_view text, size_t step) {
  std::vector<HttpRequest> requests;
  for (size_t offset = 0;
       offset < text.size() &&
       parser->state() != HttpRequestParser::State::kError;
       offset += step) {
    parser->Consume(text.substr(offset, step));
    while (parser->state() == HttpRequestParser::State::kDone) {
      requests.push_back(parser->Take());
    }
  }
  return requests;
}

}  // namespace

void FuzzHttp(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return;
  const std::string_view text = AsText(data, size);
  // Small limits make head/body overflow reachable with fuzz-sized inputs.
  HttpRequestParser::Limits limits;
  limits.max_head_bytes = 1024;
  limits.max_body_bytes = 4096;

  // The server feeds the parser from arbitrarily fragmented socket reads;
  // one whole-buffer write and the byte-at-a-time worst case must complete
  // the same requests and land in the same final state.
  HttpRequestParser batch(limits);
  const std::vector<HttpRequest> batch_requests =
      RunHttpParser(&batch, text, text.size());
  HttpRequestParser incremental(limits);
  const std::vector<HttpRequest> incremental_requests =
      RunHttpParser(&incremental, text, 1);

  FUZZ_CHECK(batch.state() == incremental.state(),
             "batch and incremental HTTP parses reach different states");
  FUZZ_CHECK(batch_requests.size() == incremental_requests.size(),
             "batch and incremental HTTP request counts differ");
  for (size_t i = 0; i < batch_requests.size(); ++i) {
    FUZZ_CHECK(RequestsEqual(batch_requests[i], incremental_requests[i]),
               "batch and incremental HTTP requests differ");
    // A parsed request must never smuggle two body framings.
    size_t content_lengths = 0;
    bool transfer_encoding = false;
    for (const auto& [key, value] : batch_requests[i].headers) {
      std::string lower;
      for (const char c : key) {
        lower.push_back(
            static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
      }
      if (lower == "content-length") ++content_lengths;
      if (lower == "transfer-encoding") transfer_encoding = true;
    }
    FUZZ_CHECK(content_lengths <= 1,
               "accepted request carries duplicate Content-Length");
    FUZZ_CHECK(!(content_lengths == 1 && transfer_encoding),
               "accepted request mixes Content-Length and Transfer-Encoding");
  }
  if (batch.state() == HttpRequestParser::State::kError) {
    FUZZ_CHECK(batch.error_status() == incremental.error_status(),
               "batch and incremental HTTP error codes differ");
    FUZZ_CHECK(batch.error_message() == incremental.error_message(),
               "batch and incremental HTTP error messages differ");
    FUZZ_CHECK(
        batch.error_status() == 400 || batch.error_status() == 413,
        "HTTP parser error status outside the documented {400, 413}");
    FUZZ_CHECK(!batch.error_message().empty(), "HTTP error without message");
  }
}

namespace {

// Drives a BinaryRequestParser over `text` in `step`-sized chunks, Taking
// completed frames; the parser is left in its final state.
std::vector<BinaryRequest> RunBinaryParser(BinaryRequestParser* parser,
                                           std::string_view text,
                                           size_t step) {
  std::vector<BinaryRequest> requests;
  for (size_t offset = 0;
       offset < text.size() &&
       parser->state() != BinaryRequestParser::State::kError;
       offset += step) {
    parser->Consume(text.substr(offset, step));
    while (parser->state() == BinaryRequestParser::State::kDone) {
      requests.push_back(parser->Take());
    }
  }
  return requests;
}

// A fixed mixed-type schema so accepted frames exercise both the raw-f64
// and the length-prefixed-string column decoders.
const Schema& FuzzBinarySchema() {
  static const Schema* schema = [] {
    auto* s = new Schema;
    s->AddAttribute(Attribute::Numeric("x"));
    s->AddAttribute(Attribute::Categorical("color", {"red", "green"}));
    s->GetOrAddClass("neg");
    s->GetOrAddClass("pos");
    return s;
  }();
  return *schema;
}

}  // namespace

void FuzzServeBinary(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return;
  const std::string_view text = AsText(data, size);
  // Small limits make the oversize-length rejections reachable with
  // fuzz-sized inputs.
  BinaryRequestParser::Limits limits;
  limits.max_name_bytes = 64;
  limits.max_payload_bytes = 4096;

  // The shard feeds the parser from arbitrarily fragmented socket reads;
  // one whole-buffer write and the byte-at-a-time worst case must complete
  // the same frames and land in the same final state.
  BinaryRequestParser batch(limits);
  const std::vector<BinaryRequest> batch_requests =
      RunBinaryParser(&batch, text, text.size());
  BinaryRequestParser incremental(limits);
  const std::vector<BinaryRequest> incremental_requests =
      RunBinaryParser(&incremental, text, 1);

  FUZZ_CHECK(batch.state() == incremental.state(),
             "batch and incremental binary parses reach different states");
  FUZZ_CHECK(batch_requests.size() == incremental_requests.size(),
             "batch and incremental binary frame counts differ");
  for (size_t i = 0; i < batch_requests.size(); ++i) {
    FUZZ_CHECK(batch_requests[i].model == incremental_requests[i].model,
               "batch and incremental frame model names differ");
    FUZZ_CHECK(batch_requests[i].payload == incremental_requests[i].payload,
               "batch and incremental frame payloads differ");
    // Every accepted frame's payload goes through the row decoder: hostile
    // row counts and truncated columns must reject with a located error,
    // never crash, over-read, or silently succeed.
    RowBlock rows;
    const Status decoded =
        DecodeBinaryRows(batch_requests[i].payload, FuzzBinarySchema(), &rows);
    if (decoded.ok()) {
      // InitFor sizes both column tables to num_attributes; only the slot
      // matching each attribute's type is populated.
      FUZZ_CHECK(rows.numeric.size() == 2 && rows.categorical.size() == 2,
                 "decoded RowBlock shape disagrees with the schema");
      FUZZ_CHECK(rows.numeric[0].size() == rows.num_rows &&
                     rows.categorical[1].size() == rows.num_rows,
                 "decoded column length disagrees with num_rows");
    } else {
      FUZZ_CHECK(!decoded.ToString().empty(),
                 "binary payload rejection without a message");
    }
  }
  if (batch.state() == BinaryRequestParser::State::kError) {
    FUZZ_CHECK(batch.error_code() == incremental.error_code(),
               "batch and incremental binary error codes differ");
    FUZZ_CHECK(batch.error_message() == incremental.error_message(),
               "batch and incremental binary error messages differ");
    FUZZ_CHECK(!batch.error_message().empty(),
               "binary framing error without message");
    // A framing error renders a response frame the client parser accepts.
    BinaryResponse echoed;
    size_t echoed_consumed = 0;
    const std::string rendered =
        RenderBinaryError(batch.error_code(), batch.error_message());
    const Status reparse =
        ParseBinaryResponse(rendered, &echoed, &echoed_consumed);
    FUZZ_CHECK(reparse.ok() && echoed_consumed == rendered.size(),
               "rendered binary error frame does not reparse");
    FUZZ_CHECK(echoed.status == batch.error_code(),
               "rendered binary error frame changed the status code");
  }

  // The client-side response parser sees whatever a (possibly hostile)
  // server sends; arbitrary bytes must never crash it, and an accepted ok
  // frame is internally consistent.
  BinaryResponse response;
  size_t consumed = 0;
  const Status parsed = ParseBinaryResponse(text, &response, &consumed);
  if (parsed.ok() && consumed > 0 && response.status == BinaryStatus::kOk) {
    FUZZ_CHECK(response.scores.size() == response.predicted.size(),
               "ok response frame with mismatched score/predicted counts");
  }
}

void FuzzJson(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return;
  const std::string text(AsText(data, size));
  auto value = ParseJson(text);
  if (!value.ok()) {
    const std::string error = value.status().ToString();
    FUZZ_CHECK(error.find("offset") != std::string::npos,
               "JSON rejection without an offset location");
    return;
  }
  std::string first;
  RenderJson(*value, &first);
  auto reparsed = ParseJson(first);
  FUZZ_CHECK(reparsed.ok(), "rendered JSON does not reparse");
  FUZZ_CHECK(JsonTreesEqual(*value, *reparsed),
             "JSON parse/render/reparse changed the tree");
}

void FuzzTune(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return;
  const std::string text(AsText(data, size));
  auto space = ConfigSpace::Parse(text);
  if (!space.ok()) {
    // Every rejection locates itself: either a specific line or the
    // file-level "tune config:" prefix for whole-file problems.
    const std::string error = space.status().ToString();
    FUZZ_CHECK(error.find("tune config") != std::string::npos,
               "tune config rejection without a located message");
    // Parsing is deterministic: the same bytes reject identically.
    auto again = ConfigSpace::Parse(text);
    FUZZ_CHECK(!again.ok() && again.status().ToString() == error,
               "tune config rejection is not deterministic");
    return;
  }
  // An accepted grid respects the enumeration cap and its advertised size.
  FUZZ_CHECK(space->size() <= ConfigSpace::kMaxConfigs,
             "accepted tune grid exceeds kMaxConfigs");
  const std::vector<TrialConfig> configs = space->Enumerate(PnruleConfig{});
  FUZZ_CHECK(configs.size() == space->size(),
             "enumerated grid size disagrees with size()");
  for (const TrialConfig& trial : configs) {
    FUZZ_CHECK(!trial.Describe().empty(), "config with empty description");
  }
}

void FuzzShard(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return;
  std::string bytes(AsText(data, size));
  auto reader = ShardStoreReader::OpenBuffer(bytes, "fuzz.pns");
  // Open is deterministic: the same bytes reject with the same message.
  auto again = ShardStoreReader::OpenBuffer(std::move(bytes), "fuzz.pns");
  FUZZ_CHECK(reader.ok() == again.ok(),
             "shard store Open verdict is not deterministic");
  if (!reader.ok()) {
    const std::string error = reader.status().ToString();
    FUZZ_CHECK(error.find("shard_store") != std::string::npos,
               "shard store rejection without a located message");
    FUZZ_CHECK(error == again.status().ToString(),
               "shard store rejection text is not deterministic");
    return;
  }
  // Open only validates the directory; payload corruption (checksums,
  // zonemaps, bit-packed codes) must surface as a located error here.
  auto loaded = (*reader)->LoadDataset();
  if (!loaded.ok()) {
    FUZZ_CHECK(
        loaded.status().ToString().find("shard_store") != std::string::npos,
        "shard store decode rejection without a located message");
    return;
  }
  // Accepted input must reach a serialization fixpoint at the same shard
  // count: serialize(load(x)) reopens, reloads bitwise-equal, and
  // reserializes byte-identical.
  ShardStoreWriteOptions options;
  options.num_shards = (*reader)->num_shards();
  auto first = SerializeShardStore(*loaded, options);
  FUZZ_CHECK(first.ok(), "loaded shard store does not reserialize");
  auto reopened = ShardStoreReader::OpenBuffer(*first, "fixpoint.pns");
  FUZZ_CHECK(reopened.ok(), "reserialized shard store does not reopen");
  auto reloaded = (*reopened)->LoadDataset();
  FUZZ_CHECK(reloaded.ok(), "reserialized shard store does not reload");
  FUZZ_CHECK(DatasetsBitwiseEqual(*loaded, *reloaded),
             "shard store reload changed the dataset");
  auto second = SerializeShardStore(*reloaded, options);
  FUZZ_CHECK(second.ok() && *second == *first,
             "shard store serialize/load is not a fixpoint");
  // The demand-paged view must decode the same cells as the in-RAM load.
  auto paged = MakePagedDataset(*reopened, (*reopened)->column_bytes());
  FUZZ_CHECK(paged.ok(), "reserialized shard store does not page");
  FUZZ_CHECK(DatasetsBitwiseEqual(*loaded, *paged),
             "paged view differs from the in-RAM load");
}

// -- stream -----------------------------------------------------------------

namespace {

// The fixed schema the stream fuzz modes parse/restore against: one
// numeric and one categorical feature, two classes.
const Schema& StreamFuzzSchema() {
  static const Schema schema = [] {
    Schema s;
    s.AddAttribute(Attribute::Numeric("x"));
    s.AddAttribute(Attribute::Categorical("c", {"a", "b", "c"}));
    s.GetOrAddClass("neg");
    s.GetOrAddClass("pos");
    return s;
  }();
  return schema;
}

// Canonical rendering of everything a FeedParser produced, bit-exact, so
// two parses compare with one string equality.
struct FeedTrace {
  std::string rows;
  std::vector<std::string> errors;
  uint64_t error_count = 0;
  uint64_t lines_seen = 0;
  uint64_t rows_emitted = 0;

  bool operator==(const FeedTrace& other) const {
    return rows == other.rows && errors == other.errors &&
           error_count == other.error_count &&
           lines_seen == other.lines_seen &&
           rows_emitted == other.rows_emitted;
  }
};

void AppendRowTrace(const ParsedRow& row, std::string* out) {
  out->append("r ");
  out->append(std::to_string(row.line));
  for (const double value : row.numeric) {
    out->push_back(' ');
    out->append(std::to_string(std::bit_cast<uint64_t>(value)));
  }
  for (const CategoryId id : row.categorical) {
    out->push_back(' ');
    out->append(std::to_string(id));
  }
  out->push_back(' ');
  out->append(std::to_string(row.label));
  out->push_back('\n');
}

// Parses `text` whole (fragment == 0), in `fragment`-byte pieces, or via
// AppendParallel (fragment == kParallel).
constexpr size_t kParallelFeed = ~size_t{0};

FeedTrace ParseFeed(std::string_view text, size_t fragment) {
  FeedParser parser(&StreamFuzzSchema(), "fuzz");
  FeedTrace trace;
  parser.set_row_fn(
      [&trace](const ParsedRow& row) { AppendRowTrace(row, &trace.rows); });
  if (fragment == kParallelFeed) {
    parser.AppendParallel(text, 3);
  } else if (fragment == 0) {
    parser.Append(text);
  } else {
    for (size_t at = 0; at < text.size(); at += fragment) {
      parser.Append(text.substr(at, std::min(fragment, text.size() - at)));
    }
  }
  parser.Finish();
  trace.errors = parser.errors();
  trace.error_count = parser.error_count();
  trace.lines_seen = parser.lines_seen();
  trace.rows_emitted = parser.rows_emitted();
  return trace;
}

}  // namespace

void FuzzStream(const uint8_t* data, size_t size) {
  if (size == 0 || size > kMaxInput) return;
  // First byte picks the surface; the rest is the input.
  const bool feed_mode = (data[0] & 1) == 0;
  const std::string text(AsText(data + 1, size - 1));

  if (feed_mode) {
    // Feed parser: the same bytes in any fragmentation — including the
    // chunk-parallel catch-up path — must yield bit-identical rows AND
    // identical located error text, and every rejection is located.
    const FeedTrace whole = ParseFeed(text, 0);
    const size_t fragment = 1 + size % 13;
    FUZZ_CHECK(whole == ParseFeed(text, fragment),
               "fragmented feed parse differs from whole parse");
    FUZZ_CHECK(whole == ParseFeed(text, kParallelFeed),
               "parallel feed parse differs from whole parse");
    for (const std::string& error : whole.errors) {
      FUZZ_CHECK(error.compare(0, 10, "feed:fuzz:") == 0,
                 "feed rejection without a located message");
    }
    return;
  }

  // Checkpoint: parse is deterministic; a rejection is located; an
  // accepted checkpoint serializes back byte-identically, and its embedded
  // drift blob either restores to a serialization fixpoint or rejects with
  // a located error.
  auto parsed = ParseStreamCheckpoint(text);
  auto again = ParseStreamCheckpoint(text);
  FUZZ_CHECK(parsed.ok() == again.ok(),
             "checkpoint parse verdict is not deterministic");
  if (!parsed.ok()) {
    const std::string error = parsed.status().ToString();
    FUZZ_CHECK(error.find("stream-checkpoint:") != std::string::npos,
               "checkpoint rejection without a located message");
    FUZZ_CHECK(error == again.status().ToString(),
               "checkpoint rejection text is not deterministic");
    return;
  }
  FUZZ_CHECK(SerializeStreamCheckpoint(*parsed) == text,
             "accepted checkpoint does not serialize back byte-identically");
  DriftDetector detector(&StreamFuzzSchema(), DriftOptions());
  const Status restored = detector.Restore(parsed->drift_blob);
  if (restored.ok()) {
    FUZZ_CHECK(detector.Serialize() == parsed->drift_blob,
               "restored drift state does not serialize back");
  } else {
    FUZZ_CHECK(restored.ToString().find("drift-state:") != std::string::npos,
               "drift blob rejection without a located message");
  }
}

// -- mine -------------------------------------------------------------------

void FuzzMine(const uint8_t* data, size_t size) {
  if (size == 0 || size > kMaxInput) return;
  // First byte picks the surface; the rest is the input.
  const bool parse_mode = (data[0] & 1) == 0;
  const Schema schema = ModelHarnessSchema();

  if (parse_mode) {
    // Assoc model parser: hostile text either rejects with a located error
    // or reaches a serialization fixpoint — the same contract as the
    // PNrule model target.
    const std::string text(AsText(data + 1, size - 1));
    auto model = ParseAssocModel(text, schema);
    if (!model.ok()) {
      FUZZ_CHECK(ErrorIsLocated(model.status()),
                 "assoc model rejection without a location");
      return;
    }
    const std::string first = SerializeAssocModel(*model, schema);
    auto reparsed = ParseAssocModel(first, schema);
    FUZZ_CHECK(reparsed.ok(), "serialized assoc model does not reparse");
    FUZZ_CHECK(SerializeAssocModel(*reparsed, schema) == first,
               "assoc model serialize/reparse is not a fixpoint");
    return;
  }

  // Miner mode: decode the bytes into a small dataset (including NaN/inf
  // cells) and mine it at 1 and 2 threads — the verdicts must agree, an
  // acceptance must be byte-identical and a model-format fixpoint, and a
  // rejection must carry a message.
  Dataset dataset(schema);
  size_t at = 1;
  auto cell = [](uint8_t b) -> double {
    if (b == 255) return std::numeric_limits<double>::quiet_NaN();
    if (b == 254) return std::numeric_limits<double>::infinity();
    if (b == 253) return -std::numeric_limits<double>::infinity();
    return static_cast<double>(b);
  };
  while (at + 4 <= size && dataset.num_rows() < 64) {
    const RowId row = dataset.AddRow();
    dataset.set_numeric(row, 0, cell(data[at]));
    dataset.set_numeric(row, 1, cell(data[at + 1]));
    if (data[at + 2] % 4 != 3) {  // else: leave the categorical cell missing
      dataset.set_categorical(row, 2, data[at + 2] % 3);
    }
    dataset.set_label(row, data[at + 3] % 2);
    at += 4;
  }
  RowSubset rows(dataset.num_rows());
  for (RowId r = 0; r < dataset.num_rows(); ++r) rows[r] = r;

  AssocMineOptions options;
  options.min_support = 0.1;
  options.per_class_min_support = (data[0] & 2) != 0 ? 0.4 : 0.0;
  options.min_confidence = 0.5;
  options.max_len = 2;
  const CategoryId target = 1;  // "pos"

  options.num_threads = 1;
  auto serial = MineCba(dataset, rows, target, options);
  options.num_threads = 2;
  auto parallel = MineCba(dataset, rows, target, options);
  FUZZ_CHECK(serial.ok() == parallel.ok(),
             "serial and parallel mining disagree on acceptance");
  if (!serial.ok()) {
    FUZZ_CHECK(!serial.status().ToString().empty(),
               "mining rejection with empty error");
    FUZZ_CHECK(serial.status().ToString() == parallel.status().ToString(),
               "serial and parallel mining error text differ");
    return;
  }
  const std::string first = SerializeAssocModel(serial->model, schema);
  FUZZ_CHECK(SerializeAssocModel(parallel->model, schema) == first,
             "mined model bytes depend on the thread count");
  auto reparsed = ParseAssocModel(first, schema);
  FUZZ_CHECK(reparsed.ok(), "mined model does not reparse");
  FUZZ_CHECK(SerializeAssocModel(*reparsed, schema) == first,
             "mined model serialize/reparse is not a fixpoint");
}

namespace {

struct Target {
  const char* name;
  TargetFn fn;
};

constexpr Target kTargets[] = {
    {"csv", FuzzCsv},       {"arff", FuzzArff}, {"model", FuzzModel},
    {"schema", FuzzSchema}, {"http", FuzzHttp}, {"json", FuzzJson},
    {"serve_binary", FuzzServeBinary},          {"tune", FuzzTune},
    {"shard", FuzzShard},     {"stream", FuzzStream},
    {"mine", FuzzMine},
};

}  // namespace

TargetFn FindTarget(std::string_view name) {
  for (const Target& target : kTargets) {
    if (name == target.name) return target.fn;
  }
  return nullptr;
}

const char* TargetNames() {
  return "csv arff model schema http json serve_binary tune shard stream "
         "mine";
}

}  // namespace fuzz
}  // namespace pnr
