#include "data/weighting.h"

#include <gtest/gtest.h>

namespace pnr {
namespace {

Dataset RareClassDataset(size_t positives, size_t negatives) {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  const CategoryId neg = schema.GetOrAddClass("neg");
  const CategoryId pos = schema.GetOrAddClass("pos");
  Dataset dataset(std::move(schema));
  for (size_t i = 0; i < positives + negatives; ++i) {
    const RowId r = dataset.AddRow();
    dataset.set_numeric(r, 0, static_cast<double>(i));
    dataset.set_label(r, i < positives ? pos : neg);
  }
  return dataset;
}

TEST(WeightingTest, StratifiedWeightsBalanceClasses) {
  Dataset dataset = RareClassDataset(10, 990);
  const CategoryId pos = dataset.schema().class_attr().FindCategory("pos");
  const auto weights = StratifiedWeights(dataset, pos);
  ASSERT_EQ(weights.size(), dataset.num_rows());
  double pos_weight = 0.0;
  double neg_weight = 0.0;
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    (dataset.label(r) == pos ? pos_weight : neg_weight) += weights[r];
  }
  EXPECT_NEAR(pos_weight, neg_weight, 1e-9);
  EXPECT_DOUBLE_EQ(weights.back(), 1.0);  // negatives keep unit weight
  EXPECT_DOUBLE_EQ(weights.front(), 99.0);
}

TEST(WeightingTest, SplitRowsPartitions) {
  Dataset dataset = RareClassDataset(5, 95);
  Rng rng(3);
  const RowSubset all = dataset.AllRows();
  auto [first, second] = SplitRows(all, 2.0 / 3.0, &rng);
  EXPECT_EQ(first.size() + second.size(), all.size());
  EXPECT_NEAR(static_cast<double>(first.size()), 66.7, 1.0);
  // Partition: no overlap, union == all.
  std::vector<bool> seen(all.size(), false);
  for (RowId r : first) {
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
  for (RowId r : second) {
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(WeightingTest, StratifiedSplitKeepsRareClassOnBothSides) {
  Dataset dataset = RareClassDataset(6, 294);
  const CategoryId pos = dataset.schema().class_attr().FindCategory("pos");
  Rng rng(9);
  auto [grow, prune] =
      StratifiedSplitRows(dataset, dataset.AllRows(), pos, 2.0 / 3.0, &rng);
  size_t grow_pos = 0;
  size_t prune_pos = 0;
  for (RowId r : grow) {
    if (dataset.label(r) == pos) ++grow_pos;
  }
  for (RowId r : prune) {
    if (dataset.label(r) == pos) ++prune_pos;
  }
  EXPECT_EQ(grow_pos + prune_pos, 6u);
  EXPECT_EQ(grow_pos, 4u);  // exactly 2/3 of the positives
  EXPECT_EQ(prune_pos, 2u);
  EXPECT_EQ(grow.size() + prune.size(), 300u);
}

TEST(WeightingTest, SubsampleNonTargetKeepsAllTargets) {
  Dataset dataset = RareClassDataset(20, 2000);
  const CategoryId pos = dataset.schema().class_attr().FindCategory("pos");
  Rng rng(13);
  const Dataset sampled = SubsampleNonTarget(dataset, pos, 0.1, &rng);
  EXPECT_EQ(sampled.CountClass(pos), 20u);
  const size_t negatives = sampled.num_rows() - 20;
  EXPECT_NEAR(static_cast<double>(negatives), 200.0, 45.0);
  // Attribute values are copied faithfully.
  EXPECT_DOUBLE_EQ(sampled.numeric(0, 0), 0.0);
}

TEST(WeightingTest, SubsampleZeroFractionLeavesOnlyTargets) {
  Dataset dataset = RareClassDataset(5, 100);
  const CategoryId pos = dataset.schema().class_attr().FindCategory("pos");
  Rng rng(17);
  const Dataset sampled = SubsampleNonTarget(dataset, pos, 0.0, &rng);
  EXPECT_EQ(sampled.num_rows(), 5u);
}

}  // namespace
}  // namespace pnr
