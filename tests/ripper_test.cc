#include "ripper/ripper.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/weighting.h"
#include "eval/metrics.h"
#include "ripper/grow_prune.h"
#include "synth/sweep.h"
#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeNumericDataset;

TEST(RipperConfigTest, Validation) {
  EXPECT_TRUE(RipperConfig().Validate().ok());
  RipperConfig config;
  config.grow_fraction = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = RipperConfig();
  config.max_prune_error_rate = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = RipperConfig();
  config.max_rules = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = RipperConfig();
  config.mdl_window_bits = -5.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(GrowRuleFoilTest, GrowsToPurityOnSeparableData) {
  // Positives: x0 > 5 AND x1 > 5.
  Rng rng(33);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.NextDouble(0, 10);
    const double b = rng.NextDouble(0, 10);
    rows.push_back({{a, b}, a > 5.0 && b > 5.0});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  const Rule rule = GrowRuleFoil(dataset, dataset.AllRows(), kPos, Rule());
  ASSERT_FALSE(rule.empty());
  EXPECT_DOUBLE_EQ(rule.train_stats.negative(), 0.0);
  EXPECT_GT(rule.train_stats.positive, 0.0);
  EXPECT_LE(rule.size(), 4u);
}

TEST(GrowRuleFoilTest, SeededGrowthExtendsExistingRule) {
  Rng rng(34);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.NextDouble(0, 10);
    const double b = rng.NextDouble(0, 10);
    rows.push_back({{a, b}, a > 5.0 && b > 5.0});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  Rule seed({Condition::Greater(0, 5.0)});
  const Rule rule = GrowRuleFoil(dataset, dataset.AllRows(), kPos, seed);
  ASSERT_GE(rule.size(), 2u);
  EXPECT_EQ(rule.conditions()[0], seed.conditions()[0]);
  EXPECT_DOUBLE_EQ(rule.train_stats.negative(), 0.0);
}

TEST(PruneRuleIrepTest, DropsOverfittedTail) {
  // On the prune set, only the first condition holds up; the second is
  // noise fitted to nothing (it removes positives without need).
  Rng rng(35);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.NextDouble(0, 10);
    rows.push_back({{a, rng.NextDouble(0, 10)}, a > 5.0});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  Rule overfit({Condition::Greater(0, 5.0), Condition::LessEqual(1, 2.0)});
  const Rule pruned =
      PruneRuleIrep(dataset, dataset.AllRows(), kPos, overfit);
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_EQ(pruned.conditions()[0], Condition::Greater(0, 5.0));
}

TEST(PruneRuleIrepTest, KeepsNecessaryConditions) {
  Rng rng(36);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.NextDouble(0, 10);
    const double b = rng.NextDouble(0, 10);
    rows.push_back({{a, b}, a > 5.0 && b > 5.0});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  Rule rule({Condition::Greater(0, 5.0), Condition::Greater(1, 5.0)});
  const Rule pruned = PruneRuleIrep(dataset, dataset.AllRows(), kPos, rule);
  EXPECT_EQ(pruned.size(), 2u);
}

TEST(RipperLearnerTest, LearnsSeparableConcept) {
  Rng rng(37);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.NextDouble(0, 10);
    const double b = rng.NextDouble(0, 10);
    rows.push_back({{a, b}, a > 7.0 && b < 3.0});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  RipperLearner learner;
  auto model = learner.Train(dataset, kPos);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const Confusion eval = EvaluateClassifier(*model, dataset, kPos);
  EXPECT_GT(eval.f_measure(), 0.9);
  EXPECT_FALSE(model->rules().empty());
}

TEST(RipperLearnerTest, RareClassEndToEnd) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 30000, 15000, 21);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  RipperLearner learner;
  auto model = learner.Train(data.train, target);
  ASSERT_TRUE(model.ok());
  const Confusion test = EvaluateClassifier(*model, data.test, target);
  EXPECT_GT(test.f_measure(), 0.5) << test.ToString();
}

TEST(RipperLearnerTest, StratifiedWeightsRaiseRecall) {
  const TrainTestPair data = MakeNumericPair(NsynParams(3), 30000, 15000, 22);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  RipperLearner learner;
  auto plain = learner.Train(data.train, target);
  ASSERT_TRUE(plain.ok());

  Dataset stratified = data.train;
  stratified.SetAllWeights(StratifiedWeights(data.train, target));
  auto weighted = learner.Train(stratified, target);
  ASSERT_TRUE(weighted.ok());

  const Confusion plain_eval =
      EvaluateClassifier(*plain, data.test, target);
  const Confusion weighted_eval =
      EvaluateClassifier(*weighted, data.test, target);
  // Stratification boosts recall (the paper's "-we" effect).
  EXPECT_GE(weighted_eval.recall(), plain_eval.recall() - 0.05);
}

TEST(RipperLearnerTest, EmptyTrainingSetRejected) {
  const Dataset dataset = MakeNumericDataset(1, {});
  RipperLearner learner;
  auto model = learner.TrainOnRows(dataset, {}, kPos);
  EXPECT_FALSE(model.ok());
}

TEST(RipperLearnerTest, NoPositivesYieldsEmptyModel) {
  const Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, false}, {{2.0}, false}, {{3.0}, false}});
  RipperLearner learner;
  auto model = learner.Train(dataset, kPos);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->rules().empty());
  EXPECT_FALSE(model->Predict(dataset, 0));
  EXPECT_DOUBLE_EQ(model->Score(dataset, 0), 0.0);
}

TEST(RipperLearnerTest, SeedChangesSplitsDeterministically) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 10000, 2000, 23);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  RipperConfig config;
  config.seed = 1;
  auto a1 = RipperLearner(config).Train(data.train, target);
  auto a2 = RipperLearner(config).Train(data.train, target);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  ASSERT_EQ(a1->rules().size(), a2->rules().size());
  for (size_t i = 0; i < a1->rules().size(); ++i) {
    EXPECT_TRUE(a1->rules().rule(i) == a2->rules().rule(i));
  }
}

}  // namespace
}  // namespace pnr
