// Batch-vs-row equivalence of the compiled scoring engine: for every model
// family the ScoreBatch/PredictBatch fast paths must be *bitwise* identical
// to the per-row Score/Predict calls, for any thread count and block size.
// Also covers the engine's edge cases (empty rule sets, all-missing
// categorical columns, non-default thresholds) and the compiled replay
// inside ScoreMatrix::Build.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "c45/rules.h"
#include "c45/tree_classifier.h"
#include "pnrule/pnrule.h"
#include "pnrule/score_matrix.h"
#include "ripper/ripper.h"
#include "synth/kdd_sim.h"
#include "test_util.h"

namespace pnr {
namespace {

using testutil::MakeMixedDataset;

const KddSimData& SharedKdd() {
  static const KddSimData data = [] {
    KddSimParams params;
    params.train_records = 3000;
    params.test_records = 1500;
    params.seed = 913;
    auto generated = GenerateKddSim(params);
    EXPECT_TRUE(generated.ok()) << generated.status().ToString();
    return std::move(generated).value();
  }();
  return data;
}

CategoryId KddTarget() {
  const CategoryId target =
      SharedKdd().train.schema().class_attr().FindCategory("probe");
  EXPECT_NE(target, kInvalidCategory);
  return target;
}

std::vector<RowId> AllRowIds(const Dataset& dataset) {
  std::vector<RowId> rows(dataset.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  return rows;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Scores + predictions of the batch engine under `options`.
struct BatchResult {
  std::vector<double> scores;
  std::vector<uint8_t> predicted;
};

BatchResult RunBatch(const BinaryClassifier& model, const Dataset& dataset,
                     const BatchScoreOptions& options) {
  const std::vector<RowId> rows = AllRowIds(dataset);
  BatchResult result;
  result.scores.resize(rows.size());
  result.predicted.resize(rows.size());
  model.ScoreBatch(dataset, rows.data(), rows.size(), result.scores.data(),
                   options);
  model.PredictBatch(dataset, rows.data(), rows.size(),
                     result.predicted.data(), options);
  return result;
}

// Asserts batch == row-at-a-time, bitwise, for threads 1/2/8 and a block
// size small enough to exercise multi-block paths on the kdd test set.
void ExpectBatchMatchesRows(const BinaryClassifier& model,
                            const Dataset& dataset) {
  const std::vector<RowId> rows = AllRowIds(dataset);
  std::vector<double> row_scores(rows.size());
  std::vector<uint8_t> row_predicted(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    row_scores[i] = model.Score(dataset, rows[i]);
    row_predicted[i] = model.Predict(dataset, rows[i]) ? 1 : 0;
  }

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (const size_t block_size : {size_t{4096}, size_t{64}}) {
      BatchScoreOptions options;
      options.num_threads = threads;
      options.block_size = block_size;
      const BatchResult batch = RunBatch(model, dataset, options);
      EXPECT_TRUE(BitIdentical(batch.scores, row_scores))
          << "scores diverged at threads=" << threads
          << " block_size=" << block_size;
      EXPECT_EQ(batch.predicted, row_predicted)
          << "predictions diverged at threads=" << threads
          << " block_size=" << block_size;
    }
  }
}

TEST(BatchScoreTest, PnruleBatchMatchesRowPath) {
  const KddSimData& data = SharedKdd();
  auto model = PnruleLearner().Train(data.train, KddTarget());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ExpectBatchMatchesRows(*model, data.test);
}

TEST(BatchScoreTest, RipperBatchMatchesRowPath) {
  const KddSimData& data = SharedKdd();
  auto model = RipperLearner().Train(data.train, KddTarget());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ExpectBatchMatchesRows(*model, data.test);
}

TEST(BatchScoreTest, C45TreeBatchMatchesRowPath) {
  const KddSimData& data = SharedKdd();
  auto model = C45TreeLearner().Train(data.train, KddTarget());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ExpectBatchMatchesRows(*model, data.test);
}

TEST(BatchScoreTest, C45RulesBatchMatchesRowPath) {
  const KddSimData& data = SharedKdd();
  auto model = C45RulesLearner().Train(data.train, KddTarget());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ExpectBatchMatchesRows(*model, data.test);
}

TEST(BatchScoreTest, ScoresAreBitIdenticalAcrossThreadCounts) {
  const KddSimData& data = SharedKdd();
  auto model = PnruleLearner().Train(data.train, KddTarget());
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  BatchScoreOptions serial;
  serial.num_threads = 1;
  serial.block_size = 128;  // many blocks, so scheduling could matter
  const BatchResult reference = RunBatch(*model, data.test, serial);
  for (const size_t threads : {size_t{2}, size_t{8}}) {
    BatchScoreOptions options = serial;
    options.num_threads = threads;
    const BatchResult got = RunBatch(*model, data.test, options);
    EXPECT_TRUE(BitIdentical(got.scores, reference.scores))
        << threads << " threads diverged";
    EXPECT_EQ(got.predicted, reference.predicted)
        << threads << " threads diverged";
  }
}

TEST(BatchScoreTest, PredictCsvIsByteIdenticalAcrossThreadCounts) {
  // The exact property `pnr predict --threads n` relies on: the formatted
  // row,score,predicted output must not depend on the thread count.
  const KddSimData& data = SharedKdd();
  auto model = PnruleLearner().Train(data.train, KddTarget());
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  auto render = [&](size_t threads) {
    BatchScoreOptions options;
    options.num_threads = threads;
    const BatchResult batch = RunBatch(*model, data.test, options);
    std::string csv = "row,score,predicted\n";
    char line[64];
    for (size_t i = 0; i < batch.scores.size(); ++i) {
      std::snprintf(line, sizeof(line), "%u,%.6f,%d\n",
                    static_cast<RowId>(i), batch.scores[i],
                    batch.predicted[i] ? 1 : 0);
      csv += line;
    }
    return csv;
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(2));
  EXPECT_EQ(serial, render(8));
}

TEST(BatchScoreTest, EmptyPnruleRuleSetsScoreZero) {
  const Dataset dataset =
      MakeMixedDataset({{1.0, 0, false}, {2.0, 1, true}, {3.0, 2, false}});
  const PnruleClassifier model(RuleSet(), RuleSet(), ScoreMatrix(),
                               /*use_score_matrix=*/true);
  ExpectBatchMatchesRows(model, dataset);
  const BatchResult batch = RunBatch(model, dataset, {});
  for (const double score : batch.scores) EXPECT_EQ(score, 0.0);
}

TEST(BatchScoreTest, EmptyRipperRuleSetScoresZero) {
  const Dataset dataset = MakeMixedDataset({{1.0, 0, true}, {2.0, 1, false}});
  const RipperClassifier model{RuleSet()};
  ExpectBatchMatchesRows(model, dataset);
  const BatchResult batch = RunBatch(model, dataset, {});
  for (const double score : batch.scores) EXPECT_EQ(score, 0.0);
}

TEST(BatchScoreTest, AllMissingCategoricalColumnNeverMatches) {
  Dataset dataset = MakeMixedDataset(
      {{1.0, 0, true}, {2.0, 1, false}, {3.0, 2, true}, {4.0, 0, false}});
  for (RowId row = 0; row < dataset.num_rows(); ++row) {
    dataset.set_categorical(row, 1, kInvalidCategory);
  }
  Rule rule;
  rule.AddCondition(Condition::CatEqual(1, 0));
  RuleSet rules;
  rules.AddRule(rule);
  const RipperClassifier model{rules};
  ExpectBatchMatchesRows(model, dataset);
  const BatchResult batch = RunBatch(model, dataset, {});
  for (const double score : batch.scores) EXPECT_EQ(score, 0.0);
}

TEST(BatchScoreTest, PredictBatchHonorsNonDefaultThreshold) {
  const KddSimData& data = SharedKdd();
  auto trained = PnruleLearner().Train(data.train, KddTarget());
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  PnruleClassifier model = std::move(trained).value();
  for (const double threshold : {0.0, 0.25, 0.9, 1.0}) {
    model.set_threshold(threshold);
    ExpectBatchMatchesRows(model, data.test);
  }
}

TEST(BatchScoreTest, ScoreMatrixBuildMatchesInterpretedReplay) {
  // ScoreMatrix::Build replays the rule lists through the compiled matcher;
  // every cell weight must equal a hand-interpreted first-match replay.
  const KddSimData& data = SharedKdd();
  const CategoryId target = KddTarget();
  auto model = PnruleLearner().Train(data.train, target);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const RuleSet& p_rules = model->p_rules();
  const RuleSet& n_rules = model->n_rules();
  ASSERT_FALSE(p_rules.empty());

  const RowSubset rows = data.train.AllRows();
  const ScoreMatrix built = ScoreMatrix::Build(
      data.train, rows, target, p_rules, n_rules, PnruleConfig());

  const size_t num_n = n_rules.size();
  std::vector<double> cell_weight(p_rules.size() * (num_n + 1), 0.0);
  for (const RowId row : rows) {
    const int p = p_rules.FirstMatch(data.train, row);
    if (p == kNoRule) continue;
    const int n = n_rules.FirstMatch(data.train, row);
    const size_t n_index = n == kNoRule ? num_n : static_cast<size_t>(n);
    cell_weight[static_cast<size_t>(p) * (num_n + 1) + n_index] +=
        data.train.weight(row);
  }
  for (size_t p = 0; p < p_rules.size(); ++p) {
    for (size_t n = 0; n <= num_n; ++n) {
      EXPECT_DOUBLE_EQ(built.CellWeight(p, n),
                       cell_weight[p * (num_n + 1) + n])
          << "cell (" << p << ", " << n << ")";
    }
  }
}

}  // namespace
}  // namespace pnr
