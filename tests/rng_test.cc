#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace pnr {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-5.0, 2.5);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 2.5);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(variance, 1.0, 0.05);
}

TEST(RngTest, TriangularStaysInBoundsAndCentersOnMode) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextTriangular(2.0, 6.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LE(v, 6.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesProbability) {
  Rng rng(29);
  const int n = 20000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(weights.size(), 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextIndexWeighted(weights)];
  }
  EXPECT_EQ(counts[2], 0);  // zero weight never sampled
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.02);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continued stream.
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() != child.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  const int n = 10000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 9999ULL,
                                           0xDEADBEEFULL));

}  // namespace
}  // namespace pnr
