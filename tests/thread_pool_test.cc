// ThreadPool: correctness of the index distribution, inline fallback,
// exception propagation, and reuse across many ParallelFor calls.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pnr {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0u);  // no workers spawned
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(16);
  pool.ParallelFor(ids.size(), [&](size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPoolTest, PerIndexSlotsNeedNoSynchronization) {
  // The engine's usage pattern: each index writes its own slot; the caller
  // reduces afterwards.
  ThreadPool pool(8);
  std::vector<double> slots(1000, 0.0);
  pool.ParallelFor(slots.size(), [&](size_t i) {
    slots[i] = static_cast<double>(i) * 0.5;
  });
  const double sum = std::accumulate(slots.begin(), slots.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * (999.0 * 1000.0 / 2.0));
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                         completed++;
                       }),
      std::runtime_error);
  // Every non-throwing index still ran (the pool drains the job).
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&](size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 200L * 17L);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndDegradesToInline) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.ParallelFor(100, [&](size_t) { total++; });
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  EXPECT_EQ(pool.num_threads(), 0u);
  // Work enqueued after shutdown still completes (inline).
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(32);
  pool.ParallelFor(ids.size(), [&](size_t i) {
    total++;
    ids[i] = std::this_thread::get_id();
  });
  EXPECT_EQ(total.load(), 132);
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ShutdownFromAnotherThreadDropsNoWork) {
  // The SIGTERM shape: a service thread keeps issuing jobs while another
  // thread shuts the pool down. Every enqueued index must still run
  // exactly once — in-flight jobs drain, later jobs run inline.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  std::atomic<bool> stop{false};
  std::thread driver([&] {
    for (int round = 0; round < 400 && !stop.load(); ++round) {
      pool.ParallelFor(64, [&](size_t) { total++; });
    }
    stop = true;
  });
  while (total.load() < 64 * 5) std::this_thread::yield();
  pool.Shutdown();  // concurrent with the driver's ParallelFor loop
  driver.join();
  EXPECT_EQ(total.load() % 64, 0) << "a job was torn mid-flight";
  EXPECT_GE(total.load(), 64L * 5);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);  // auto: >= 1
}

TEST(ThreadBudgetTest, ReserveClampsToCapacity) {
  ThreadBudget budget(4);
  EXPECT_EQ(budget.total(), 4u);
  EXPECT_EQ(budget.Reserve(3), 3u);
  EXPECT_EQ(budget.in_use(), 3u);
  EXPECT_EQ(budget.Reserve(10), 1u);  // only 1 left
  EXPECT_EQ(budget.Reserve(5), 0u);   // nothing left
  EXPECT_EQ(budget.in_use(), 4u);
}

TEST(ThreadBudgetTest, AcquireNeverGrantsLessThanOne) {
  ThreadBudget budget(2);
  EXPECT_EQ(budget.Reserve(2), 2u);  // budget exhausted by the outer pool
  ThreadBudget::Lease lease = budget.Acquire(8);
  // The task's own (already-reserved) thread is always granted.
  EXPECT_EQ(lease.count(), 1u);
  EXPECT_EQ(budget.in_use(), 2u);  // no extras were available
}

TEST(ThreadBudgetTest, LeaseReturnsExtrasOnDestruction) {
  ThreadBudget budget(8);
  EXPECT_EQ(budget.Reserve(2), 2u);
  {
    ThreadBudget::Lease lease = budget.Acquire(8);
    EXPECT_EQ(lease.count(), 7u);  // 1 own + 6 extras
    EXPECT_EQ(budget.in_use(), 8u);
    ThreadBudget::Lease second = budget.Acquire(8);
    EXPECT_EQ(second.count(), 1u);  // pool drained; still >= 1
  }
  EXPECT_EQ(budget.in_use(), 2u);  // extras back, reservation persists
}

TEST(ThreadBudgetTest, NestedFanOutNeverOversubscribes) {
  // The racer's composition: an outer pool fans tasks out, every task
  // leases inner width for its training. The invariant that fixes the old
  // T x T oversubscription: at any instant the nominal live thread count —
  // outer workers plus every lease's extras — never exceeds the budget.
  const size_t kBudget = 6;
  const size_t kOuter = 3;
  ThreadBudget budget(kBudget);
  ASSERT_EQ(budget.Reserve(kOuter), kOuter);

  ThreadPool pool(kOuter);
  std::atomic<size_t> live{kOuter};  // the outer workers themselves
  std::atomic<size_t> high_water{kOuter};
  pool.ParallelFor(64, [&](size_t) {
    ThreadBudget::Lease lease = budget.Acquire(kBudget);
    EXPECT_GE(lease.count(), 1u);
    const size_t extras = lease.count() - 1;
    size_t now = live.fetch_add(extras) + extras;
    size_t seen = high_water.load();
    while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
    }
    // Simulate the inner training using its granted width.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    live.fetch_sub(extras);
  });
  EXPECT_LE(high_water.load(), kBudget);
  EXPECT_EQ(budget.in_use(), kOuter);  // every lease returned its extras
}

}  // namespace
}  // namespace pnr
