// ThreadPool: correctness of the index distribution, inline fallback,
// exception propagation, and reuse across many ParallelFor calls.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pnr {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0u);  // no workers spawned
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(16);
  pool.ParallelFor(ids.size(), [&](size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPoolTest, PerIndexSlotsNeedNoSynchronization) {
  // The engine's usage pattern: each index writes its own slot; the caller
  // reduces afterwards.
  ThreadPool pool(8);
  std::vector<double> slots(1000, 0.0);
  pool.ParallelFor(slots.size(), [&](size_t i) {
    slots[i] = static_cast<double>(i) * 0.5;
  });
  const double sum = std::accumulate(slots.begin(), slots.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * (999.0 * 1000.0 / 2.0));
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                         completed++;
                       }),
      std::runtime_error);
  // Every non-throwing index still ran (the pool drains the job).
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&](size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 200L * 17L);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndDegradesToInline) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.ParallelFor(100, [&](size_t) { total++; });
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  EXPECT_EQ(pool.num_threads(), 0u);
  // Work enqueued after shutdown still completes (inline).
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(32);
  pool.ParallelFor(ids.size(), [&](size_t i) {
    total++;
    ids[i] = std::this_thread::get_id();
  });
  EXPECT_EQ(total.load(), 132);
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ShutdownFromAnotherThreadDropsNoWork) {
  // The SIGTERM shape: a service thread keeps issuing jobs while another
  // thread shuts the pool down. Every enqueued index must still run
  // exactly once — in-flight jobs drain, later jobs run inline.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  std::atomic<bool> stop{false};
  std::thread driver([&] {
    for (int round = 0; round < 400 && !stop.load(); ++round) {
      pool.ParallelFor(64, [&](size_t) { total++; });
    }
    stop = true;
  });
  while (total.load() < 64 * 5) std::this_thread::yield();
  pool.Shutdown();  // concurrent with the driver's ParallelFor loop
  driver.join();
  EXPECT_EQ(total.load() % 64, 0) << "a job was torn mid-flight";
  EXPECT_GE(total.load(), 64L * 5);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);  // auto: >= 1
}

}  // namespace
}  // namespace pnr
