#include "synth/categorical_model.h"

#include <gtest/gtest.h>

namespace pnr {
namespace {

TEST(CategoricalModelTest, ParamsValidation) {
  EXPECT_TRUE(CategoricalModelParams().Validate().ok());
  CategoricalModelParams params;
  params.target.na = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = CategoricalModelParams();
  params.non_target.vocab = 4;
  params.non_target.nspa = 3;
  params.non_target.words = 2;  // 6 > 4: signatures cannot be disjoint
  EXPECT_FALSE(params.Validate().ok());
  params = CategoricalModelParams();
  params.target_fraction = 1.0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(CategoricalModelTest, CoaConfigurationsMatchTable3) {
  const CategoricalModelParams coa1 = CoaParams("coa1");
  EXPECT_EQ(coa1.target.na, 1);
  EXPECT_EQ(coa1.target.nspa, 3);
  EXPECT_EQ(coa1.target.vocab, 400);
  EXPECT_EQ(coa1.non_target.na, 2);
  EXPECT_EQ(coa1.non_target.vocab, 100);
  const CategoricalModelParams coa6 = CoaParams("coa6");
  EXPECT_EQ(coa6.non_target.na, 4);
  EXPECT_EQ(coa6.non_target.nspa, 4);
  const CategoricalModelParams coad3 = CoaParams("coad3");
  EXPECT_EQ(coad3.target.na, 2);
  EXPECT_EQ(coad3.target.vocab, 100);
  EXPECT_EQ(coad3.non_target.vocab, 400);
  for (const char* name : {"coa1", "coa2", "coa3", "coa4", "coa5", "coa6",
                           "coad1", "coad2", "coad3", "coad4"}) {
    EXPECT_TRUE(CoaParams(name).Validate().ok()) << name;
  }
}

TEST(CategoricalModelTest, SchemaHasOnePairPerSubclass) {
  const CategoricalModelParams params = CoaParams("coad1");
  Rng rng(11);
  const Dataset dataset = GenerateCategoricalDataset(params, 1000, &rng);
  // 2 target subclasses + 4 non-target subclasses, 2 attributes each.
  EXPECT_EQ(dataset.schema().num_attributes(), 12u);
  EXPECT_EQ(dataset.schema().attribute(0).name(), "ct0a");
  EXPECT_EQ(dataset.schema().attribute(4).name(), "cn0a");
  EXPECT_EQ(dataset.schema().attribute(0).num_categories(), 400u);
  EXPECT_EQ(dataset.schema().attribute(4).num_categories(), 400u);
}

TEST(CategoricalModelTest, TargetSignaturesUseSignatureWords) {
  const CategoricalModelParams params = CoaParams("coa1");
  Rng rng(12);
  const Dataset dataset = GenerateCategoricalDataset(params, 50000, &rng);
  const CategoryId target =
      dataset.schema().class_attr().FindCategory("C");
  const int max_word = params.target.nspa * params.target.words;  // 6
  size_t targets = 0;
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    if (dataset.label(r) != target) continue;
    ++targets;
    // Target subclass 0 owns the pair (ct0a, ct0b): both must be signature
    // words, and from the SAME signature block.
    const CategoryId a = dataset.categorical(r, 0);
    const CategoryId b = dataset.categorical(r, 1);
    EXPECT_LT(a, max_word);
    EXPECT_LT(b, max_word);
    EXPECT_EQ(a / params.target.words, b / params.target.words);
  }
  EXPECT_GT(targets, 50u);
}

TEST(CategoricalModelTest, NonTargetUniformOnTargetPair) {
  const CategoricalModelParams params = CoaParams("coa1");
  Rng rng(13);
  const Dataset dataset = GenerateCategoricalDataset(params, 20000, &rng);
  const CategoryId target =
      dataset.schema().class_attr().FindCategory("C");
  // Non-target values on ct0a should span far more than the signature
  // words.
  std::vector<bool> seen(400, false);
  size_t distinct = 0;
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    if (dataset.label(r) == target) continue;
    const CategoryId a = dataset.categorical(r, 0);
    if (!seen[static_cast<size_t>(a)]) {
      seen[static_cast<size_t>(a)] = true;
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 350u);
}

TEST(CategoricalModelTest, TargetFractionApproximatelyRespected) {
  const CategoricalModelParams params = CoaParams("coa4");
  Rng rng(14);
  const Dataset dataset = GenerateCategoricalDataset(params, 60000, &rng);
  const CategoryId target =
      dataset.schema().class_attr().FindCategory("C");
  const double fraction =
      static_cast<double>(dataset.CountClass(target)) / 60000.0;
  EXPECT_NEAR(fraction, 0.003, 0.001);
}

}  // namespace
}  // namespace pnr
