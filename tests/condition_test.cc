#include "rules/condition.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pnr {
namespace {

using testutil::MakeMixedDataset;

TEST(ConditionTest, CatEqualMatches) {
  const Dataset dataset = MakeMixedDataset({{1.0, 0, false}, {1.0, 1, true}});
  const Condition cond = Condition::CatEqual(1, 1);
  EXPECT_FALSE(cond.Matches(dataset, 0));
  EXPECT_TRUE(cond.Matches(dataset, 1));
}

TEST(ConditionTest, LessEqualBoundaryIsInclusive) {
  const Dataset dataset =
      MakeMixedDataset({{1.0, 0, false}, {2.0, 0, false}, {2.1, 0, false}});
  const Condition cond = Condition::LessEqual(0, 2.0);
  EXPECT_TRUE(cond.Matches(dataset, 0));
  EXPECT_TRUE(cond.Matches(dataset, 1));
  EXPECT_FALSE(cond.Matches(dataset, 2));
}

TEST(ConditionTest, GreaterBoundaryIsExclusive) {
  const Dataset dataset =
      MakeMixedDataset({{1.0, 0, false}, {2.0, 0, false}, {2.1, 0, false}});
  const Condition cond = Condition::Greater(0, 2.0);
  EXPECT_FALSE(cond.Matches(dataset, 0));
  EXPECT_FALSE(cond.Matches(dataset, 1));
  EXPECT_TRUE(cond.Matches(dataset, 2));
}

TEST(ConditionTest, InRangeIsInclusiveBothEnds) {
  const Dataset dataset = MakeMixedDataset(
      {{0.9, 0, false}, {1.0, 0, false}, {1.5, 0, false}, {2.0, 0, false},
       {2.1, 0, false}});
  const Condition cond = Condition::InRange(0, 1.0, 2.0);
  EXPECT_FALSE(cond.Matches(dataset, 0));
  EXPECT_TRUE(cond.Matches(dataset, 1));
  EXPECT_TRUE(cond.Matches(dataset, 2));
  EXPECT_TRUE(cond.Matches(dataset, 3));
  EXPECT_FALSE(cond.Matches(dataset, 4));
}

TEST(ConditionTest, ToStringRendersReadably) {
  const Dataset dataset = MakeMixedDataset({{1.0, 0, false}});
  const Schema& schema = dataset.schema();
  EXPECT_EQ(Condition::CatEqual(1, 2).ToString(schema), "c = c");
  EXPECT_EQ(Condition::LessEqual(0, 2.5).ToString(schema), "x <= 2.5000");
  EXPECT_EQ(Condition::Greater(0, 1.0).ToString(schema), "x > 1.0000");
  EXPECT_EQ(Condition::InRange(0, 1.0, 2.0).ToString(schema),
            "x in [1.0000, 2.0000]");
}

TEST(ConditionTest, EqualityIsStructural) {
  EXPECT_EQ(Condition::CatEqual(1, 2), Condition::CatEqual(1, 2));
  EXPECT_FALSE(Condition::CatEqual(1, 2) == Condition::CatEqual(1, 1));
  EXPECT_FALSE(Condition::CatEqual(0, 2) == Condition::CatEqual(1, 2));
  EXPECT_EQ(Condition::LessEqual(0, 2.0), Condition::LessEqual(0, 2.0));
  EXPECT_FALSE(Condition::LessEqual(0, 2.0) == Condition::Greater(0, 2.0));
  EXPECT_EQ(Condition::InRange(0, 1.0, 2.0), Condition::InRange(0, 1.0, 2.0));
  EXPECT_FALSE(Condition::InRange(0, 1.0, 2.0) ==
               Condition::InRange(0, 1.0, 3.0));
}

}  // namespace
}  // namespace pnr
