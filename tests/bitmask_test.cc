#include "common/bitmask.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace pnr {
namespace {

TEST(BitMaskTest, SetGetCount) {
  BitMask mask(130);
  EXPECT_EQ(mask.Count(), 0u);
  mask.Set(0);
  mask.Set(64);
  mask.Set(129);
  EXPECT_TRUE(mask.Get(0));
  EXPECT_TRUE(mask.Get(64));
  EXPECT_TRUE(mask.Get(129));
  EXPECT_FALSE(mask.Get(1));
  EXPECT_EQ(mask.Count(), 3u);
  mask.Set(64, false);
  EXPECT_FALSE(mask.Get(64));
  EXPECT_EQ(mask.Count(), 2u);
}

TEST(BitMaskTest, AllTrueConstructionTrimsTail) {
  BitMask mask(70, true);
  EXPECT_EQ(mask.Count(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(mask.Get(i));
}

TEST(BitMaskTest, BooleanAlgebra) {
  BitMask a(100);
  BitMask b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(2);
  const BitMask both = a & b;
  EXPECT_EQ(both.Count(), 1u);
  EXPECT_TRUE(both.Get(50));
  const BitMask either = a | b;
  EXPECT_EQ(either.Count(), 4u);
  EXPECT_EQ(a.CountAnd(b), 1u);
  EXPECT_EQ(a.CountAndNot(b), 2u);
  EXPECT_EQ(b.CountAndNot(a), 1u);
}

TEST(BitMaskTest, ForEachSetVisitsAscending) {
  BitMask mask(200);
  const std::vector<size_t> indices = {3, 64, 65, 127, 128, 199};
  for (size_t i : indices) mask.Set(i);
  std::vector<size_t> visited;
  mask.ForEachSet([&](size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, indices);
}

TEST(BitMaskTest, EqualityComparesContentAndSize) {
  BitMask a(10);
  BitMask b(10);
  EXPECT_TRUE(a == b);
  a.Set(5);
  EXPECT_FALSE(a == b);
  b.Set(5);
  EXPECT_TRUE(a == b);
  BitMask c(11);
  c.Set(5);
  EXPECT_FALSE(a == c);
}

TEST(BitMaskTest, RandomizedAgainstReferenceImplementation) {
  Rng rng(55);
  const size_t n = 1000;
  BitMask a(n);
  BitMask b(n);
  std::vector<bool> ra(n, false);
  std::vector<bool> rb(n, false);
  for (int i = 0; i < 600; ++i) {
    const size_t index = static_cast<size_t>(rng.NextBelow(n));
    if (rng.NextBool(0.5)) {
      a.Set(index);
      ra[index] = true;
    } else {
      b.Set(index);
      rb[index] = true;
    }
  }
  size_t expected_and = 0;
  size_t expected_and_not = 0;
  for (size_t i = 0; i < n; ++i) {
    if (ra[i] && rb[i]) ++expected_and;
    if (ra[i] && !rb[i]) ++expected_and_not;
  }
  EXPECT_EQ(a.CountAnd(b), expected_and);
  EXPECT_EQ(a.CountAndNot(b), expected_and_not);
  const BitMask anded = a & b;
  EXPECT_EQ(anded.Count(), expected_and);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(anded.Get(i), ra[i] && rb[i]);
  }
}

}  // namespace
}  // namespace pnr
