#include "induction/condition_search.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "induction/metric.h"
#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeMixedDataset;
using testutil::MakeNumericDataset;

// Scorer: plain accuracy * coverage (monotone, easy to reason about).
double PosMinusNeg(const RuleStats& stats) {
  return stats.positive - stats.negative();
}

TEST(ConditionSearchTest, FindsDiscriminativeCategoricalValue) {
  // Category b is perfectly positive; others negative.
  const Dataset dataset = MakeMixedDataset({
      {0.0, 0, false}, {0.0, 0, false}, {0.0, 1, true},
      {0.0, 1, true},  {0.0, 2, false},
  });
  const auto best = FindBestCondition(dataset, dataset.AllRows(), kPos,
                                      PosMinusNeg);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->condition, Condition::CatEqual(1, 1));
  EXPECT_DOUBLE_EQ(best->stats.positive, 2.0);
  EXPECT_DOUBLE_EQ(best->stats.covered, 2.0);
}

TEST(ConditionSearchTest, FindsOneSidedNumericThreshold) {
  // Positives all above 5.
  const Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, false}, {{2.0}, false}, {{3.0}, false},
          {{6.0}, true},  {{7.0}, true},  {{8.0}, true}});
  ConditionSearchOptions options;
  options.enable_range_conditions = false;
  const auto best = FindBestCondition(dataset, dataset.AllRows(), kPos,
                                      PosMinusNeg, options);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->condition.op, ConditionOp::kGreater);
  EXPECT_GT(best->condition.lo, 3.0);
  EXPECT_LT(best->condition.lo, 6.0);
  EXPECT_DOUBLE_EQ(best->stats.positive, 3.0);
  EXPECT_DOUBLE_EQ(best->stats.negative(), 0.0);
}

TEST(ConditionSearchTest, FindsInteriorRangeCondition) {
  // Positives form an interior peak; one-sided cuts cannot isolate it, the
  // paper's extra-scan range finder can. The finder anchors on the best
  // one-sided condition, which is meaningful under the Z-number (the
  // paper's metric), so score with it.
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({{static_cast<double>(i)}, i >= 8 && i <= 11});
  }
  const Dataset dataset = MakeNumericDataset(1, rows);
  const auto metric = MakeRuleMetric(RuleMetricKind::kZNumber);
  ClassDistribution dist;
  dist.positives = 4.0;
  dist.negatives = 16.0;
  const ConditionScorer scorer = [&](const RuleStats& stats) {
    return metric->Evaluate(stats, dist);
  };
  const auto best =
      FindBestCondition(dataset, dataset.AllRows(), kPos, scorer);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->condition.op, ConditionOp::kInRange);
  EXPECT_GT(best->condition.lo, 7.0);
  EXPECT_LT(best->condition.lo, 8.0);
  EXPECT_GT(best->condition.hi, 11.0);
  EXPECT_LT(best->condition.hi, 12.0);
  EXPECT_DOUBLE_EQ(best->stats.positive, 4.0);
  EXPECT_DOUBLE_EQ(best->stats.negative(), 0.0);
}

TEST(ConditionSearchTest, RangeDisabledFallsBackToOneSided) {
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({{static_cast<double>(i)}, i >= 8 && i <= 11});
  }
  const Dataset dataset = MakeNumericDataset(1, rows);
  ConditionSearchOptions options;
  options.enable_range_conditions = false;
  const auto best = FindBestCondition(dataset, dataset.AllRows(), kPos,
                                      PosMinusNeg, options);
  ASSERT_TRUE(best.has_value());
  EXPECT_NE(best->condition.op, ConditionOp::kInRange);
}

TEST(ConditionSearchTest, MinSupportRejectsSmallCandidates) {
  const Dataset dataset = MakeMixedDataset({
      {0.0, 1, true},  {0.0, 0, false}, {0.0, 0, false},
      {0.0, 0, false}, {0.0, 0, false},
  });
  ConditionSearchOptions options;
  options.min_covered_weight = 2.0;  // the pure b-category covers only 1
  const auto best = FindBestCondition(dataset, dataset.AllRows(), kPos,
                                      PosMinusNeg, options);
  ASSERT_TRUE(best.has_value());
  // Only the 4-record a-category is admissible.
  EXPECT_EQ(best->condition, Condition::CatEqual(1, 0));
}

TEST(ConditionSearchTest, NonRefiningCandidatesAreSkipped) {
  // All rows share category a: "c = a" covers everything -> no refinement;
  // x is constant -> no numeric boundary. Nothing admissible.
  const Dataset dataset = MakeMixedDataset({
      {1.0, 0, true}, {1.0, 0, false}, {1.0, 0, true},
  });
  const auto best =
      FindBestCondition(dataset, dataset.AllRows(), kPos, PosMinusNeg);
  EXPECT_FALSE(best.has_value());
}

TEST(ConditionSearchTest, EmptyRowsYieldNothing) {
  const Dataset dataset = MakeMixedDataset({{1.0, 0, true}});
  const auto best = FindBestCondition(dataset, {}, kPos, PosMinusNeg);
  EXPECT_FALSE(best.has_value());
}

TEST(ConditionSearchTest, ScorerRejectionViaInfinity) {
  const Dataset dataset = MakeMixedDataset({
      {1.0, 0, true}, {2.0, 1, false}, {3.0, 1, false},
  });
  const auto best = FindBestCondition(
      dataset, dataset.AllRows(), kPos,
      [](const RuleStats&) { return -std::numeric_limits<double>::infinity(); });
  EXPECT_FALSE(best.has_value());
}

TEST(ConditionSearchTest, RespectsRecordWeights) {
  // Category b holds one positive with weight 10; category a holds two
  // unit-weight positives. With weights, b wins on positive weight.
  Dataset dataset = MakeMixedDataset({
      {0.0, 1, true}, {0.0, 0, true}, {0.0, 0, true}, {0.0, 2, false},
  });
  dataset.set_weight(0, 10.0);
  const auto best =
      FindBestCondition(dataset, dataset.AllRows(), kPos, PosMinusNeg);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->condition, Condition::CatEqual(1, 1));
  EXPECT_DOUBLE_EQ(best->stats.positive, 10.0);
}

// Property: the search's best Z-number candidate is never beaten by any
// brute-force single condition on small random datasets.
class SearchVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SearchVsBruteForce, OneSidedSearchIsExhaustive) {
  Rng rng(GetParam());
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 60; ++i) {
    rows.push_back({{rng.NextDouble(0, 10), rng.NextDouble(0, 10)},
                    rng.NextBool(0.3)});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  const auto metric = MakeRuleMetric(RuleMetricKind::kZNumber);
  ClassDistribution dist;
  dist.positives = dataset.ClassWeight(dataset.AllRows(), kPos);
  dist.negatives = dataset.TotalWeight(dataset.AllRows()) - dist.positives;
  if (dist.positives == 0.0 || dist.negatives == 0.0) GTEST_SKIP();

  ConditionScorer scorer = [&](const RuleStats& stats) {
    return metric->Evaluate(stats, dist);
  };
  ConditionSearchOptions options;
  options.enable_range_conditions = false;
  const auto best = FindBestCondition(dataset, dataset.AllRows(), kPos,
                                      scorer, options);
  ASSERT_TRUE(best.has_value());

  // Brute force: every one-sided cut at every midpoint of both attributes.
  double brute_best = -1e300;
  for (AttrIndex attr = 0; attr < 2; ++attr) {
    std::vector<double> values = dataset.numeric_column(attr);
    std::sort(values.begin(), values.end());
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      if (values[i + 1] <= values[i]) continue;
      const double cut = 0.5 * (values[i] + values[i + 1]);
      for (const Condition& cond :
           {Condition::LessEqual(attr, cut), Condition::Greater(attr, cut)}) {
        Rule rule({cond});
        const RuleStats stats =
            rule.Evaluate(dataset, dataset.AllRows(), kPos);
        if (stats.covered <= 0.0 ||
            stats.covered >= dist.total() - 1e-12) {
          continue;
        }
        brute_best = std::max(brute_best, scorer(stats));
      }
    }
  }
  EXPECT_NEAR(best->value, brute_best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchVsBruteForce,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// --- MidpointBetween / CutValue edge cases ---------------------------------
// The cut emitted between adjacent sorted values must partition the data
// exactly like the internal slice it was derived from, even when the two
// values are adjacent doubles (no representable midpoint) or denormals.

TEST(MidpointBetweenTest, OrdinaryValuesGetTheArithmeticMidpoint) {
  EXPECT_DOUBLE_EQ(MidpointBetween(1.0, 2.0, false), 1.5);
  EXPECT_DOUBLE_EQ(MidpointBetween(1.0, 2.0, true), 1.5);
  EXPECT_DOUBLE_EQ(MidpointBetween(-4.0, 4.0, false), 0.0);
}

TEST(MidpointBetweenTest, AdjacentDoublesFallBackDirectionally) {
  const double a = 1.0;
  const double b = std::nextafter(a, 2.0);  // no double strictly between
  // Round-down: c = a, so {x <= c} covers a and {x > c} covers b.
  EXPECT_EQ(MidpointBetween(a, b, false), a);
  // Round-up: c = b, so the inclusive lower range test {c <= x} covers b.
  EXPECT_EQ(MidpointBetween(a, b, true), b);
}

TEST(MidpointBetweenTest, DenormalGapsDoNotEscapeTheInterval) {
  const double tiny = std::numeric_limits<double>::denorm_min();
  // 0.5 * (0 + denorm_min) underflows to 0 == lo: must fall back, not
  // return a value outside [lo, hi].
  const double down = MidpointBetween(0.0, tiny, false);
  const double up = MidpointBetween(0.0, tiny, true);
  EXPECT_GE(down, 0.0);
  EXPECT_LE(down, tiny);
  EXPECT_GE(up, 0.0);
  EXPECT_LE(up, tiny);
  EXPECT_EQ(down, 0.0);
  EXPECT_EQ(up, tiny);
}

TEST(MidpointBetweenTest, HugeValuesDoNotOverflowToInfinity) {
  const double lo = 1.6e308;
  const double hi = 1.75e308;  // lo + hi overflows to +inf
  const double mid = MidpointBetween(lo, hi, false);
  EXPECT_TRUE(std::isfinite(mid));
  EXPECT_GT(mid, lo);
  EXPECT_LT(mid, hi);
}

TEST(ConditionSearchTest, AdjacentDoubleValuesStillPartitionExactly) {
  // Two populations separated only by one ULP: the emitted cut must still
  // realize the internal slice, i.e. cover exactly the 3 positives.
  const double lo = 1.0;
  const double hi = std::nextafter(lo, 2.0);
  const Dataset dataset = MakeNumericDataset(
      1, {{{lo}, false}, {{lo}, false}, {{lo}, false},
          {{hi}, true},  {{hi}, true},  {{hi}, true}});
  ConditionSearchOptions options;
  options.enable_range_conditions = false;
  const auto best = FindBestCondition(dataset, dataset.AllRows(), kPos,
                                      PosMinusNeg, options);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->stats.positive, 3.0);
  EXPECT_DOUBLE_EQ(best->stats.negative(), 0.0);
  // And the condition really matches what the stats claim.
  Rule rule({best->condition});
  const RuleStats direct = rule.Evaluate(dataset, dataset.AllRows(), kPos);
  EXPECT_DOUBLE_EQ(direct.covered, best->stats.covered);
  EXPECT_DOUBLE_EQ(direct.positive, best->stats.positive);
}

TEST(ConditionSearchTest, AdjacentDoubleRangeConditionPartitionsExactly) {
  // Interior positive peak whose left edge is one ULP from its neighbour:
  // the range's inclusive lower cut must round *up* to stay exact.
  const double left_neg = 1.0;
  const double peak = std::nextafter(left_neg, 2.0);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 6; ++i) rows.push_back({{left_neg}, false});
  for (int i = 0; i < 4; ++i) rows.push_back({{peak}, true});
  for (int i = 0; i < 6; ++i) rows.push_back({{3.0}, false});
  const Dataset dataset = MakeNumericDataset(1, rows);
  const auto metric = MakeRuleMetric(RuleMetricKind::kZNumber);
  ClassDistribution dist;
  dist.positives = 4.0;
  dist.negatives = 12.0;
  const ConditionScorer scorer = [&](const RuleStats& stats) {
    return metric->Evaluate(stats, dist);
  };
  const auto best =
      FindBestCondition(dataset, dataset.AllRows(), kPos, scorer);
  ASSERT_TRUE(best.has_value());
  Rule rule({best->condition});
  const RuleStats direct = rule.Evaluate(dataset, dataset.AllRows(), kPos);
  EXPECT_DOUBLE_EQ(direct.covered, best->stats.covered);
  EXPECT_DOUBLE_EQ(direct.positive, best->stats.positive);
  EXPECT_DOUBLE_EQ(best->stats.positive, 4.0);
  EXPECT_DOUBLE_EQ(best->stats.negative(), 0.0);
}

// --- CandidateBetter total order -------------------------------------------

TEST(CandidateBetterTest, OrdersByScoreThenAttrThenKindThenCuts) {
  const auto make = [](double value, Condition condition) {
    CandidateCondition c;
    c.value = value;
    c.condition = condition;
    return c;
  };
  const auto le0 = make(1.0, Condition::LessEqual(0, 5.0));
  const auto gt0 = make(1.0, Condition::Greater(0, 5.0));
  const auto le1 = make(1.0, Condition::LessEqual(1, 5.0));
  const auto hi = make(2.0, Condition::Greater(3, 9.0));

  EXPECT_TRUE(CandidateBetter(hi, le0));    // higher score wins
  EXPECT_FALSE(CandidateBetter(le0, hi));
  EXPECT_TRUE(CandidateBetter(le0, le1));   // lower attr wins on ties
  EXPECT_TRUE(CandidateBetter(le0, gt0));   // <= ranks before >
  EXPECT_FALSE(CandidateBetter(le0, le0));  // strict: irreflexive
  const auto le0_lower_cut = make(1.0, Condition::LessEqual(0, 4.0));
  EXPECT_TRUE(CandidateBetter(le0_lower_cut, le0));  // lower cut wins
}

}  // namespace
}  // namespace pnr
