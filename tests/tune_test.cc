// Tuning racer: grid parsing with located errors, budget accounting,
// best-arm safety under the confidence schedule, degenerate races, and
// the thread-count byte-identity contract for rendered artifacts.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "synth/kdd_sim.h"
#include "tune/config_space.h"
#include "tune/racer.h"
#include "tune/report.h"

namespace pnr {
namespace {

// Deterministic per-(config, fold) noise in [0, 0.1): a pure function, so
// the synthetic races below are reproducible and thread-safe.
double Noise(size_t config, size_t fold) {
  uint64_t h = (config + 1) * 0x9E3779B97F4A7C15ULL + fold * 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 31;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 29;
  return static_cast<double>(h % 1024) / 10240.0;
}

FoldEval Flat(double value) {
  FoldEval eval;
  eval.recall = value;
  eval.precision = value;
  eval.f_measure = value;
  return eval;
}

std::vector<TrialConfig> DummyConfigs(size_t n) {
  return std::vector<TrialConfig>(n);
}

TEST(ConfigSpaceTest, DefaultGridHasTwentyFourConfigs) {
  const ConfigSpace space = ConfigSpace::Default();
  EXPECT_EQ(space.size(), 24u);
  EXPECT_EQ(space.Enumerate(PnruleConfig{}).size(), 24u);
}

TEST(ConfigSpaceTest, ParseErrorsAreLocated) {
  // Unknown key, with its line number.
  auto unknown = ConfigSpace::Parse("rp = 0.9\nbogus = 1\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().ToString().find("line 2"), std::string::npos)
      << unknown.status().ToString();

  // Out-of-range rp.
  auto range = ConfigSpace::Parse("rp = 1.5\n");
  ASSERT_FALSE(range.ok());
  EXPECT_NE(range.status().ToString().find("line 1"), std::string::npos)
      << range.status().ToString();

  // Empty grid for a key.
  auto empty = ConfigSpace::Parse("rn =\n");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().ToString().find("line 1"), std::string::npos)
      << empty.status().ToString();

  // A file with only comments defines no grid at all.
  EXPECT_FALSE(ConfigSpace::Parse("# nothing here\n").ok());
}

TEST(RacerTest, RungScheduleDoublesToK) {
  EXPECT_EQ(Racer::RungSchedule(5), (std::vector<size_t>{1, 2, 4, 5}));
  EXPECT_EQ(Racer::RungSchedule(2), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(Racer::RungSchedule(8), (std::vector<size_t>{1, 2, 4, 8}));
}

TEST(RacerTest, BudgetIsNeverExceeded) {
  RacerOptions options;
  options.num_folds = 8;
  options.max_evals = 30;  // covers rung 0 (16) + rung 1 (8), not rung 2
  options.num_threads = 2;
  Racer racer(options);
  auto result = racer.RaceWithEval(
      DummyConfigs(16), [](const TrialConfig&, size_t config, size_t fold) {
        return StatusOr<FoldEval>(Flat(0.5 + Noise(config, fold)));
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->evals_used, options.max_evals);
  EXPECT_TRUE(result->budget_exhausted);
}

TEST(RacerTest, BudgetBelowRungZeroIsRejected) {
  RacerOptions options;
  options.num_folds = 5;
  options.max_evals = 7;  // 8 configs need 8 evals for rung 0 alone
  Racer racer(options);
  auto result = racer.RaceWithEval(
      DummyConfigs(8), [](const TrialConfig&, size_t, size_t) {
        return StatusOr<FoldEval>(Flat(0.5));
      });
  EXPECT_FALSE(result.ok());
}

TEST(RacerTest, PlantedBestArmIsNeverEliminated) {
  // Arm 11 dominates every fold by a wide margin; noisy mediocre arms fill
  // the rest. Under the default (generous) confidence schedule the best
  // arm must survive every rung and win, for many seeds of noise.
  const size_t kPlanted = 11;
  RacerOptions options;
  options.num_folds = 8;
  options.confidence_z = 2.0;
  options.keep_fraction = 0.5;
  Racer racer(options);
  for (size_t shift = 0; shift < 20; ++shift) {
    auto result = racer.RaceWithEval(
        DummyConfigs(16),
        [shift](const TrialConfig&, size_t config, size_t fold) {
          const double base = config == kPlanted ? 0.85 : 0.45;
          return StatusOr<FoldEval>(
              Flat(base + Noise(config, fold + shift * 100)));
        });
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->trials[kPlanted].eliminated_at_rung, kNeverEliminated)
        << "shift " << shift;
    EXPECT_EQ(result->best_config, kPlanted) << "shift " << shift;
    // The race must actually prune: at least half the arms are gone.
    size_t eliminated = 0;
    for (const TrialState& trial : result->trials) {
      eliminated += trial.eliminated_at_rung != kNeverEliminated;
    }
    EXPECT_GE(eliminated, 8u) << "shift " << shift;
  }
}

TEST(RacerTest, DegenerateRacesTerminate) {
  RacerOptions options;
  options.num_folds = 4;
  Racer racer(options);

  // One config: no one to race against; it still evaluates all folds.
  auto lone = racer.RaceWithEval(
      DummyConfigs(1), [](const TrialConfig&, size_t, size_t fold) {
        return StatusOr<FoldEval>(Flat(0.5 + 0.01 * static_cast<double>(fold)));
      });
  ASSERT_TRUE(lone.ok()) << lone.status().ToString();
  EXPECT_EQ(lone->best_config, 0u);
  EXPECT_EQ(lone->trials[0].folds.size(), 4u);
  EXPECT_EQ(lone->evals_used, 4u);

  // All ties: confidence bounds never separate, halving still prunes by
  // index, and the lowest index wins.
  auto ties = racer.RaceWithEval(
      DummyConfigs(6), [](const TrialConfig&, size_t, size_t) {
        return StatusOr<FoldEval>(Flat(0.7));
      });
  ASSERT_TRUE(ties.ok()) << ties.status().ToString();
  EXPECT_EQ(ties->best_config, 0u);
  for (const RungSummary& rung : ties->rungs) {
    EXPECT_EQ(rung.eliminated_bound, 0u);
  }

  // Zero configs and one fold are invalid, not hangs.
  EXPECT_FALSE(racer.RaceWithEval(DummyConfigs(0),
                                  [](const TrialConfig&, size_t, size_t) {
                                    return StatusOr<FoldEval>(Flat(0.5));
                                  })
                   .ok());
  RacerOptions one_fold;
  one_fold.num_folds = 1;
  EXPECT_FALSE(Racer(one_fold)
                   .RaceWithEval(DummyConfigs(3),
                                 [](const TrialConfig&, size_t, size_t) {
                                   return StatusOr<FoldEval>(Flat(0.5));
                                 })
                   .ok());
}

TEST(RacerTest, EvalErrorsPropagate) {
  RacerOptions options;
  options.num_folds = 2;
  Racer racer(options);
  auto result = racer.RaceWithEval(
      DummyConfigs(3), [](const TrialConfig&, size_t config, size_t) {
        if (config == 1) {
          return StatusOr<FoldEval>(Status::Internal("training exploded"));
        }
        return StatusOr<FoldEval>(Flat(0.5));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("training exploded"),
            std::string::npos);
}

// End-to-end on real data: same seed must give byte-identical artifacts —
// survivors, winner, markdown and JSON — no matter how many threads run
// the race. This is the contract the `pnr tune` CLI exposes as
// --threads-independence.
TEST(RacerTest, ArtifactsAreByteIdenticalAcrossThreadCounts) {
  KddSimParams params;
  params.train_records = 3000;
  params.test_records = 1000;
  auto data = GenerateKddSim(params);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  const Dataset& train = data->train;
  const CategoryId target = train.schema().class_attr().FindCategory("probe");
  ASSERT_NE(target, kInvalidCategory);

  auto space = ConfigSpace::Parse(
      "rp = 0.95 0.99\nrn = 0.7 0.9\nmax_p_len = 0 1\n");
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  const std::vector<TrialConfig> configs = space->Enumerate(PnruleConfig{});
  ASSERT_EQ(configs.size(), 8u);

  auto run = [&](size_t threads) {
    RacerOptions options;
    options.num_folds = 4;
    options.seed = 99;
    options.num_threads = threads;
    Racer racer(options);
    auto result = racer.Race(train, target, configs);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    TuneReport report;
    report.dataset = "kdd_sim";
    report.target = "probe";
    report.options = options;
    // The report embeds num_threads nowhere; zero it to make that explicit.
    report.options.num_threads = 0;
    report.configs = configs;
    report.result = std::move(result).value();
    return RenderTuneMarkdown(report) + "\n---\n" + RenderTuneJson(report);
  };

  const std::string serial = run(1);
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
}

}  // namespace
}  // namespace pnr
