// Tests for the parallel ingestion engine: bitwise serial/parallel
// equivalence (values, labels, weights, dictionaries), the quote-aware CSV
// grammar's edge cases through BOTH paths, located error messages, and the
// mmap/streaming file transports.

#include "data/ingest.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "data/csv.h"

namespace pnr {
namespace {

// Asserts `a` and `b` are bitwise-identical datasets: same schema (names,
// types, dictionaries in id order), same cell bits, labels, and weights.
void ExpectBitwiseEqual(const Dataset& a, const Dataset& b) {
  const Schema& sa = a.schema();
  const Schema& sb = b.schema();
  ASSERT_EQ(sa.num_attributes(), sb.num_attributes());
  for (size_t i = 0; i < sa.num_attributes(); ++i) {
    const Attribute& attr_a = sa.attribute(static_cast<AttrIndex>(i));
    const Attribute& attr_b = sb.attribute(static_cast<AttrIndex>(i));
    EXPECT_EQ(attr_a.name(), attr_b.name());
    ASSERT_EQ(attr_a.type(), attr_b.type());
    ASSERT_EQ(attr_a.num_categories(), attr_b.num_categories());
    for (size_t c = 0; c < attr_a.num_categories(); ++c) {
      EXPECT_EQ(attr_a.CategoryName(static_cast<CategoryId>(c)),
                attr_b.CategoryName(static_cast<CategoryId>(c)))
          << "attribute " << attr_a.name() << " category " << c;
    }
  }
  ASSERT_EQ(sa.num_classes(), sb.num_classes());
  for (size_t c = 0; c < sa.num_classes(); ++c) {
    EXPECT_EQ(sa.class_attr().CategoryName(static_cast<CategoryId>(c)),
              sb.class_attr().CategoryName(static_cast<CategoryId>(c)));
  }
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (RowId r = 0; r < a.num_rows(); ++r) {
    for (size_t i = 0; i < sa.num_attributes(); ++i) {
      const AttrIndex attr = static_cast<AttrIndex>(i);
      if (sa.attribute(attr).is_numeric()) {
        EXPECT_EQ(std::bit_cast<uint64_t>(a.numeric(r, attr)),
                  std::bit_cast<uint64_t>(b.numeric(r, attr)))
            << "row " << r << " attr " << i;
      } else {
        EXPECT_EQ(a.categorical(r, attr), b.categorical(r, attr))
            << "row " << r << " attr " << i;
      }
    }
    EXPECT_EQ(a.label(r), b.label(r)) << "row " << r;
  }
  EXPECT_EQ(a.weights(), b.weights());
}

// Runs `text` through the serial reference and the engine at 1/2/8 threads
// with aggressive chunking, asserting every parse is bitwise-identical.
// Returns the serial dataset for further inspection.
Dataset ExpectAllPathsAgree(const std::string& text,
                            const CsvReadOptions& options = {},
                            size_t chunk_bytes = 16) {
  auto serial = IngestCsvSerial(text, options);
  EXPECT_TRUE(serial.ok()) << serial.status().ToString();
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    IngestOptions ingest;
    ingest.num_threads = threads;
    ingest.chunk_bytes = chunk_bytes;
    auto parallel = IngestCsvParallel(text, options, ingest);
    EXPECT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectBitwiseEqual(serial.value(), parallel.value());
  }
  return std::move(serial).value();
}

// Asserts both paths reject `text` with the same code and message.
Status ExpectAllPathsReject(const std::string& text,
                            const CsvReadOptions& options = {},
                            size_t chunk_bytes = 16) {
  auto serial = IngestCsvSerial(text, options);
  EXPECT_FALSE(serial.ok());
  for (const size_t threads : {size_t{2}, size_t{8}}) {
    IngestOptions ingest;
    ingest.num_threads = threads;
    ingest.chunk_bytes = chunk_bytes;
    auto parallel = IngestCsvParallel(text, options, ingest);
    EXPECT_FALSE(parallel.ok());
    EXPECT_EQ(serial.status().ToString(), parallel.status().ToString());
  }
  return serial.status();
}

std::string BigMixedCsv(size_t rows) {
  std::string text = "num,cat,mixed,label\n";
  for (size_t r = 0; r < rows; ++r) {
    text += std::to_string(r) + "." + std::to_string(r % 97);
    text += ",v" + std::to_string(r % 13);
    // `mixed` parses as a number for a long prefix, then flips.
    text += (r < rows / 2) ? "," + std::to_string(r)
                           : ",s" + std::to_string(r % 7);
    text += (r % 11 == 0) ? ",rare\n" : ",common\n";
  }
  return text;
}

TEST(IngestCsvTest, ParallelMatchesSerialBitwise) {
  const Dataset dataset = ExpectAllPathsAgree(BigMixedCsv(500), {}, 256);
  EXPECT_EQ(dataset.num_rows(), 500u);
  const Schema& schema = dataset.schema();
  ASSERT_EQ(schema.num_attributes(), 3u);
  EXPECT_TRUE(schema.attribute(0).is_numeric());
  EXPECT_TRUE(schema.attribute(1).is_categorical());
  // The mixed column must flip to categorical even though entire chunks of
  // it look numeric (the pass-B rebuild path).
  EXPECT_TRUE(schema.attribute(2).is_categorical());
  EXPECT_EQ(schema.num_classes(), 2u);
}

TEST(IngestCsvTest, DictionaryIdsFollowRowOrder) {
  const std::string text =
      "x,label\n"
      "c,pos\n"
      "a,neg\n"
      "c,neg\n"
      "b,pos\n";
  const Dataset dataset = ExpectAllPathsAgree(text);
  const Attribute& x = dataset.schema().attribute(0);
  ASSERT_EQ(x.num_categories(), 3u);
  // First-appearance order, not sorted order.
  EXPECT_EQ(x.CategoryName(0), "c");
  EXPECT_EQ(x.CategoryName(1), "a");
  EXPECT_EQ(x.CategoryName(2), "b");
  EXPECT_EQ(dataset.schema().class_attr().CategoryName(0), "pos");
}

TEST(IngestCsvTest, QuotedFieldsWithDelimitersAndNewlines) {
  const std::string text =
      "text,label\n"
      "\"a,b\",pos\n"
      "\"line1\nline2\",neg\n"
      "\"say \"\"hi\"\"\",pos\n"
      "  \"padded\"  ,neg\n"
      "plain,pos\n";
  const Dataset dataset = ExpectAllPathsAgree(text);
  ASSERT_EQ(dataset.num_rows(), 5u);
  const Attribute& attr = dataset.schema().attribute(0);
  EXPECT_EQ(attr.CategoryName(dataset.categorical(0, 0)), "a,b");
  EXPECT_EQ(attr.CategoryName(dataset.categorical(1, 0)), "line1\nline2");
  EXPECT_EQ(attr.CategoryName(dataset.categorical(2, 0)), "say \"hi\"");
  EXPECT_EQ(attr.CategoryName(dataset.categorical(3, 0)), "padded");
}

TEST(IngestCsvTest, CrlfAndMissingTrailingNewline) {
  const Dataset dataset =
      ExpectAllPathsAgree("x,label\r\n1,a\r\n2,b\r\n3,a");
  EXPECT_EQ(dataset.num_rows(), 3u);
  EXPECT_TRUE(dataset.schema().attribute(0).is_numeric());
  EXPECT_DOUBLE_EQ(dataset.numeric(2, 0), 3.0);
}

TEST(IngestCsvTest, Utf8BomIsStripped) {
  const Dataset dataset =
      ExpectAllPathsAgree("\xEF\xBB\xBFx,label\n1,a\n2,b\n");
  EXPECT_EQ(dataset.schema().attribute(0).name(), "x");
  EXPECT_TRUE(dataset.schema().attribute(0).is_numeric());
}

TEST(IngestCsvTest, MissingValuesBecomeCategories) {
  // Empty cells defeat numeric parsing, so the column becomes categorical
  // with "" as an ordinary dictionary entry — the historical behavior.
  const Dataset dataset = ExpectAllPathsAgree("x,label\n1,a\n,b\n3,a\n");
  const Attribute& x = dataset.schema().attribute(0);
  ASSERT_TRUE(x.is_categorical());
  EXPECT_EQ(x.CategoryName(dataset.categorical(1, 0)), "");
}

TEST(IngestCsvTest, BlankLinesAndWhitespaceRowsAreSkipped) {
  const Dataset dataset =
      ExpectAllPathsAgree("x,label\n\n1,a\n   \n\t\n2,b\n\n");
  EXPECT_EQ(dataset.num_rows(), 2u);
}

TEST(IngestCsvTest, FileSmallerThanOneChunk) {
  // Default chunking (chunk_bytes = 0) on a tiny input: the engine clamps
  // to one thread and one chunk but must still match the reference.
  const std::string text = "x,label\n1,a\n2,b\n";
  auto serial = IngestCsvSerial(text, {});
  ASSERT_TRUE(serial.ok());
  IngestOptions ingest;
  ingest.num_threads = 8;
  auto parallel = IngestCsvParallel(text, {}, ingest);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectBitwiseEqual(serial.value(), parallel.value());
}

TEST(IngestCsvTest, EmptyInputRejectedByBothPaths) {
  const Status status = ExpectAllPathsReject("");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  ExpectAllPathsReject("\n\n  \n");  // only blank lines
}

TEST(IngestCsvTest, UnterminatedQuoteReportsOpeningLocation) {
  const Status status =
      ExpectAllPathsReject("x,label\n1,a\n\"oops,b\n2,c\n");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("CSV line 3, column 1"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("unterminated quoted field"),
            std::string::npos);
}

TEST(IngestCsvTest, JunkAfterClosingQuoteIsRejected) {
  const Status status = ExpectAllPathsReject("x,label\n\"a\"junk,b\n");
  EXPECT_NE(status.ToString().find("after closing quote"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("CSV line 2"), std::string::npos);
}

TEST(IngestCsvTest, WrongColumnCountReportsLineAndCounts) {
  const Status status =
      ExpectAllPathsReject("a,b,label\n1,2,x\n1,2\n3,4,y\n");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  const std::string message = status.ToString();
  EXPECT_NE(message.find("CSV line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("row has 2 fields, expected 3"), std::string::npos);
}

TEST(IngestCsvTest, ErrorLineNumbersCountQuotedNewlines) {
  // The quoted field on line 2 spans two physical lines, so the ragged row
  // after it sits on line 4.
  const Status status =
      ExpectAllPathsReject("x,label\n\"a\nb\",pos\nbad\n");
  // A single-field record is "ragged" relative to the 2-column header.
  EXPECT_NE(status.ToString().find("CSV line 4"), std::string::npos)
      << status.ToString();
}

TEST(IngestCsvTest, FirstErrorInLineOrderWins) {
  // Both chunks contain errors; the engine must report the earliest one,
  // exactly as the serial scan does.
  std::string text = "a,b,label\n";
  for (int r = 0; r < 50; ++r) text += "1,2,x\n";
  text += "ragged\n";  // line 52
  for (int r = 0; r < 50; ++r) text += "3,4,y\n";
  text += "also,ragged,very,much\n";
  const Status status = ExpectAllPathsReject(text, {}, 64);
  EXPECT_NE(status.ToString().find("CSV line 52"), std::string::npos)
      << status.ToString();
}

TEST(IngestCsvTest, EngineHonorsClassColumnAndHeaderOptions) {
  CsvReadOptions options;
  options.class_column = "label";
  ExpectAllPathsAgree("label,x\npos,1\nneg,2\n", options);

  CsvReadOptions no_header;
  no_header.has_header = false;
  const Dataset dataset = ExpectAllPathsAgree("1,2,x\n3,4,y\n", no_header);
  EXPECT_EQ(dataset.schema().attribute(0).name(), "attr0");
  EXPECT_EQ(dataset.num_rows(), 2u);
}

TEST(IngestEngineTest, MmapAndStreamingTransportsAgree) {
  const std::string path = ::testing::TempDir() + "/pnr_ingest_mmap.csv";
  {
    std::ofstream file(path);
    file << BigMixedCsv(200);
  }
  IngestOptions mmap_options;
  mmap_options.num_threads = 2;
  mmap_options.chunk_bytes = 512;
  IngestOptions stream_options = mmap_options;
  stream_options.allow_mmap = false;
  auto via_mmap = IngestEngine(mmap_options).LoadCsv(path);
  auto via_stream = IngestEngine(stream_options).LoadCsv(path);
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.status().ToString();
  ASSERT_TRUE(via_stream.ok()) << via_stream.status().ToString();
  ExpectBitwiseEqual(via_mmap.value(), via_stream.value());
  std::remove(path.c_str());
}

TEST(IngestEngineTest, EmptyFileReportsEmptyInput) {
  const std::string path = ::testing::TempDir() + "/pnr_ingest_empty.csv";
  { std::ofstream file(path); }
  // A zero-byte file takes a special path through MappedFile (mmap of
  // length 0 is not attempted); the mmap and streaming transports must
  // still produce the identical diagnostic, not just the same code.
  std::string first_error;
  for (const bool allow_mmap : {true, false}) {
    IngestOptions options;
    options.allow_mmap = allow_mmap;
    options.num_threads = 2;
    auto dataset = IngestEngine(options).LoadCsv(path);
    ASSERT_FALSE(dataset.ok());
    EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
    if (first_error.empty()) {
      first_error = dataset.status().ToString();
    } else {
      EXPECT_EQ(dataset.status().ToString(), first_error);
    }
  }
  EXPECT_NE(first_error.find("empty CSV input"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IngestEngineTest, QuotedFieldAtEofWithoutNewlineAgreesAcrossTransports) {
  // The last byte of the file is the closing quote of a quoted field — no
  // trailing newline. EOF is a record end, so this must parse, and the
  // mmap transport (which hands the parser a non-NUL-terminated view) must
  // agree byte-for-byte with streaming and with the in-memory parse.
  const std::string text =
      "x,label\n"
      "\"multi\nline\",pos\n"
      "7,\"neg\"";
  const Dataset in_memory = ExpectAllPathsAgree(text, {}, 8);
  ASSERT_EQ(in_memory.num_rows(), 2u);
  EXPECT_EQ(in_memory.schema().class_attr().CategoryName(in_memory.label(1)),
            "neg");

  const std::string path = ::testing::TempDir() + "/pnr_ingest_qeof.csv";
  {
    std::ofstream file(path, std::ios::binary);
    file << text;
  }
  for (const bool allow_mmap : {true, false}) {
    IngestOptions options;
    options.allow_mmap = allow_mmap;
    options.num_threads = 2;
    options.chunk_bytes = 8;
    auto loaded = IngestEngine(options).LoadCsv(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectBitwiseEqual(in_memory, loaded.value());
  }
  std::remove(path.c_str());
}

TEST(IngestCsvTest, LoneCarriageReturnIsFieldSpaceNotARecordSeparator) {
  // Classic-Mac '\r'-only endings are NOT record separators in this
  // grammar: '\r' is field-space, so a file with no '\n' is one record.
  // With a header that record is consumed and the parse fails — but it
  // must fail identically on every path, never split differently between
  // the serial reference and a chunked parallel parse.
  const Status status = ExpectAllPathsReject("x,label\r1,a\r2,b\r", {}, 4);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("no data rows"), std::string::npos);

  // A trailing lone '\r' at EOF (after a normal final record) is trimmed
  // like any other field-space.
  const Dataset dataset = ExpectAllPathsAgree("x,label\n1,a\n2,b\r", {}, 4);
  ASSERT_EQ(dataset.num_rows(), 2u);
  EXPECT_EQ(dataset.schema().class_attr().CategoryName(dataset.label(1)),
            "b");
}

TEST(IngestEngineTest, MissingFileIsIOError) {
  IngestOptions options;
  options.num_threads = 4;
  auto dataset = IngestEngine(options).LoadCsv("/nonexistent/file.csv");
  EXPECT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// ARFF through the engine.
// ---------------------------------------------------------------------------

constexpr const char* kArff =
    "% synthetic sensor capture\n"
    "@relation demo\n"
    "@attribute temp numeric\n"
    "@attribute mode {idle, busy, down}\n"
    "@attribute class {pos, neg}\n"
    "@data\n"
    "1.5, idle, pos\n"
    "2, ?, neg   % trailing comment\n"
    "?, down, pos\n"
    "\n"
    "-3.25, 'busy', neg\n";

TEST(IngestArffTest, ParallelMatchesSerialBitwise) {
  ArffReadOptions options;
  auto serial = ReadArffFromString(kArff, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(serial->num_rows(), 4u);
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    IngestOptions ingest;
    ingest.num_threads = threads;
    ingest.chunk_bytes = 8;  // force a chunk per row or two
    auto parallel = IngestEngine(ingest).ParseArff(kArff, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectBitwiseEqual(serial.value(), parallel.value());
  }
}

TEST(IngestArffTest, MissingValueConventions) {
  auto dataset = ReadArffFromString(kArff);
  ASSERT_TRUE(dataset.ok());
  EXPECT_DOUBLE_EQ(dataset->numeric(2, 0), 0.0);  // numeric '?' -> 0.0
  EXPECT_EQ(dataset->categorical(1, 1), kInvalidCategory);  // nominal '?'
  EXPECT_EQ(dataset->categorical(3, 1), 1);  // quoted 'busy'
}

TEST(IngestArffTest, UndeclaredValueReportsLineAndColumn) {
  const std::string text =
      "@relation r\n"
      "@attribute a numeric\n"
      "@attribute class {x, y}\n"
      "@data\n"
      "1, x\n"
      "2, z\n";
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    ArffReadOptions options;
    options.num_threads = threads;
    IngestOptions ingest;
    ingest.num_threads = threads;
    ingest.chunk_bytes = threads == 1 ? 0 : 4;
    auto dataset = IngestEngine(ingest).ParseArff(text, options);
    ASSERT_FALSE(dataset.ok());
    const std::string message = dataset.status().ToString();
    EXPECT_NE(message.find("ARFF line 6, column 2"), std::string::npos)
        << message;
    EXPECT_NE(message.find("undeclared class value 'z'"), std::string::npos);
  }
}

TEST(IngestArffTest, RaggedRowReportsEarliestLine) {
  std::string text =
      "@relation r\n"
      "@attribute a numeric\n"
      "@attribute class {x}\n"
      "@data\n";
  for (int r = 0; r < 30; ++r) text += "1, x\n";
  text += "1, x, extra\n";  // line 35
  for (int r = 0; r < 30; ++r) text += "2, x\n";
  IngestOptions ingest;
  ingest.num_threads = 8;
  ingest.chunk_bytes = 32;
  auto dataset = IngestEngine(ingest).ParseArff(text);
  ASSERT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().ToString().find("ARFF line 35"),
            std::string::npos)
      << dataset.status().ToString();
  EXPECT_NE(dataset.status().ToString().find("row has 3 fields, expected 2"),
            std::string::npos);
}

}  // namespace
}  // namespace pnr
