#include "synth/kdd_sim.h"

#include <gtest/gtest.h>

namespace pnr {
namespace {

KddSimData Generate(size_t train = 60000, size_t test = 40000,
                    uint64_t seed = 77) {
  KddSimParams params;
  params.train_records = train;
  params.test_records = test;
  params.seed = seed;
  auto data = GenerateKddSim(params);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

TEST(KddSimTest, ParamsValidation) {
  KddSimParams params;
  params.train_records = 10;
  EXPECT_FALSE(params.Validate().ok());
  EXPECT_TRUE(KddSimParams().Validate().ok());
}

TEST(KddSimTest, SchemaHasKddAttributes) {
  const KddSimData data = Generate(2000, 2000);
  const Schema& schema = data.train.schema();
  EXPECT_EQ(schema.num_attributes(), 12u);
  EXPECT_TRUE(schema.FindAttribute("protocol_type").ok());
  EXPECT_TRUE(schema.FindAttribute("service").ok());
  EXPECT_TRUE(schema.FindAttribute("src_bytes").ok());
  EXPECT_EQ(schema.num_classes(), 5u);
  EXPECT_NE(schema.class_attr().FindCategory("probe"), kInvalidCategory);
  EXPECT_NE(schema.class_attr().FindCategory("r2l"), kInvalidCategory);
}

TEST(KddSimTest, TrainClassProportionsMatchContestSample) {
  const KddSimData data = Generate(120000, 4000);
  const Schema& schema = data.train.schema();
  const double n = static_cast<double>(data.train.num_rows());
  const double probe =
      static_cast<double>(
          data.train.CountClass(schema.class_attr().FindCategory("probe"))) /
      n;
  const double r2l =
      static_cast<double>(
          data.train.CountClass(schema.class_attr().FindCategory("r2l"))) /
      n;
  const double dos =
      static_cast<double>(
          data.train.CountClass(schema.class_attr().FindCategory("dos"))) /
      n;
  EXPECT_NEAR(probe, 0.0083, 0.003);
  EXPECT_NEAR(r2l, 0.0023, 0.0015);
  EXPECT_NEAR(dos, 0.79, 0.02);
}

TEST(KddSimTest, TestDistributionIsShifted) {
  const KddSimData data = Generate(4000, 120000);
  const Schema& schema = data.test.schema();
  const double n = static_cast<double>(data.test.num_rows());
  const double r2l =
      static_cast<double>(
          data.test.CountClass(schema.class_attr().FindCategory("r2l"))) /
      n;
  const double probe =
      static_cast<double>(
          data.test.CountClass(schema.class_attr().FindCategory("probe"))) /
      n;
  // The paper's test set: r2l ~5.2%, probe ~1.34%.
  EXPECT_NEAR(r2l, 0.052, 0.01);
  EXPECT_NEAR(probe, 0.0134, 0.005);
}

TEST(KddSimTest, NovelR2lSubclassesOnlyInTest) {
  // snmp-style r2l attacks ride udp; no training r2l record does.
  const KddSimData data = Generate(60000, 60000);
  const Schema& schema = data.train.schema();
  const CategoryId r2l = schema.class_attr().FindCategory("r2l");
  const AttrIndex proto = schema.FindAttribute("protocol_type").value();
  const CategoryId udp =
      schema.attribute(proto).FindCategory("udp");
  size_t train_udp_r2l = 0;
  for (RowId r = 0; r < data.train.num_rows(); ++r) {
    if (data.train.label(r) == r2l &&
        data.train.categorical(r, proto) == udp) {
      ++train_udp_r2l;
    }
  }
  EXPECT_EQ(train_udp_r2l, 0u);
  size_t test_udp_r2l = 0;
  size_t test_r2l = 0;
  for (RowId r = 0; r < data.test.num_rows(); ++r) {
    if (data.test.label(r) != r2l) continue;
    ++test_r2l;
    if (data.test.categorical(r, proto) == udp) ++test_udp_r2l;
  }
  ASSERT_GT(test_r2l, 0u);
  // The novel udp subclasses dominate the test r2l mix (paper: the test
  // set contains new subclasses that cap achievable recall).
  EXPECT_GT(static_cast<double>(test_udp_r2l) /
                static_cast<double>(test_r2l),
            0.4);
}

TEST(KddSimTest, FtpImpurityIsPresent) {
  // The paper's motivating example: service=ftp spans r2l, dos (flood) and
  // normal traffic, so a pure presence rule on ftp cannot be precise.
  const KddSimData data = Generate(120000, 4000);
  const Schema& schema = data.train.schema();
  const AttrIndex service = schema.FindAttribute("service").value();
  const CategoryId ftp = schema.attribute(service).FindCategory("ftp");
  const CategoryId r2l = schema.class_attr().FindCategory("r2l");
  const CategoryId dos = schema.class_attr().FindCategory("dos");
  const CategoryId normal = schema.class_attr().FindCategory("normal");
  size_t ftp_r2l = 0;
  size_t ftp_dos = 0;
  size_t ftp_normal = 0;
  for (RowId r = 0; r < data.train.num_rows(); ++r) {
    if (data.train.categorical(r, service) != ftp) continue;
    const CategoryId label = data.train.label(r);
    if (label == r2l) ++ftp_r2l;
    if (label == dos) ++ftp_dos;
    if (label == normal) ++ftp_normal;
  }
  EXPECT_GT(ftp_r2l, 0u);
  EXPECT_GT(ftp_dos, 0u);
  EXPECT_GT(ftp_normal, 0u);
}

TEST(KddSimTest, DeterministicGivenSeed) {
  const KddSimData a = Generate(3000, 3000, 123);
  const KddSimData b = Generate(3000, 3000, 123);
  for (RowId r = 0; r < a.train.num_rows(); ++r) {
    EXPECT_EQ(a.train.label(r), b.train.label(r));
    EXPECT_DOUBLE_EQ(a.train.numeric(r, 0), b.train.numeric(r, 0));
  }
}

TEST(KddSimTest, NumericFeaturesNonNegative) {
  const KddSimData data = Generate(5000, 2000);
  const Schema& schema = data.train.schema();
  for (RowId r = 0; r < data.train.num_rows(); ++r) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const AttrIndex attr = static_cast<AttrIndex>(a);
      if (!schema.attribute(attr).is_numeric()) continue;
      EXPECT_GE(data.train.numeric(r, attr), 0.0);
    }
  }
}


TEST(KddSimTest, ProbeMixContainsTestOnlyStructure) {
  // The test split's probe mix includes novel sweep variants; verify that
  // the class proportions of probe differ between splits (the paper's
  // "different distribution" property) beyond sampling noise.
  const KddSimData data = Generate(80000, 80000);
  const Schema& schema = data.train.schema();
  const CategoryId probe = schema.class_attr().FindCategory("probe");
  const double train_share =
      static_cast<double>(data.train.CountClass(probe)) /
      static_cast<double>(data.train.num_rows());
  const double test_share =
      static_cast<double>(data.test.CountClass(probe)) /
      static_cast<double>(data.test.num_rows());
  EXPECT_GT(test_share, 1.3 * train_share);
}

TEST(KddSimTest, SerrorRateIsZeroInflated) {
  // Regression for the "== 0 razor signature" generator flaw: both exact
  // zeros and positive error rates must be common among normal traffic.
  const KddSimData data = Generate(40000, 2000);
  const Schema& schema = data.train.schema();
  const AttrIndex serror = schema.FindAttribute("serror_rate").value();
  const CategoryId normal = schema.class_attr().FindCategory("normal");
  size_t zeros = 0;
  size_t positives = 0;
  size_t normals = 0;
  for (RowId r = 0; r < data.train.num_rows(); ++r) {
    if (data.train.label(r) != normal) continue;
    ++normals;
    if (data.train.numeric(r, serror) == 0.0) {
      ++zeros;
    } else {
      ++positives;
    }
  }
  ASSERT_GT(normals, 0u);
  EXPECT_GT(static_cast<double>(zeros) / static_cast<double>(normals), 0.3);
  EXPECT_GT(static_cast<double>(positives) / static_cast<double>(normals),
            0.05);
}

}  // namespace
}  // namespace pnr
