#include "pnrule/n_phase.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pnrule/p_phase.h"
#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeNumericDataset;

// x0 holds a single impure target peak around 5; x1 separates the false
// positives: negatives inside the peak sit in a narrow x1 band around 2,
// while positives are uniform on x1 — the paper's absence-signature setup.
Dataset AbsenceSignatureDataset(int pos, int neg_in_peak, int background) {
  Rng rng(202);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < pos; ++i) {
    rows.push_back(
        {{5.0 + rng.NextDouble(-0.05, 0.05), rng.NextDouble(0, 10)}, true});
  }
  for (int i = 0; i < neg_in_peak; ++i) {
    rows.push_back({{5.0 + rng.NextDouble(-0.05, 0.05),
                     2.0 + rng.NextDouble(-0.05, 0.05)},
                    false});
  }
  for (int i = 0; i < background; ++i) {
    rows.push_back({{rng.NextDouble(0, 10), rng.NextDouble(0, 10)}, false});
  }
  return MakeNumericDataset(2, rows);
}

PnruleConfig DefaultConfig() {
  PnruleConfig config;
  config.min_coverage_fraction = 0.99;
  config.n_recall_lower_limit = 0.9;
  config.min_support_fraction = 0.05;
  return config;
}

struct PhaseOutputs {
  PPhaseResult p;
  NPhaseResult n;
};

PhaseOutputs RunBothPhases(const Dataset& dataset,
                           const PnruleConfig& config) {
  PhaseOutputs out;
  out.p = RunPPhase(dataset, dataset.AllRows(), kPos, config);
  out.n = RunNPhase(dataset, out.p.covered_rows, kPos,
                    out.p.total_positive_weight,
                    out.p.covered_positive_weight, config);
  return out;
}

TEST(NPhaseTest, LearnsAbsenceSignature) {
  const Dataset dataset = AbsenceSignatureDataset(60, 30, 500);
  const PhaseOutputs out = RunBothPhases(dataset, DefaultConfig());
  ASSERT_FALSE(out.p.rules.empty());
  ASSERT_FALSE(out.n.rules.empty());
  // The N-rules should remove most covered negatives (the x1 ~ 2 band)
  // while erasing few positives.
  double removed_negatives = 0.0;
  for (const Rule& rule : out.n.rules.rules()) {
    removed_negatives += rule.train_stats.positive;  // pseudo-target
  }
  const double covered_negatives =
      dataset.TotalWeight(out.p.covered_rows) -
      out.p.covered_positive_weight;
  EXPECT_GT(removed_negatives, 0.7 * covered_negatives);
  EXPECT_LT(out.n.erased_positive_weight,
            0.1 * out.p.covered_positive_weight + 1e-9);
}

TEST(NPhaseTest, RespectsRecallFloor) {
  const Dataset dataset = AbsenceSignatureDataset(60, 30, 500);
  PnruleConfig config = DefaultConfig();
  config.n_recall_lower_limit = 0.95;
  const PhaseOutputs out = RunBothPhases(dataset, config);
  const double kept = out.p.covered_positive_weight -
                      out.n.erased_positive_weight;
  EXPECT_GE(kept / out.p.total_positive_weight, 0.95 - 1e-9);
}

TEST(NPhaseTest, NoFalsePositivesMeansNoNRules) {
  // Pure target peak: the P-rule covers no negatives, so there is nothing
  // for the N-phase to do.
  Rng rng(7);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back(
        {{5.0 + rng.NextDouble(-0.01, 0.01), rng.NextDouble(0, 10)}, true});
  }
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble(0, 10);
    if (x > 4.8 && x < 5.2) continue;  // keep the peak pure
    rows.push_back({{x, rng.NextDouble(0, 10)}, false});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  const PhaseOutputs out = RunBothPhases(dataset, DefaultConfig());
  EXPECT_TRUE(out.n.rules.empty());
  EXPECT_DOUBLE_EQ(out.n.erased_positive_weight, 0.0);
}

TEST(NPhaseTest, EmptyCoverageYieldsNothing) {
  const Dataset dataset = AbsenceSignatureDataset(10, 5, 50);
  const NPhaseResult result =
      RunNPhase(dataset, {}, kPos, 10.0, 0.0, DefaultConfig());
  EXPECT_TRUE(result.rules.empty());
}

TEST(NPhaseTest, DisabledWithZeroCap) {
  const Dataset dataset = AbsenceSignatureDataset(60, 30, 500);
  PnruleConfig config = DefaultConfig();
  config.max_n_rules = 0;
  const PhaseOutputs out = RunBothPhases(dataset, config);
  EXPECT_TRUE(out.n.rules.empty());
}

TEST(NPhaseTest, NRuleStatsUsePseudoTarget) {
  const Dataset dataset = AbsenceSignatureDataset(60, 30, 500);
  const PhaseOutputs out = RunBothPhases(dataset, DefaultConfig());
  for (const Rule& rule : out.n.rules.rules()) {
    // positive (pseudo-target = absence) never exceeds coverage.
    EXPECT_LE(rule.train_stats.positive, rule.train_stats.covered + 1e-9);
    EXPECT_GT(rule.train_stats.positive, 0.0);
  }
}


TEST(NPhaseTest, UnreachableRecallFloorDoesNotGrowMonsterRules) {
  // Regression: when the P-phase coverage already sits below rn, the
  // forced-refinement guard must not grow unbounded rules (which used to
  // explode the MDL and kill the phase).
  const Dataset dataset = AbsenceSignatureDataset(60, 30, 500);
  PnruleConfig config = DefaultConfig();
  config.n_recall_lower_limit = 1.0;  // unreachable: any erasure violates
  const PhaseOutputs out = RunBothPhases(dataset, config);
  for (const Rule& rule : out.n.rules.rules()) {
    EXPECT_LE(rule.size(), 12u) << rule.ToString(dataset.schema());
  }
}

}  // namespace
}  // namespace pnr
