#include "eval/confusion.h"

#include <gtest/gtest.h>

namespace pnr {
namespace {

Confusion PaperR2lC45() {
  // Table 6, C4.5rules on r2l: Rec 5.23, Prec 96.36, F .0993. Reconstruct
  // counts consistent with those rates.
  Confusion c;
  c.true_positives = 846.0;    // 5.23% of 16175 actual positives
  c.false_negatives = 16175.0 - 846.0;
  c.false_positives = 32.0;    // precision 846 / 878 ~ 96.36%
  c.true_negatives = 100000.0;
  return c;
}

TEST(ConfusionTest, RecallPrecisionFMatchPaperDefinition) {
  const Confusion c = PaperR2lC45();
  EXPECT_NEAR(c.recall(), 0.0523, 0.0001);
  EXPECT_NEAR(c.precision(), 0.9636, 0.001);
  // F = 2RP/(R+P).
  const double expected_f = 2.0 * c.recall() * c.precision() /
                            (c.recall() + c.precision());
  EXPECT_DOUBLE_EQ(c.f_measure(), expected_f);
  EXPECT_NEAR(c.f_measure(), 0.0993, 0.001);
}

TEST(ConfusionTest, DegenerateCases) {
  Confusion empty;
  EXPECT_DOUBLE_EQ(empty.recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.f_measure(), 0.0);
  EXPECT_DOUBLE_EQ(empty.accuracy(), 0.0);

  Confusion all_negative;
  all_negative.true_negatives = 100.0;
  EXPECT_DOUBLE_EQ(all_negative.recall(), 0.0);
  EXPECT_DOUBLE_EQ(all_negative.accuracy(), 1.0);
}

TEST(ConfusionTest, FIsInZeroOneAndBoundedByMinMax) {
  Confusion c;
  c.true_positives = 30.0;
  c.false_negatives = 70.0;
  c.false_positives = 10.0;
  c.true_negatives = 890.0;
  const double f = c.f_measure();
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  EXPECT_LE(f, std::max(c.recall(), c.precision()));
  EXPECT_GE(f, std::min(c.recall(), c.precision()));
}

TEST(ConfusionTest, FBetaWeighting) {
  Confusion c;
  c.true_positives = 50.0;
  c.false_negatives = 50.0;  // recall 0.5
  c.false_positives = 5.0;   // precision ~0.909
  c.true_negatives = 895.0;
  // beta=1 equals F.
  EXPECT_DOUBLE_EQ(c.f_beta(1.0), c.f_measure());
  // beta > 1 weights recall more: with recall < precision, F2 < F1... F2
  // moves toward recall.
  EXPECT_LT(c.f_beta(2.0), c.f_measure() + 1e-12);
  // beta < 1 moves toward precision.
  EXPECT_GT(c.f_beta(0.5), c.f_measure());
}

TEST(ConfusionTest, AddAccumulatesWeightedOutcomes) {
  Confusion c;
  c.Add(true, true, 2.0);    // TP weight 2
  c.Add(true, false);        // FN
  c.Add(false, true, 3.0);   // FP weight 3
  c.Add(false, false);       // TN
  EXPECT_DOUBLE_EQ(c.true_positives, 2.0);
  EXPECT_DOUBLE_EQ(c.false_negatives, 1.0);
  EXPECT_DOUBLE_EQ(c.false_positives, 3.0);
  EXPECT_DOUBLE_EQ(c.true_negatives, 1.0);
  EXPECT_DOUBLE_EQ(c.total(), 7.0);
  EXPECT_DOUBLE_EQ(c.actual_positives(), 3.0);
  EXPECT_DOUBLE_EQ(c.predicted_positives(), 5.0);
}

TEST(ConfusionTest, MergeSumsAllCells) {
  Confusion a;
  a.Add(true, true);
  Confusion b;
  b.Add(false, true);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.true_positives, 1.0);
  EXPECT_DOUBLE_EQ(a.false_positives, 1.0);
}

TEST(ConfusionTest, ToStringContainsMetrics) {
  Confusion c;
  c.Add(true, true);
  const std::string text = c.ToString();
  EXPECT_NE(text.find("TP=1.0"), std::string::npos);
  EXPECT_NE(text.find("F=1.0000"), std::string::npos);
}

}  // namespace
}  // namespace pnr
