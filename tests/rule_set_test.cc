#include "rules/rule_set.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pnr {
namespace {

using testutil::MakeMixedDataset;

Dataset ThreeRows() {
  return MakeMixedDataset({
      {1.0, 0, true},   // row 0
      {2.0, 1, false},  // row 1
      {3.0, 2, false},  // row 2
  });
}

TEST(RuleSetTest, FirstMatchRespectsOrder) {
  const Dataset dataset = ThreeRows();
  RuleSet rules;
  rules.AddRule(Rule({Condition::Greater(0, 1.5)}));   // rows 1, 2
  rules.AddRule(Rule({Condition::CatEqual(1, 1)}));    // row 1 (shadowed)
  rules.AddRule(Rule({Condition::LessEqual(0, 1.0)})); // row 0
  EXPECT_EQ(rules.FirstMatch(dataset, 0), 2);
  EXPECT_EQ(rules.FirstMatch(dataset, 1), 0);  // rule 0 shadows rule 1
  EXPECT_EQ(rules.FirstMatch(dataset, 2), 0);
}

TEST(RuleSetTest, NoMatchReturnsSentinel) {
  const Dataset dataset = ThreeRows();
  RuleSet rules;
  rules.AddRule(Rule({Condition::Greater(0, 99.0)}));
  EXPECT_EQ(rules.FirstMatch(dataset, 0), kNoRule);
  EXPECT_FALSE(rules.AnyMatch(dataset, 0));
  RuleSet empty;
  EXPECT_EQ(empty.FirstMatch(dataset, 0), kNoRule);
}

TEST(RuleSetTest, CoveredRowsIsUnionInRowOrder) {
  const Dataset dataset = ThreeRows();
  RuleSet rules;
  rules.AddRule(Rule({Condition::LessEqual(0, 1.0)}));  // row 0
  rules.AddRule(Rule({Condition::Greater(0, 2.5)}));    // row 2
  EXPECT_EQ(rules.CoveredRows(dataset, dataset.AllRows()),
            (RowSubset{0, 2}));
}

TEST(RuleSetTest, RemoveRuleShiftsIndices) {
  const Dataset dataset = ThreeRows();
  RuleSet rules;
  rules.AddRule(Rule({Condition::Greater(0, 1.5)}));
  rules.AddRule(Rule({Condition::LessEqual(0, 1.0)}));
  rules.RemoveRule(0);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.FirstMatch(dataset, 0), 0);
  EXPECT_EQ(rules.FirstMatch(dataset, 2), kNoRule);
}

TEST(RuleSetTest, ToStringListsRulesWithStats) {
  const Dataset dataset = ThreeRows();
  RuleSet rules;
  Rule rule({Condition::LessEqual(0, 1.0)});
  rule.train_stats.covered = 10.0;
  rule.train_stats.positive = 9.0;
  rules.AddRule(rule);
  const std::string text = rules.ToString(dataset.schema());
  EXPECT_NE(text.find("x <= 1.0000"), std::string::npos);
  EXPECT_NE(text.find("acc=0.9000"), std::string::npos);
}

}  // namespace
}  // namespace pnr
