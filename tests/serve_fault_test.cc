// Fault-injection integration test for the serving stack: with a seeded
// schedule of EINTR, short transfers and hard failures injected into
// accept/recv/send, the server must keep answering (some requests complete
// with valid HTTP), degrade failures cleanly (a broken connection dies
// alone, never the process or its siblings), and still drain on Shutdown.
//
// The injector is process-global, so the loopback *client's* syscalls draw
// from the same schedule — client-side Status errors are expected and
// tolerated; the assertions are server-liveness invariants, not per-request
// outcomes. Runs under the sanitizer matrix via the `sanitize` label.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "pnrule/model_io.h"
#include "testing/fault.h"

namespace pnr {
namespace {

using fault::FaultOp;
using fault::FaultPlan;
using fault::OpBit;
using fault::ScopedFaultPlan;

// A tiny hand-written model: serving behaviour under faults does not need
// a trained classifier, and parsing one keeps this suite fast enough to
// run under TSan/ASan.
Schema TinySchema() {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("a"));
  schema.AddAttribute(
      Attribute::Categorical("color", {"red", "green", "blue"}));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  return schema;
}

ModelRegistry* MakeTinyRegistry() {
  const Schema schema = TinySchema();
  auto model = ParsePnruleModel(
      "pnrule-model v1\nthreshold 0.5\nuse_score_matrix 0\n"
      "p-rules 1\nrule 1 6 4\ncond le a 2.5\nn-rules 0\nscores 1 0\n"
      "0.9:6\nend\n",
      schema);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  auto* registry = new ModelRegistry;
  registry->Install("m", schema, std::move(model).value());
  return registry;
}

constexpr char kPredictBody[] =
    "{\"model\":\"m\",\"rows\":[{\"a\":1.5,\"color\":\"red\"}]}";

// One request on a fresh connection; false when any leg of it (client- or
// server-side) was killed by the schedule.
bool TryPredict(uint16_t port, int* status_out) {
  auto connect = HttpClient::Connect(port);
  if (!connect.ok()) return false;
  HttpClient client = std::move(connect).value();
  auto response = client.Roundtrip("POST", "/v1/predict", kPredictBody,
                                   /*timeout_ms=*/5000);
  if (!response.ok()) return false;
  *status_out = response->status;
  return true;
}

TEST(ServeFaultTest, ServerDegradesCleanlyUnderNetworkFaultStorm) {
  std::unique_ptr<ModelRegistry> registry(MakeTinyRegistry());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 2;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  size_t completed = 0;
  size_t ok_200 = 0;
  uint64_t injected = 0;
  {
    FaultPlan plan;
    plan.seed = 20260806;
    plan.ops = OpBit(FaultOp::kAccept) | OpBit(FaultOp::kRecv) |
               OpBit(FaultOp::kSend);
    plan.eintr_prob = 0.10;
    plan.short_prob = 0.25;
    // Short transfers clamp to 1 byte, so one request is ~10^2 syscalls;
    // the per-call hard-failure rate must stay small for a meaningful
    // fraction of requests to survive the whole gauntlet.
    plan.fail_prob = 0.002;
    ScopedFaultPlan scoped(plan);
    for (int i = 0; i < 60; ++i) {
      int status = 0;
      if (!TryPredict(port, &status)) continue;
      ++completed;
      if (status == 200) ++ok_200;
      // Every completed response is well-formed HTTP with a status the
      // server actually speaks — a torn send must kill the connection,
      // not leak a half-written response that parses as something else.
      EXPECT_TRUE(status == 200 || status == 400 || status == 404 ||
                  status == 413 || status == 500 || status == 503 ||
                  status == 504)
          << "unexpected status " << status;
    }
    injected = scoped.stats().total_injected();
  }
  // The schedule really fired, and the server survived enough of it to do
  // its job: under this seed most connections complete (EINTR and short
  // transfers are recoverable; only fail_prob kills a connection).
  EXPECT_GT(injected, 0u);
  EXPECT_GT(completed, 10u);
  EXPECT_GT(ok_200, 0u);

  // With the plan gone the server is fully healthy — no poisoned state,
  // no lost workers, no stuck acceptor.
  int status = 0;
  ASSERT_TRUE(TryPredict(port, &status));
  EXPECT_EQ(status, 200);

  // Graceful drain still works after the storm.
  server.Shutdown();
  EXPECT_FALSE(server.running());
}

TEST(ServeFaultTest, AcceptEintrStormDoesNotDropConnections) {
  std::unique_ptr<ModelRegistry> registry(MakeTinyRegistry());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 2;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());

  FaultPlan plan;
  plan.seed = 99;
  plan.ops = OpBit(FaultOp::kAccept);
  plan.eintr_prob = 0.5;  // every other accept() interrupted, none fail
  ScopedFaultPlan scoped(plan);
  size_t ok_200 = 0;
  for (int i = 0; i < 20; ++i) {
    int status = 0;
    if (TryPredict(server.port(), &status) && status == 200) ++ok_200;
  }
  // EINTR is retried inside AcceptNb: every connection lands.
  EXPECT_EQ(ok_200, 20u);
  EXPECT_GT(scoped.stats().eintrs[static_cast<int>(FaultOp::kAccept)], 0u);
  server.Shutdown();
}

}  // namespace
}  // namespace pnr
