// SortedColumnCache invalidation semantics — the contract the engine's
// correctness rests on: columns are sorted once per dataset, full-row
// prefix sums are rebuilt only when weights (or values) change, and the
// subset path produces bit-identical columns whichever build strategy it
// picks. Registered under the `sanitize` ctest label so the TSan/ASan
// builds exercise it (tools/run_sanitizers.sh).

#include "induction/sorted_column_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace pnr {
namespace {

constexpr CategoryId kPos = 1;

Dataset MakeDataset(size_t num_rows, uint64_t seed) {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  schema.AddAttribute(Attribute::Numeric("y"));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  Dataset dataset(std::move(schema));
  Rng rng(seed);
  for (size_t i = 0; i < num_rows; ++i) {
    const RowId r = dataset.AddRow();
    // Heavy ties on x: exercises the (value, row id) tie-break.
    dataset.set_numeric(r, 0, std::floor(rng.NextDouble(0, 5)));
    dataset.set_numeric(r, 1, rng.NextDouble(-1, 1));
    dataset.set_label(r, rng.NextBool(0.4) ? kPos : 0);
  }
  return dataset;
}

TEST(SortedColumnCacheTest, SortsEachColumnExactlyOnce) {
  Dataset dataset = MakeDataset(100, 1);
  SortedColumnCache cache(dataset);
  const RowSubset rows = dataset.AllRows();
  SortedColumn scratch;

  for (int call = 0; call < 5; ++call) {
    cache.Column(0, kPos, rows, {}, &scratch);
    cache.Column(1, kPos, rows, {}, &scratch);
  }
  EXPECT_EQ(cache.sort_count(), 2u);        // one sort per attribute
  EXPECT_EQ(cache.full_build_count(), 2u);  // one prefix build per attribute
}

TEST(SortedColumnCacheTest, ColumnIsSortedWithPrefixSums) {
  Dataset dataset = MakeDataset(64, 2);
  dataset.set_weight(3, 2.5);
  SortedColumnCache cache(dataset);
  const RowSubset rows = dataset.AllRows();
  SortedColumn scratch;
  const SortedColumn& col = cache.Column(0, kPos, rows, {}, &scratch);

  ASSERT_EQ(col.values.size(), dataset.num_rows());
  for (size_t i = 1; i < col.values.size(); ++i) {
    EXPECT_LE(col.values[i - 1], col.values[i]);
  }
  ASSERT_EQ(col.prefix_weight.size(), col.values.size() + 1);
  EXPECT_DOUBLE_EQ(col.prefix_weight.front(), 0.0);
  EXPECT_DOUBLE_EQ(col.prefix_weight.back(), dataset.TotalWeight(rows));
  EXPECT_DOUBLE_EQ(col.prefix_positive.back(),
                   dataset.ClassWeight(rows, kPos));
  // Boundaries mark exactly the distinct-value steps.
  for (size_t b : col.boundaries) {
    ASSERT_GT(b, 0u);
    EXPECT_LT(col.values[b - 1], col.values[b]);
  }
}

TEST(SortedColumnCacheTest, WeightChangeRebuildsPrefixSumsButNotOrder) {
  Dataset dataset = MakeDataset(80, 3);
  SortedColumnCache cache(dataset);
  const RowSubset rows = dataset.AllRows();
  SortedColumn scratch;
  cache.Column(0, kPos, rows, {}, &scratch);
  ASSERT_EQ(cache.sort_count(), 1u);
  ASSERT_EQ(cache.full_build_count(), 1u);

  dataset.set_weight(10, 4.0);  // bumps weight_version only
  const SortedColumn& col = cache.Column(0, kPos, rows, {}, &scratch);
  EXPECT_EQ(cache.sort_count(), 1u) << "order must survive weight changes";
  EXPECT_EQ(cache.full_build_count(), 2u) << "prefix sums must rebuild";
  EXPECT_DOUBLE_EQ(col.prefix_weight.back(), dataset.TotalWeight(rows));

  // Unchanged weights: fully cached again.
  cache.Column(0, kPos, rows, {}, &scratch);
  EXPECT_EQ(cache.full_build_count(), 2u);
}

TEST(SortedColumnCacheTest, ValueChangeRebuildsOrder) {
  Dataset dataset = MakeDataset(80, 4);
  SortedColumnCache cache(dataset);
  const RowSubset rows = dataset.AllRows();
  SortedColumn scratch;
  cache.Column(0, kPos, rows, {}, &scratch);
  ASSERT_EQ(cache.sort_count(), 1u);

  dataset.set_numeric(5, 0, 1234.5);  // bumps data_version
  const SortedColumn& col = cache.Column(0, kPos, rows, {}, &scratch);
  EXPECT_EQ(cache.sort_count(), 2u) << "value change must re-sort";
  EXPECT_DOUBLE_EQ(col.values.back(), 1234.5);
}

TEST(SortedColumnCacheTest, TargetChangeRebuildsPositivePrefix) {
  Dataset dataset = MakeDataset(80, 5);
  SortedColumnCache cache(dataset);
  const RowSubset rows = dataset.AllRows();
  SortedColumn scratch;
  cache.Column(0, kPos, rows, {}, &scratch);
  const SortedColumn& col = cache.Column(0, /*target=*/0, rows, {}, &scratch);
  EXPECT_EQ(cache.sort_count(), 1u);
  EXPECT_EQ(cache.full_build_count(), 2u);
  EXPECT_DOUBLE_EQ(col.prefix_positive.back(),
                   dataset.ClassWeight(rows, 0));
}

TEST(SortedColumnCacheTest, SubsetColumnsAreBitIdenticalToFullBuild) {
  // The cache picks between a direct sort (small subsets) and filtering the
  // cached full order (large subsets). Both must produce byte-identical
  // columns — this is what keeps the search's float accumulation, and hence
  // the learned models, independent of the path taken.
  Dataset dataset = MakeDataset(200, 6);
  const auto column_for = [&](const RowSubset& rows) {
    SortedColumnCache cache(dataset);
    std::vector<uint8_t> mask(dataset.num_rows(), 0);
    for (RowId r : rows) mask[r] = 1;
    SortedColumn scratch;
    return cache.Column(0, kPos, rows, mask, &scratch);
  };

  // A small subset (direct-sort path) and a large one (filter path).
  RowSubset small, large;
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    if (r % 25 == 0) small.push_back(r);
    if (r % 10 != 0) large.push_back(r);
  }
  for (const RowSubset& rows : {small, large}) {
    const SortedColumn via_cache = column_for(rows);
    // Reference: brute-force (value, row id) sort of the subset.
    std::vector<std::pair<double, RowId>> entries;
    for (RowId r : rows) entries.push_back({dataset.numeric(r, 0), r});
    std::sort(entries.begin(), entries.end());
    ASSERT_EQ(via_cache.values.size(), entries.size());
    double w = 0.0, p = 0.0;
    for (size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(via_cache.values[i], entries[i].first);
      w += dataset.weight(entries[i].second);
      if (dataset.label(entries[i].second) == kPos) {
        p += dataset.weight(entries[i].second);
      }
      // Bitwise: the accumulation order is pinned by the (value, row id)
      // total order, so the sums are exactly reproducible.
      EXPECT_EQ(via_cache.prefix_weight[i + 1], w);
      EXPECT_EQ(via_cache.prefix_positive[i + 1], p);
    }
  }
}

TEST(SortedColumnCacheTest, SubsetCallsDoNotTouchFullCache) {
  Dataset dataset = MakeDataset(100, 7);
  SortedColumnCache cache(dataset);
  RowSubset subset;
  for (RowId r = 0; r < dataset.num_rows(); r += 2) subset.push_back(r);
  std::vector<uint8_t> mask(dataset.num_rows(), 0);
  for (RowId r : subset) mask[r] = 1;
  SortedColumn scratch;
  cache.Column(0, kPos, subset, mask, &scratch);
  EXPECT_EQ(cache.full_build_count(), 0u);
}

}  // namespace
}  // namespace pnr
