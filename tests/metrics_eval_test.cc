#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeNumericDataset;

// Classifier with a fixed score per row: score = x / 10.
class ScoreByX : public BinaryClassifier {
 public:
  double Score(const Dataset& dataset, RowId row) const override {
    return dataset.numeric(row, 0) / 10.0;
  }
  std::string Describe(const Schema&) const override { return "score=x/10"; }
};

TEST(EvaluateClassifierTest, CountsConfusionAtDefaultThreshold) {
  // Positives at x=8, 9; negatives at 2, 7 (7 -> score .7 -> predicted
  // positive: one FP).
  const Dataset dataset = MakeNumericDataset(
      1, {{{8.0}, true}, {{9.0}, true}, {{2.0}, false}, {{7.0}, false},
          {{3.0}, true}});
  ScoreByX classifier;
  const Confusion c = EvaluateClassifier(classifier, dataset, kPos);
  EXPECT_DOUBLE_EQ(c.true_positives, 2.0);
  EXPECT_DOUBLE_EQ(c.false_positives, 1.0);
  EXPECT_DOUBLE_EQ(c.false_negatives, 1.0);  // x=3 positive scored .3
  EXPECT_DOUBLE_EQ(c.true_negatives, 1.0);
}

TEST(EvaluateClassifierTest, OnRowsRestrictsEvaluation) {
  const Dataset dataset = MakeNumericDataset(
      1, {{{8.0}, true}, {{2.0}, false}, {{9.0}, true}});
  ScoreByX classifier;
  const Confusion c =
      EvaluateClassifierOnRows(classifier, dataset, {0, 1}, kPos);
  EXPECT_DOUBLE_EQ(c.total(), 2.0);
  EXPECT_DOUBLE_EQ(c.true_positives, 1.0);
}

TEST(MetricsTest, WrapsConfusion) {
  Confusion c;
  c.true_positives = 8.0;
  c.false_negatives = 2.0;
  c.false_positives = 2.0;
  const BinaryMetrics m = Metrics(c);
  EXPECT_DOUBLE_EQ(m.recall, 0.8);
  EXPECT_DOUBLE_EQ(m.precision, 0.8);
  EXPECT_DOUBLE_EQ(m.f_measure, 0.8);
}

TEST(ThresholdSweepTest, TracesFullCurve) {
  const Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, false}, {{4.0}, false}, {{6.0}, true}, {{9.0}, true}});
  ScoreByX classifier;
  const auto sweep = ThresholdSweep(classifier, dataset, kPos);
  ASSERT_GE(sweep.size(), 2u);
  // Lowest threshold: everything predicted positive.
  EXPECT_DOUBLE_EQ(sweep.front().second.recall(), 1.0);
  EXPECT_DOUBLE_EQ(sweep.front().second.precision(), 0.5);
  // Highest threshold: nothing predicted positive.
  EXPECT_DOUBLE_EQ(sweep.back().second.predicted_positives(), 0.0);
  // Monotonicity: predicted positives never increase with the threshold.
  for (size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].second.predicted_positives(),
              sweep[i - 1].second.predicted_positives());
    EXPECT_GT(sweep[i].first, sweep[i - 1].first);
  }
  // Somewhere on the curve the classifier is perfect (cut between .4, .6).
  bool perfect = false;
  for (const auto& [threshold, confusion] : sweep) {
    if (confusion.recall() == 1.0 && confusion.precision() == 1.0) {
      perfect = true;
    }
  }
  EXPECT_TRUE(perfect);
}

TEST(ThresholdSweepTest, ConsistentWithDirectEvaluation) {
  const Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, false}, {{5.0}, true}, {{6.0}, false}, {{9.0}, true}});
  ScoreByX classifier;
  const auto sweep = ThresholdSweep(classifier, dataset, kPos);
  for (const auto& [threshold, confusion] : sweep) {
    ScoreByX check;
    check.set_threshold(threshold);
    const Confusion direct = EvaluateClassifier(check, dataset, kPos);
    EXPECT_DOUBLE_EQ(direct.true_positives, confusion.true_positives)
        << "threshold=" << threshold;
    EXPECT_DOUBLE_EQ(direct.false_positives, confusion.false_positives)
        << "threshold=" << threshold;
  }
}

}  // namespace
}  // namespace pnr
