// StratifiedKFold: exact per-fold class proportions, deterministic
// singleton placement, thread-count-invariant assignments, and the basic
// partition laws (disjoint, covering) across many seeds.

#include "eval/stratified_cv.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "data/dataset.h"

namespace pnr {
namespace {

// A label-only dataset: class `c` gets `counts[c]` rows, interleaved so
// that class blocks are not contiguous in row order.
Dataset MakeLabeledDataset(const std::vector<size_t>& counts) {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  for (size_t c = 0; c < counts.size(); ++c) {
    schema.GetOrAddClass("class" + std::to_string(c));
  }
  Dataset dataset(std::move(schema));
  std::vector<size_t> remaining = counts;
  bool any = true;
  while (any) {
    any = false;
    for (size_t c = 0; c < remaining.size(); ++c) {
      if (remaining[c] == 0) continue;
      any = true;
      --remaining[c];
      const RowId r = dataset.AddRow();
      dataset.set_numeric(r, 0, static_cast<double>(r));
      dataset.set_label(r, static_cast<CategoryId>(c));
    }
  }
  return dataset;
}

// fold -> class -> count for an assignment.
std::vector<std::map<CategoryId, size_t>> FoldClassCounts(
    const Dataset& dataset, const StratifiedKFold& folds) {
  std::vector<std::map<CategoryId, size_t>> counts(folds.num_folds());
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    counts[folds.fold_of(r)][dataset.label(r)]++;
  }
  return counts;
}

TEST(StratifiedKFoldTest, BalancedClassesSplitExactly) {
  // 3 classes x 50 rows, 5 folds: every fold must hold exactly 10 of each.
  const Dataset dataset = MakeLabeledDataset({50, 50, 50});
  StratifiedKFoldOptions options;
  options.num_folds = 5;
  auto folds = StratifiedKFold::Split(dataset, options);
  ASSERT_TRUE(folds.ok()) << folds.status().ToString();
  for (const auto& per_class : FoldClassCounts(dataset, *folds)) {
    for (CategoryId c = 0; c < 3; ++c) {
      EXPECT_EQ(per_class.at(c), 10u);
    }
  }
}

TEST(StratifiedKFoldTest, RareClassCountsExactToPlusMinusOne) {
  // Paper-scale imbalance: 9986 majority, 14 rare (0.14%), 5 folds. Every
  // fold must carry 2 or 3 rare rows — never 0, never a pile-up.
  const Dataset dataset = MakeLabeledDataset({9986, 14});
  StratifiedKFoldOptions options;
  options.num_folds = 5;
  auto folds = StratifiedKFold::Split(dataset, options);
  ASSERT_TRUE(folds.ok()) << folds.status().ToString();
  size_t rare_total = 0;
  for (const auto& per_class : FoldClassCounts(dataset, *folds)) {
    const size_t rare = per_class.count(1) ? per_class.at(1) : 0;
    EXPECT_GE(rare, 2u);
    EXPECT_LE(rare, 3u);
    rare_total += rare;
    const size_t majority = per_class.at(0);
    EXPECT_GE(majority, 9986u / 5);
    EXPECT_LE(majority, 9986u / 5 + 1);
  }
  EXPECT_EQ(rare_total, 14u);
}

TEST(StratifiedKFoldTest, SingletonPlacementIsDeterministic) {
  // A one-row class lands in a seed-chosen fold; the same seed always
  // picks the same fold, and different seeds spread it around.
  const Dataset dataset = MakeLabeledDataset({40, 1});
  const RowId singleton = [&] {
    for (RowId r = 0; r < dataset.num_rows(); ++r) {
      if (dataset.label(r) == 1) return r;
    }
    return RowId{0};
  }();

  StratifiedKFoldOptions options;
  options.num_folds = 4;
  options.seed = 7;
  auto first = StratifiedKFold::Split(dataset, options);
  auto second = StratifiedKFold::Split(dataset, options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->fold_of(singleton), second->fold_of(singleton));

  std::vector<bool> seen(options.num_folds, false);
  for (uint64_t seed = 0; seed < 64; ++seed) {
    options.seed = seed;
    auto folds = StratifiedKFold::Split(dataset, options);
    ASSERT_TRUE(folds.ok());
    seen[folds->fold_of(singleton)] = true;
  }
  // 64 seeds over 4 folds: all folds should have hosted the singleton.
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(StratifiedKFoldTest, AssignmentIsThreadCountInvariant) {
  const Dataset dataset = MakeLabeledDataset({3000, 700, 80, 9, 1});
  StratifiedKFoldOptions options;
  options.num_folds = 7;
  options.seed = 42;
  options.num_threads = 1;
  auto serial = StratifiedKFold::Split(dataset, options);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    auto parallel = StratifiedKFold::Split(dataset, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->assignments(), parallel->assignments())
        << "threads=" << threads;
  }
}

TEST(StratifiedKFoldTest, FoldsPartitionTheRowsForManySeeds) {
  const Dataset dataset = MakeLabeledDataset({211, 37, 5});
  StratifiedKFoldOptions options;
  options.num_folds = 6;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    options.seed = seed;
    auto folds = StratifiedKFold::Split(dataset, options);
    ASSERT_TRUE(folds.ok());
    // Test splits are disjoint and cover every row exactly once.
    std::vector<int> hits(dataset.num_rows(), 0);
    for (size_t fold = 0; fold < options.num_folds; ++fold) {
      const RowSubset test = folds->TestRows(fold);
      EXPECT_TRUE(std::is_sorted(test.begin(), test.end()));
      for (RowId r : test) hits[r]++;
      // Train/test of the same fold partition all rows.
      const RowSubset train = folds->TrainRows(fold);
      EXPECT_EQ(train.size() + test.size(), dataset.num_rows());
      for (RowId r : train) EXPECT_NE(folds->fold_of(r), fold);
    }
    for (RowId r = 0; r < dataset.num_rows(); ++r) {
      EXPECT_EQ(hits[r], 1) << "row " << r << " seed " << seed;
    }
  }
}

TEST(StratifiedKFoldTest, RejectsDegenerateFoldCounts) {
  const Dataset dataset = MakeLabeledDataset({4});
  StratifiedKFoldOptions options;
  options.num_folds = 1;
  EXPECT_FALSE(StratifiedKFold::Split(dataset, options).ok());
  options.num_folds = 5;  // more folds than rows
  EXPECT_FALSE(StratifiedKFold::Split(dataset, options).ok());
  options.num_folds = 4;  // == rows: allowed (leave-one-out)
  auto folds = StratifiedKFold::Split(dataset, options);
  ASSERT_TRUE(folds.ok());
  for (size_t fold = 0; fold < 4; ++fold) {
    EXPECT_EQ(folds->TestRows(fold).size(), 1u);
  }
}

}  // namespace
}  // namespace pnr
