#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace pnr {
namespace {

TEST(CsvTest, ParsesWithSchemaInference) {
  const std::string text =
      "x,service,label\n"
      "1.5,http,pos\n"
      "2.0,ftp,neg\n"
      "-3,http,neg\n";
  auto dataset = ReadCsvFromString(text);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_rows(), 3u);
  const Schema& schema = dataset->schema();
  ASSERT_EQ(schema.num_attributes(), 2u);
  EXPECT_TRUE(schema.attribute(0).is_numeric());
  EXPECT_TRUE(schema.attribute(1).is_categorical());
  EXPECT_EQ(schema.attribute(1).num_categories(), 2u);
  EXPECT_EQ(schema.num_classes(), 2u);
  EXPECT_DOUBLE_EQ(dataset->numeric(0, 0), 1.5);
  EXPECT_EQ(schema.class_attr().CategoryName(dataset->label(0)), "pos");
}

TEST(CsvTest, ClassColumnByName) {
  const std::string text =
      "label,x\n"
      "a,1\n"
      "b,2\n";
  CsvReadOptions options;
  options.class_column = "label";
  auto dataset = ReadCsvFromString(text, options);
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(dataset->schema().num_attributes(), 1u);
  EXPECT_EQ(dataset->schema().attribute(0).name(), "x");
  EXPECT_EQ(dataset->schema().num_classes(), 2u);
}

TEST(CsvTest, NoHeaderGeneratesNames) {
  CsvReadOptions options;
  options.has_header = false;
  auto dataset = ReadCsvFromString("1,2,x\n3,4,y\n", options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->schema().attribute(0).name(), "attr0");
  EXPECT_EQ(dataset->num_rows(), 2u);
}

TEST(CsvTest, MixedColumnBecomesCategorical) {
  auto dataset = ReadCsvFromString("x,label\n1,a\nfoo,b\n");
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->schema().attribute(0).is_categorical());
}

TEST(CsvTest, RejectsRaggedRows) {
  auto dataset = ReadCsvFromString("a,b,label\n1,2,x\n1,2\n");
  EXPECT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsMissingClassColumn) {
  CsvReadOptions options;
  options.class_column = "nope";
  auto dataset = ReadCsvFromString("a,label\n1,x\n", options);
  EXPECT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ReadCsvFromString("").ok());
  EXPECT_FALSE(ReadCsvFromString("a,b\n").ok());  // header only
}

TEST(CsvTest, ReadFileErrors) {
  auto dataset = ReadCsv("/nonexistent/path.csv");
  EXPECT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, WriteThenReadRoundTrips) {
  const std::string text =
      "x,service,label\n"
      "1.5,http,pos\n"
      "2,ftp,neg\n";
  auto original = ReadCsvFromString(text);
  ASSERT_TRUE(original.ok());

  const std::string path = ::testing::TempDir() + "/pnr_csv_test.csv";
  ASSERT_TRUE(WriteCsv(*original, path).ok());
  auto reloaded = ReadCsv(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->num_rows(), original->num_rows());
  for (RowId r = 0; r < reloaded->num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(reloaded->numeric(r, 0), original->numeric(r, 0));
    EXPECT_EQ(reloaded->schema().attribute(1).CategoryName(
                  reloaded->categorical(r, 1)),
              original->schema().attribute(1).CategoryName(
                  original->categorical(r, 1)));
    EXPECT_EQ(reloaded->schema().class_attr().CategoryName(
                  reloaded->label(r)),
              original->schema().class_attr().CategoryName(
                  original->label(r)));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pnr
