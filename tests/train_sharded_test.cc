// Out-of-core / parallel training determinism: the whole point of the
// shard-store pipeline is that models are *byte-identical* no matter how
// the data is sharded, how it is paged, or how many threads train — so
// every test here compares canonical serializations for equality.
//
//   * {1, 2, 8} search threads x {1, 2, 4} shards x {PNrule, RIPPER,
//     C4.5rules}: one serialization per learner across the whole matrix.
//   * In-RAM vs demand-paged (working set capped far below the dataset):
//     bitwise-equal PNrule and multiclass models.
//   * Parallel one-vs-rest at {1, 2, 8} class-threads: bitwise-equal
//     committees, and a shared ThreadBudget's high-water mark never
//     exceeds its cap.
//   * Zonemap pruning: constant numeric columns are skipped without
//     changing the model.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "c45/rules.h"
#include "data/shard_store.h"
#include "induction/condition_search.h"
#include "pnrule/model_io.h"
#include "pnrule/multiclass.h"
#include "pnrule/pnrule.h"
#include "ripper/ripper.h"
#include "synth/kdd_sim.h"

namespace pnr {
namespace {

const Dataset& SharedTrain() {
  static const Dataset train = [] {
    KddSimParams params;
    params.train_records = 4000;
    params.test_records = 1000;
    params.seed = 913;
    auto generated = GenerateKddSim(params);
    EXPECT_TRUE(generated.ok()) << generated.status().ToString();
    return std::move(generated).value().train;
  }();
  return train;
}

CategoryId Target(const Dataset& data, const char* name) {
  const CategoryId target = data.schema().class_attr().FindCategory(name);
  EXPECT_NE(target, kInvalidCategory);
  return target;
}

// The shared training split, round-tripped through an n-shard store.
Dataset ShardedTrain(uint32_t num_shards) {
  ShardStoreWriteOptions options;
  options.num_shards = num_shards;
  auto bytes = SerializeShardStore(SharedTrain(), options);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto reader =
      ShardStoreReader::OpenBuffer(std::move(bytes).value(), "train.pns");
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  auto loaded = (*reader)->LoadDataset();
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

std::string PnruleModel(const Dataset& data, size_t threads) {
  PnruleConfig config;
  config.num_threads = threads;
  auto model = PnruleLearner(config).Train(data, Target(data, "probe"));
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return SerializePnruleModel(*model, data.schema());
}

std::string RipperModel(const Dataset& data, size_t threads) {
  RipperConfig config;
  config.num_threads = threads;
  auto model = RipperLearner(config).Train(data, Target(data, "probe"));
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return model->Describe(data.schema());
}

std::string C45RulesModel(const Dataset& data, size_t threads) {
  C45RulesConfig config;
  config.tree.num_threads = threads;
  auto model = C45RulesLearner(config).Train(data, Target(data, "probe"));
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return model->Describe(data.schema());
}

TEST(TrainShardedTest, ThreadByShardMatrixIsByteIdentical) {
  const std::string pnrule_ref = PnruleModel(SharedTrain(), 1);
  const std::string ripper_ref = RipperModel(SharedTrain(), 1);
  const std::string c45_ref = C45RulesModel(SharedTrain(), 1);
  EXPECT_FALSE(pnrule_ref.empty());
  for (uint32_t shards : {1u, 2u, 4u}) {
    const Dataset data = ShardedTrain(shards);
    for (size_t threads : {1u, 2u, 8u}) {
      EXPECT_EQ(PnruleModel(data, threads), pnrule_ref)
          << "pnrule threads=" << threads << " shards=" << shards;
      EXPECT_EQ(RipperModel(data, threads), ripper_ref)
          << "ripper threads=" << threads << " shards=" << shards;
      EXPECT_EQ(C45RulesModel(data, threads), c45_ref)
          << "c45rules threads=" << threads << " shards=" << shards;
    }
  }
}

// Demand-paged training with the working set capped far below the dataset:
// the paged run must produce the very same bytes as the in-RAM run while
// actually spilling (evictions observed, peak residency bounded).
TEST(TrainShardedTest, OutOfCoreTrainingIsBitwiseIdentical) {
  ShardStoreWriteOptions options;
  options.num_shards = 4;
  auto bytes = SerializeShardStore(SharedTrain(), options);
  ASSERT_TRUE(bytes.ok());
  auto reader =
      ShardStoreReader::OpenBuffer(std::move(bytes).value(), "train.pns");
  ASSERT_TRUE(reader.ok());
  const size_t column_bytes = (*reader)->column_bytes();
  const size_t budget = column_bytes / 8;  // well below the full columns
  auto paged = MakePagedDataset(*reader, budget);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  PnruleConfig config;
  config.search_cache_budget_bytes = budget;
  auto model = PnruleLearner(config).Train(*paged, Target(*paged, "probe"));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(SerializePnruleModel(*model, paged->schema()),
            PnruleModel(SharedTrain(), 1));

  EXPECT_GT(paged->column_evict_count(), 0u) << "budget never forced a spill";
  // The pager may briefly hold budget + the faulting column before
  // evicting back down; anything above that means the cap leaked.
  EXPECT_LE(paged->peak_resident_column_bytes(),
            budget + SharedTrain().num_rows() * sizeof(double));
}

std::string MultiClassModel(const Dataset& data, size_t train_threads,
                            std::shared_ptr<ThreadBudget> budget = nullptr) {
  PnruleConfig config;
  MultiClassPnruleLearner learner(config);
  learner.set_train_threads(train_threads);
  if (budget != nullptr) learner.set_thread_budget(budget);
  MultiClassTrainReport report;
  auto model = learner.Train(data, &report);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(report.classes.size(), data.schema().num_classes());
  EXPECT_GT(report.trained, 0u);
  return SerializeMultiClassModel(*model, data.schema());
}

TEST(TrainShardedTest, ParallelOneVsRestIsByteIdentical) {
  const std::string reference = MultiClassModel(SharedTrain(), 1);
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(MultiClassModel(SharedTrain(), threads), reference)
        << "train_threads=" << threads;
  }
  // Sharded input, parallel classes: still the same bytes.
  EXPECT_EQ(MultiClassModel(ShardedTrain(4), 8), reference);
}

TEST(TrainShardedTest, OutOfCoreParallelOneVsRestIsByteIdentical) {
  ShardStoreWriteOptions options;
  options.num_shards = 4;
  auto bytes = SerializeShardStore(SharedTrain(), options);
  ASSERT_TRUE(bytes.ok());
  auto reader =
      ShardStoreReader::OpenBuffer(std::move(bytes).value(), "train.pns");
  ASSERT_TRUE(reader.ok());
  auto paged = MakePagedDataset(*reader, (*reader)->column_bytes() / 8);
  ASSERT_TRUE(paged.ok());
  // Each class task clones its own paged view, so the parallel run works
  // the shared reader from several learners at once.
  EXPECT_EQ(MultiClassModel(*paged, 8), MultiClassModel(SharedTrain(), 1));
}

// A shared budget must cap the *sum* of outer class-workers and inner
// search threads — and changing the cap must never change the bytes.
TEST(TrainShardedTest, ThreadBudgetHighWaterRespectsCap) {
  auto budget = std::make_shared<ThreadBudget>(4);
  PnruleConfig config;
  config.num_threads = 8;  // each learner *asks* for 8; leases clamp it
  MultiClassPnruleLearner learner(config);
  learner.set_train_threads(8);
  learner.set_thread_budget(budget);
  MultiClassTrainReport report;
  auto model = learner.Train(SharedTrain(), &report);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_LE(budget->peak_in_use(), 4u);
  EXPECT_GT(budget->peak_in_use(), 0u);
  EXPECT_EQ(SerializeMultiClassModel(*model, SharedTrain().schema()),
            MultiClassModel(SharedTrain(), 1));
}

TEST(TrainShardedTest, TrainReportAccountsForEveryClass) {
  MultiClassPnruleLearner learner{PnruleConfig{}};
  MultiClassTrainReport report;
  auto model = learner.Train(SharedTrain(), &report);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_EQ(report.classes.size(), SharedTrain().schema().num_classes());
  size_t ok_classes = 0;
  size_t total_rows = 0;
  for (const ClassTrainStatus& entry : report.classes) {
    EXPECT_FALSE(entry.class_name.empty());
    total_rows += entry.rows;
    if (entry.status.ok()) {
      ++ok_classes;
      EXPECT_GT(entry.num_p_rules, 0u) << entry.class_name;
    } else {
      // Skipped classes carry a reason, and the committee has no model.
      EXPECT_FALSE(entry.status.message().empty());
      EXPECT_EQ(model->model_for(entry.cls), nullptr);
    }
  }
  EXPECT_EQ(ok_classes, report.trained);
  EXPECT_EQ(total_rows, SharedTrain().num_rows());
}

// Zonemap pruning: constant numeric columns are provably cut-free, so the
// engine skips them — counted, and without changing the chosen conditions.
TEST(TrainShardedTest, ZonemapPruningSkipsConstantColumns) {
  const Dataset& base = SharedTrain();
  Schema schema = base.schema();
  const AttrIndex flat = schema.AddAttribute(Attribute::Numeric("flat_pad"));
  Dataset padded(std::move(schema));
  padded.AppendRows(base.num_rows());
  for (RowId row = 0; row < base.num_rows(); ++row) {
    for (AttrIndex attr = 0; attr < base.schema().num_attributes(); ++attr) {
      if (base.schema().attribute(attr).is_numeric()) {
        padded.set_numeric(row, attr, base.numeric(row, attr));
      } else {
        padded.set_categorical(row, attr, base.categorical(row, attr));
      }
    }
    padded.set_numeric(row, flat, 1.5);
    padded.set_label(row, base.label(row));
  }
  ShardStoreWriteOptions options;
  options.num_shards = 2;
  auto bytes = SerializeShardStore(padded, options);
  ASSERT_TRUE(bytes.ok());
  auto reader =
      ShardStoreReader::OpenBuffer(std::move(bytes).value(), "pad.pns");
  ASSERT_TRUE(reader.ok());
  auto loaded = (*reader)->LoadDataset();
  ASSERT_TRUE(loaded.ok());
  ASSERT_FALSE(loaded->numeric_range_hints().empty());

  ConditionSearchEngine hinted(*loaded);
  ConditionSearchEngine plain(SharedTrain());
  const CategoryId target = Target(*loaded, "probe");
  const auto scorer = [](const RuleStats& stats) { return stats.positive; };
  const auto best_hinted = hinted.FindBest(loaded->AllRows(), target, scorer);
  const auto best_plain = plain.FindBest(SharedTrain().AllRows(), target,
                                         scorer);
  EXPECT_GT(hinted.pruned_attr_scans(), 0u);
  EXPECT_EQ(plain.pruned_attr_scans(), 0u);
  ASSERT_TRUE(best_hinted.has_value());
  ASSERT_TRUE(best_plain.has_value());
  EXPECT_EQ(best_hinted->condition.attr, best_plain->condition.attr);
  EXPECT_EQ(best_hinted->value, best_plain->value);
}

}  // namespace
}  // namespace pnr
