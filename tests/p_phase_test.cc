#include "pnrule/p_phase.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeNumericDataset;

// Two target peaks (around 3 and 7) over a uniform negative background;
// each peak also contains a few negatives (impure signatures, as in the
// paper's models).
Dataset TwoPeakDataset(int per_peak_pos, int per_peak_neg, int background) {
  Rng rng(101);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (double center : {3.0, 7.0}) {
    for (int i = 0; i < per_peak_pos; ++i) {
      rows.push_back({{center + rng.NextDouble(-0.05, 0.05)}, true});
    }
    for (int i = 0; i < per_peak_neg; ++i) {
      rows.push_back({{center + rng.NextDouble(-0.05, 0.05)}, false});
    }
  }
  for (int i = 0; i < background; ++i) {
    rows.push_back({{rng.NextDouble(0.0, 10.0)}, false});
  }
  return MakeNumericDataset(1, rows);
}

PnruleConfig DefaultConfig() {
  PnruleConfig config;
  config.min_coverage_fraction = 0.99;
  config.min_support_fraction = 0.05;
  return config;
}

TEST(PPhaseTest, LearnsOneRulePerPeak) {
  const Dataset dataset = TwoPeakDataset(40, 10, 900);
  const PPhaseResult result =
      RunPPhase(dataset, dataset.AllRows(), kPos, DefaultConfig());
  ASSERT_GE(result.rules.size(), 2u);
  EXPECT_GE(result.coverage_fraction(), 0.99);
  // Every rule must carry positives and beat the ~8% prior comfortably.
  for (const Rule& rule : result.rules.rules()) {
    EXPECT_GT(rule.train_stats.positive, 0.0);
    EXPECT_GT(rule.train_stats.accuracy(), 0.3);
  }
}

TEST(PPhaseTest, CoveredRowsMatchRuleUnion) {
  const Dataset dataset = TwoPeakDataset(30, 8, 500);
  const PPhaseResult result =
      RunPPhase(dataset, dataset.AllRows(), kPos, DefaultConfig());
  // covered_rows must be exactly the union coverage of the rules.
  const RowSubset expected =
      result.rules.CoveredRows(dataset, dataset.AllRows());
  RowSubset actual = result.covered_rows;
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
  EXPECT_DOUBLE_EQ(result.covered_positive_weight,
                   dataset.ClassWeight(expected, kPos));
}

TEST(PPhaseTest, HighSupportRulesPreferredOverPureSlivers) {
  // The P-phase favours support: with min_support at 20% of the class, a
  // rule must span a whole peak (half the class), impurity included.
  const Dataset dataset = TwoPeakDataset(40, 15, 600);
  PnruleConfig config = DefaultConfig();
  config.min_support_fraction = 0.2;
  const PPhaseResult result =
      RunPPhase(dataset, dataset.AllRows(), kPos, config);
  const double min_support = 0.2 * result.total_positive_weight;
  for (const Rule& rule : result.rules.rules()) {
    EXPECT_GE(rule.train_stats.covered, min_support);
  }
  EXPECT_GT(result.coverage_fraction(), 0.9);
}

TEST(PPhaseTest, MaxRuleLengthIsRespected) {
  const Dataset dataset = TwoPeakDataset(40, 10, 900);
  PnruleConfig config = DefaultConfig();
  config.max_p_rule_length = 1;
  const PPhaseResult result =
      RunPPhase(dataset, dataset.AllRows(), kPos, config);
  for (const Rule& rule : result.rules.rules()) {
    EXPECT_LE(rule.size(), 1u);
  }
}

TEST(PPhaseTest, NoTargetExamplesYieldsEmptyResult) {
  const Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, false}, {{2.0}, false}, {{3.0}, false}});
  const PPhaseResult result =
      RunPPhase(dataset, dataset.AllRows(), kPos, DefaultConfig());
  EXPECT_TRUE(result.rules.empty());
  EXPECT_DOUBLE_EQ(result.total_positive_weight, 0.0);
}

TEST(PPhaseTest, MaxRuleCapIsRespected) {
  const Dataset dataset = TwoPeakDataset(40, 10, 900);
  PnruleConfig config = DefaultConfig();
  config.max_p_rules = 1;
  const PPhaseResult result =
      RunPPhase(dataset, dataset.AllRows(), kPos, config);
  EXPECT_EQ(result.rules.size(), 1u);
}

TEST(GrowPresenceRuleTest, StopsWhenMetricStopsImproving) {
  const Dataset dataset = TwoPeakDataset(40, 10, 900);
  const auto metric = MakeRuleMetric(RuleMetricKind::kZNumber);
  const RowSubset all = dataset.AllRows();
  ClassDistribution dist;
  dist.positives = dataset.ClassWeight(all, kPos);
  dist.negatives = dataset.TotalWeight(all) - dist.positives;
  const Rule rule = GrowPresenceRule(dataset, all, kPos, *metric, dist,
                                     /*min_support_weight=*/4.0,
                                     /*max_length=*/0,
                                     /*enable_range_conditions=*/true);
  ASSERT_FALSE(rule.empty());
  // The first condition should be a range isolating one peak.
  EXPECT_EQ(rule.conditions()[0].op, ConditionOp::kInRange);
  EXPECT_GT(rule.train_stats.accuracy(), 0.5);
}


TEST(RefinementGainTest, RelativeMarginSemantics) {
  // Any improvement counts from a non-positive base.
  EXPECT_TRUE(ClearsRefinementGain(0.1, 0.0, 0.5));
  EXPECT_TRUE(ClearsRefinementGain(-0.1, -0.2, 0.5));
  EXPECT_FALSE(ClearsRefinementGain(0.0, 0.0, 0.5));
  // From a positive base the relative margin applies.
  EXPECT_TRUE(ClearsRefinementGain(10.6, 10.0, 0.05));
  EXPECT_FALSE(ClearsRefinementGain(10.4, 10.0, 0.05));
  // Zero margin degenerates to strict improvement.
  EXPECT_TRUE(ClearsRefinementGain(10.0001, 10.0, 0.0));
  EXPECT_FALSE(ClearsRefinementGain(10.0, 10.0, 0.0));
}

TEST(PPhaseTest, RefinementGainSuppressesJunkConditions) {
  // With the margin at zero, rules accrete marginal noise conditions; with
  // the default margin they stay at the signature length.
  const Dataset dataset = TwoPeakDataset(40, 10, 900);
  PnruleConfig strict = DefaultConfig();
  strict.min_refinement_gain = 0.10;
  PnruleConfig loose = DefaultConfig();
  loose.min_refinement_gain = 0.0;
  const PPhaseResult with_margin =
      RunPPhase(dataset, dataset.AllRows(), kPos, strict);
  const PPhaseResult without_margin =
      RunPPhase(dataset, dataset.AllRows(), kPos, loose);
  size_t margin_conditions = 0;
  for (const Rule& rule : with_margin.rules.rules()) {
    margin_conditions += rule.size();
  }
  size_t loose_conditions = 0;
  for (const Rule& rule : without_margin.rules.rules()) {
    loose_conditions += rule.size();
  }
  EXPECT_LE(margin_conditions, loose_conditions);
}

}  // namespace
}  // namespace pnr
