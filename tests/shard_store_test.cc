// Shard-store format tests: round-trip fidelity, serialize/load fixpoint,
// strict validation with located errors, zonemap range hints, and the
// demand-paged Dataset built over a reader (fault/evict accounting, pins,
// per-learner paged views).

#include "data/shard_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace pnr {
namespace {

Schema MixedSchema() {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  schema.AddAttribute(Attribute::Categorical("color", {"red", "green", "blue"}));
  schema.AddAttribute(Attribute::Numeric("flat"));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  schema.GetOrAddClass("rare");
  return schema;
}

// 23 rows (indivisible by most shard counts) of varied cells, including a
// constant numeric column and a missing categorical cell.
Dataset MixedDataset() {
  Dataset dataset(MixedSchema());
  dataset.AppendRows(23);
  for (RowId row = 0; row < 23; ++row) {
    dataset.set_numeric(row, 0, std::sin(0.7 * row) * 100.0);
    dataset.set_categorical(row, 1, static_cast<CategoryId>(row % 3));
    dataset.set_numeric(row, 2, 4.25);
    dataset.set_label(row, static_cast<CategoryId>(row % 2 == 0 ? 0 : row % 3));
  }
  dataset.set_categorical(5, 1, kInvalidCategory);
  return dataset;
}

std::string MustSerialize(const Dataset& dataset, uint32_t num_shards) {
  ShardStoreWriteOptions options;
  options.num_shards = num_shards;
  auto bytes = SerializeShardStore(dataset, options);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return std::move(bytes).value();
}

std::shared_ptr<const ShardStoreReader> MustOpen(std::string bytes) {
  auto reader = ShardStoreReader::OpenBuffer(std::move(bytes), "test.pns");
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return std::move(reader).value();
}

void ExpectSameData(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.schema().num_attributes(), b.schema().num_attributes());
  for (RowId row = 0; row < a.num_rows(); ++row) {
    EXPECT_EQ(a.label(row), b.label(row)) << "row " << row;
    EXPECT_DOUBLE_EQ(a.weight(row), b.weight(row)) << "row " << row;
    for (AttrIndex attr = 0; attr < a.schema().num_attributes(); ++attr) {
      if (a.schema().attribute(attr).is_numeric()) {
        EXPECT_EQ(a.numeric(row, attr), b.numeric(row, attr))
            << "row " << row << " attr " << attr;
      } else {
        EXPECT_EQ(a.categorical(row, attr), b.categorical(row, attr))
            << "row " << row << " attr " << attr;
      }
    }
  }
}

TEST(ShardStoreTest, RoundTripAnyShardCount) {
  const Dataset original = MixedDataset();
  for (uint32_t shards : {1u, 2u, 4u, 7u, 23u}) {
    const std::string bytes = MustSerialize(original, shards);
    EXPECT_TRUE(LooksLikeShardStore(bytes));
    auto reader = MustOpen(bytes);
    EXPECT_EQ(reader->num_rows(), 23u);
    EXPECT_EQ(reader->num_shards(), shards);
    auto loaded = reader->LoadDataset();
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectSameData(original, *loaded);
  }
}

TEST(ShardStoreTest, ShardCountClampedToRows) {
  auto reader = MustOpen(MustSerialize(MixedDataset(), 1000));
  EXPECT_EQ(reader->num_shards(), 23u);
  // Row ranges partition [0, 23) contiguously.
  uint64_t next = 0;
  for (uint32_t s = 0; s < reader->num_shards(); ++s) {
    const auto range = reader->shard_rows(s);
    EXPECT_EQ(range.first, next);
    EXPECT_LT(range.first, range.second);
    next = range.second;
  }
  EXPECT_EQ(next, 23u);
}

TEST(ShardStoreTest, SerializeLoadFixpoint) {
  const std::string s1 = MustSerialize(MixedDataset(), 4);
  auto loaded = MustOpen(s1)->LoadDataset();
  ASSERT_TRUE(loaded.ok());
  const std::string s2 = MustSerialize(*loaded, 4);
  EXPECT_EQ(s1, s2);
}

TEST(ShardStoreTest, IdentityRowListMatchesFullSerializer) {
  const Dataset dataset = MixedDataset();
  std::vector<RowId> identity(dataset.num_rows());
  for (RowId row = 0; row < dataset.num_rows(); ++row) identity[row] = row;
  for (uint32_t shards : {1u, 4u, 23u}) {
    ShardStoreWriteOptions options;
    options.num_shards = shards;
    auto full = SerializeShardStore(dataset, options);
    auto rows = SerializeShardStoreRows(dataset, identity.data(),
                                        identity.size(), options);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(*full, *rows) << "shards=" << shards;
  }
}

TEST(ShardStoreTest, RowSubsetGathersInOrder) {
  const Dataset dataset = MixedDataset();
  // Out of order, with a repeat and the missing-cell row included.
  const std::vector<RowId> picks = {22, 5, 5, 0, 13, 7};
  ShardStoreWriteOptions options;
  options.num_shards = 3;
  auto bytes =
      SerializeShardStoreRows(dataset, picks.data(), picks.size(), options);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto loaded = MustOpen(std::move(bytes).value())->LoadDataset();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), picks.size());
  for (size_t i = 0; i < picks.size(); ++i) {
    const RowId src = picks[i];
    const RowId dst = static_cast<RowId>(i);
    EXPECT_EQ(loaded->label(dst), dataset.label(src)) << "row " << i;
    EXPECT_EQ(loaded->numeric(dst, 0), dataset.numeric(src, 0)) << "row " << i;
    EXPECT_EQ(loaded->categorical(dst, 1), dataset.categorical(src, 1))
        << "row " << i;
  }
  EXPECT_EQ(loaded->categorical(1, 1), kInvalidCategory);
}

TEST(ShardStoreTest, RowSubsetRejectsEmptyAndOutOfRange) {
  const Dataset dataset = MixedDataset();
  ShardStoreWriteOptions options;
  const std::vector<RowId> bad = {0, 23};
  auto out_of_range =
      SerializeShardStoreRows(dataset, bad.data(), bad.size(), options);
  EXPECT_FALSE(out_of_range.ok());
  EXPECT_NE(out_of_range.status().message().find("row id 23"),
            std::string::npos)
      << out_of_range.status().message();
  const RowId one = 0;
  auto empty = SerializeShardStoreRows(dataset, &one, 0, options);
  EXPECT_FALSE(empty.ok());
}

TEST(ShardStoreTest, RowSubsetWeightSectionFollowsSelectedRows) {
  Dataset dataset = MixedDataset();
  dataset.set_weight(3, 2.5);  // the only non-unit weight
  ShardStoreWriteOptions options;
  // A subset avoiding row 3 is canonical: no weight section.
  const std::vector<RowId> unweighted = {0, 1, 2, 4};
  auto plain = SerializeShardStoreRows(dataset, unweighted.data(),
                                       unweighted.size(), options);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(MustOpen(std::move(plain).value())->has_weights());
  // Including row 3 writes weights and round-trips the value.
  const std::vector<RowId> weighted = {2, 3, 4};
  auto with = SerializeShardStoreRows(dataset, weighted.data(),
                                      weighted.size(), options);
  ASSERT_TRUE(with.ok());
  auto loaded = MustOpen(std::move(with).value())->LoadDataset();
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->weight(1), 2.5);
}

TEST(ShardStoreTest, WeightsRoundTripAndElision) {
  Dataset weighted = MixedDataset();
  weighted.set_weight(3, 2.5);
  auto reader = MustOpen(MustSerialize(weighted, 3));
  EXPECT_TRUE(reader->has_weights());
  auto loaded = reader->LoadDataset();
  ASSERT_TRUE(loaded.ok());
  ExpectSameData(weighted, *loaded);

  // Unit weights are elided from the file but still load as 1.0.
  auto unit_reader = MustOpen(MustSerialize(MixedDataset(), 3));
  EXPECT_FALSE(unit_reader->has_weights());
  std::vector<double> weights;
  ASSERT_TRUE(unit_reader->FillWeights(&weights).ok());
  ASSERT_EQ(weights.size(), 23u);
  for (double w : weights) EXPECT_EQ(w, 1.0);
}

TEST(ShardStoreTest, NumericRangeHints) {
  auto reader = MustOpen(MustSerialize(MixedDataset(), 4));
  const auto hints = reader->NumericRangeHints();
  ASSERT_EQ(hints.size(), 3u);
  // x varies.
  EXPECT_LT(hints[0].first, hints[0].second);
  // color is categorical: unknown.
  EXPECT_EQ(hints[1].first, std::numeric_limits<double>::infinity());
  // flat is constant: a single point, which the search engine prunes.
  EXPECT_EQ(hints[2].first, 4.25);
  EXPECT_EQ(hints[2].second, 4.25);

  auto loaded = reader->LoadDataset();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->numeric_range_hints().size(), 3u);
}

TEST(ShardStoreTest, SniffRejectsOtherFormats) {
  EXPECT_FALSE(LooksLikeShardStore(""));
  EXPECT_FALSE(LooksLikeShardStore("a,b,class\n1,2,pos\n"));
  EXPECT_FALSE(LooksLikeShardStore("PNRSHRD"));  // short of the full magic
}

TEST(ShardStoreTest, TruncationYieldsLocatedError) {
  const std::string bytes = MustSerialize(MixedDataset(), 2);
  const std::vector<size_t> lengths = {0, 7, 63, bytes.size() / 2,
                                       bytes.size() - 1};
  for (size_t len : lengths) {
    auto reader =
        ShardStoreReader::OpenBuffer(bytes.substr(0, len), "trunc.pns");
    ASSERT_FALSE(reader.ok()) << "prefix length " << len;
    EXPECT_NE(reader.status().message().find("shard_store:"),
              std::string::npos)
        << reader.status().ToString();
  }
}

TEST(ShardStoreTest, EveryBitFlipIsRejectedOrLoadsConsistently) {
  // Flipping any single byte must either fail Open/LoadDataset with a
  // located error (checksums, zonemaps, bounds) or — if it lands in dead
  // space the format tolerates — still load and reserialize cleanly. It
  // must never crash or silently corrupt past the validators.
  const std::string bytes = MustSerialize(MixedDataset(), 3);
  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x2b);
    auto reader = ShardStoreReader::OpenBuffer(corrupt, "flip.pns");
    if (!reader.ok()) {
      EXPECT_FALSE(reader.status().message().empty());
      continue;
    }
    auto loaded = (*reader)->LoadDataset();
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

TEST(ShardStoreTest, VersionSkewNamesTheVersion) {
  std::string bytes = MustSerialize(MixedDataset(), 1);
  bytes[8] = 9;  // version field follows the 8-byte magic
  auto reader = ShardStoreReader::OpenBuffer(bytes, "skew.pns");
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("version"), std::string::npos)
      << reader.status().ToString();
}

TEST(ShardStoreTest, RejectsEmptyDataset) {
  Dataset empty(MixedSchema());
  auto bytes = SerializeShardStore(empty, ShardStoreWriteOptions{});
  EXPECT_FALSE(bytes.ok());
}

// ---- Demand paging ---------------------------------------------------------

TEST(ShardStorePagingTest, PagedDatasetMatchesLoadedDataset) {
  auto reader = MustOpen(MustSerialize(MixedDataset(), 4));
  auto loaded = reader->LoadDataset();
  ASSERT_TRUE(loaded.ok());
  auto paged = MakePagedDataset(reader, 0);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  EXPECT_TRUE(paged->paged());
  EXPECT_FALSE(loaded->paged());
  ExpectSameData(*loaded, *paged);
  EXPECT_GE(paged->column_fault_count(), 3u);
}

TEST(ShardStorePagingTest, ZeroBudgetKeepsAtMostOneUnpinnedColumn) {
  auto reader = MustOpen(MustSerialize(MixedDataset(), 2));
  auto paged = MakePagedDataset(reader, 0);
  ASSERT_TRUE(paged.ok());
  // Touch all columns repeatedly: with budget 0 every newly faulted column
  // evicts the previous one, so residency never exceeds a single column.
  size_t max_resident = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (AttrIndex attr = 0; attr < 3; ++attr) {
      if (paged->schema().attribute(attr).is_numeric()) {
        (void)paged->numeric(0, attr);
      } else {
        (void)paged->categorical(0, attr);
      }
      max_resident = std::max(max_resident, paged->resident_column_bytes());
    }
  }
  EXPECT_LE(max_resident, 23u * sizeof(double));
  EXPECT_GT(paged->column_evict_count(), 0u);
  EXPECT_LE(paged->peak_resident_column_bytes(), 2 * 23 * sizeof(double));
}

TEST(ShardStorePagingTest, GenerousBudgetNeverEvicts) {
  auto reader = MustOpen(MustSerialize(MixedDataset(), 2));
  auto paged = MakePagedDataset(reader, 1 << 20);
  ASSERT_TRUE(paged.ok());
  for (RowId row = 0; row < paged->num_rows(); ++row) {
    (void)paged->numeric(row, 0);
    (void)paged->categorical(row, 1);
    (void)paged->numeric(row, 2);
  }
  EXPECT_EQ(paged->column_evict_count(), 0u);
  EXPECT_EQ(paged->column_fault_count(), 3u);  // one fault per column
}

TEST(ShardStorePagingTest, PinnedColumnSurvivesEvictionPressure) {
  auto reader = MustOpen(MustSerialize(MixedDataset(), 2));
  auto paged = MakePagedDataset(reader, 0);
  ASSERT_TRUE(paged.ok());
  {
    Dataset::ColumnPin pin = paged->PinColumn(0);
    const uint64_t faults_after_pin = paged->column_fault_count();
    // Hammer the other columns; the pinned column must not re-fault.
    for (int pass = 0; pass < 4; ++pass) {
      (void)paged->categorical(0, 1);
      (void)paged->numeric(0, 2);
      (void)paged->numeric(0, 0);
    }
    EXPECT_EQ(paged->column_fault_count() - faults_after_pin, 8u)
        << "only the two unpinned columns may re-fault";
  }
  // After the pin is released the column becomes evictable again: the next
  // foreign fault flushes it (budget 0), so touching it re-faults.
  const uint64_t before = paged->column_fault_count();
  (void)paged->categorical(0, 1);
  (void)paged->numeric(0, 0);
  EXPECT_EQ(paged->column_fault_count(), before + 2);
}

TEST(ShardStorePagingTest, ClonedViewsPageIndependently) {
  auto reader = MustOpen(MustSerialize(MixedDataset(), 4));
  auto paged = MakePagedDataset(reader, 0);
  ASSERT_TRUE(paged.ok());
  const Dataset view = paged->ClonePagedView();
  EXPECT_TRUE(view.paged());
  ExpectSameData(*paged, view);
  // Counters are per view: the original's eviction churn from the
  // interleaved reads above does not show up in a fresh clone.
  const Dataset fresh = paged->ClonePagedView();
  EXPECT_EQ(fresh.column_fault_count(), 0u);
}

}  // namespace
}  // namespace pnr
