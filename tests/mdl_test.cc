#include "induction/mdl.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeMixedDataset;

TEST(MdlTest, RuleTheoryBitsMonotoneInConditions) {
  const double n = 100.0;
  EXPECT_DOUBLE_EQ(RuleTheoryBits(0, n), 0.0);
  double prev = 0.0;
  for (size_t k = 1; k <= 10; ++k) {
    const double bits = RuleTheoryBits(k, n);
    EXPECT_GT(bits, prev);
    prev = bits;
  }
}

TEST(MdlTest, RuleTheoryBitsHandlesTinyConditionSpace) {
  // possible_conditions below k is clamped, not a crash.
  EXPECT_GT(RuleTheoryBits(5, 2.0), 0.0);
}

TEST(MdlTest, ExceptionBitsZeroErrorIsCheap) {
  const double perfect = ExceptionBits(0.5, 100.0, 900.0, 0.0, 0.0);
  const double with_errors = ExceptionBits(0.5, 100.0, 900.0, 10.0, 20.0);
  EXPECT_LT(perfect, with_errors);
}

TEST(MdlTest, ExceptionBitsGrowWithErrors) {
  double prev = -1.0;
  for (double fp = 0.0; fp <= 40.0; fp += 10.0) {
    const double bits = ExceptionBits(0.5, 100.0, 900.0, fp, 5.0);
    EXPECT_GT(bits, prev);
    prev = bits;
  }
}

TEST(MdlTest, CountPossibleConditions) {
  // Categorical attribute contributes its 3 categories; numeric attribute
  // with k distinct values contributes 2*(k-1) cuts.
  const Dataset dataset = MakeMixedDataset({
      {1.0, 0, false}, {2.0, 1, true}, {3.0, 2, false}, {3.0, 0, true},
  });
  // numeric: 3 distinct -> 4; categorical: 3 categories.
  EXPECT_DOUBLE_EQ(CountPossibleConditions(dataset), 7.0);
}

TEST(MdlTest, GoodRuleReducesDescriptionLength) {
  // 4 positives at c==b, 12 negatives elsewhere.
  std::vector<testutil::MixedRow> rows;
  for (int i = 0; i < 4; ++i) rows.push_back({0.0, 1, true});
  for (int i = 0; i < 12; ++i) rows.push_back({0.0, 0, false});
  const Dataset dataset = MakeMixedDataset(rows);
  const RowSubset all = dataset.AllRows();
  const double possible = CountPossibleConditions(dataset);

  RuleSet empty;
  const double dl_empty =
      RuleSetDescriptionLength(dataset, all, kPos, empty, possible);

  RuleSet with_rule;
  with_rule.AddRule(Rule({Condition::CatEqual(1, 1)}));
  const double dl_rule =
      RuleSetDescriptionLength(dataset, all, kPos, with_rule, possible);
  EXPECT_LT(dl_rule, dl_empty);
}

TEST(MdlTest, UselessRuleIncreasesDescriptionLength) {
  std::vector<testutil::MixedRow> rows;
  for (int i = 0; i < 4; ++i) rows.push_back({0.0, 1, true});
  for (int i = 0; i < 12; ++i) rows.push_back({0.0, 0, false});
  const Dataset dataset = MakeMixedDataset(rows);
  const RowSubset all = dataset.AllRows();
  const double possible = CountPossibleConditions(dataset);

  RuleSet good;
  good.AddRule(Rule({Condition::CatEqual(1, 1)}));
  const double dl_good =
      RuleSetDescriptionLength(dataset, all, kPos, good, possible);

  RuleSet with_noise = good;
  with_noise.AddRule(Rule({Condition::CatEqual(1, 2)}));  // covers nothing
  const double dl_noise =
      RuleSetDescriptionLength(dataset, all, kPos, with_noise, possible);
  EXPECT_GT(dl_noise, dl_good);
}

TEST(MdlTest, InvertTargetModelsAbsence) {
  // Rule covers the negatives; as an absence model it should be cheap.
  std::vector<testutil::MixedRow> rows;
  for (int i = 0; i < 6; ++i) rows.push_back({0.0, 1, true});
  for (int i = 0; i < 6; ++i) rows.push_back({0.0, 0, false});
  const Dataset dataset = MakeMixedDataset(rows);
  const RowSubset all = dataset.AllRows();
  const double possible = CountPossibleConditions(dataset);

  RuleSet absence;
  absence.AddRule(Rule({Condition::CatEqual(1, 0)}));  // covers negatives
  const double dl_absence = RuleSetDescriptionLength(
      dataset, all, kPos, absence, possible, 0.5, /*invert_target=*/true);
  RuleSet empty;
  const double dl_empty = RuleSetDescriptionLength(
      dataset, all, kPos, empty, possible, 0.5, /*invert_target=*/true);
  EXPECT_LT(dl_absence, dl_empty);
}


TEST(MdlTest, EmpiricalExceptionBitsHaveNoBranchDiscontinuity) {
  // Cohen's asymmetric coding jumps when coverage crosses half the data
  // with fp == 0; the empirical form must stay monotone decreasing as a
  // pure rule set covers more of its pseudo-positives.
  double prev = 1e300;
  for (double cover = 100.0; cover <= 1900.0; cover += 100.0) {
    const double uncover = 2000.0 - cover;
    const double fn = uncover * 0.8;  // constant error *rate* among rest
    const double bits = ExceptionBitsEmpirical(cover, uncover, 0.0, fn);
    EXPECT_LT(bits, prev) << "cover=" << cover;
    prev = bits;
  }
}

TEST(MdlTest, EmpiricalExceptionBitsZeroForPerfectModel) {
  EXPECT_NEAR(ExceptionBitsEmpirical(1000.0, 1000.0, 0.0, 0.0),
              SafeLog2(2001.0), 1e-9);
}

TEST(MdlTest, NegativeExpectedRatioSelectsEmpiricalCoding) {
  std::vector<testutil::MixedRow> rows;
  for (int i = 0; i < 4; ++i) rows.push_back({0.0, 1, true});
  for (int i = 0; i < 12; ++i) rows.push_back({0.0, 0, false});
  const Dataset dataset = MakeMixedDataset(rows);
  const RowSubset all = dataset.AllRows();
  RuleSet rules;
  rules.AddRule(Rule({Condition::CatEqual(1, 1)}));
  const double asym = RuleSetDescriptionLength(dataset, all, kPos, rules,
                                               10.0, 0.5);
  const double sym = RuleSetDescriptionLength(dataset, all, kPos, rules,
                                              10.0, -1.0);
  // Both finite; for this perfectly-covered case they agree on theory bits
  // and the totals are close.
  EXPECT_GT(asym, 0.0);
  EXPECT_GT(sym, 0.0);
}

}  // namespace
}  // namespace pnr
