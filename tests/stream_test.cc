// Streaming scoring engine: feed parsing, windowed metrics, drift
// detection, checkpointing, and the end-to-end drift -> retrain -> hot-swap
// loop (DESIGN.md §15).
//
// The determinism contract is the backbone of every end-to-end test here:
// the journal, the retrained model file, and the swap sequence must be
// byte-identical at any score-thread count and any ingest pacing, because
// window boundaries, retrain sets, and swap points are all pure functions
// of the row stream. The drift scenario mirrors `pnr stream --generate`:
// a feed whose first half is training-distribution traffic and whose
// second half is the shifted kdd_sim test distribution (r2l surges from
// ~0.2% to ~5%), which must trigger exactly one retrain whose post-swap
// windowed recall beats the stale model's.

#include <sys/stat.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/csv.h"
#include "pnrule/model_io.h"
#include "stream/engine.h"
#include "synth/kdd_sim.h"
#include "test_util.h"

namespace pnr {
namespace {

// ---------------------------------------------------------------------------
// Feed parser

struct Collected {
  std::vector<ParsedRow> rows;
  std::vector<std::string> errors;
  uint64_t error_count = 0;
  uint64_t lines_seen = 0;
  uint64_t rows_emitted = 0;
};

Collected Collect(const Schema& schema, const std::string& text,
                  size_t fragment = 0, size_t parallel_threads = 0) {
  FeedParser parser(&schema, "test");
  Collected out;
  parser.set_row_fn([&](const ParsedRow& row) { out.rows.push_back(row); });
  if (parallel_threads > 0) {
    parser.AppendParallel(text, parallel_threads);
  } else if (fragment == 0) {
    parser.Append(text);
  } else {
    for (size_t at = 0; at < text.size(); at += fragment) {
      parser.Append(std::string_view(text).substr(
          at, std::min(fragment, text.size() - at)));
    }
  }
  parser.Finish();
  out.errors = parser.errors();
  out.error_count = parser.error_count();
  out.lines_seen = parser.lines_seen();
  out.rows_emitted = parser.rows_emitted();
  return out;
}

void ExpectSameRows(const Collected& a, const Collected& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].numeric, b.rows[i].numeric) << "row " << i;
    EXPECT_EQ(a.rows[i].categorical, b.rows[i].categorical) << "row " << i;
    EXPECT_EQ(a.rows[i].label, b.rows[i].label) << "row " << i;
    EXPECT_EQ(a.rows[i].line, b.rows[i].line) << "row " << i;
  }
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.error_count, b.error_count);
  EXPECT_EQ(a.lines_seen, b.lines_seen);
  EXPECT_EQ(a.rows_emitted, b.rows_emitted);
}

Schema TinySchema() {
  return testutil::MakeMixedDataset({}).schema();
}

TEST(FeedParserTest, ParsesRowsDelayedLabelsAndUnseenValues) {
  const Schema schema = TinySchema();
  const Collected got = Collect(schema,
                                "x,c,class\n"
                                "1.5,a,pos\n"
                                "2.0,?,?\n"
                                "3.0,novel_value,neg\n");
  ASSERT_EQ(got.rows.size(), 3u);
  EXPECT_EQ(got.error_count, 0u);
  EXPECT_EQ(got.rows[0].numeric[0], 1.5);
  EXPECT_EQ(got.rows[0].categorical[1], 0);  // "a"
  EXPECT_EQ(got.rows[0].label, testutil::kPos);
  EXPECT_EQ(got.rows[0].line, 2u);
  // `?` label = not yet arrived; `?` categorical = missing value.
  EXPECT_EQ(got.rows[1].label, kInvalidCategory);
  EXPECT_EQ(got.rows[1].categorical[1], kInvalidCategory);
  // A value outside the dictionary is data (the drift detector's unseen
  // bucket), not a defect: the row is kept.
  EXPECT_EQ(got.rows[2].categorical[1], kInvalidCategory);
  EXPECT_EQ(got.rows[2].label, 0);
}

TEST(FeedParserTest, RejectsStructuralDefectsWithLocatedErrors) {
  const Schema schema = TinySchema();
  const Collected got = Collect(schema,
                                "x,c,class\n"
                                "nan,a,pos\n"
                                "oops,a,pos\n"
                                "1.0,a\n"
                                "1.0,a,bogus_label\n"
                                "\n"
                                "2.5,b,neg\n");
  ASSERT_EQ(got.rows.size(), 1u);
  EXPECT_EQ(got.rows[0].numeric[0], 2.5);
  EXPECT_EQ(got.error_count, 5u);
  ASSERT_EQ(got.errors.size(), 5u);
  EXPECT_NE(got.errors[0].find("feed:test:2: bad numeric value 'nan'"),
            std::string::npos);
  EXPECT_NE(got.errors[1].find("feed:test:3: bad numeric value 'oops'"),
            std::string::npos);
  EXPECT_NE(got.errors[2].find("feed:test:4: expected 3 fields, got 2"),
            std::string::npos);
  EXPECT_NE(got.errors[3].find("feed:test:5: unknown class label"),
            std::string::npos);
  EXPECT_NE(got.errors[4].find("feed:test:6: empty line"),
            std::string::npos);
}

TEST(FeedParserTest, HeaderMismatchIsLocated) {
  const Schema schema = TinySchema();
  const Collected got = Collect(schema,
                                "x,wrong,class\n"
                                "1.0,a,pos\n");
  EXPECT_TRUE(got.rows.empty());
  EXPECT_GE(got.error_count, 1u);
  ASSERT_FALSE(got.errors.empty());
  EXPECT_NE(got.errors[0].find(
                "feed:test:1: header does not match the schema at column 2"),
            std::string::npos);
}

TEST(FeedParserTest, UnterminatedFinalLineFlushesOnFinish) {
  const Schema schema = TinySchema();
  FeedParser parser(&schema, "test");
  std::vector<ParsedRow> rows;
  parser.set_row_fn([&](const ParsedRow& row) { rows.push_back(row); });
  parser.Append("x,c,class\n0.25,b,pos");  // no trailing newline
  EXPECT_TRUE(rows.empty());  // still buffered: the producer may append more
  parser.Finish();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].numeric[0], 0.25);
  EXPECT_EQ(rows[0].label, testutil::kPos);
}

std::string BuildBigFeed(size_t num_rows) {
  std::string text = "x,c,class\n";
  for (size_t i = 0; i < num_rows; ++i) {
    if (i % 97 == 13) {
      text += "not_a_number,a,pos\n";  // periodic structural defect
    } else {
      text += std::to_string(i % 1000) + "." + std::to_string(i % 10) + "," +
              (i % 3 == 0 ? "a" : i % 3 == 1 ? "b" : "c") + "," +
              (i % 11 == 0 ? "pos" : i % 13 == 0 ? "?" : "neg") + "\n";
    }
  }
  return text;
}

TEST(FeedParserTest, FragmentationIsInvisible) {
  const Schema schema = TinySchema();
  const std::string text = BuildBigFeed(400) + "7.5,c,pos";  // unterminated
  const Collected whole = Collect(schema, text);
  ExpectSameRows(whole, Collect(schema, text, /*fragment=*/1));
  ExpectSameRows(whole, Collect(schema, text, /*fragment=*/7));
  ExpectSameRows(whole, Collect(schema, text, /*fragment=*/4096));
}

TEST(FeedParserTest, AppendParallelMatchesSerialAppend) {
  const Schema schema = TinySchema();
  // Big enough that ClampThreadsForBytes actually grants multiple chunk
  // workers (1 MiB per thread), so the parallel merge path is exercised.
  const std::string text = BuildBigFeed(260000);
  ASSERT_GT(text.size(), 2u << 20);
  const Collected serial = Collect(schema, text);
  EXPECT_GT(serial.error_count, 0u);
  ExpectSameRows(serial, Collect(schema, text, 0, /*parallel_threads=*/2));
  ExpectSameRows(serial, Collect(schema, text, 0, /*parallel_threads=*/8));
}

// ---------------------------------------------------------------------------
// Windowed metrics

TEST(StreamWindowTest, ScoreBinEdges) {
  EXPECT_EQ(StreamScoreBin(0.0), 0u);
  EXPECT_EQ(StreamScoreBin(-0.5), 0u);
  EXPECT_EQ(StreamScoreBin(0.0624), 0u);
  EXPECT_EQ(StreamScoreBin(0.5), 8u);
  EXPECT_EQ(StreamScoreBin(0.999), 15u);
  EXPECT_EQ(StreamScoreBin(1.0), 15u);
  EXPECT_EQ(StreamScoreBin(2.0), 15u);
}

TEST(StreamWindowTest, ComputeWindowStatsExcludesDelayedLabels) {
  const double scores[] = {0.9, 0.1, 0.8, 0.2, 0.7};
  const CategoryId labels[] = {1, 0, kInvalidCategory, 1, 0};
  const WindowStats stats = ComputeWindowStats(scores, labels, 5, 1, 0.5);
  EXPECT_EQ(stats.rows, 5u);
  EXPECT_EQ(stats.labeled_rows, 4u);  // row 2's label has not arrived
  EXPECT_EQ(stats.predicted_positive, 3u);  // all rows count here
  EXPECT_EQ(stats.labeled_positive, 2u);
  EXPECT_EQ(stats.confusion.true_positives, 1.0);   // row 0
  EXPECT_EQ(stats.confusion.false_negatives, 1.0);  // row 3
  EXPECT_EQ(stats.confusion.false_positives, 1.0);  // row 4
  EXPECT_EQ(stats.confusion.true_negatives, 1.0);   // row 1
  EXPECT_EQ(stats.score_histogram[StreamScoreBin(0.9)], 1u);
}

TEST(StreamWindowTest, SlidingAggregateEvictsOldWindows) {
  SlidingAggregate sliding(2);
  const double scores[] = {0.9};
  const CategoryId pos[] = {1};
  const CategoryId neg[] = {0};
  sliding.Push(ComputeWindowStats(scores, pos, 1, 1, 0.5));
  sliding.Push(ComputeWindowStats(scores, neg, 1, 1, 0.5));
  sliding.Push(ComputeWindowStats(scores, neg, 1, 1, 0.5));
  EXPECT_EQ(sliding.size(), 2u);
  EXPECT_EQ(sliding.rows(), 2u);
  // The first (true-positive) window fell out of the aggregate.
  EXPECT_EQ(sliding.confusion().true_positives, 0.0);
  EXPECT_EQ(sliding.confusion().false_positives, 2.0);
}

TEST(StreamWindowTest, RenderWindowLineIsStableText) {
  const double scores[] = {0.9, 0.1, 0.6, 0.2};
  const CategoryId labels[] = {1, 0, 1, 0};
  WindowStats stats = ComputeWindowStats(scores, labels, 4, 1, 0.5);
  stats.index = 7;
  stats.model_version = 2;
  SlidingAggregate sliding(5);
  sliding.Push(stats);
  EXPECT_EQ(RenderWindowLine(stats, sliding),
            "window 7 rows=4 labeled=4 pos=2 pred=2 recall=1.000000 "
            "precision=1.000000 slide_recall=1.000000 "
            "slide_precision=1.000000 "
            "hist=0:1:0:1:0:0:0:0:0:1:0:0:0:0:1:0 model=v2");
  stats.partial = true;
  EXPECT_NE(RenderWindowLine(stats, sliding).find(" partial"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Drift detection

TEST(DriftTest, SmoothedPsiBasics) {
  EXPECT_EQ(SmoothedPsi({100, 100}, {100, 100}), 0.0);
  EXPECT_EQ(SmoothedPsi({}, {}), 0.0);
  // A mass swap between bins yields a large PSI; smoothing keeps an
  // empty-bin comparison finite.
  EXPECT_GT(SmoothedPsi({200, 0}, {0, 200}), 1.0);
  const double noise = SmoothedPsi({100, 100}, {103, 97});
  EXPECT_GT(noise, 0.0);
  EXPECT_LT(noise, 0.01);
}

// A dataset whose first `normal` rows are baseline traffic and whose tail
// is label-shifted: same features and scores, positives everywhere.
struct DriftRig {
  DriftRig() {
    std::vector<testutil::MixedRow> rows;
    for (int i = 0; i < 200; ++i) {
      rows.push_back({static_cast<double>(i % 10), CategoryId(i % 2),
                      /*positive=*/i >= 100});
    }
    dataset = testutil::MakeMixedDataset(rows);
    for (int i = 0; i < 200; ++i) {
      ids.push_back(static_cast<RowId>(i));
      scores.push_back(0.1 + 0.05 * (i % 4));
    }
  }

  DriftDetector::WindowReport Observe(DriftDetector* detector, size_t first,
                                      size_t count) {
    return detector->Observe(dataset, ids.data() + first, count,
                             scores.data() + first, testutil::kPos);
  }

  Dataset dataset = testutil::MakeMixedDataset({});
  std::vector<RowId> ids;
  std::vector<double> scores;
};

DriftOptions SmallDriftOptions() {
  DriftOptions options;
  options.reference_windows = 2;
  options.confirm_windows = 2;
  options.numeric_bins = 4;
  return options;
}

TEST(DriftTest, LabelShiftConfirmsOnlyAfterConsecutiveWindows) {
  DriftRig rig;
  DriftDetector detector(&rig.dataset.schema(), SmallDriftOptions());
  // Warmup: two baseline windows build the reference.
  EXPECT_TRUE(rig.Observe(&detector, 0, 50).warmup);
  EXPECT_TRUE(rig.Observe(&detector, 50, 50).warmup);
  EXPECT_TRUE(detector.baseline_ready());

  // Shifted window (positives): the label channel fires, features do not.
  DriftDetector::WindowReport report = rig.Observe(&detector, 100, 50);
  EXPECT_FALSE(report.warmup);
  EXPECT_GT(report.label_psi, detector.options().label_psi_threshold);
  EXPECT_LT(report.max_feature_psi, detector.options().psi_threshold);
  EXPECT_LT(report.score_psi, detector.options().score_psi_threshold);
  EXPECT_TRUE(report.over_threshold);
  EXPECT_EQ(report.consecutive, 1u);
  EXPECT_FALSE(report.confirmed);  // hysteresis: one window never confirms

  // A baseline window in between resets the streak...
  report = rig.Observe(&detector, 0, 50);
  EXPECT_FALSE(report.over_threshold);
  EXPECT_EQ(report.consecutive, 0u);

  // ...so confirmation needs two shifted windows in a row.
  EXPECT_FALSE(rig.Observe(&detector, 100, 50).confirmed);
  report = rig.Observe(&detector, 150, 50);
  EXPECT_TRUE(report.confirmed);
  EXPECT_EQ(report.consecutive, 2u);

  detector.ResetBaseline();
  EXPECT_FALSE(detector.baseline_ready());
  EXPECT_EQ(detector.consecutive_over(), 0u);
  EXPECT_EQ(detector.resets(), 1u);
  // The next windows are warmup again (the retrain cooldown).
  EXPECT_TRUE(rig.Observe(&detector, 100, 50).warmup);
}

TEST(DriftTest, NumericShiftFlagsTheWorstAttribute) {
  DriftRig rig;
  DriftDetector detector(&rig.dataset.schema(), SmallDriftOptions());
  rig.Observe(&detector, 0, 50);
  rig.Observe(&detector, 50, 50);
  // Push the numeric attribute far outside the reference range.
  std::vector<testutil::MixedRow> shifted;
  for (int i = 0; i < 50; ++i) {
    shifted.push_back({1000.0 + i, CategoryId(i % 2), false});
  }
  Dataset moved = testutil::MakeMixedDataset(shifted);
  std::vector<RowId> ids(50);
  std::vector<double> scores(50, 0.1);
  for (int i = 0; i < 50; ++i) ids[i] = static_cast<RowId>(i);
  const DriftDetector::WindowReport report = detector.Observe(
      moved, ids.data(), ids.size(), scores.data(), testutil::kPos);
  EXPECT_GT(report.max_feature_psi, detector.options().psi_threshold);
  EXPECT_EQ(report.worst_attr, 0);  // "x"
  EXPECT_TRUE(report.over_threshold);
}

TEST(DriftTest, UnseenCategoricalValuesCountAsDrift) {
  DriftRig rig;
  DriftDetector detector(&rig.dataset.schema(), SmallDriftOptions());
  rig.Observe(&detector, 0, 50);
  rig.Observe(&detector, 50, 50);
  // Post-drift traffic: every categorical cell is a dictionary miss
  // (kInvalidCategory), exactly what a novel attack subclass produces.
  std::vector<testutil::MixedRow> novel;
  for (int i = 0; i < 50; ++i) {
    novel.push_back({static_cast<double>(i % 10), 0, false});
  }
  Dataset moved = testutil::MakeMixedDataset(novel);
  std::vector<RowId> ids(50);
  std::vector<double> scores(50, 0.1);
  for (int i = 0; i < 50; ++i) {
    ids[i] = static_cast<RowId>(i);
    moved.set_categorical(ids[i], 1, kInvalidCategory);
  }
  const DriftDetector::WindowReport report = detector.Observe(
      moved, ids.data(), ids.size(), scores.data(), testutil::kPos);
  EXPECT_GT(report.max_feature_psi, detector.options().psi_threshold);
  EXPECT_EQ(report.worst_attr, 1);  // "c"
}

TEST(DriftTest, WindowWithoutLabelsHasZeroLabelPsi) {
  DriftRig rig;
  DriftDetector detector(&rig.dataset.schema(), SmallDriftOptions());
  rig.Observe(&detector, 0, 50);
  rig.Observe(&detector, 50, 50);
  // Same traffic, labels stripped: the label channel must contribute 0
  // rather than manufacturing PSI out of smoothing terms.
  Dataset unlabeled = rig.dataset;
  for (RowId row = 0; row < unlabeled.num_rows(); ++row) {
    unlabeled.set_label(row, kInvalidCategory);
  }
  const DriftDetector::WindowReport report =
      detector.Observe(unlabeled, rig.ids.data(), 50, rig.scores.data(),
                       testutil::kPos);
  EXPECT_EQ(report.label_psi, 0.0);
  EXPECT_FALSE(report.over_threshold);
}

TEST(DriftTest, SerializeRestoreIsAFixpoint) {
  DriftRig rig;
  const Schema& schema = rig.dataset.schema();
  DriftDetector detector(&schema, SmallDriftOptions());

  // Warmup state (reference still accumulating).
  rig.Observe(&detector, 0, 50);
  const std::string warmup_blob = detector.Serialize();
  DriftDetector warm_restored(&schema, SmallDriftOptions());
  ASSERT_TRUE(warm_restored.Restore(warmup_blob).ok());
  EXPECT_EQ(warm_restored.Serialize(), warmup_blob);
  EXPECT_FALSE(warm_restored.baseline_ready());
  EXPECT_EQ(warm_restored.warmup_windows_seen(), 1u);

  // Ready state, mid-streak.
  rig.Observe(&detector, 50, 50);
  rig.Observe(&detector, 100, 50);
  EXPECT_EQ(detector.consecutive_over(), 1u);
  const std::string ready_blob = detector.Serialize();
  DriftDetector restored(&schema, SmallDriftOptions());
  ASSERT_TRUE(restored.Restore(ready_blob).ok());
  EXPECT_EQ(restored.Serialize(), ready_blob);
  EXPECT_TRUE(restored.baseline_ready());
  EXPECT_EQ(restored.consecutive_over(), 1u);

  // Behavioral equivalence: both detectors must report the next window
  // identically (this is what makes checkpoint resume deterministic).
  const DriftDetector::WindowReport a = rig.Observe(&detector, 150, 50);
  const DriftDetector::WindowReport b = rig.Observe(&restored, 150, 50);
  EXPECT_EQ(a.max_feature_psi, b.max_feature_psi);
  EXPECT_EQ(a.score_psi, b.score_psi);
  EXPECT_EQ(a.label_psi, b.label_psi);
  EXPECT_EQ(a.confirmed, b.confirmed);
  EXPECT_EQ(detector.Serialize(), restored.Serialize());
}

TEST(DriftTest, RestoreRejectsMalformedBlobsAndStaysUnchanged) {
  DriftRig rig;
  const Schema& schema = rig.dataset.schema();
  DriftDetector detector(&schema, SmallDriftOptions());
  rig.Observe(&detector, 0, 50);
  rig.Observe(&detector, 50, 50);
  const std::string good = detector.Serialize();
  const std::string before = good;

  const auto expect_rejected = [&](std::string blob, const char* what) {
    const Status status = detector.Restore(blob);
    EXPECT_FALSE(status.ok()) << what;
    EXPECT_NE(status.message().find("drift-state:"), std::string::npos)
        << what << ": " << status.message();
    EXPECT_EQ(detector.Serialize(), before) << what;
  };

  expect_rejected("", "empty blob");
  expect_rejected("garbage\n", "bad header");
  {
    std::string blob = good;
    blob.replace(blob.find("v1"), 2, "v9");
    expect_rejected(blob, "unknown version");
  }
  {
    std::string blob = good;
    const size_t at = blob.find("attrs 2");
    ASSERT_NE(at, std::string::npos);
    blob.replace(at, 7, "attrs 1");
    expect_rejected(blob, "attr count mismatch");
  }
  {
    // Truncate: drop the final 'end' line.
    std::string blob = good;
    ASSERT_EQ(blob.substr(blob.size() - 4), "end\n");
    blob.resize(blob.size() - 4);
    expect_rejected(blob, "missing end");
  }
  {
    std::string blob = good;
    const size_t at = blob.find("score counts 16");
    ASSERT_NE(at, std::string::npos);
    blob.replace(at, 15, "score counts 15");
    expect_rejected(blob, "score histogram size mismatch");
  }
  // Options mismatch: a blob from a 4-bin detector cannot restore into an
  // 8-bin one.
  {
    DriftOptions other = SmallDriftOptions();
    other.numeric_bins = 8;
    DriftDetector wide(&schema, other);
    const Status status = wide.Restore(good);
    EXPECT_FALSE(status.ok());
  }
}

// ---------------------------------------------------------------------------
// Checkpoint format

TEST(StreamCheckpointTest, SerializeParseIsAFixpoint) {
  StreamCheckpoint checkpoint;
  checkpoint.windows = 13;
  checkpoint.rows = 6500;
  checkpoint.swaps = 1;
  checkpoint.model_version = 2;
  checkpoint.model_path = "out dir/model_w13.txt";  // spaces survive
  checkpoint.drift_blob = "pnr-stream-drift v1\nstate warmup\n";
  const std::string text = SerializeStreamCheckpoint(checkpoint);
  auto parsed = ParseStreamCheckpoint(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->windows, 13u);
  EXPECT_EQ(parsed->rows, 6500u);
  EXPECT_EQ(parsed->swaps, 1u);
  EXPECT_EQ(parsed->model_version, 2u);
  EXPECT_EQ(parsed->model_path, "out dir/model_w13.txt");
  EXPECT_EQ(parsed->drift_blob, checkpoint.drift_blob);
  EXPECT_EQ(SerializeStreamCheckpoint(*parsed), text);
}

TEST(StreamCheckpointTest, ParseRejectsMalformedInput) {
  const std::string good = SerializeStreamCheckpoint([] {
    StreamCheckpoint c;
    c.windows = 2;
    c.rows = 1000;
    c.model_path = "m.txt";
    c.drift_blob = "blob line\n";
    return c;
  }());
  ASSERT_TRUE(ParseStreamCheckpoint(good).ok());

  const auto expect_rejected = [](const std::string& text, const char* what) {
    const auto parsed = ParseStreamCheckpoint(text);
    ASSERT_FALSE(parsed.ok()) << what;
    EXPECT_NE(parsed.status().message().find("stream-checkpoint:"),
              std::string::npos)
        << what << ": " << parsed.status().ToString();
  };

  expect_rejected("", "empty");
  expect_rejected(good.substr(0, good.size() - 1), "missing final newline");
  expect_rejected("pnr-stream-checkpoint v2\n", "wrong version");
  {
    std::string text = good;
    // Non-canonical counters must not round-trip silently.
    text.replace(text.find("windows 2"), 9, "windows 02");
    expect_rejected(text, "leading zero counter");
  }
  {
    std::string text = good;
    text.replace(text.find("windows 2"), 9, "windows +2");
    expect_rejected(text, "signed counter");
  }
  {
    std::string text = good;
    text.replace(text.find("model_version 1"), 15, "model_version 0");
    expect_rejected(text, "model_version zero");
  }
  {
    std::string text = good;
    text.replace(text.find("model m.txt"), 11, "model ");
    expect_rejected(text, "empty model path");
  }
  {
    std::string text = good;
    text.replace(text.find("drift 1"), 7, "drift 9");
    expect_rejected(text, "drift blob truncated");
  }
  {
    std::string text = good;
    text.replace(text.find("end\n"), 4, "");
    expect_rejected(text, "missing end");
  }
  expect_rejected(good + "extra\n", "trailing content");
}

// ---------------------------------------------------------------------------
// End-to-end engine scenario (mirrors `pnr stream --generate`)

constexpr uint64_t kWindowRows = 500;
constexpr size_t kBaseTrainRows = 4000;  // rows the stale model learned from
constexpr size_t kPreRows = 4000;        // training-distribution feed prefix
constexpr size_t kPostRows = 3000;       // shifted kdd_sim test traffic
constexpr uint64_t kRetrainRows = 3000;

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::string();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void CopyRow(const Dataset& src, RowId from, Dataset* dst) {
  const RowId to = dst->AddRow();
  for (size_t a = 0; a < src.schema().num_attributes(); ++a) {
    const AttrIndex attr = static_cast<AttrIndex>(a);
    if (src.schema().attribute(attr).is_numeric()) {
      dst->set_numeric(to, attr, src.numeric(from, attr));
    } else {
      dst->set_categorical(to, attr, src.categorical(from, attr));
    }
  }
  dst->set_label(to, src.label(from));
}

struct Scenario {
  Schema schema;
  CategoryId target = kInvalidCategory;
  std::string base_model_text;  // stale model, serialized
  std::string feed_csv;         // the feed file bytes, WriteCsv dialect
  std::vector<ParsedRow> feed;  // feed_csv parsed: kPreRows + kPostRows rows
};

const Scenario& SharedScenario() {
  static const Scenario scenario = [] {
    KddSimParams params;
    params.train_records = kBaseTrainRows + kPreRows;
    params.test_records = kPostRows;
    params.seed = 427;
    auto generated = GenerateKddSim(params);
    EXPECT_TRUE(generated.ok()) << generated.status().ToString();
    const Dataset& train = generated->train;
    const Dataset& test = generated->test;

    Scenario out;
    out.schema = train.schema();
    out.target = out.schema.class_attr().FindCategory("r2l");
    EXPECT_NE(out.target, kInvalidCategory);

    Dataset base(train.schema());
    for (RowId row = 0; row < kBaseTrainRows; ++row) {
      CopyRow(train, row, &base);
    }
    auto model = PnruleLearner(PnruleConfig()).Train(base, out.target);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    out.base_model_text = SerializePnruleModel(*model, out.schema);

    // The feed travels through the CSV dialect, exactly as `pnr stream
    // --generate` produces it: training-distribution prefix, then the
    // shifted test traffic.
    Dataset feed_dataset(train.schema());
    for (RowId row = kBaseTrainRows; row < kBaseTrainRows + kPreRows; ++row) {
      CopyRow(train, row, &feed_dataset);
    }
    for (RowId row = 0; row < kPostRows; ++row) {
      CopyRow(test, row, &feed_dataset);
    }
    const std::string csv_path =
        ::testing::TempDir() + "/pnr_stream_scenario_feed.csv";
    EXPECT_TRUE(WriteCsv(feed_dataset, csv_path).ok());
    out.feed_csv = ReadFileOrEmpty(csv_path);
    EXPECT_FALSE(out.feed_csv.empty());
    FeedParser parser(&out.schema, "scenario");
    parser.set_row_fn(
        [&out](const ParsedRow& row) { out.feed.push_back(row); });
    parser.Append(out.feed_csv);
    parser.Finish();
    EXPECT_EQ(parser.error_count(), 0u)
        << (parser.errors().empty() ? "" : parser.errors()[0]);
    EXPECT_EQ(out.feed.size(), kPreRows + kPostRows);
    return out;
  }();
  return scenario;
}

struct RunConfig {
  std::string tag;  // names the out dir; must be unique per configuration
  size_t score_threads = 1;
  bool retrain_enabled = true;
  size_t pump_every = 1;          // Pump after every n rows; 0 = once at end
  size_t ingest_limit = SIZE_MAX;
  bool finish = true;
  const StreamCheckpoint* restore = nullptr;
  bool write_checkpoint = false;
};

struct RunResult {
  std::vector<std::string> journal;
  std::vector<WindowStats> history;
  uint64_t swaps = 0;
  uint64_t windows = 0;
  uint64_t model_version = 0;
  StreamCheckpoint checkpoint;       // MakeCheckpoint() at the end
  std::string checkpoint_file;       // on-disk checkpoint (if written)
  std::string retrained_model_text;  // bytes of the swapped-in model file
  std::string out_dir;
};

StreamEngineOptions MakeEngineOptions(const Scenario& scenario,
                                      const RunConfig& config,
                                      const std::string& out_dir) {
  StreamEngineOptions options;
  options.window_rows = kWindowRows;
  options.sliding_windows = 5;
  options.threshold = 0.5;
  options.score_threads = config.score_threads;
  options.target = scenario.target;
  options.retrain_enabled = config.retrain_enabled;
  options.retrain_rows = kRetrainRows;
  options.model_path = out_dir + "/base_model.txt";
  if (config.write_checkpoint) options.checkpoint_path = out_dir + "/ckpt";
  options.retrain.out_dir = out_dir;
  options.retrain.snapshot_shards = 2;
  options.retrain.want_threads = 2;
  return options;
}

RunResult RunEngine(const RunConfig& config) {
  const Scenario& scenario = SharedScenario();
  RunResult result;
  result.out_dir = ::testing::TempDir() + "/pnr_stream_" + config.tag;
  ::mkdir(result.out_dir.c_str(), 0755);

  ModelRegistry registry;
  auto base = ParsePnruleModel(scenario.base_model_text, scenario.schema);
  EXPECT_TRUE(base.ok()) << base.status().ToString();
  registry.Install("stream", scenario.schema, std::move(base).value());

  ThreadBudget budget(config.score_threads + 2);
  budget.Reserve(config.score_threads);

  StreamEngine engine(&scenario.schema, &registry, &budget,
                      MakeEngineOptions(scenario, config, result.out_dir));
  if (config.restore != nullptr) {
    const Status restored = engine.RestoreCheckpoint(*config.restore);
    EXPECT_TRUE(restored.ok()) << restored.ToString();
  }
  const Status started = engine.Start();
  EXPECT_TRUE(started.ok()) << started.ToString();

  const size_t limit = std::min(config.ingest_limit, scenario.feed.size());
  for (size_t i = 0; i < limit; ++i) {
    engine.Ingest(scenario.feed[i]);
    if (config.pump_every != 0 && (i + 1) % config.pump_every == 0) {
      const Status pumped = engine.Pump();
      EXPECT_TRUE(pumped.ok()) << pumped.ToString();
    }
  }
  Status pumped = engine.Pump();
  EXPECT_TRUE(pumped.ok()) << pumped.ToString();
  if (config.finish) {
    const Status finished = engine.FinishStream();
    EXPECT_TRUE(finished.ok()) << finished.ToString();
  }

  result.journal = engine.journal();
  result.history = engine.window_history();
  result.swaps = engine.swaps_done();
  result.windows = engine.windows_processed();
  result.model_version = engine.model_version();
  result.checkpoint = engine.MakeCheckpoint();
  if (config.write_checkpoint) {
    result.checkpoint_file = ReadFileOrEmpty(result.out_dir + "/ckpt");
  }
  result.retrained_model_text = ReadFileOrEmpty(engine.model_path());
  return result;
}

// The reference run every determinism test compares against: serial
// scoring, per-row pumping (the CLI's cadence), checkpoints on.
const RunResult& BaselineRun() {
  static const RunResult result = RunEngine(
      {.tag = "baseline", .score_threads = 1, .write_checkpoint = true});
  return result;
}

// The stale-model control: identical stream, retraining disabled.
const RunResult& NoRetrainRun() {
  static const RunResult result =
      RunEngine({.tag = "noretrain", .retrain_enabled = false});
  return result;
}

size_t CountLines(const std::vector<std::string>& journal,
                  const std::string& prefix) {
  size_t count = 0;
  for (const std::string& line : journal) {
    if (line.compare(0, prefix.size(), prefix) == 0) ++count;
  }
  return count;
}

void ExpectSameStats(const WindowStats& a, const WindowStats& b,
                     const char* what) {
  EXPECT_EQ(a.index, b.index) << what;
  EXPECT_EQ(a.first_ordinal, b.first_ordinal) << what;
  EXPECT_EQ(a.rows, b.rows) << what;
  EXPECT_EQ(a.labeled_rows, b.labeled_rows) << what;
  EXPECT_EQ(a.predicted_positive, b.predicted_positive) << what;
  EXPECT_EQ(a.labeled_positive, b.labeled_positive) << what;
  EXPECT_EQ(a.confusion.true_positives, b.confusion.true_positives) << what;
  EXPECT_EQ(a.confusion.false_positives, b.confusion.false_positives) << what;
  EXPECT_EQ(a.confusion.false_negatives, b.confusion.false_negatives) << what;
  EXPECT_EQ(a.score_histogram, b.score_histogram) << what;
  EXPECT_EQ(a.model_version, b.model_version) << what;
  EXPECT_EQ(a.partial, b.partial) << what;
}

TEST(StreamEngineTest, ScenarioTriggersExactlyOneRetrain) {
  const RunResult& run = BaselineRun();
  EXPECT_EQ(run.windows, (kPreRows + kPostRows) / kWindowRows);
  EXPECT_EQ(run.swaps, 1u);
  EXPECT_EQ(run.model_version, 2u);
  EXPECT_EQ(CountLines(run.journal, "retrain start"), 1u);
  EXPECT_EQ(CountLines(run.journal, "retrain done"), 1u);
  EXPECT_EQ(CountLines(run.journal, "swap "), 1u);
  EXPECT_EQ(CountLines(run.journal, "retrain failed"), 0u);
  EXPECT_FALSE(run.retrained_model_text.empty());

  // The confirming window must lie in the shifted half of the stream: the
  // pre-drift traffic never trips the detector.
  uint64_t swap_window = 0;
  for (const std::string& line : run.journal) {
    if (line.compare(0, 5, "swap ") == 0) {
      swap_window = std::strtoull(line.c_str() + line.find("window=") + 7,
                                  nullptr, 10);
    }
  }
  EXPECT_GE(swap_window, kPreRows / kWindowRows);
  // The retrained model parses against the schema (it is a real artifact,
  // not just bytes).
  EXPECT_TRUE(ParsePnruleModel(run.retrained_model_text,
                               SharedScenario().schema)
                  .ok());
}

TEST(StreamEngineTest, JournalAndModelAreByteIdenticalAcrossScoreThreads) {
  const RunResult& reference = BaselineRun();
  for (const size_t threads : {2u, 8u}) {
    const RunResult run =
        RunEngine({.tag = "threads" + std::to_string(threads),
                   .score_threads = threads});
    EXPECT_EQ(run.journal, reference.journal) << "threads=" << threads;
    EXPECT_EQ(run.retrained_model_text, reference.retrained_model_text)
        << "threads=" << threads;
    EXPECT_EQ(run.swaps, reference.swaps);
  }
}

TEST(StreamEngineTest, IngestPacingDoesNotChangeTheJournal) {
  const RunResult& reference = BaselineRun();
  // One giant backlog pumped once at the end vs per-row pumping: window
  // boundaries and swap points are stream positions, so the journals (and
  // model bytes) cannot differ.
  const RunResult backlog = RunEngine({.tag = "backlog", .pump_every = 0});
  EXPECT_EQ(backlog.journal, reference.journal);
  EXPECT_EQ(backlog.retrained_model_text, reference.retrained_model_text);
  const RunResult chunked = RunEngine({.tag = "chunked", .pump_every = 733});
  EXPECT_EQ(chunked.journal, reference.journal);
}

TEST(StreamEngineTest, RetrainedModelBeatsStaleModelOnShiftedTraffic) {
  const RunResult& retrained = BaselineRun();
  const RunResult& stale = NoRetrainRun();
  ASSERT_EQ(retrained.history.size(), stale.history.size());
  EXPECT_EQ(stale.swaps, 0u);
  EXPECT_EQ(CountLines(stale.journal, "retrain"), 0u);

  double swapped_recall = 0.0;
  double stale_recall = 0.0;
  size_t post_swap_windows = 0;
  for (size_t i = 0; i < retrained.history.size(); ++i) {
    const WindowStats& window = retrained.history[i];
    if (window.model_version < 2) {
      // Pre-swap windows are scored by the same model in both runs.
      ExpectSameStats(window, stale.history[i], "pre-swap window");
      continue;
    }
    ++post_swap_windows;
    swapped_recall += window.confusion.recall();
    stale_recall += stale.history[i].confusion.recall();
  }
  ASSERT_GE(post_swap_windows, 3u);
  // The acceptance bar: windowed recall on the shifted segment under the
  // swapped-in model strictly exceeds the stale model's. (Measured:
  // ~0.6-0.8 vs ~0.0-0.06 per window on this seed.)
  EXPECT_GT(swapped_recall, stale_recall);
  EXPECT_GT(swapped_recall / post_swap_windows, 0.3);
  EXPECT_LT(stale_recall / post_swap_windows, 0.2);
}

TEST(StreamEngineTest, FeedParserChainMatchesDirectIngest) {
  const Scenario& scenario = SharedScenario();
  const std::string out_dir = ::testing::TempDir() + "/pnr_stream_csvchain";
  ::mkdir(out_dir.c_str(), 0755);
  ModelRegistry registry;
  auto base = ParsePnruleModel(scenario.base_model_text, scenario.schema);
  ASSERT_TRUE(base.ok());
  registry.Install("stream", scenario.schema, std::move(base).value());
  ThreadBudget budget(3);
  budget.Reserve(1);
  RunConfig config{.tag = "csvchain"};
  StreamEngine engine(&scenario.schema, &registry, &budget,
                      MakeEngineOptions(scenario, config, out_dir));
  ASSERT_TRUE(engine.Start().ok());

  // Re-parse the feed bytes in ragged fragments (as tail polls would
  // deliver them), a Pump between each: transport timing must be invisible
  // in the journal.
  FeedParser parser(&scenario.schema, "chain");
  parser.set_row_fn([&](const ParsedRow& row) { engine.Ingest(row); });
  const std::string& bytes = scenario.feed_csv;
  for (size_t at = 0; at < bytes.size(); at += 37777) {
    parser.Append(std::string_view(bytes).substr(
        at, std::min<size_t>(37777, bytes.size() - at)));
    ASSERT_TRUE(engine.Pump().ok());
  }
  parser.Finish();
  ASSERT_TRUE(engine.FinishStream().ok());
  EXPECT_EQ(parser.error_count(), 0u);
  EXPECT_EQ(engine.journal(), BaselineRun().journal);
}

TEST(StreamEngineTest, FinalPartialWindowIsScoredAndJournaled) {
  // Cut mid-window: 6 full windows plus a 250-row remainder. No drift has
  // confirmed by then, so the run is cheap.
  const RunResult run = RunEngine({.tag = "partialwin",
                                   .ingest_limit = 6 * kWindowRows + 250});
  EXPECT_EQ(run.windows, 6u);
  EXPECT_EQ(run.swaps, 0u);
  ASSERT_EQ(run.history.size(), 7u);
  const WindowStats& last = run.history.back();
  EXPECT_TRUE(last.partial);
  EXPECT_EQ(last.rows, 250u);
  EXPECT_EQ(last.index, 6u);
  ASSERT_FALSE(run.journal.empty());
  EXPECT_NE(run.journal.back().find(" partial"), std::string::npos);
  // The final checkpoint records only complete windows.
  EXPECT_EQ(run.checkpoint.windows, 6u);
  EXPECT_EQ(run.checkpoint.rows, 6 * kWindowRows);
}

TEST(StreamEngineTest, CheckpointFileIsWrittenAndRestorable) {
  const RunResult& run = BaselineRun();
  ASSERT_FALSE(run.checkpoint_file.empty());
  auto parsed = ParseStreamCheckpoint(run.checkpoint_file);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeStreamCheckpoint(*parsed), run.checkpoint_file);
  EXPECT_EQ(parsed->windows, run.windows);
  EXPECT_EQ(parsed->rows, run.windows * kWindowRows);
  EXPECT_EQ(parsed->swaps, 1u);
  EXPECT_EQ(parsed->model_version, 2u);
  // The recorded model path is the retrained artifact, and the embedded
  // drift blob restores into a fresh detector.
  EXPECT_EQ(ReadFileOrEmpty(parsed->model_path), run.retrained_model_text);
  DriftDetector detector(&SharedScenario().schema, DriftOptions());
  EXPECT_TRUE(detector.Restore(parsed->drift_blob).ok());
}

TEST(StreamEngineTest, ResumeFromCheckpointMatchesUninterruptedRun) {
  const RunResult& full = BaselineRun();
  // Stop mid-stream, before the drift region: 7 complete windows.
  constexpr size_t kCut = 7 * kWindowRows;
  const RunResult partial = RunEngine(
      {.tag = "partial", .ingest_limit = kCut, .finish = false});
  ASSERT_EQ(partial.windows, 7u);
  ASSERT_EQ(partial.swaps, 0u);

  // The checkpoint round-trips through its text form, as it would on disk.
  const std::string text = SerializeStreamCheckpoint(partial.checkpoint);
  auto restored = ParseStreamCheckpoint(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  const RunResult resumed =
      RunEngine({.tag = "resumed", .restore = &*restored});
  EXPECT_EQ(resumed.windows, full.windows);
  EXPECT_EQ(resumed.swaps, full.swaps);
  EXPECT_EQ(resumed.retrained_model_text, full.retrained_model_text);

  // Window stats from the restore point onward are identical to the
  // uninterrupted run's (the sliding aggregate intentionally restarts
  // empty, so journal *window* lines may differ in slide_* early on —
  // WindowStats carries everything decision-relevant).
  ASSERT_EQ(resumed.history.size() + 7, full.history.size());
  for (size_t i = 0; i < resumed.history.size(); ++i) {
    ExpectSameStats(resumed.history[i], full.history[i + 7], "resumed");
  }
  // Drift decisions, retrain, and swap lines replay identically.
  const auto decisions = [](const std::vector<std::string>& journal) {
    std::vector<std::string> out;
    for (const std::string& line : journal) {
      if (line.compare(0, 7, "window ") != 0) out.push_back(line);
    }
    return out;
  };
  EXPECT_EQ(decisions(resumed.journal), decisions(full.journal));
}

TEST(StreamEngineTest, StartFailsWithoutAModel) {
  const Scenario& scenario = SharedScenario();
  ModelRegistry registry;  // empty
  ThreadBudget budget(2);
  RunConfig config{.tag = "nomodel"};
  const std::string out_dir = ::testing::TempDir();
  StreamEngine engine(&scenario.schema, &registry, &budget,
                      MakeEngineOptions(scenario, config, out_dir));
  const Status started = engine.Start();
  EXPECT_FALSE(started.ok());
  EXPECT_NE(started.message().find("no model named"), std::string::npos);
}

TEST(StreamEngineTest, RestoreRejectsMismatchedWindowSize) {
  const Scenario& scenario = SharedScenario();
  ModelRegistry registry;
  ThreadBudget budget(2);
  RunConfig config{.tag = "badrestore"};
  StreamEngine engine(&scenario.schema, &registry, &budget,
                      MakeEngineOptions(scenario, config, ::testing::TempDir()));
  StreamCheckpoint checkpoint;
  checkpoint.windows = 2;
  checkpoint.rows = 999;  // not 2 * kWindowRows: written with another --window
  checkpoint.model_path = "m.txt";
  const Status restored = engine.RestoreCheckpoint(checkpoint);
  EXPECT_FALSE(restored.ok());
  EXPECT_NE(restored.message().find("different --window"), std::string::npos);
}

}  // namespace
}  // namespace pnr
