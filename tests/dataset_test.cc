#include "data/dataset.h"

#include <gtest/gtest.h>

namespace pnr {
namespace {

Schema TwoColumnSchema() {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  schema.AddAttribute(Attribute::Categorical("color", {"red", "green"}));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  return schema;
}

TEST(AttributeTest, CategoricalDictionary) {
  Attribute attr = Attribute::Categorical("service");
  EXPECT_EQ(attr.num_categories(), 0u);
  const CategoryId http = attr.GetOrAddCategory("http");
  const CategoryId ftp = attr.GetOrAddCategory("ftp");
  EXPECT_EQ(attr.GetOrAddCategory("http"), http);  // idempotent
  EXPECT_EQ(attr.num_categories(), 2u);
  EXPECT_EQ(attr.CategoryName(ftp), "ftp");
  EXPECT_EQ(attr.FindCategory("http"), http);
  EXPECT_EQ(attr.FindCategory("smtp"), kInvalidCategory);
}

TEST(SchemaTest, FindAttribute) {
  Schema schema = TwoColumnSchema();
  EXPECT_EQ(schema.num_attributes(), 2u);
  auto x = schema.FindAttribute("x");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, 0);
  EXPECT_FALSE(schema.FindAttribute("missing").ok());
  EXPECT_EQ(schema.num_classes(), 2u);
}

TEST(DatasetTest, AddRowDefaultsAndCellAccess) {
  Dataset dataset(TwoColumnSchema());
  EXPECT_EQ(dataset.num_rows(), 0u);
  const RowId r0 = dataset.AddRow();
  const RowId r1 = dataset.AddRow();
  EXPECT_EQ(dataset.num_rows(), 2u);
  EXPECT_EQ(r0, 0u);
  EXPECT_EQ(r1, 1u);
  EXPECT_DOUBLE_EQ(dataset.numeric(r0, 0), 0.0);
  EXPECT_EQ(dataset.categorical(r0, 1), 0);  // dictionary non-empty
  EXPECT_DOUBLE_EQ(dataset.weight(r0), 1.0);

  dataset.set_numeric(r0, 0, 3.5);
  dataset.set_categorical(r0, 1, 1);
  dataset.set_label(r0, 1);
  dataset.set_weight(r0, 2.0);
  EXPECT_DOUBLE_EQ(dataset.numeric(r0, 0), 3.5);
  EXPECT_EQ(dataset.categorical(r0, 1), 1);
  EXPECT_EQ(dataset.label(r0), 1);
  EXPECT_DOUBLE_EQ(dataset.weight(r0), 2.0);
}

TEST(DatasetTest, ColumnAccess) {
  Dataset dataset(TwoColumnSchema());
  for (int i = 0; i < 5; ++i) {
    const RowId r = dataset.AddRow();
    dataset.set_numeric(r, 0, static_cast<double>(i));
  }
  const auto& column = dataset.numeric_column(0);
  ASSERT_EQ(column.size(), 5u);
  EXPECT_DOUBLE_EQ(column[3], 3.0);
  EXPECT_EQ(dataset.categorical_column(1).size(), 5u);
}

TEST(DatasetTest, WeightsBulkOperations) {
  Dataset dataset(TwoColumnSchema());
  dataset.AddRow();
  dataset.AddRow();
  dataset.SetAllWeights({2.0, 3.0});
  EXPECT_DOUBLE_EQ(dataset.weight(0), 2.0);
  EXPECT_DOUBLE_EQ(dataset.weight(1), 3.0);
  dataset.ResetWeights();
  EXPECT_DOUBLE_EQ(dataset.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(dataset.weight(1), 1.0);
}

TEST(DatasetTest, Aggregates) {
  Dataset dataset(TwoColumnSchema());
  for (int i = 0; i < 6; ++i) {
    const RowId r = dataset.AddRow();
    dataset.set_label(r, i % 3 == 0 ? 1 : 0);  // rows 0, 3 positive
  }
  dataset.set_weight(0, 4.0);
  const RowSubset all = dataset.AllRows();
  EXPECT_EQ(all.size(), 6u);
  EXPECT_DOUBLE_EQ(dataset.ClassWeight(all, 1), 5.0);  // 4 + 1
  EXPECT_DOUBLE_EQ(dataset.TotalWeight(all), 9.0);
  EXPECT_EQ(dataset.CountClass(1), 2u);
  EXPECT_EQ(dataset.CountClass(0), 4u);

  const RowSubset positives = dataset.FilterByClass(all, 1, true);
  EXPECT_EQ(positives, (RowSubset{0, 3}));
  const RowSubset negatives = dataset.FilterByClass(all, 1, false);
  EXPECT_EQ(negatives.size(), 4u);
}

TEST(DatasetTest, ReserveDoesNotChangeSize) {
  Dataset dataset(TwoColumnSchema());
  dataset.Reserve(100);
  EXPECT_EQ(dataset.num_rows(), 0u);
  dataset.AddRow();
  EXPECT_EQ(dataset.num_rows(), 1u);
}

}  // namespace
}  // namespace pnr
