#include "pnrule/ensemble.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "synth/sweep.h"

namespace pnr {
namespace {

TEST(EnsembleConfigTest, Validation) {
  EXPECT_TRUE(PnruleEnsembleConfig().Validate().ok());
  PnruleEnsembleConfig config;
  config.num_members = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = PnruleEnsembleConfig();
  config.sample_fraction = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = PnruleEnsembleConfig();
  config.base.min_coverage_fraction = 2.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(EnsembleTest, TrainsAndAveragesScores) {
  const TrainTestPair data = MakeNumericPair(NsynParams(3), 15000, 6000, 61);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  PnruleEnsembleConfig config;
  config.num_members = 5;
  PnruleEnsembleLearner learner(config);
  auto ensemble = learner.Train(data.train, target);
  ASSERT_TRUE(ensemble.ok()) << ensemble.status().ToString();
  EXPECT_EQ(ensemble->num_members(), 5u);
  // The averaged score must equal the mean of member scores.
  for (RowId row = 0; row < 200; ++row) {
    double mean = 0.0;
    for (size_t m = 0; m < ensemble->num_members(); ++m) {
      mean += ensemble->member(m).Score(data.test, row);
    }
    mean /= static_cast<double>(ensemble->num_members());
    EXPECT_NEAR(ensemble->Score(data.test, row), mean, 1e-12);
  }
}

TEST(EnsembleTest, AveragingBeatsTheMeanMember) {
  // The variance-reduction claim: the committee's F should not be worse
  // than the average of its (bootstrap-weakened) members' F. Note that on
  // clean data a single model trained on the full set can still beat the
  // ensemble — bagging pays off on noisy/unstable problems, not pure ones.
  const TrainTestPair data = MakeNumericPair(NsynParams(3), 30000, 15000, 62);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");

  PnruleEnsembleConfig config;
  config.num_members = 7;
  PnruleEnsembleLearner learner(config);
  auto ensemble = learner.Train(data.train, target);
  ASSERT_TRUE(ensemble.ok());
  const double f_ensemble =
      EvaluateClassifier(*ensemble, data.test, target).f_measure();

  double mean_member_f = 0.0;
  for (size_t m = 0; m < ensemble->num_members(); ++m) {
    mean_member_f += EvaluateClassifier(ensemble->member(m), data.test,
                                        target)
                         .f_measure();
  }
  mean_member_f /= static_cast<double>(ensemble->num_members());
  EXPECT_GT(f_ensemble, mean_member_f - 0.05)
      << "mean member=" << mean_member_f << " ensemble=" << f_ensemble;
}

TEST(EnsembleTest, DeterministicGivenSeed) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 8000, 4000, 63);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  PnruleEnsembleConfig config;
  config.num_members = 3;
  config.seed = 17;
  auto a = PnruleEnsembleLearner(config).Train(data.train, target);
  auto b = PnruleEnsembleLearner(config).Train(data.train, target);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (RowId row = 0; row < 500; ++row) {
    EXPECT_DOUBLE_EQ(a->Score(data.test, row), b->Score(data.test, row));
  }
}

TEST(EnsembleTest, RejectsSingleClassData) {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  Dataset dataset(std::move(schema));
  for (int i = 0; i < 10; ++i) dataset.AddRow();  // all label 0
  PnruleEnsembleLearner learner;
  EXPECT_FALSE(learner.Train(dataset, 1).ok());
}

TEST(EnsembleTest, DescribeMentionsMembers) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 6000, 2000, 64);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  PnruleEnsembleConfig config;
  config.num_members = 2;
  auto ensemble = PnruleEnsembleLearner(config).Train(data.train, target);
  ASSERT_TRUE(ensemble.ok());
  const std::string text = ensemble->Describe(data.train.schema());
  EXPECT_NE(text.find("2 members"), std::string::npos);
  EXPECT_NE(text.find("member 1"), std::string::npos);
}

}  // namespace
}  // namespace pnr
