#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pnr {
namespace {

TEST(MathUtilTest, XLog2XZeroConvention) {
  EXPECT_DOUBLE_EQ(XLog2X(0.0), 0.0);
  EXPECT_DOUBLE_EQ(XLog2X(1.0), 0.0);
  EXPECT_NEAR(XLog2X(0.5), -0.5, 1e-12);
  EXPECT_NEAR(XLog2X(2.0), 2.0, 1e-12);
}

TEST(MathUtilTest, BinaryEntropyProperties) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.0), 0.0);
  EXPECT_NEAR(BinaryEntropy(0.5), 1.0, 1e-12);
  // Symmetry.
  for (double p : {0.1, 0.25, 0.4}) {
    EXPECT_NEAR(BinaryEntropy(p), BinaryEntropy(1.0 - p), 1e-12);
  }
  // Clamping outside [0, 1].
  EXPECT_DOUBLE_EQ(BinaryEntropy(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.5), 0.0);
}

TEST(MathUtilTest, LogGammaMatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(MathUtilTest, IncompleteBetaBoundaryAndSymmetry) {
  EXPECT_DOUBLE_EQ(IncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(IncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(IncompleteBeta(2.5, 4.0, x),
                1.0 - IncompleteBeta(4.0, 2.5, 1.0 - x), 1e-9);
  }
  // I_x(1, 1) is the identity.
  EXPECT_NEAR(IncompleteBeta(1.0, 1.0, 0.37), 0.37, 1e-9);
}

TEST(MathUtilTest, BinomialUpperLimitZeroErrorsClosedForm) {
  // With no observed errors, U solves (1 - U)^n = cf.
  for (double n : {1.0, 6.0, 20.0, 100.0}) {
    const double u = BinomialUpperLimit(n, 0.0, 0.25);
    EXPECT_NEAR(std::pow(1.0 - u, n), 0.25, 1e-9) << "n=" << n;
  }
}

TEST(MathUtilTest, BinomialUpperLimitExceedsObservedRate) {
  for (double n : {10.0, 50.0, 500.0}) {
    for (double e : {1.0, 3.0, 0.3 * n}) {
      const double u = BinomialUpperLimit(n, e, 0.25);
      EXPECT_GT(u, e / n) << "n=" << n << " e=" << e;
      EXPECT_LE(u, 1.0);
    }
  }
}

TEST(MathUtilTest, BinomialUpperLimitShrinksWithMoreEvidence) {
  // Same observed rate, more trials => tighter (smaller) upper limit.
  const double u_small = BinomialUpperLimit(10.0, 2.0, 0.25);
  const double u_large = BinomialUpperLimit(1000.0, 200.0, 0.25);
  EXPECT_GT(u_small, u_large);
  EXPECT_NEAR(u_large, 0.2, 0.02);  // converges to the empirical rate
}

TEST(MathUtilTest, BinomialUpperLimitMonotoneInErrors) {
  double prev = 0.0;
  for (double e = 0.0; e <= 10.0; e += 1.0) {
    const double u = BinomialUpperLimit(20.0, e, 0.25);
    EXPECT_GE(u, prev);
    prev = u;
  }
}

TEST(MathUtilTest, BinomialUpperLimitAllErrors) {
  EXPECT_DOUBLE_EQ(BinomialUpperLimit(5.0, 5.0, 0.25), 1.0);
}

TEST(MathUtilTest, Log2ChooseMatchesSmallCases) {
  EXPECT_DOUBLE_EQ(Log2Choose(5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Choose(5.0, 5.0), 0.0);
  EXPECT_NEAR(Log2Choose(5.0, 2.0), std::log2(10.0), 1e-9);
  EXPECT_NEAR(Log2Choose(10.0, 3.0), std::log2(120.0), 1e-9);
}

TEST(MathUtilTest, SubsetDescriptionBitsBasics) {
  // Perfectly predicted exceptions with matching prior.
  EXPECT_NEAR(SubsetDescriptionBits(8.0, 4.0, 0.5), 8.0, 1e-9);
  // k == 0 with p == 0 costs nothing.
  EXPECT_DOUBLE_EQ(SubsetDescriptionBits(10.0, 0.0, 0.0), 0.0);
  // Impossible encodings are effectively infinite.
  EXPECT_GT(SubsetDescriptionBits(10.0, 1.0, 0.0), 1e20);
}

TEST(MathUtilTest, IntegerCodingBitsGrowsSlowly) {
  const double b1 = IntegerCodingBits(1.0);
  const double b10 = IntegerCodingBits(10.0);
  const double b100 = IntegerCodingBits(100.0);
  EXPECT_LT(b1, b10);
  EXPECT_LT(b10, b100);
  // log* growth: going 10 -> 100 adds roughly log2(10) bits.
  EXPECT_LT(b100 - b10, 6.0);
}

TEST(MathUtilTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1e9, 1e9 + 1.0, 1e-8));
  EXPECT_TRUE(ApproxEqual(0.0, 0.0));
}

}  // namespace
}  // namespace pnr
