#include "data/schema_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "synth/sweep.h"

namespace pnr {
namespace {

Schema MixedSchema() {
  // A schema with both attribute kinds, names containing spaces, and a
  // multi-label class — the shapes serving must reconstruct exactly.
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("annual income"));
  schema.AddAttribute(Attribute::Categorical(
      "home state", {"New York", "North Dakota", "TX"}));
  schema.AddAttribute(Attribute::Numeric("n0"));
  schema.GetOrAddClass("fraud");
  schema.GetOrAddClass("not fraud");
  return schema;
}

void ExpectSameSchema(const Schema& a, const Schema& b) {
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (size_t i = 0; i < a.num_attributes(); ++i) {
    const auto attr = static_cast<AttrIndex>(i);
    EXPECT_EQ(a.attribute(attr).name(), b.attribute(attr).name());
    EXPECT_EQ(a.attribute(attr).type(), b.attribute(attr).type());
    ASSERT_EQ(a.attribute(attr).num_categories(),
              b.attribute(attr).num_categories());
    for (size_t c = 0; c < a.attribute(attr).num_categories(); ++c) {
      const auto id = static_cast<CategoryId>(c);
      EXPECT_EQ(a.attribute(attr).CategoryName(id),
                b.attribute(attr).CategoryName(id));
    }
  }
  ASSERT_EQ(a.num_classes(), b.num_classes());
  for (size_t c = 0; c < a.num_classes(); ++c) {
    const auto id = static_cast<CategoryId>(c);
    EXPECT_EQ(a.class_attr().CategoryName(id),
              b.class_attr().CategoryName(id));
  }
}

TEST(SchemaIoTest, RoundTripPreservesMixedSchema) {
  const Schema schema = MixedSchema();
  auto parsed = ParseSchema(SerializeSchema(schema));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameSchema(schema, *parsed);
  // Ids must be assigned in file order: the dictionary encoding matches.
  EXPECT_EQ(parsed->attribute(1).FindCategory("North Dakota"),
            schema.attribute(1).FindCategory("North Dakota"));
  EXPECT_EQ(parsed->class_attr().FindCategory("not fraud"),
            schema.class_attr().FindCategory("not fraud"));
}

TEST(SchemaIoTest, RoundTripPreservesSyngenSchema) {
  const TrainTestPair pair = MakeGeneralPair(GeneralModelParams{}, 2000,
                                             100, 7);
  auto parsed = ParseSchema(SerializeSchema(pair.train.schema()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameSchema(pair.train.schema(), *parsed);
}

TEST(SchemaIoTest, ToleratesCrlfAndTrailingWhitespace) {
  const Schema schema = MixedSchema();
  std::string text = SerializeSchema(schema);
  std::string windows;
  for (const char c : text) {
    if (c == '\n') {
      windows += "\r\n";
    } else {
      windows += c;
    }
  }
  auto parsed = ParseSchema(windows);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameSchema(schema, *parsed);
}

TEST(SchemaIoTest, RejectsUnknownFormatVersionByName) {
  std::string text = SerializeSchema(MixedSchema());
  const size_t pos = text.find("v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "v9");
  auto parsed = ParseSchema(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("'v9'"), std::string::npos)
      << parsed.status().message();
}

TEST(SchemaIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSchema("").ok());
  EXPECT_FALSE(ParseSchema("bogus\n").ok());
  std::string text = SerializeSchema(MixedSchema());
  text.resize(text.size() / 2);  // truncated: missing class/end
  EXPECT_FALSE(ParseSchema(text).ok());
}

TEST(SchemaIoTest, SaveAndLoadFile) {
  const Schema schema = MixedSchema();
  const std::string path = ::testing::TempDir() + "/pnr_schema_test.txt";
  ASSERT_TRUE(SaveSchema(schema, path).ok());
  auto loaded = LoadSchema(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameSchema(schema, *loaded);
  std::remove(path.c_str());
}

TEST(SchemaIoTest, LoadMissingFileFails) {
  auto loaded = LoadSchema("/nonexistent/schema.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace pnr
