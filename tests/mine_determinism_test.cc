// Mined-model determinism: the associative miner inherits the repo-wide
// byte-identity contract, so a mined model's serialization must be the
// same bytes at any thread count AND whether the training data is in RAM
// or demand-paged out of a shard store (mirrors train_sharded_test.cc).

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "assoc/cba.h"
#include "assoc/model_io.h"
#include "data/shard_store.h"
#include "synth/kdd_sim.h"

namespace pnr {
namespace {

const Dataset& SharedTrain() {
  static const Dataset train = [] {
    KddSimParams params;
    params.train_records = 4000;
    params.test_records = 1000;
    params.seed = 913;
    auto generated = GenerateKddSim(params);
    EXPECT_TRUE(generated.ok()) << generated.status().ToString();
    return std::move(generated).value().train;
  }();
  return train;
}

CategoryId Target(const Dataset& data) {
  const CategoryId target = data.schema().class_attr().FindCategory("probe");
  EXPECT_NE(target, kInvalidCategory);
  return target;
}

AssocMineOptions MineOptions(size_t threads) {
  AssocMineOptions options;
  options.min_support = 0.05;
  options.per_class_min_support = 0.3;
  options.min_confidence = 0.6;
  options.max_len = 3;
  options.num_threads = threads;
  return options;
}

std::string MinedModel(const Dataset& data, size_t threads) {
  RowSubset rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  auto mined = MineCba(data, rows, Target(data), MineOptions(threads));
  EXPECT_TRUE(mined.ok()) << mined.status().ToString();
  return SerializeAssocModel(mined->model, data.schema());
}

TEST(MineDeterminismTest, ThreadCountNeverChangesTheBytes) {
  const std::string reference = MinedModel(SharedTrain(), 1);
  ASSERT_FALSE(reference.empty());
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(MinedModel(SharedTrain(), threads), reference)
        << "threads=" << threads;
  }
}

// The same data round-tripped through a 4-shard store and demand-paged
// with the working set capped far below the full columns: same bytes,
// and the cap actually forced spills.
TEST(MineDeterminismTest, PagedDataYieldsTheSameBytes) {
  const std::string reference = MinedModel(SharedTrain(), 1);

  ShardStoreWriteOptions options;
  options.num_shards = 4;
  auto bytes = SerializeShardStore(SharedTrain(), options);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto reader =
      ShardStoreReader::OpenBuffer(std::move(bytes).value(), "train.pns");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const size_t budget = (*reader)->column_bytes() / 8;
  auto paged = MakePagedDataset(*reader, budget);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  for (size_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(MinedModel(*paged, threads), reference)
        << "paged, threads=" << threads;
  }
  EXPECT_GT(paged->column_evict_count(), 0u) << "budget never forced a spill";
}

// Mining twice over the same rows is a pure function: identical stats,
// not just identical models.
TEST(MineDeterminismTest, StatsAreReproducible) {
  const Dataset& data = SharedTrain();
  RowSubset rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  auto a = MineCba(data, rows, Target(data), MineOptions(4));
  auto b = MineCba(data, rows, Target(data), MineOptions(4));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.frequent_itemsets, b->stats.frequent_itemsets);
  EXPECT_EQ(a->stats.itemsets_rescued, b->stats.itemsets_rescued);
  EXPECT_EQ(a->stats.rules_generated, b->stats.rules_generated);
  EXPECT_EQ(a->stats.rules_selected, b->stats.rules_selected);
}

}  // namespace
}  // namespace pnr
