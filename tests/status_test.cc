#include "common/status.h"

#include <gtest/gtest.h>

namespace pnr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("missing").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("io").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("range").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("pre").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("oops").code(), StatusCode::kInternal);
  const Status status = Status::InvalidArgument("bad argument");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "bad argument");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad argument");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, ServingCodesCarryMessages) {
  const Status unavailable = Status::Unavailable("queue full");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "Unavailable: queue full");
  const Status late = Status::DeadlineExceeded("request deadline");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: request deadline");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "nope");
}

TEST(StatusOrTest, MoveExtractsValue) {
  StatusOr<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrTest, ArrowOperatorAccessesMembers) {
  StatusOr<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace pnr
