#include "induction/metric.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pnr {
namespace {

RuleStats Stats(double covered, double positive) {
  RuleStats stats;
  stats.covered = covered;
  stats.positive = positive;
  return stats;
}

ClassDistribution Dist(double positives, double negatives) {
  ClassDistribution dist;
  dist.positives = positives;
  dist.negatives = negatives;
  return dist;
}

TEST(ZNumberTest, MatchesClosedForm) {
  // prior p0 = 100 / 10000 = 0.01, sigma0 = sqrt(0.01 * 0.99).
  const ClassDistribution dist = Dist(100, 9900);
  const RuleStats stats = Stats(50, 40);  // accuracy 0.8
  const double expected =
      std::sqrt(50.0) * (0.8 - 0.01) / std::sqrt(0.01 * 0.99);
  EXPECT_NEAR(ZNumber(stats, dist), expected, 1e-9);
}

TEST(ZNumberTest, ZeroWhenAccuracyEqualsPrior) {
  const ClassDistribution dist = Dist(500, 500);
  EXPECT_NEAR(ZNumber(Stats(100, 50), dist), 0.0, 1e-9);
}

TEST(ZNumberTest, NegativeForAntiCorrelatedRule) {
  const ClassDistribution dist = Dist(500, 500);
  EXPECT_LT(ZNumber(Stats(100, 10), dist), 0.0);
}

TEST(ZNumberTest, GrowsWithSupportAtFixedAccuracy) {
  const ClassDistribution dist = Dist(100, 9900);
  const double z_small = ZNumber(Stats(10, 8), dist);
  const double z_large = ZNumber(Stats(1000, 800), dist);
  EXPECT_GT(z_large, z_small);
  EXPECT_NEAR(z_large / z_small, std::sqrt(100.0), 1e-9);
}

TEST(ZNumberTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(ZNumber(Stats(0, 0), Dist(10, 90)), 0.0);
  EXPECT_DOUBLE_EQ(ZNumber(Stats(10, 5), Dist(0, 90)), 0.0);   // p0 == 0
  EXPECT_DOUBLE_EQ(ZNumber(Stats(10, 5), Dist(10, 0)), 0.0);   // p0 == 1
}

TEST(FoilGainTest, PositiveWhenAccuracyImproves) {
  const RuleStats parent = Stats(100, 50);
  const RuleStats refined = Stats(40, 35);
  EXPECT_GT(FoilGain(parent, refined), 0.0);
}

TEST(FoilGainTest, NonPositiveWhenAccuracyDrops) {
  const RuleStats parent = Stats(100, 80);
  const RuleStats refined = Stats(50, 30);
  EXPECT_LE(FoilGain(parent, refined), 0.0);
}

TEST(FoilGainTest, ZeroWithoutPositives) {
  EXPECT_DOUBLE_EQ(FoilGain(Stats(100, 50), Stats(10, 0)), 0.0);
}

TEST(FoilGainTest, ScalesWithPositiveCoverage) {
  const RuleStats parent = Stats(1000, 100);
  const double g1 = FoilGain(parent, Stats(100, 90));
  const double g2 = FoilGain(parent, Stats(200, 180));
  EXPECT_GT(g2, g1);
}

TEST(MetricFactoryTest, AllKindsConstructible) {
  for (RuleMetricKind kind :
       {RuleMetricKind::kZNumber, RuleMetricKind::kInfoGain,
        RuleMetricKind::kGainRatio, RuleMetricKind::kGini,
        RuleMetricKind::kChiSquared}) {
    auto metric = MakeRuleMetric(kind);
    ASSERT_NE(metric, nullptr);
    EXPECT_EQ(metric->kind(), kind);
    EXPECT_STRNE(RuleMetricKindName(kind), "unknown");
  }
}

// Property sweep: every metric must (a) score a discriminative rule above a
// random one, and (b) give ~0 to a rule whose accuracy matches the prior.
class MetricProperty : public ::testing::TestWithParam<RuleMetricKind> {};

TEST_P(MetricProperty, PrefersDiscriminativeRules) {
  const auto metric = MakeRuleMetric(GetParam());
  const ClassDistribution dist = Dist(100, 9900);
  const double good = metric->Evaluate(Stats(80, 70), dist);
  const double random = metric->Evaluate(Stats(80, 1), dist);  // ~prior
  EXPECT_GT(good, random);
}

TEST_P(MetricProperty, NearZeroForNonDiscriminativeSplit) {
  const auto metric = MakeRuleMetric(GetParam());
  const ClassDistribution dist = Dist(1000, 9000);
  // Covered subset mirrors the prior exactly.
  const double value = metric->Evaluate(Stats(500, 50), dist);
  EXPECT_NEAR(value, 0.0, 1e-6);
}

TEST_P(MetricProperty, ZeroForEmptyCoverage) {
  const auto metric = MakeRuleMetric(GetParam());
  EXPECT_DOUBLE_EQ(metric->Evaluate(Stats(0, 0), Dist(100, 900)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, MetricProperty,
    ::testing::Values(RuleMetricKind::kZNumber, RuleMetricKind::kInfoGain,
                      RuleMetricKind::kGainRatio, RuleMetricKind::kGini,
                      RuleMetricKind::kChiSquared),
    [](const ::testing::TestParamInfo<RuleMetricKind>& info) {
      std::string name = RuleMetricKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pnr
