#include "synth/numeric_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pnr {
namespace {

TEST(NumericModelTest, ParamsValidation) {
  EXPECT_TRUE(NumericModelParams().Validate().ok());
  NumericModelParams params;
  params.tc = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = NumericModelParams();
  params.tr = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params = NumericModelParams();
  params.target_fraction = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params = NumericModelParams();
  params.tr = 1000.0;  // peaks would overlap
  EXPECT_FALSE(params.Validate().ok());
}

TEST(NumericModelTest, NsynConfigurationsMatchTable1) {
  // Table 1's dataset descriptions.
  const NumericModelParams n1 = NsynParams(1);
  EXPECT_EQ(n1.tc, 1);
  EXPECT_EQ(n1.nsptc, 1);
  EXPECT_EQ(n1.ntc, 2);
  EXPECT_EQ(n1.nspntc, 3);
  const NumericModelParams n3 = NsynParams(3);
  EXPECT_EQ(n3.nsptc, 4);
  EXPECT_EQ(n3.nspntc, 4);
  const NumericModelParams n6 = NsynParams(6);
  EXPECT_EQ(n6.ntc, 3);
  EXPECT_EQ(n6.nspntc, 5);
  for (int i = 1; i <= 6; ++i) {
    EXPECT_TRUE(NsynParams(i).Validate().ok()) << "nsyn" << i;
    EXPECT_DOUBLE_EQ(NsynParams(i).tr, 0.2);
    EXPECT_DOUBLE_EQ(NsynParams(i).target_fraction, 0.003);
  }
}

TEST(NumericModelTest, PeakCentersAreUniformlySpaced) {
  EXPECT_DOUBLE_EQ(PeakCenter(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(PeakCenter(0, 4), 20.0);
  EXPECT_DOUBLE_EQ(PeakCenter(3, 4), 80.0);
}

TEST(NumericModelTest, SamplePeakValueStaysInsidePeak) {
  Rng rng(5);
  for (PeakShape shape :
       {PeakShape::kRectangular, PeakShape::kTriangular,
        PeakShape::kGaussian}) {
    for (int i = 0; i < 500; ++i) {
      const double v = SamplePeakValue(1, 4, 2.0, shape, &rng);
      // Peak 1 of 4: center 40, width 0.5.
      EXPECT_GE(v, 40.0 - 0.25);
      EXPECT_LE(v, 40.0 + 0.25);
    }
  }
}

TEST(NumericModelTest, GeneratedDatasetShape) {
  NumericModelParams params = NsynParams(3);
  Rng rng(6);
  const Dataset dataset = GenerateNumericDataset(params, 50000, &rng);
  EXPECT_EQ(dataset.num_rows(), 50000u);
  EXPECT_EQ(dataset.schema().num_attributes(), 3u);  // tc + ntc
  const CategoryId target =
      dataset.schema().class_attr().FindCategory("C");
  ASSERT_NE(target, kInvalidCategory);
  const double fraction =
      static_cast<double>(dataset.CountClass(target)) / 50000.0;
  EXPECT_NEAR(fraction, 0.003, 0.001);
  // All attribute values inside the domain.
  for (RowId r = 0; r < 1000; ++r) {
    for (AttrIndex a = 0; a < 3; ++a) {
      const double v = dataset.numeric(r, a);
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, kNumericDomain);
    }
  }
}

TEST(NumericModelTest, TargetRecordsConcentrateInPeaks) {
  NumericModelParams params = NsynParams(3);
  Rng rng(7);
  const Dataset dataset = GenerateNumericDataset(params, 100000, &rng);
  const CategoryId target =
      dataset.schema().class_attr().FindCategory("C");
  // Every target record's a0 value lies inside one of the 4 peaks
  // (centers 20/40/60/80, half-width 0.025 for tr=0.2).
  const double half_width = 0.5 * params.tr / params.nsptc;
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    if (dataset.label(r) != target) continue;
    const double v = dataset.numeric(r, 0);
    bool in_peak = false;
    for (int p = 0; p < 4; ++p) {
      if (std::fabs(v - PeakCenter(p, 4)) <= half_width + 1e-9) {
        in_peak = true;
        break;
      }
    }
    EXPECT_TRUE(in_peak) << "a0=" << v;
  }
}

TEST(NumericModelTest, DeterministicGivenSeed) {
  NumericModelParams params = NsynParams(2);
  Rng rng_a(9);
  Rng rng_b(9);
  const Dataset a = GenerateNumericDataset(params, 2000, &rng_a);
  const Dataset b = GenerateNumericDataset(params, 2000, &rng_b);
  for (RowId r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.label(r), b.label(r));
    for (AttrIndex attr = 0; attr < 3; ++attr) {
      EXPECT_DOUBLE_EQ(a.numeric(r, attr), b.numeric(r, attr));
    }
  }
}

class ShapeSweep : public ::testing::TestWithParam<PeakShape> {};

TEST_P(ShapeSweep, AllShapesGenerateValidData) {
  NumericModelParams params = NsynParams(1);
  params.shape = GetParam();
  Rng rng(10);
  const Dataset dataset = GenerateNumericDataset(params, 5000, &rng);
  EXPECT_EQ(dataset.num_rows(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Values(PeakShape::kRectangular,
                                           PeakShape::kTriangular,
                                           PeakShape::kGaussian));

}  // namespace
}  // namespace pnr
