// Regression suite for HttpRequestParser findings from the fuzz/hardening
// pass — every case here is also a checked-in corpus file under
// tests/http_fuzz_regressions/ that the fuzz replay target re-runs, so a
// fixed parser bug cannot quietly regress in either harness.
//
// Corpus file names encode the expectation: `400-<slug>.http` must be
// rejected with that status, `ok-<slug>.http` must complete a request.

#include "serve/http.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/file_io.h"

namespace pnr {
namespace {

// Feeds `raw` to a fresh parser all at once and byte-at-a-time; asserts the
// two agree, then returns the batch parser's final state.
struct ParseOutcome {
  HttpRequestParser::State state;
  int error_status = 0;
  std::string error_message;
  HttpRequest request;
};

ParseOutcome ParseBothWays(const std::string& raw) {
  HttpRequestParser batch;
  batch.Consume(raw);
  HttpRequestParser incremental;
  for (size_t i = 0;
       i < raw.size() &&
       incremental.state() == HttpRequestParser::State::kNeedMore;
       ++i) {
    incremental.Consume(std::string_view(raw).substr(i, 1));
  }
  EXPECT_EQ(batch.state(), incremental.state());
  ParseOutcome outcome;
  outcome.state = batch.state();
  if (batch.state() == HttpRequestParser::State::kError) {
    EXPECT_EQ(batch.error_status(), incremental.error_status());
    EXPECT_EQ(batch.error_message(), incremental.error_message());
    outcome.error_status = batch.error_status();
    outcome.error_message = batch.error_message();
  } else if (batch.state() == HttpRequestParser::State::kDone) {
    outcome.request = batch.Take();
  }
  return outcome;
}

// -- Named regressions: the Content-Length leniencies the fuzz pass found --

TEST(HttpFuzzRegressionTest, DuplicateContentLengthRejected) {
  // Before the fix, duplicate headers silently used the first value — the
  // classic request-smuggling vector. Identical values are rejected too:
  // agreement between duplicates is still two framings.
  const auto outcome = ParseBothWays(
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi");
  ASSERT_EQ(outcome.state, HttpRequestParser::State::kError);
  EXPECT_EQ(outcome.error_status, 400);
  EXPECT_NE(outcome.error_message.find("duplicate Content-Length"),
            std::string::npos);
}

TEST(HttpFuzzRegressionTest, ConflictingContentLengthRejected) {
  const auto outcome = ParseBothWays(
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi!");
  ASSERT_EQ(outcome.state, HttpRequestParser::State::kError);
  EXPECT_EQ(outcome.error_status, 400);
}

TEST(HttpFuzzRegressionTest, SignedContentLengthRejected) {
  // ParseInt64 accepts '-' and '+'; the strict grammar must not.
  for (const char* value : {"+5", "-5", "-0"}) {
    const auto outcome = ParseBothWays(std::string("POST / HTTP/1.1\r\n") +
                                       "Content-Length: " + value +
                                       "\r\n\r\nhello");
    ASSERT_EQ(outcome.state, HttpRequestParser::State::kError) << value;
    EXPECT_EQ(outcome.error_status, 400) << value;
    EXPECT_NE(outcome.error_message.find("bad Content-Length"),
              std::string::npos)
        << value;
  }
}

TEST(HttpFuzzRegressionTest, NonDigitContentLengthRejected) {
  // Inner whitespace, trailing junk, hex, empty: all violate 1*DIGIT.
  for (const char* value : {"1 2", "12abc", "0x10", "", "2,2", "5."}) {
    const auto outcome = ParseBothWays(std::string("POST / HTTP/1.1\r\n") +
                                       "Content-Length: " + value +
                                       "\r\n\r\n");
    ASSERT_EQ(outcome.state, HttpRequestParser::State::kError)
        << "value '" << value << "'";
    EXPECT_EQ(outcome.error_status, 400) << "value '" << value << "'";
  }
}

TEST(HttpFuzzRegressionTest, OverflowingContentLengthRejected) {
  // 2^64 + 1: wrapped to 1 by a naive accumulator, which would make the
  // parser wait for a 1-byte body of a request claiming 18 exabytes.
  const auto outcome = ParseBothWays(
      "POST / HTTP/1.1\r\nContent-Length: 18446744073709551617\r\n\r\n");
  ASSERT_EQ(outcome.state, HttpRequestParser::State::kError);
  EXPECT_EQ(outcome.error_status, 400);
  EXPECT_NE(outcome.error_message.find("bad Content-Length"),
            std::string::npos);
}

TEST(HttpFuzzRegressionTest, ContentLengthWithTransferEncodingRejected) {
  const auto outcome = ParseBothWays(
      "POST / HTTP/1.1\r\nContent-Length: 4\r\n"
      "Transfer-Encoding: chunked\r\n\r\nabcd");
  ASSERT_EQ(outcome.state, HttpRequestParser::State::kError);
  EXPECT_EQ(outcome.error_status, 400);
  EXPECT_NE(outcome.error_message.find("Transfer-Encoding"),
            std::string::npos);
}

TEST(HttpFuzzRegressionTest, ValidContentLengthsStillAccepted) {
  // Leading zeros satisfy 1*DIGIT; surrounding OWS is stripped with every
  // other header value before the strict parse sees it.
  for (const char* value : {"5", "005", " 5 "}) {
    const auto outcome = ParseBothWays(std::string("POST / HTTP/1.1\r\n") +
                                       "Content-Length: " + value +
                                       "\r\n\r\nhello");
    ASSERT_EQ(outcome.state, HttpRequestParser::State::kDone)
        << "value '" << value << "'";
    EXPECT_EQ(outcome.request.body, "hello") << "value '" << value << "'";
  }
}

// -- Corpus replay: every checked-in .http file honors its filename ---------

TEST(HttpFuzzRegressionTest, CorpusFilesHonorTheirFilenames) {
  namespace fs = std::filesystem;
  const fs::path dir(PNR_HTTP_REGRESSION_DIR);
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  ASSERT_GE(files.size(), 10u) << "regression corpus missing from " << dir;
  for (const fs::path& file : files) {
    const std::string name = file.filename().string();
    auto raw = ReadFileToString(file.string());
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    const auto outcome = ParseBothWays(*raw);
    if (name.rfind("ok-", 0) == 0) {
      EXPECT_EQ(outcome.state, HttpRequestParser::State::kDone) << name;
    } else {
      const int expected = std::stoi(name.substr(0, name.find('-')));
      ASSERT_EQ(outcome.state, HttpRequestParser::State::kError) << name;
      EXPECT_EQ(outcome.error_status, expected) << name;
      EXPECT_FALSE(outcome.error_message.empty()) << name;
    }
  }
}

}  // namespace
}  // namespace pnr
