#include "c45/tree.h"

#include <gtest/gtest.h>

#include "c45/prune.h"
#include "c45/tree_classifier.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "synth/sweep.h"
#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeMixedDataset;
using testutil::MakeNumericDataset;

TEST(C45ConfigTest, Validation) {
  EXPECT_TRUE(C45Config().Validate().ok());
  C45Config config;
  config.min_objs = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = C45Config();
  config.cf = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = C45Config();
  config.max_depth = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(C45TreeTest, PureDataYieldsSingleLeaf) {
  const Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, true}, {{2.0}, true}, {{3.0}, true}});
  auto tree = BuildC45Tree(dataset, dataset.AllRows(), C45Config());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->CountLeaves(), 1u);
  EXPECT_EQ(tree->Classify(dataset, 0), kPos);
}

TEST(C45TreeTest, LearnsNumericThreshold) {
  Rng rng(44);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble(0, 10);
    rows.push_back({{x}, x > 6.0});
  }
  const Dataset dataset = MakeNumericDataset(1, rows);
  auto tree = BuildC45Tree(dataset, dataset.AllRows(), C45Config());
  ASSERT_TRUE(tree.ok());
  // Perfect separation on training data.
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    EXPECT_EQ(tree->Classify(dataset, r), dataset.label(r));
  }
  // Root split should be near the true threshold.
  const TreeNode& root = tree->nodes()[static_cast<size_t>(tree->root())];
  ASSERT_FALSE(root.is_leaf);
  EXPECT_NEAR(root.threshold, 6.0, 0.5);
}

TEST(C45TreeTest, LearnsCategoricalSplit) {
  std::vector<testutil::MixedRow> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({0.0, static_cast<CategoryId>(i % 3), i % 3 == 1});
  }
  const Dataset dataset = MakeMixedDataset(rows);
  auto tree = BuildC45Tree(dataset, dataset.AllRows(), C45Config());
  ASSERT_TRUE(tree.ok());
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    EXPECT_EQ(tree->Classify(dataset, r), dataset.label(r));
  }
}

TEST(C45TreeTest, RespectsMinObjs) {
  Rng rng(45);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({{rng.NextDouble(0, 10)}, rng.NextBool(0.5)});
  }
  const Dataset dataset = MakeNumericDataset(1, rows);
  C45Config config;
  config.min_objs = 30.0;
  config.prune = false;
  auto tree = BuildC45Tree(dataset, dataset.AllRows(), config);
  ASSERT_TRUE(tree.ok());
  // Every split must leave >= min_objs on both numeric sides: with 100
  // records that caps the depth severely.
  EXPECT_LE(tree->CountLeaves(), 4u);
}

TEST(C45TreeTest, PruningShrinksNoisyTree) {
  Rng rng(46);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 500; ++i) {
    // Clear signal (x0 > 5) plus 15% label noise: the unpruned tree chases
    // the noise, pruning should collapse (most of) those subtrees.
    const double x = rng.NextDouble(0, 10);
    const bool label = (x > 5.0) != rng.NextBool(0.15);
    rows.push_back({{x, rng.NextDouble(0, 10)}, label});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  // Make the builder eager (no Release-8 gain penalty, minimal leaf size)
  // so that overfitting actually happens, then isolate the pruner's effect.
  C45Config unpruned_config;
  unpruned_config.prune = false;
  unpruned_config.numeric_gain_penalty = false;
  unpruned_config.min_objs = 1.0;
  C45Config pruned_config = unpruned_config;
  pruned_config.prune = true;
  auto unpruned = BuildC45Tree(dataset, dataset.AllRows(), unpruned_config);
  auto pruned = BuildC45Tree(dataset, dataset.AllRows(), pruned_config);
  ASSERT_TRUE(unpruned.ok());
  ASSERT_TRUE(pruned.ok());
  EXPECT_GT(unpruned->CountLeaves(), 10u);
  EXPECT_LT(pruned->CountLeaves(), unpruned->CountLeaves());
}

TEST(C45TreeTest, PessimisticLeafErrorsExceedObserved) {
  TreeNode node;
  node.total_weight = 100.0;
  node.class_weights = {80.0, 20.0};
  node.predicted_class = 0;
  EXPECT_GT(PessimisticLeafErrors(node, 0.25), 20.0);
  EXPECT_LT(PessimisticLeafErrors(node, 0.25), 40.0);
}

TEST(C45TreeTest, ClassProbabilityIsLaplaceSmoothed) {
  const Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, true}, {{1.0}, true}, {{1.0}, false}});
  auto tree = BuildC45Tree(dataset, dataset.AllRows(), C45Config());
  ASSERT_TRUE(tree.ok());
  // Single leaf: P(pos) = (2+1)/(3+2).
  EXPECT_DOUBLE_EQ(tree->ClassProbability(dataset, 0, kPos), 0.6);
  EXPECT_DOUBLE_EQ(tree->ClassProbability(dataset, 0, 0), 0.4);
}

TEST(C45TreeTest, WeightedRecordsShiftMajority) {
  Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, true}, {{1.0}, false}, {{1.0}, false}});
  dataset.set_weight(0, 10.0);  // the single positive dominates
  auto tree = BuildC45Tree(dataset, dataset.AllRows(), C45Config());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Classify(dataset, 1), kPos);
}

TEST(C45TreeClassifierTest, EndToEndOnRareClass) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 20000, 8000, 31);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  C45TreeLearner learner;
  auto model = learner.Train(data.train, target);
  ASSERT_TRUE(model.ok());
  const Confusion test = EvaluateClassifier(*model, data.test, target);
  EXPECT_GT(test.f_measure(), 0.4) << test.ToString();
  const std::string text = model->Describe(data.train.schema());
  EXPECT_NE(text.find("C4.5 tree"), std::string::npos);
}

TEST(C45TreeTest, ToStringRendersSplits) {
  Rng rng(47);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextDouble(0, 10);
    rows.push_back({{x}, x > 5.0});
  }
  const Dataset dataset = MakeNumericDataset(1, rows);
  auto tree = BuildC45Tree(dataset, dataset.AllRows(), C45Config());
  ASSERT_TRUE(tree.ok());
  const std::string text = tree->ToString(dataset.schema());
  EXPECT_NE(text.find("split x0"), std::string::npos);
  EXPECT_NE(text.find("class"), std::string::npos);
}

}  // namespace
}  // namespace pnr
