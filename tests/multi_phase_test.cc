#include "pnrule/multi_phase.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "synth/sweep.h"
#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeNumericDataset;

TEST(MultiPhaseConfigTest, Validation) {
  EXPECT_TRUE(MultiPhaseConfig().Validate().ok());
  MultiPhaseConfig config;
  config.r_min_support_fraction = 2.0;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiPhaseConfig();
  config.r_min_precision = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config = MultiPhaseConfig();
  config.base.min_coverage_fraction = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

// A dataset engineered so that the N-phase must over-veto: the target peak
// (x0 ~ 5) contains negatives in an x1 band around 2, but a *sub-band*
// (x2 > 8) of that veto region is actually positive — recoverable only by
// a third phase.
Dataset RecoverableVetoDataset(uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  auto peak = [&]() { return 5.0 + rng.NextDouble(-0.05, 0.05); };
  // Plain positives: uniform x1 outside the veto band.
  for (int i = 0; i < 60; ++i) {
    rows.push_back({{peak(), rng.NextDouble(3, 10), rng.NextDouble(0, 10)},
                    true});
  }
  // Negatives inside the peak: x1 ~ 2 band, x2 low.
  for (int i = 0; i < 50; ++i) {
    rows.push_back({{peak(), 2.0 + rng.NextDouble(-0.1, 0.1),
                     rng.NextDouble(0, 8)},
                    false});
  }
  // Recoverable positives: same x1 ~ 2 band, but x2 high.
  for (int i = 0; i < 25; ++i) {
    rows.push_back({{peak(), 2.0 + rng.NextDouble(-0.1, 0.1),
                     rng.NextDouble(8.5, 10)},
                    true});
  }
  // Background negatives.
  for (int i = 0; i < 800; ++i) {
    rows.push_back({{rng.NextDouble(0, 10), rng.NextDouble(0, 10),
                     rng.NextDouble(0, 10)},
                    false});
  }
  return MakeNumericDataset(3, rows);
}

TEST(MultiPhaseTest, RecoversVetoedPositives) {
  const Dataset train = RecoverableVetoDataset(7);
  const Dataset test = RecoverableVetoDataset(8);

  MultiPhaseConfig config;
  config.base.min_coverage_fraction = 0.95;
  config.base.min_support_fraction = 0.05;
  config.base.n_recall_lower_limit = 0.6;  // allow the N-phase to over-veto
  config.base.score_min_cell_weight = 40.0;  // force default veto semantics
  // With free-form N-rules the second phase refines *around* the
  // recoverable sub-band itself (the ScoreMatrix + refinement already act
  // as a degenerate recovery mechanism); constraining N-rules to one
  // condition makes the veto necessarily coarse, which is the regime the
  // third phase exists for.
  config.base.max_n_rule_length = 1;

  auto two_phase = PnruleLearner(config.base).Train(train, kPos);
  ASSERT_TRUE(two_phase.ok());
  auto three_phase = MultiPhasePnruleLearner(config).Train(train, kPos);
  ASSERT_TRUE(three_phase.ok()) << three_phase.status().ToString();

  const Confusion two = EvaluateClassifier(*two_phase, test, kPos);
  const Confusion three = EvaluateClassifier(*three_phase, test, kPos);
  EXPECT_FALSE(three_phase->r_rules().empty());
  EXPECT_GT(three.recall(), two.recall());
  EXPECT_GT(three.f_measure(), two.f_measure());
}

TEST(MultiPhaseTest, NoVetoesMeansNoRRules) {
  // Cleanly separable data: the N-phase never vetoes anything, so there is
  // nothing to recover.
  Rng rng(9);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({{5.0 + rng.NextDouble(-0.01, 0.01),
                     rng.NextDouble(0, 10), 0.0},
                    true});
  }
  for (int i = 0; i < 400; ++i) {
    const double x = rng.NextDouble(0, 10);
    if (x > 4.9 && x < 5.1) continue;
    rows.push_back({{x, rng.NextDouble(0, 10), 0.0}, false});
  }
  const Dataset dataset = MakeNumericDataset(3, rows);
  MultiPhaseConfig config;
  config.base.min_support_fraction = 0.05;
  auto model = MultiPhasePnruleLearner(config).Train(dataset, kPos);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->r_rules().empty());
}

TEST(MultiPhaseTest, ScoresAreProbabilities) {
  const Dataset train = RecoverableVetoDataset(10);
  MultiPhaseConfig config;
  config.base.min_support_fraction = 0.05;
  auto model = MultiPhasePnruleLearner(config).Train(train, kPos);
  ASSERT_TRUE(model.ok());
  for (RowId row = 0; row < train.num_rows(); ++row) {
    const double score = model->Score(train, row);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(MultiPhaseTest, DescribeMentionsRecoveryPhase) {
  const Dataset train = RecoverableVetoDataset(11);
  MultiPhaseConfig config;
  config.base.min_support_fraction = 0.05;
  auto model = MultiPhasePnruleLearner(config).Train(train, kPos);
  ASSERT_TRUE(model.ok());
  EXPECT_NE(model->Describe(train.schema()).find("R-rules"),
            std::string::npos);
}

TEST(MultiPhaseTest, RecoveryRulesClearPrecisionBar) {
  const Dataset train = RecoverableVetoDataset(12);
  MultiPhaseConfig config;
  config.base.min_support_fraction = 0.05;
  config.base.n_recall_lower_limit = 0.6;
  config.r_min_precision = 0.7;
  auto model = MultiPhasePnruleLearner(config).Train(train, kPos);
  ASSERT_TRUE(model.ok());
  for (const Rule& rule : model->r_rules().rules()) {
    const double laplace = (rule.train_stats.positive + 1.0) /
                           (rule.train_stats.covered + 2.0);
    EXPECT_GE(laplace, 0.7);
  }
}

}  // namespace
}  // namespace pnr
