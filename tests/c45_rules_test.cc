#include "c45/rules.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "synth/sweep.h"
#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeNumericDataset;

TEST(C45RulesConfigTest, Validation) {
  EXPECT_TRUE(C45RulesConfig().Validate().ok());
  C45RulesConfig config;
  config.cf = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = C45RulesConfig();
  config.max_initial_rules = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = C45RulesConfig();
  config.tree.min_objs = -1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ExtractTreeRulesTest, OneRulePerLeafWithPathConditions) {
  // Hand-build a small tree: root splits x0 at 5; right child splits x0 at
  // 7 (tests same-attribute bound merging).
  DecisionTree tree;
  tree.set_num_classes(2);
  TreeNode leaf_low;
  leaf_low.is_leaf = true;
  leaf_low.predicted_class = 0;
  leaf_low.total_weight = 10.0;
  leaf_low.class_weights = {10.0, 0.0};
  TreeNode leaf_mid = leaf_low;
  leaf_mid.predicted_class = 1;
  leaf_mid.class_weights = {0.0, 10.0};
  TreeNode leaf_high = leaf_low;
  const int32_t low = tree.AddNode(leaf_low);
  const int32_t mid = tree.AddNode(leaf_mid);
  const int32_t high = tree.AddNode(leaf_high);
  TreeNode right;
  right.is_leaf = false;
  right.attr = 0;
  right.threshold = 7.0;
  right.children = {mid, high};
  right.total_weight = 20.0;
  right.class_weights = {10.0, 10.0};
  const int32_t right_id = tree.AddNode(right);
  TreeNode root = right;
  root.threshold = 5.0;
  root.children = {low, right_id};
  const int32_t root_id = tree.AddNode(root);
  tree.set_root(root_id);

  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x0"));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  const auto rules = ExtractTreeRules(tree, schema, 100);
  ASSERT_EQ(rules.size(), 3u);
  // The (5, 7] path must merge into Greater(5) AND LessEqual(7).
  bool found_mid = false;
  for (const auto& entry : rules) {
    if (entry.cls != 1) continue;
    found_mid = true;
    ASSERT_EQ(entry.rule.size(), 2u);
    EXPECT_EQ(entry.rule.conditions()[0], Condition::Greater(0, 5.0));
    EXPECT_EQ(entry.rule.conditions()[1], Condition::LessEqual(0, 7.0));
  }
  EXPECT_TRUE(found_mid);
}

TEST(ExtractTreeRulesTest, MergesToTightestBound) {
  // Root: x0 <= 8; child: x0 <= 3 -> the leftmost path keeps only <= 3.
  DecisionTree tree;
  tree.set_num_classes(2);
  TreeNode leaf;
  leaf.is_leaf = true;
  leaf.total_weight = 5.0;
  leaf.class_weights = {5.0, 0.0};
  const int32_t l0 = tree.AddNode(leaf);
  const int32_t l1 = tree.AddNode(leaf);
  const int32_t l2 = tree.AddNode(leaf);
  TreeNode inner;
  inner.is_leaf = false;
  inner.attr = 0;
  inner.threshold = 3.0;
  inner.children = {l0, l1};
  inner.total_weight = 10.0;
  inner.class_weights = {10.0, 0.0};
  const int32_t inner_id = tree.AddNode(inner);
  TreeNode root = inner;
  root.threshold = 8.0;
  root.children = {inner_id, l2};
  tree.set_root(tree.AddNode(root));

  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x0"));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  const auto rules = ExtractTreeRules(tree, schema, 100);
  ASSERT_EQ(rules.size(), 3u);
  bool found = false;
  for (const auto& entry : rules) {
    if (entry.rule.size() == 1 &&
        entry.rule.conditions()[0] == Condition::LessEqual(0, 3.0)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(C45RulesLearnerTest, LearnsSeparableConcept) {
  Rng rng(66);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.NextDouble(0, 10);
    const double b = rng.NextDouble(0, 10);
    rows.push_back({{a, b}, a > 7.0 && b < 3.0});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  C45RulesLearner learner;
  auto model = learner.Train(dataset, kPos);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const Confusion eval = EvaluateClassifier(*model, dataset, kPos);
  EXPECT_GT(eval.f_measure(), 0.9) << eval.ToString();
}

TEST(C45RulesLearnerTest, GeneralizationSimplifiesRules) {
  // Noisy irrelevant attribute x1: paths will condition on it, but
  // generalization should strip most of those conditions.
  Rng rng(67);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 1500; ++i) {
    const double a = rng.NextDouble(0, 10);
    rows.push_back({{a, rng.NextDouble(0, 10)}, a > 8.0});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  C45RulesLearner learner;
  auto model = learner.Train(dataset, kPos);
  ASSERT_TRUE(model.ok());
  // Rules for the positive class should be single-condition (x0 > ~8).
  for (const auto& entry : model->rules()) {
    if (entry.cls == kPos) {
      EXPECT_LE(entry.rule.size(), 2u)
          << entry.rule.ToString(dataset.schema());
    }
  }
}

TEST(C45RulesLearnerTest, DefaultClassCoversUncovered) {
  const Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, false}, {{2.0}, false}, {{3.0}, false}, {{4.0}, false}});
  C45RulesLearner learner;
  auto model = learner.Train(dataset, kPos);
  ASSERT_TRUE(model.ok());
  // All-negative data: the default must be the negative class.
  EXPECT_EQ(model->default_class(), 0);
  EXPECT_FALSE(model->Predict(dataset, 0));
}

TEST(C45RulesLearnerTest, RareClassEndToEnd) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 20000, 8000, 41);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  C45RulesLearner learner;
  auto model = learner.Train(data.train, target);
  ASSERT_TRUE(model.ok());
  const Confusion test = EvaluateClassifier(*model, data.test, target);
  EXPECT_GT(test.f_measure(), 0.4) << test.ToString();
  const std::string text = model->Describe(data.train.schema());
  EXPECT_NE(text.find("default:"), std::string::npos);
}

TEST(C45RulesLearnerTest, ScoresAreProbabilities) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 5000, 2000, 42);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  C45RulesLearner learner;
  auto model = learner.Train(data.train, target);
  ASSERT_TRUE(model.ok());
  for (RowId row = 0; row < 500; ++row) {
    const double score = model->Score(data.test, row);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}


TEST(ExtractTreeRulesTest, CategoricalBranchesBecomeEqualityConditions) {
  // Root splits on a 3-valued categorical attribute; every branch becomes
  // one rule with a CatEqual condition for its value.
  DecisionTree tree;
  tree.set_num_classes(2);
  TreeNode leaf;
  leaf.is_leaf = true;
  leaf.total_weight = 5.0;
  leaf.class_weights = {5.0, 0.0};
  TreeNode pos_leaf = leaf;
  pos_leaf.predicted_class = 1;
  pos_leaf.class_weights = {0.0, 5.0};
  const int32_t l0 = tree.AddNode(leaf);
  const int32_t l1 = tree.AddNode(pos_leaf);
  const int32_t l2 = tree.AddNode(leaf);
  TreeNode root;
  root.is_leaf = false;
  root.attr = 0;
  root.children = {l0, l1, l2};
  root.total_weight = 15.0;
  root.class_weights = {10.0, 5.0};
  tree.set_root(tree.AddNode(root));

  Schema schema;
  schema.AddAttribute(Attribute::Categorical("color", {"r", "g", "b"}));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  const auto rules = ExtractTreeRules(tree, schema, 100);
  ASSERT_EQ(rules.size(), 3u);
  bool found_pos = false;
  for (const auto& entry : rules) {
    ASSERT_EQ(entry.rule.size(), 1u);
    EXPECT_EQ(entry.rule.conditions()[0].op, ConditionOp::kCatEqual);
    if (entry.cls == 1) {
      found_pos = true;
      EXPECT_EQ(entry.rule.conditions()[0].category, 1);  // "g"
    }
  }
  EXPECT_TRUE(found_pos);
}

TEST(ExtractTreeRulesTest, RespectsRuleCap) {
  // A numeric chain of depth 4 has 5 leaves; cap at 2.
  Rng rng(68);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.NextDouble(0, 10);
    rows.push_back({{x, rng.NextDouble(0, 10)}, x > 5.0});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  C45Config config;
  config.prune = false;
  auto tree = BuildC45Tree(dataset, dataset.AllRows(), config);
  ASSERT_TRUE(tree.ok());
  const auto rules = ExtractTreeRules(*tree, dataset.schema(), 2);
  EXPECT_LE(rules.size(), 2u);
}

TEST(C45RulesLearnerTest, WeightedTrainingIsSupported) {
  // Stratified weights flip majority decisions; the learner must not choke
  // on non-unit weights (it falls back to weighted coverage counting).
  Rng rng(69);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 800; ++i) {
    const double x = rng.NextDouble(0, 10);
    rows.push_back({{x, 0.0}, x > 8.0 && rng.NextBool(0.4)});
  }
  Dataset dataset = MakeNumericDataset(2, rows);
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    if (dataset.label(r) == kPos) dataset.set_weight(r, 10.0);
  }
  C45RulesLearner learner;
  auto model = learner.Train(dataset, kPos);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const Confusion c = EvaluateClassifier(*model, dataset, kPos);
  EXPECT_GT(c.recall(), 0.5);  // up-weighted positives win their region
}

}  // namespace
}  // namespace pnr
