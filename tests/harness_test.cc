#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/table.h"
#include "harness/variants.h"
#include "synth/sweep.h"

namespace pnr {
namespace {

TEST(ExperimentScaleTest, DefaultIsFifthOfPaperScale) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const ExperimentScale scale = ScaleFromArgs(1, argv);
  EXPECT_EQ(scale.train_records, 100000u);
  EXPECT_EQ(scale.test_records, 50000u);
  EXPECT_DOUBLE_EQ(scale.factor, 0.2);
}

TEST(ExperimentScaleTest, PaperScaleFlag) {
  char prog[] = "bench";
  char flag[] = "--paper-scale";
  char* argv[] = {prog, flag};
  const ExperimentScale scale = ScaleFromArgs(2, argv);
  EXPECT_EQ(scale.train_records, 500000u);
  EXPECT_EQ(scale.test_records, 250000u);
}

TEST(ExperimentScaleTest, ExplicitScaleAndSeed) {
  char prog[] = "bench";
  char flag1[] = "--scale=0.1";
  char flag2[] = "--seed=99";
  char* argv[] = {prog, flag1, flag2};
  const ExperimentScale scale = ScaleFromArgs(3, argv);
  EXPECT_EQ(scale.train_records, 50000u);
  EXPECT_EQ(scale.seed, 99u);
}

TEST(ExperimentScaleTest, UnknownArgsIgnored) {
  char prog[] = "bench";
  char flag1[] = "--hard";
  char flag2[] = "--quick";
  char* argv[] = {prog, flag1, flag2};
  const ExperimentScale scale = ScaleFromArgs(3, argv);
  EXPECT_EQ(scale.train_records, 25000u);
  EXPECT_NE(DescribeScale(scale).find("train=25000"), std::string::npos);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "22"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name  22"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableCellsTest, PaperStyleFormatting) {
  EXPECT_EQ(PercentCell(0.9707), "97.07");
  EXPECT_EQ(FMeasureCell(0.9792), ".9792");
  EXPECT_EQ(FMeasureCell(1.0), "1.0000");
}

class VariantSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(VariantSweep, TrainsAndEvaluatesOnSmallData) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 8000, 4000, 88);
  auto result = RunVariant(GetParam(), data, "C", 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->variant, GetParam());
  EXPECT_GE(result->metrics.f_measure, 0.0);
  EXPECT_LE(result->metrics.f_measure, 1.0);
  EXPECT_GE(result->train_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantSweep,
                         ::testing::Values("C", "Cte", "R", "Re", "P", "P1",
                                           "Pold"));

TEST(RunVariantTest, UnknownVariantRejected) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 3000, 1000, 89);
  auto result = RunVariant("bogus", data, "C", 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RunVariantTest, UnknownClassRejected) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 3000, 1000, 90);
  auto result = RunVariant("P", data, "no-such-class", 1);
  EXPECT_FALSE(result.ok());
}

TEST(RunVariantTest, PnruleBestOfFourReportsChosenParams) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 8000, 4000, 91);
  auto result = RunVariant("P", data, "C", 1);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->detail.find("rp="), std::string::npos);
  EXPECT_NE(result->detail.find("rn="), std::string::npos);
}

TEST(RunPnruleConfiguredTest, UsesProvidedConfig) {
  const TrainTestPair data = MakeNumericPair(NsynParams(1), 8000, 4000, 92);
  PnruleConfig config;
  config.max_p_rule_length = 1;
  auto result = RunPnruleConfigured(config, data, "C");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->detail.find("maxPlen=1"), std::string::npos);
}

TEST(StandardVariantsTest, MatchesPaperTableOrder) {
  EXPECT_EQ(StandardVariants(),
            (std::vector<std::string>{"C", "Cte", "R", "Re", "P"}));
}

}  // namespace
}  // namespace pnr
