// The CLI usage text and the dispatch table share one source of truth
// (cli/usage.h): every dispatched subcommand must be documented, so the
// usage text can never silently drift behind `main` again.

#include "cli/usage.h"

#include <gtest/gtest.h>

#include <string>

namespace pnr {
namespace {

// A subcommand is "documented" when it appears after "pnr " or inside an
// alternative group like "pnr <train|eval|predict>".
bool UsageDocuments(const std::string& usage, const std::string& name) {
  return usage.find("pnr " + name) != std::string::npos ||
         usage.find("<" + name) != std::string::npos ||
         usage.find("|" + name) != std::string::npos;
}

TEST(CliUsageTest, EveryDispatchedSubcommandAppearsInUsage) {
  const std::string usage = PnrUsageText();
  ASSERT_FALSE(usage.empty());
  for (size_t i = 0; i < kNumPnrSubcommands; ++i) {
    EXPECT_TRUE(UsageDocuments(usage, kPnrSubcommands[i]))
        << "subcommand '" << kPnrSubcommands[i]
        << "' is dispatched but missing from the usage text";
  }
}

TEST(CliUsageTest, SubcommandListHasNoDuplicates) {
  for (size_t i = 0; i < kNumPnrSubcommands; ++i) {
    for (size_t j = i + 1; j < kNumPnrSubcommands; ++j) {
      EXPECT_STRNE(kPnrSubcommands[i], kPnrSubcommands[j]);
    }
  }
}

// Flags that previously drifted out of the usage text: pin the ones the
// dispatchers actually read.
TEST(CliUsageTest, KnownFlagsAreDocumented) {
  const std::string usage = PnrUsageText();
  for (const char* flag :
       {"--sliding", "--reference-windows", "--score-psi-threshold",
        "--label-psi-threshold", "--max-swaps", "--serve-shards",
        "--model-name", "--synth-train", "--synth-test", "--min-support",
        "--per-class-support", "--min-conf", "--min-lift", "--max-len"}) {
    EXPECT_NE(usage.find(flag), std::string::npos)
        << "flag '" << flag << "' missing from the usage text";
  }
}

}  // namespace
}  // namespace pnr
