// Fault-injection coverage of the file-I/O boundary (common/file_io.h,
// data/mapped_file.h, the model/schema loaders): under injected EINTR
// storms, short reads, mid-transfer failures and allocation failure, every
// surface must either complete with the exact bytes or fail with a clean
// IOError — never crash, hang, or silently deliver a prefix.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/file_io.h"
#include "data/mapped_file.h"
#include "data/schema_io.h"
#include "pnrule/model_io.h"
#include "testing/fault.h"

namespace pnr {
namespace {

using fault::FaultOp;
using fault::FaultPlan;
using fault::OpBit;
using fault::ScopedFaultPlan;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// 150 KiB of patterned bytes: large enough for several 64 KiB read() calls,
// so mid-file schedules actually land mid-file.
std::string PatternContent() {
  std::string content;
  content.reserve(150 * 1024);
  for (size_t i = 0; content.size() < 150 * 1024; ++i) {
    content += "line " + std::to_string(i) + " of patterned payload\n";
  }
  return content;
}

void WriteFixture(const std::string& path, const std::string& content) {
  ASSERT_TRUE(WriteStringToFile(content, path).ok());
}

Schema HarnessSchema() {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("a"));
  schema.AddAttribute(
      Attribute::Categorical("color", {"red", "green", "blue"}));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  return schema;
}

TEST(FaultInjectionTest, ReadSurvivesEintrStormAndShortReads) {
  const std::string path = TempPath("fault_read_storm");
  const std::string content = PatternContent();
  WriteFixture(path, content);

  FaultPlan plan;
  plan.seed = 42;
  plan.ops = OpBit(FaultOp::kRead);
  plan.eintr_prob = 0.3;
  plan.short_prob = 0.6;
  ScopedFaultPlan scoped(plan);
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  // Exact bytes despite the storm: retries and short-read accumulation must
  // not drop, duplicate, or reorder anything.
  EXPECT_EQ(*read, content);
  const auto stats = scoped.stats();
  EXPECT_GT(stats.eintrs[static_cast<int>(FaultOp::kRead)], 0u);
  EXPECT_GT(stats.shorts[static_cast<int>(FaultOp::kRead)], 0u);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, ReadFailingMidFileIsCleanIOError) {
  const std::string path = TempPath("fault_read_midfile");
  WriteFixture(path, PatternContent());

  FaultPlan plan;
  plan.ops = OpBit(FaultOp::kRead);
  plan.fail_nth[static_cast<int>(FaultOp::kRead)] = 2;  // second read() dies
  ScopedFaultPlan scoped(plan);
  auto read = ReadFileToString(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  // The error names the file; a partial buffer is never returned.
  EXPECT_NE(read.status().ToString().find(path), std::string::npos);
  EXPECT_EQ(scoped.stats().failures[static_cast<int>(FaultOp::kRead)], 1u);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, AllocationFailureIsCleanIOError) {
  const std::string path = TempPath("fault_alloc");
  WriteFixture(path, "small file\n");

  FaultPlan plan;
  plan.ops = OpBit(FaultOp::kAlloc);
  plan.fail_nth[static_cast<int>(FaultOp::kAlloc)] = 1;
  ScopedFaultPlan scoped(plan);
  auto read = ReadFileToString(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  EXPECT_NE(read.status().ToString().find("allocate"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, WriteRetriesEintrAndFailsCleanly) {
  const std::string path = TempPath("fault_write");
  const std::string content = PatternContent();
  {
    // EINTR-only schedule: the write loop must retry to completion.
    FaultPlan plan;
    plan.seed = 7;
    plan.ops = OpBit(FaultOp::kWrite);
    plan.eintr_prob = 0.4;
    ScopedFaultPlan scoped(plan);
    ASSERT_TRUE(WriteStringToFile(content, path).ok());
    EXPECT_GT(scoped.stats().eintrs[static_cast<int>(FaultOp::kWrite)], 0u);
  }
  auto read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, content);
  {
    FaultPlan plan;
    plan.ops = OpBit(FaultOp::kWrite);
    plan.fail_nth[static_cast<int>(FaultOp::kWrite)] = 1;
    ScopedFaultPlan scoped(plan);
    const Status status = WriteStringToFile(content, path);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIOError);
  }
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, MmapFailureFallsBackToStreaming) {
  const std::string path = TempPath("fault_mmap");
  const std::string content = PatternContent();
  WriteFixture(path, content);

  FaultPlan plan;
  plan.ops = OpBit(FaultOp::kMmap);
  plan.fail_nth[static_cast<int>(FaultOp::kMmap)] = 1;
  ScopedFaultPlan scoped(plan);
  auto file = MappedFile::Open(path, /*allow_mmap=*/true);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  // mmap is an optimization: its injected failure must degrade to the
  // streaming read with identical bytes, not surface to the caller.
  EXPECT_FALSE(file->is_mapped());
  EXPECT_EQ(std::string(file->bytes()), content);
  EXPECT_EQ(scoped.stats().failures[static_cast<int>(FaultOp::kMmap)], 1u);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, ModelAndSchemaLoadSurfaceCleanIOError) {
  const std::string schema_path = TempPath("fault_schema.schema");
  const std::string model_path = TempPath("fault_model.model");
  const Schema schema = HarnessSchema();
  ASSERT_TRUE(SaveSchema(schema, schema_path).ok());
  auto model = ParsePnruleModel(
      "pnrule-model v1\nthreshold 0.5\nuse_score_matrix 0\n"
      "p-rules 1\nrule 1 3 2\ncond le a 1.5\nn-rules 0\nscores 1 0\n"
      "0.9:3\nend\n",
      schema);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(SavePnruleModel(*model, schema, model_path).ok());

  {
    FaultPlan plan;
    plan.ops = OpBit(FaultOp::kRead);
    plan.fail_nth[static_cast<int>(FaultOp::kRead)] = 1;
    ScopedFaultPlan scoped(plan);
    auto loaded = LoadSchema(schema_path);
    ASSERT_FALSE(loaded.ok());
    // An I/O failure must be distinguishable from a corrupt file: IOError,
    // not a parse InvalidArgument over half a document.
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  }
  {
    FaultPlan plan;
    plan.ops = OpBit(FaultOp::kRead);
    plan.fail_nth[static_cast<int>(FaultOp::kRead)] = 1;
    ScopedFaultPlan scoped(plan);
    auto loaded = LoadPnruleModel(model_path, schema);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  }
  // Without a plan the same files load fine.
  EXPECT_TRUE(LoadSchema(schema_path).ok());
  EXPECT_TRUE(LoadPnruleModel(model_path, schema).ok());
  std::remove(schema_path.c_str());
  std::remove(model_path.c_str());
}

TEST(FaultInjectionTest, PlanScopedToOtherOpsIsInert) {
  const std::string path = TempPath("fault_inert");
  const std::string content = "untouched by a socket-only plan\n";
  WriteFixture(path, content);

  FaultPlan plan;
  plan.ops = OpBit(FaultOp::kRecv) | OpBit(FaultOp::kSend);
  plan.eintr_prob = 1.0;
  plan.fail_prob = 1.0;
  ScopedFaultPlan scoped(plan);
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
  EXPECT_EQ(scoped.stats().total_injected(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pnr
