#include "data/arff.h"

#include <gtest/gtest.h>

namespace pnr {
namespace {

constexpr const char* kWeatherArff = R"(% the classic toy dataset
@relation weather

@attribute outlook {sunny, overcast, rainy}
@attribute temperature numeric
@attribute humidity real
@attribute windy {'TRUE', 'FALSE'}
@attribute play {yes, no}

@data
sunny, 85, 85, 'FALSE', no
sunny, 80, 90, 'TRUE', no
overcast, 83, 86, 'FALSE', yes
rainy, 70, 96, 'FALSE', yes
rainy, 68, 80, 'FALSE', yes
)";

TEST(ArffTest, ParsesWeatherDataset) {
  auto dataset = ReadArffFromString(kWeatherArff);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_rows(), 5u);
  const Schema& schema = dataset->schema();
  ASSERT_EQ(schema.num_attributes(), 4u);  // play is the class
  EXPECT_TRUE(schema.attribute(0).is_categorical());
  EXPECT_EQ(schema.attribute(0).num_categories(), 3u);
  EXPECT_TRUE(schema.attribute(1).is_numeric());
  EXPECT_TRUE(schema.attribute(2).is_numeric());
  EXPECT_EQ(schema.num_classes(), 2u);
  EXPECT_DOUBLE_EQ(dataset->numeric(0, 1), 85.0);
  EXPECT_EQ(schema.class_attr().CategoryName(dataset->label(0)), "no");
  EXPECT_EQ(schema.attribute(3).CategoryName(dataset->categorical(1, 3)),
            "TRUE");
}

TEST(ArffTest, LastNominalIsClassByDefault) {
  // windy (not the numeric column) must not be chosen; play is last.
  auto dataset = ReadArffFromString(kWeatherArff);
  ASSERT_TRUE(dataset.ok());
  EXPECT_NE(dataset->schema().class_attr().FindCategory("yes"),
            kInvalidCategory);
}

TEST(ArffTest, ExplicitClassAttribute) {
  ArffReadOptions options;
  options.class_attribute = "outlook";
  auto dataset = ReadArffFromString(kWeatherArff, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->schema().num_classes(), 3u);
  EXPECT_EQ(dataset->schema().num_attributes(), 4u);  // play is a feature
}

TEST(ArffTest, MissingValues) {
  const std::string text =
      "@relation m\n"
      "@attribute a numeric\n"
      "@attribute b {x, y}\n"
      "@attribute c {p, q}\n"
      "@data\n"
      "?, ?, p\n"
      "1, x, q\n";
  auto dataset = ReadArffFromString(text);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_DOUBLE_EQ(dataset->numeric(0, 0), 0.0);
  EXPECT_EQ(dataset->categorical(0, 1), kInvalidCategory);
}

TEST(ArffTest, RejectsMalformedInputs) {
  EXPECT_FALSE(ReadArffFromString("").ok());
  EXPECT_FALSE(ReadArffFromString("@relation r\n@data\n1\n").ok());
  // Undeclared nominal value.
  EXPECT_FALSE(ReadArffFromString("@relation r\n"
                                  "@attribute a {x}\n"
                                  "@attribute c {p, q}\n"
                                  "@data\nz, p\n")
                   .ok());
  // Wrong arity.
  EXPECT_FALSE(ReadArffFromString("@relation r\n"
                                  "@attribute a numeric\n"
                                  "@attribute c {p, q}\n"
                                  "@data\n1, p, extra\n")
                   .ok());
  // Unsupported type.
  EXPECT_FALSE(ReadArffFromString("@relation r\n"
                                  "@attribute s string\n"
                                  "@attribute c {p, q}\n"
                                  "@data\nhello, p\n")
                   .ok());
  // No nominal class available.
  EXPECT_FALSE(ReadArffFromString("@relation r\n"
                                  "@attribute a numeric\n"
                                  "@data\n1\n")
                   .ok());
  // Numeric class requested.
  ArffReadOptions options;
  options.class_attribute = "a";
  EXPECT_FALSE(ReadArffFromString("@relation r\n"
                                  "@attribute a numeric\n"
                                  "@attribute c {p, q}\n"
                                  "@data\n1, p\n",
                                  options)
                   .ok());
}

TEST(ArffTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "% header comment\n"
      "@relation r\n"
      "\n"
      "@attribute a numeric   % inline comment\n"
      "@attribute c {p, q}\n"
      "@data\n"
      "% data comment\n"
      "1, p\n"
      "\n"
      "2, q\n";
  auto dataset = ReadArffFromString(text);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_rows(), 2u);
}

TEST(ArffTest, ReadFileErrors) {
  EXPECT_FALSE(ReadArff("/nonexistent/data.arff").ok());
}

}  // namespace
}  // namespace pnr
