#include "synth/general_model.h"

#include <gtest/gtest.h>

#include "synth/sweep.h"

namespace pnr {
namespace {

TEST(GeneralModelTest, ParamsValidation) {
  EXPECT_TRUE(GeneralModelParams().Validate().ok());
  GeneralModelParams params;
  params.tr = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params = GeneralModelParams();
  params.nr = 100.0;
  EXPECT_FALSE(params.Validate().ok());
  params = GeneralModelParams();
  params.vocab = 4;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(GeneralModelTest, SchemaIsFourNumericFourCategorical) {
  GeneralModelParams params;
  Rng rng(15);
  const Dataset dataset = GenerateGeneralDataset(params, 1000, &rng);
  ASSERT_EQ(dataset.schema().num_attributes(), 8u);
  for (AttrIndex a = 0; a < 4; ++a) {
    EXPECT_TRUE(dataset.schema().attribute(a).is_numeric());
  }
  for (AttrIndex a = 4; a < 8; ++a) {
    EXPECT_TRUE(dataset.schema().attribute(a).is_categorical());
    EXPECT_EQ(dataset.schema().attribute(a).num_categories(), 50u);
  }
}

TEST(GeneralModelTest, TargetFractionApproximatelyRespected) {
  GeneralModelParams params;
  Rng rng(16);
  const Dataset dataset = GenerateGeneralDataset(params, 60000, &rng);
  const CategoryId target =
      dataset.schema().class_attr().FindCategory("C");
  const double fraction =
      static_cast<double>(dataset.CountClass(target)) / 60000.0;
  EXPECT_NEAR(fraction, 0.003, 0.001);
}

TEST(GeneralModelTest, ValuesStayInDomains) {
  GeneralModelParams params;
  params.tr = 4.0;
  params.nr = 4.0;
  Rng rng(17);
  const Dataset dataset = GenerateGeneralDataset(params, 5000, &rng);
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    for (AttrIndex a = 0; a < 4; ++a) {
      const double v = dataset.numeric(r, a);
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, kNumericDomain);
    }
    for (AttrIndex a = 4; a < 8; ++a) {
      const CategoryId c = dataset.categorical(r, a);
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 50);
    }
  }
}

TEST(GeneralModelTest, SubsamplePairRaisesTargetShare) {
  GeneralModelParams params;
  const TrainTestPair base = MakeGeneralPair(params, 30000, 10000, 18);
  const CategoryId target =
      base.train.schema().class_attr().FindCategory("C");
  const TrainTestPair sampled = SubsamplePair(base, target, 0.01, 19);
  EXPECT_EQ(sampled.train.CountClass(target),
            base.train.CountClass(target));
  EXPECT_EQ(sampled.test.CountClass(target), base.test.CountClass(target));
  const double base_share =
      static_cast<double>(base.train.CountClass(target)) /
      static_cast<double>(base.train.num_rows());
  const double sampled_share =
      static_cast<double>(sampled.train.CountClass(target)) /
      static_cast<double>(sampled.train.num_rows());
  EXPECT_GT(sampled_share, 20.0 * base_share);
}

TEST(GeneralModelTest, TrainTestPairsAreIndependentButModelIdentical) {
  GeneralModelParams params;
  const TrainTestPair pair = MakeGeneralPair(params, 2000, 2000, 20);
  // Same size, same schema, different records.
  ASSERT_EQ(pair.train.num_rows(), pair.test.num_rows());
  bool any_difference = false;
  for (RowId r = 0; r < pair.train.num_rows() && !any_difference; ++r) {
    if (pair.train.numeric(r, 0) != pair.test.numeric(r, 0)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace pnr
