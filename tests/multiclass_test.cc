#include "pnrule/multiclass.h"

#include <gtest/gtest.h>

#include <numeric>

#include "pnrule/model_io.h"
#include "synth/kdd_sim.h"

namespace pnr {
namespace {

KddSimData SmallKdd() {
  KddSimParams params;
  params.train_records = 30000;
  params.test_records = 15000;
  params.seed = 5151;
  auto data = GenerateKddSim(params);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(MultiClassTest, TrainsOneModelPerTrainableClass) {
  const KddSimData kdd = SmallKdd();
  MultiClassPnruleLearner learner;
  auto committee = learner.Train(kdd.train);
  ASSERT_TRUE(committee.ok()) << committee.status().ToString();
  EXPECT_EQ(committee->num_classes(), 5u);
  const Schema& schema = kdd.train.schema();
  // The prevalent classes must have models; u2r may be too thin at this
  // scale but normal/dos certainly train.
  EXPECT_NE(committee->model_for(
                schema.class_attr().FindCategory("normal")),
            nullptr);
  EXPECT_NE(committee->model_for(schema.class_attr().FindCategory("dos")),
            nullptr);
}

TEST(MultiClassTest, AccuracyWellAboveMajorityBaseline) {
  const KddSimData kdd = SmallKdd();
  MultiClassPnruleLearner learner;
  auto committee = learner.Train(kdd.train);
  ASSERT_TRUE(committee.ok());
  const double accuracy = MultiClassAccuracy(*committee, kdd.test);
  // dos is ~74% of the test split; the committee should clearly beat
  // always-dos.
  EXPECT_GT(accuracy, 0.85) << accuracy;
}

TEST(MultiClassTest, ScoresAreZeroForModellessClass) {
  const KddSimData kdd = SmallKdd();
  MultiClassPnruleLearner learner;
  auto committee = learner.Train(kdd.train);
  ASSERT_TRUE(committee.ok());
  EXPECT_DOUBLE_EQ(committee->Score(kdd.test, 0, 99), 0.0);
}

TEST(MultiClassTest, ClassWeightsBiasPrediction) {
  const KddSimData kdd = SmallKdd();
  const Schema& schema = kdd.train.schema();
  const CategoryId dos = schema.class_attr().FindCategory("dos");

  MultiClassPnruleLearner plain;
  auto base = plain.Train(kdd.train);
  ASSERT_TRUE(base.ok());

  // Crush every class except dos: predictions collapse toward dos.
  std::vector<double> weights(5, 1e-6);
  weights[static_cast<size_t>(dos)] = 1.0;
  MultiClassPnruleLearner biased;
  biased.set_class_weights(weights);
  auto skewed = biased.Train(kdd.train);
  ASSERT_TRUE(skewed.ok());

  size_t base_dos = 0;
  size_t skewed_dos = 0;
  for (RowId row = 0; row < kdd.test.num_rows(); ++row) {
    if (base->Classify(kdd.test, row) == dos) ++base_dos;
    if (skewed->Classify(kdd.test, row) == dos) ++skewed_dos;
  }
  EXPECT_GE(skewed_dos, base_dos);
}

TEST(MultiClassTest, RejectsBadWeights) {
  const KddSimData kdd = SmallKdd();
  MultiClassPnruleLearner learner;
  learner.set_class_weights({1.0, 1.0});  // 2 weights, 5 classes
  auto committee = learner.Train(kdd.train);
  EXPECT_FALSE(committee.ok());
}

TEST(MultiClassTest, RejectsSingleClassSchema) {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  schema.GetOrAddClass("only");
  Dataset dataset(std::move(schema));
  dataset.AddRow();
  MultiClassPnruleLearner learner;
  EXPECT_FALSE(learner.Train(dataset).ok());
}

TEST(MultiClassTest, ReportNamesSkippedClasses) {
  // Schema knows three classes but the data only ever shows "a" and "b":
  // "ghost" must be reported as skipped with a reason, not silently absent.
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  const CategoryId a = schema.GetOrAddClass("a");
  const CategoryId b = schema.GetOrAddClass("b");
  const CategoryId ghost = schema.GetOrAddClass("ghost");
  Dataset dataset(std::move(schema));
  dataset.AppendRows(200);
  for (RowId row = 0; row < 200; ++row) {
    dataset.set_numeric(row, 0, row < 60 ? 1.0 : 0.0);
    dataset.set_label(row, row < 60 ? a : b);
  }
  MultiClassPnruleLearner learner;
  MultiClassTrainReport report;
  auto committee = learner.Train(dataset, &report);
  ASSERT_TRUE(committee.ok()) << committee.status().ToString();
  ASSERT_EQ(report.classes.size(), 3u);
  EXPECT_TRUE(report.classes[a].status.ok());
  EXPECT_TRUE(report.classes[b].status.ok());
  EXPECT_FALSE(report.classes[ghost].status.ok());
  EXPECT_EQ(report.classes[ghost].class_name, "ghost");
  EXPECT_EQ(report.classes[ghost].rows, 0u);
  EXPECT_NE(report.classes[ghost].status.message().find("no training"),
            std::string::npos);
  EXPECT_EQ(report.trained, 2u);
  EXPECT_EQ(committee->model_for(ghost), nullptr);
}

TEST(MultiClassTest, ReportFilledEvenWhenTrainFails) {
  // Every row is one class: it covers every row, the other class has none,
  // so no class is trainable — Train fails but the report explains why.
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  const CategoryId all = schema.GetOrAddClass("all");
  schema.GetOrAddClass("never");
  Dataset dataset(std::move(schema));
  dataset.AppendRows(50);
  for (RowId row = 0; row < 50; ++row) dataset.set_label(row, all);
  MultiClassPnruleLearner learner;
  MultiClassTrainReport report;
  auto committee = learner.Train(dataset, &report);
  EXPECT_FALSE(committee.ok());
  ASSERT_EQ(report.classes.size(), 2u);
  EXPECT_EQ(report.trained, 0u);
  EXPECT_NE(report.classes[0].status.message().find("every training row"),
            std::string::npos);
  EXPECT_NE(report.classes[1].status.message().find("no training"),
            std::string::npos);
}

TEST(MultiClassTest, ClassifyBatchMatchesClassifyWithZeroWeights) {
  const KddSimData kdd = SmallKdd();
  const Schema& schema = kdd.train.schema();
  // Zero out one trained class: the batched path skips its ScoreBatch pass
  // entirely, and must still agree with row-at-a-time Classify.
  std::vector<double> weights(5, 1.0);
  weights[static_cast<size_t>(schema.class_attr().FindCategory("dos"))] = 0.0;
  MultiClassPnruleLearner learner;
  learner.set_class_weights(weights);
  auto committee = learner.Train(kdd.train);
  ASSERT_TRUE(committee.ok());

  std::vector<RowId> rows(kdd.test.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<CategoryId> batched(rows.size());
  committee->ClassifyBatch(kdd.test, rows.data(), rows.size(),
                           batched.data());
  for (RowId row = 0; row < kdd.test.num_rows(); ++row) {
    ASSERT_EQ(batched[row], committee->Classify(kdd.test, row))
        << "row " << row;
  }
}

TEST(MultiClassTest, ModelRoundTripsThroughText) {
  const KddSimData kdd = SmallKdd();
  MultiClassPnruleLearner learner;
  learner.set_class_weights({1.0, 0.5, 2.0, 1.0, 1.0});
  auto committee = learner.Train(kdd.train);
  ASSERT_TRUE(committee.ok());
  const Schema& schema = kdd.train.schema();
  const std::string text = SerializeMultiClassModel(*committee, schema);
  auto parsed = ParseMultiClassModel(text, schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeMultiClassModel(*parsed, schema), text);
  EXPECT_EQ(parsed->default_class(), committee->default_class());
  // The round-tripped committee predicts identically.
  for (RowId row = 0; row < 500; ++row) {
    ASSERT_EQ(parsed->Classify(kdd.test, row),
              committee->Classify(kdd.test, row));
  }
}

TEST(MultiClassTest, ParseRejectsMalformedWrappers) {
  const KddSimData kdd = SmallKdd();
  const Schema& schema = kdd.train.schema();
  MultiClassPnruleLearner learner;
  auto committee = learner.Train(kdd.train);
  ASSERT_TRUE(committee.ok());
  const std::string text = SerializeMultiClassModel(*committee, schema);

  EXPECT_FALSE(ParseMultiClassModel("", schema).ok());
  EXPECT_FALSE(ParseMultiClassModel("pnrule-multiclass v9\n", schema).ok());
  // Truncate mid-file: the embedded block's line count no longer adds up.
  EXPECT_FALSE(
      ParseMultiClassModel(text.substr(0, text.size() / 2), schema).ok());
  // Trailing garbage after 'end'.
  EXPECT_FALSE(ParseMultiClassModel(text + "extra\n", schema).ok());
  // Class-count mismatch against the schema.
  Schema two;
  two.AddAttribute(Attribute::Numeric("x"));
  two.GetOrAddClass("a");
  two.GetOrAddClass("b");
  EXPECT_FALSE(ParseMultiClassModel(text, two).ok());
}

}  // namespace
}  // namespace pnr
