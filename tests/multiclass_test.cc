#include "pnrule/multiclass.h"

#include <gtest/gtest.h>

#include "synth/kdd_sim.h"

namespace pnr {
namespace {

KddSimData SmallKdd() {
  KddSimParams params;
  params.train_records = 30000;
  params.test_records = 15000;
  params.seed = 5151;
  auto data = GenerateKddSim(params);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(MultiClassTest, TrainsOneModelPerTrainableClass) {
  const KddSimData kdd = SmallKdd();
  MultiClassPnruleLearner learner;
  auto committee = learner.Train(kdd.train);
  ASSERT_TRUE(committee.ok()) << committee.status().ToString();
  EXPECT_EQ(committee->num_classes(), 5u);
  const Schema& schema = kdd.train.schema();
  // The prevalent classes must have models; u2r may be too thin at this
  // scale but normal/dos certainly train.
  EXPECT_NE(committee->model_for(
                schema.class_attr().FindCategory("normal")),
            nullptr);
  EXPECT_NE(committee->model_for(schema.class_attr().FindCategory("dos")),
            nullptr);
}

TEST(MultiClassTest, AccuracyWellAboveMajorityBaseline) {
  const KddSimData kdd = SmallKdd();
  MultiClassPnruleLearner learner;
  auto committee = learner.Train(kdd.train);
  ASSERT_TRUE(committee.ok());
  const double accuracy = MultiClassAccuracy(*committee, kdd.test);
  // dos is ~74% of the test split; the committee should clearly beat
  // always-dos.
  EXPECT_GT(accuracy, 0.85) << accuracy;
}

TEST(MultiClassTest, ScoresAreZeroForModellessClass) {
  const KddSimData kdd = SmallKdd();
  MultiClassPnruleLearner learner;
  auto committee = learner.Train(kdd.train);
  ASSERT_TRUE(committee.ok());
  EXPECT_DOUBLE_EQ(committee->Score(kdd.test, 0, 99), 0.0);
}

TEST(MultiClassTest, ClassWeightsBiasPrediction) {
  const KddSimData kdd = SmallKdd();
  const Schema& schema = kdd.train.schema();
  const CategoryId dos = schema.class_attr().FindCategory("dos");

  MultiClassPnruleLearner plain;
  auto base = plain.Train(kdd.train);
  ASSERT_TRUE(base.ok());

  // Crush every class except dos: predictions collapse toward dos.
  std::vector<double> weights(5, 1e-6);
  weights[static_cast<size_t>(dos)] = 1.0;
  MultiClassPnruleLearner biased;
  biased.set_class_weights(weights);
  auto skewed = biased.Train(kdd.train);
  ASSERT_TRUE(skewed.ok());

  size_t base_dos = 0;
  size_t skewed_dos = 0;
  for (RowId row = 0; row < kdd.test.num_rows(); ++row) {
    if (base->Classify(kdd.test, row) == dos) ++base_dos;
    if (skewed->Classify(kdd.test, row) == dos) ++skewed_dos;
  }
  EXPECT_GE(skewed_dos, base_dos);
}

TEST(MultiClassTest, RejectsBadWeights) {
  const KddSimData kdd = SmallKdd();
  MultiClassPnruleLearner learner;
  learner.set_class_weights({1.0, 1.0});  // 2 weights, 5 classes
  auto committee = learner.Train(kdd.train);
  EXPECT_FALSE(committee.ok());
}

TEST(MultiClassTest, RejectsSingleClassSchema) {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  schema.GetOrAddClass("only");
  Dataset dataset(std::move(schema));
  dataset.AddRow();
  MultiClassPnruleLearner learner;
  EXPECT_FALSE(learner.Train(dataset).ok());
}

}  // namespace
}  // namespace pnr
