// Brute-force oracle for the condition-search engine: on many small seeded
// random datasets, enumerate *every* single condition directly and check
// that the engine's one-sided search is exactly exhaustive, that its range
// search never does worse than the one-sided optimum, that the stats it
// reports match a from-scratch evaluation of the returned condition, and
// that the multi-threaded search returns bit-identical results. The random
// datasets deliberately include the degenerate shapes the cache must
// handle: an all-missing categorical column, a single-distinct-value
// numeric column, and zero-weight rows.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "induction/condition_search.h"
#include "induction/metric.h"
#include "rules/rule.h"

namespace pnr {
namespace {

constexpr double kEps = 1e-12;
constexpr CategoryId kPos = 1;

struct OracleCase {
  Dataset dataset;
  RowSubset rows;  ///< search subset (sometimes strict, sometimes all)
};

// Random dataset: two generic numeric attributes, one constant numeric
// attribute, one categorical attribute that is entirely missing on every
// third seed, plus zero-weight rows on every fourth seed. Searching a strict
// subset on every other seed exercises the cache's subset path.
OracleCase MakeCase(uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x0"));
  schema.AddAttribute(Attribute::Numeric("x1"));
  schema.AddAttribute(Attribute::Numeric("const"));
  schema.AddAttribute(Attribute::Categorical("c", {"a", "b", "cc", "d"}));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  Dataset dataset(std::move(schema));

  const bool missing_categorical = seed % 3 == 0;
  const bool zero_weights = seed % 4 == 0;
  const size_t num_rows = 30 + seed % 21;
  for (size_t i = 0; i < num_rows; ++i) {
    const RowId r = dataset.AddRow();
    // Few distinct values => plenty of ties, the hard case for sorting
    // determinism and boundary detection.
    dataset.set_numeric(r, 0, std::floor(rng.NextDouble(0, 8)));
    dataset.set_numeric(r, 1, rng.NextDouble(-5, 5));
    dataset.set_numeric(r, 2, 3.25);  // single distinct value
    dataset.set_categorical(
        r, 3,
        missing_categorical ? kInvalidCategory
                            : static_cast<CategoryId>(rng.NextInt(0, 3)));
    dataset.set_label(r, rng.NextBool(0.35) ? kPos : 0);
    if (zero_weights && i % 7 == 0) dataset.set_weight(r, 0.0);
  }

  OracleCase c{std::move(dataset), {}};
  if (seed % 2 == 0) {
    c.rows = c.dataset.AllRows();
  } else {
    for (RowId r = 0; r < c.dataset.num_rows(); ++r) {
      if (r % 3 != 1) c.rows.push_back(r);
    }
  }
  return c;
}

RuleStats EvaluateCondition(const Dataset& dataset, const RowSubset& rows,
                            const Condition& condition) {
  RuleStats stats;
  for (RowId row : rows) {
    if (!condition.Matches(dataset, row)) continue;
    const double w = dataset.weight(row);
    stats.covered += w;
    if (dataset.label(row) == kPos) stats.positive += w;
  }
  return stats;
}

// Mirrors the engine's admissibility gates.
bool Admissible(const RuleStats& stats, double total_weight,
                const ConditionSearchOptions& options) {
  if (stats.covered <= kEps) return false;
  if (stats.covered >= total_weight - kEps) return false;
  if (stats.covered < options.min_covered_weight - kEps) return false;
  if (stats.positive < options.min_positive_weight - kEps) return false;
  return true;
}

// Every single condition the search space contains, scored directly.
double BruteForceBest(const Dataset& dataset, const RowSubset& rows,
                      const ConditionScorer& scorer,
                      const ConditionSearchOptions& options) {
  const double total_weight = dataset.TotalWeight(rows);
  double best = -std::numeric_limits<double>::infinity();
  const auto consider = [&](const Condition& condition) {
    const RuleStats stats = EvaluateCondition(dataset, rows, condition);
    if (!Admissible(stats, total_weight, options)) return;
    const double value = scorer(stats);
    if (std::isfinite(value)) best = std::max(best, value);
  };
  for (AttrIndex attr = 0;
       attr < static_cast<AttrIndex>(dataset.schema().num_attributes());
       ++attr) {
    const Attribute& a = dataset.schema().attribute(attr);
    if (a.is_categorical()) {
      for (size_t c = 0; c < a.num_categories(); ++c) {
        consider(Condition::CatEqual(attr, static_cast<CategoryId>(c)));
      }
      continue;
    }
    std::vector<double> values;
    values.reserve(rows.size());
    for (RowId row : rows) values.push_back(dataset.numeric(row, attr));
    std::sort(values.begin(), values.end());
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      if (values[i + 1] <= values[i]) continue;
      const double cut = 0.5 * (values[i] + values[i + 1]);
      consider(Condition::LessEqual(attr, cut));
      consider(Condition::Greater(attr, cut));
    }
  }
  return best;
}

ConditionScorer MakeScorer(const Dataset& dataset, const RowSubset& rows) {
  auto metric = MakeRuleMetric(RuleMetricKind::kZNumber);
  ClassDistribution dist;
  dist.positives = dataset.ClassWeight(rows, kPos);
  dist.negatives = dataset.TotalWeight(rows) - dist.positives;
  return [metric = std::shared_ptr<RuleMetric>(std::move(metric)),
          dist](const RuleStats& stats) {
    return metric->Evaluate(stats, dist);
  };
}

class ConditionSearchOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConditionSearchOracle, OneSidedSearchMatchesBruteForce) {
  OracleCase c = MakeCase(GetParam());
  if (c.dataset.ClassWeight(c.rows, kPos) <= 0.0) GTEST_SKIP();
  const ConditionScorer scorer = MakeScorer(c.dataset, c.rows);
  ConditionSearchOptions options;
  options.enable_range_conditions = false;

  const auto best =
      FindBestCondition(c.dataset, c.rows, kPos, scorer, options);
  const double oracle = BruteForceBest(c.dataset, c.rows, scorer, options);

  if (!std::isfinite(oracle)) {
    EXPECT_FALSE(best.has_value());
    return;
  }
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->value, oracle, 1e-9);
}

TEST_P(ConditionSearchOracle, ReportedStatsMatchReevaluation) {
  OracleCase c = MakeCase(GetParam());
  if (c.dataset.ClassWeight(c.rows, kPos) <= 0.0) GTEST_SKIP();
  const ConditionScorer scorer = MakeScorer(c.dataset, c.rows);
  ConditionSearchOptions options;  // ranges on: also checks range stats

  const auto best = FindBestCondition(c.dataset, c.rows, kPos, scorer,
                                      options);
  if (!best.has_value()) return;
  // The slice-derived stats must equal a from-scratch evaluation of the
  // returned condition — this is what guarantees the emitted cut values
  // partition the data exactly like the internal sorted-column slices.
  const RuleStats direct =
      EvaluateCondition(c.dataset, c.rows, best->condition);
  EXPECT_DOUBLE_EQ(best->stats.covered, direct.covered);
  EXPECT_DOUBLE_EQ(best->stats.positive, direct.positive);
  EXPECT_EQ(best->value, scorer(direct));
}

TEST_P(ConditionSearchOracle, RangeSearchNeverWorseThanOneSided) {
  OracleCase c = MakeCase(GetParam());
  if (c.dataset.ClassWeight(c.rows, kPos) <= 0.0) GTEST_SKIP();
  const ConditionScorer scorer = MakeScorer(c.dataset, c.rows);
  ConditionSearchOptions one_sided;
  one_sided.enable_range_conditions = false;
  ConditionSearchOptions with_ranges;

  const auto narrow =
      FindBestCondition(c.dataset, c.rows, kPos, scorer, one_sided);
  const auto wide =
      FindBestCondition(c.dataset, c.rows, kPos, scorer, with_ranges);
  if (!narrow.has_value()) return;
  ASSERT_TRUE(wide.has_value());
  EXPECT_GE(wide->value, narrow->value);
}

TEST_P(ConditionSearchOracle, ThreadedSearchIsBitIdentical) {
  OracleCase c = MakeCase(GetParam());
  if (c.dataset.ClassWeight(c.rows, kPos) <= 0.0) GTEST_SKIP();
  const ConditionScorer scorer = MakeScorer(c.dataset, c.rows);
  ConditionSearchOptions options;

  ConditionSearchEngine serial(c.dataset, 1);
  ConditionSearchEngine threaded(c.dataset, 4);
  const auto a = serial.FindBest(c.rows, kPos, scorer, options);
  const auto b = threaded.FindBest(c.rows, kPos, scorer, options);
  ASSERT_EQ(a.has_value(), b.has_value());
  if (!a.has_value()) return;
  EXPECT_EQ(a->condition, b->condition);
  // Bitwise, not approximate: the deterministic reduction promises it.
  EXPECT_EQ(a->value, b->value);
  EXPECT_EQ(a->stats.covered, b->stats.covered);
  EXPECT_EQ(a->stats.positive, b->stats.positive);
}

// >= 100 seeds as required by the harness spec.
INSTANTIATE_TEST_SUITE_P(Seeds, ConditionSearchOracle,
                         ::testing::Range(uint64_t{1}, uint64_t{109}));

// Directed edge cases on top of the random sweep.

TEST(ConditionSearchOracleEdge, AllMissingCategoricalYieldsNoCandidate) {
  Schema schema;
  schema.AddAttribute(Attribute::Categorical("c", {"a", "b"}));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  Dataset dataset(std::move(schema));
  for (int i = 0; i < 10; ++i) {
    const RowId r = dataset.AddRow();
    dataset.set_categorical(r, 0, kInvalidCategory);
    dataset.set_label(r, i % 2 == 0 ? kPos : 0);
  }
  const auto best = FindBestCondition(
      dataset, dataset.AllRows(), kPos,
      [](const RuleStats& s) { return s.positive; });
  EXPECT_FALSE(best.has_value());
}

TEST(ConditionSearchOracleEdge, SingleDistinctNumericYieldsNoCandidate) {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  Dataset dataset(std::move(schema));
  for (int i = 0; i < 10; ++i) {
    const RowId r = dataset.AddRow();
    dataset.set_numeric(r, 0, 7.5);
    dataset.set_label(r, i % 2 == 0 ? kPos : 0);
  }
  const auto best = FindBestCondition(
      dataset, dataset.AllRows(), kPos,
      [](const RuleStats& s) { return s.positive; });
  EXPECT_FALSE(best.has_value());
}

TEST(ConditionSearchOracleEdge, ZeroWeightRowsDoNotCreateCandidates) {
  // The only "positive" slice consists of weight-0 rows: covered weight is
  // 0, so nothing is admissible on that side; the weighted side still is.
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  Dataset dataset(std::move(schema));
  for (int i = 0; i < 8; ++i) {
    const RowId r = dataset.AddRow();
    dataset.set_numeric(r, 0, static_cast<double>(i));
    dataset.set_label(r, i >= 6 ? kPos : 0);
    if (i >= 6) dataset.set_weight(r, 0.0);  // positives weightless
  }
  const auto best = FindBestCondition(
      dataset, dataset.AllRows(), kPos,
      [](const RuleStats& s) { return s.positive - s.negative(); });
  if (best.has_value()) {
    // Whatever won must carry real weight and must not be the weightless
    // positive slice.
    EXPECT_GT(best->stats.covered, 0.0);
  }
}

}  // namespace
}  // namespace pnr
