// End-to-end determinism harness: training with 1, 2 or 8 threads must
// produce byte-identical models. PNrule models are compared through their
// canonical serialization (model_io), RIPPER models through their full
// textual description; a repeated same-seed fit loop guards against
// flakiness from thread scheduling (the classic failure mode of
// non-deterministic reductions: identical in one run, different in the
// next).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "pnrule/model_io.h"
#include "pnrule/pnrule.h"
#include "ripper/ripper.h"
#include "synth/kdd_sim.h"

namespace pnr {
namespace {

const KddSimData& SharedKdd() {
  static const KddSimData data = [] {
    KddSimParams params;
    params.train_records = 4000;
    params.test_records = 2000;
    params.seed = 77;
    auto generated = GenerateKddSim(params);
    EXPECT_TRUE(generated.ok()) << generated.status().ToString();
    return std::move(generated).value();
  }();
  return data;
}

CategoryId Target(const char* name) {
  const CategoryId target =
      SharedKdd().train.schema().class_attr().FindCategory(name);
  EXPECT_NE(target, kInvalidCategory);
  return target;
}

std::string TrainPnruleSerialized(size_t num_threads) {
  const KddSimData& data = SharedKdd();
  PnruleConfig config;
  config.num_threads = num_threads;
  auto model = PnruleLearner(config).Train(data.train, Target("probe"));
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return SerializePnruleModel(*model, data.train.schema());
}

std::string TrainRipperDescribed(size_t num_threads) {
  const KddSimData& data = SharedKdd();
  RipperConfig config;
  config.num_threads = num_threads;
  auto model =
      RipperLearner(config).Train(data.train, Target("probe"));
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return model->Describe(data.train.schema());
}

TEST(ParallelDeterminismTest, PnruleModelsAreByteIdenticalAcrossThreads) {
  const std::string serial = TrainPnruleSerialized(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, TrainPnruleSerialized(2)) << "2 threads diverged";
  EXPECT_EQ(serial, TrainPnruleSerialized(8)) << "8 threads diverged";
}

TEST(ParallelDeterminismTest, RipperModelsAreByteIdenticalAcrossThreads) {
  const std::string serial = TrainRipperDescribed(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, TrainRipperDescribed(2)) << "2 threads diverged";
  EXPECT_EQ(serial, TrainRipperDescribed(8)) << "8 threads diverged";
}

TEST(ParallelDeterminismTest, RepeatedParallelFitsDoNotFlake) {
  // Ten same-seed parallel fits: every model and every test-set confusion
  // matrix must be identical. A racy reduction typically passes a single
  // comparison but fails somewhere in a loop like this.
  const KddSimData& data = SharedKdd();
  const CategoryId target = Target("probe");
  PnruleConfig config;
  config.num_threads = 8;

  std::string reference_model;
  Confusion reference;
  for (int fit = 0; fit < 10; ++fit) {
    auto model = PnruleLearner(config).Train(data.train, target);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    const std::string serialized =
        SerializePnruleModel(*model, data.train.schema());
    const Confusion confusion =
        EvaluateClassifier(*model, data.test, target);
    if (fit == 0) {
      reference_model = serialized;
      reference = confusion;
      continue;
    }
    ASSERT_EQ(serialized, reference_model) << "fit " << fit << " diverged";
    EXPECT_EQ(confusion.true_positives, reference.true_positives);
    EXPECT_EQ(confusion.false_positives, reference.false_positives);
    EXPECT_EQ(confusion.true_negatives, reference.true_negatives);
    EXPECT_EQ(confusion.false_negatives, reference.false_negatives);
  }
}

TEST(ParallelDeterminismTest, AutoThreadCountAlsoMatchesSerial) {
  // num_threads = 0 resolves to hardware concurrency — whatever that is on
  // the host, the model must not change.
  EXPECT_EQ(TrainPnruleSerialized(1), TrainPnruleSerialized(0));
}

}  // namespace
}  // namespace pnr
