// Truncation hardening for the two text formats that persist state:
// pnrule models (pnrule/model_io.h) and schemas (data/schema_io.h). A file
// lopped at any byte — a torn copy, a full disk, a killed writer — must
// produce a located error naming the line and the token the parser was
// still expecting, or (only when the cut lands exactly at the end of the
// final record) parse to the identical document. Silent prefix-acceptance
// is the failure mode these sweeps exist to rule out.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "data/schema_io.h"
#include "pnrule/model_io.h"

namespace pnr {
namespace {

Schema HarnessSchema() {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("a"));
  schema.AddAttribute(Attribute::Numeric("b"));
  schema.AddAttribute(
      Attribute::Categorical("color", {"red", "green", "blue"}));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  return schema;
}

const char kModelText[] =
    "pnrule-model v1\n"
    "threshold 0.5\n"
    "use_score_matrix 1\n"
    "p-rules 2\n"
    "rule 2 10 7\n"
    "cond le a 3.5\n"
    "cond cat color red\n"
    "rule 1 4 2\n"
    "cond range b 0.25 0.75\n"
    "n-rules 1\n"
    "rule 1 5 1\n"
    "cond gt b 0.25\n"
    "scores 2 1\n"
    "0.7:10 0.3:5\n"
    "0.6:4 0.2:2\n"
    "end\n";

// Every rejection must carry a location: a line number for content and
// truncation errors, or the version token for reader/writer skew.
void ExpectLocated(const Status& status, const std::string& context) {
  EXPECT_FALSE(status.ok()) << context;
  const std::string text = status.ToString();
  EXPECT_TRUE(text.find("line") != std::string::npos ||
              text.find("version") != std::string::npos)
      << context << ": unlocated error '" << text << "'";
}

TEST(ModelTruncationTest, EveryBytePrefixIsLocatedErrorOrExactDocument) {
  const Schema schema = HarnessSchema();
  auto full = ParsePnruleModel(kModelText, schema);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  const std::string canonical = SerializePnruleModel(*full, schema);

  const std::string text(kModelText);
  size_t accepted = 0;
  for (size_t cut = 0; cut < text.size(); ++cut) {
    const std::string prefix = text.substr(0, cut);
    auto parsed = ParsePnruleModel(prefix, schema);
    if (parsed.ok()) {
      // Only a cut that preserves the complete final record may parse —
      // and then it must mean exactly what the full document means.
      ++accepted;
      EXPECT_EQ(SerializePnruleModel(*parsed, schema), canonical)
          << "prefix of " << cut << " bytes parsed to a different model";
    } else {
      ExpectLocated(parsed.status(),
                    "model prefix of " + std::to_string(cut) + " bytes");
    }
  }
  // Exactly one proper prefix is complete: the one ending at "end" with the
  // trailing newline cut off.
  EXPECT_EQ(accepted, 1u);
}

TEST(ModelTruncationTest, EofMidRecordNamesLineAndExpectedToken) {
  const Schema schema = HarnessSchema();
  // Cut after "rule 2 10 7\n": the parser is owed two conditions.
  const std::string cut_rule =
      "pnrule-model v1\nthreshold 0.5\nuse_score_matrix 1\n"
      "p-rules 2\nrule 2 10 7\n";
  auto parsed = ParsePnruleModel(cut_rule, schema);
  ASSERT_FALSE(parsed.ok());
  const std::string error = parsed.status().ToString();
  EXPECT_NE(error.find("unexpected end of input after line 5"),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("expected condition 1 of 2"), std::string::npos)
      << error;

  // Cut inside the score matrix: the error names which row is missing.
  const std::string text(kModelText);
  const size_t second_row = text.find("0.6:4");
  ASSERT_NE(second_row, std::string::npos) << "fixture drifted";
  parsed = ParsePnruleModel(text.substr(0, second_row), schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("expected score row 2 of 2"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(ModelTruncationTest, TrailingContentAfterEndRejected) {
  const Schema schema = HarnessSchema();
  auto parsed =
      ParsePnruleModel(std::string(kModelText) + "leftover\n", schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("trailing content after 'end'"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(SchemaTruncationTest, EveryBytePrefixIsLocatedErrorOrExactDocument) {
  const std::string canonical = SerializeSchema(HarnessSchema());
  size_t accepted = 0;
  for (size_t cut = 0; cut < canonical.size(); ++cut) {
    const std::string prefix = canonical.substr(0, cut);
    auto parsed = ParseSchema(prefix);
    if (parsed.ok()) {
      ++accepted;
      EXPECT_EQ(SerializeSchema(*parsed), canonical)
          << "prefix of " << cut << " bytes parsed to a different schema";
    } else {
      ExpectLocated(parsed.status(),
                    "schema prefix of " + std::to_string(cut) + " bytes");
    }
  }
  EXPECT_EQ(accepted, 1u);
}

TEST(SchemaTruncationTest, EofMidRecordNamesLineAndExpectedToken) {
  // Declared 3 categories, file ends after the first value line.
  auto parsed = ParseSchema(
      "pnrule-schema v1\nattributes 1\ncategorical 3 color\nvalue red\n");
  ASSERT_FALSE(parsed.ok());
  const std::string error = parsed.status().ToString();
  EXPECT_NE(error.find("unexpected end of input after line 4"),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("expected value 2 of 3 for attribute 'color'"),
            std::string::npos)
      << error;
}

TEST(SchemaTruncationTest, TrailingContentAfterEndRejected) {
  const std::string canonical = SerializeSchema(HarnessSchema());
  auto parsed = ParseSchema(canonical + "garbage\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("trailing content after 'end'"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(SchemaTruncationTest, SaveLoadRoundTripsThroughFileIo) {
  const std::string path =
      testing::TempDir() + "/pnr_schema_roundtrip.schema";
  const Schema schema = HarnessSchema();
  ASSERT_TRUE(SaveSchema(schema, path).ok());
  auto loaded = LoadSchema(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SerializeSchema(*loaded), SerializeSchema(schema));
  std::remove(path.c_str());

  auto missing = LoadSchema(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace pnr
