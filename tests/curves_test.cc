#include "eval/curves.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pnrule/pnrule.h"
#include "synth/sweep.h"
#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeNumericDataset;

// Score = x / 10 (a perfect ranker when positives have the largest x).
class ScoreByX : public BinaryClassifier {
 public:
  double Score(const Dataset& dataset, RowId row) const override {
    return dataset.numeric(row, 0) / 10.0;
  }
  std::string Describe(const Schema&) const override { return "x/10"; }
};

TEST(CurvesTest, PerfectRankerHasUnitAreas) {
  const Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, false}, {{2.0}, false}, {{3.0}, false},
          {{8.0}, true},  {{9.0}, true}});
  ScoreByX classifier;
  const auto points = OperatingPoints(classifier, dataset, kPos);
  EXPECT_NEAR(RocAuc(points), 1.0, 1e-9);
  EXPECT_NEAR(PrAuc(points), 1.0, 1e-9);
}

TEST(CurvesTest, InvertedRankerHasZeroRocAuc) {
  // Positives get the LOWEST scores.
  const Dataset dataset = MakeNumericDataset(
      1, {{{1.0}, true}, {{2.0}, true}, {{8.0}, false}, {{9.0}, false}});
  ScoreByX classifier;
  const auto points = OperatingPoints(classifier, dataset, kPos);
  EXPECT_NEAR(RocAuc(points), 0.0, 1e-9);
}

TEST(CurvesTest, RandomScoresGiveHalfRocAuc) {
  Rng rng(123);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 4000; ++i) {
    rows.push_back({{rng.NextDouble(0, 10)}, rng.NextBool(0.2)});
  }
  const Dataset dataset = MakeNumericDataset(1, rows);
  ScoreByX classifier;  // score independent of label
  const auto points = OperatingPoints(classifier, dataset, kPos);
  EXPECT_NEAR(RocAuc(points), 0.5, 0.03);
  // PR-AUC of a random ranker approaches the prior.
  EXPECT_NEAR(PrAuc(points), 0.2, 0.03);
}

TEST(CurvesTest, OperatingPointsAreMonotone) {
  Rng rng(321);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble(0, 10);
    rows.push_back({{x}, rng.NextBool(x / 12.0)});
  }
  const Dataset dataset = MakeNumericDataset(1, rows);
  ScoreByX classifier;
  const auto points = OperatingPoints(classifier, dataset, kPos);
  ASSERT_GE(points.size(), 2u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].recall, points[i - 1].recall + 1e-12);
    EXPECT_LE(points[i].false_positive_rate,
              points[i - 1].false_positive_rate + 1e-12);
    EXPECT_GT(points[i].threshold, points[i - 1].threshold);
  }
}

TEST(CurvesTest, PnruleRanksRareClassWell) {
  const TrainTestPair data = MakeNumericPair(NsynParams(3), 20000, 8000, 77);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  auto model = PnruleLearner().Train(data.train, target);
  ASSERT_TRUE(model.ok());
  const RankingSummary summary =
      SummarizeRanking(*model, data.test, target);
  EXPECT_GT(summary.roc_auc, 0.8);
  EXPECT_GT(summary.pr_auc, 0.5);
  // For a 0.3% class, PR-AUC is far below ROC-AUC — the reason the paper
  // argues accuracy-like metrics mislead on rare classes.
  EXPECT_LT(summary.pr_auc, summary.roc_auc);
}

TEST(CurvesTest, TiedScoresCollapseToOneOperatingPoint) {
  // Six rows tie at score 0.5 (3 positive, 3 negative); two positives sit
  // above at 0.9. The documented tie-break — predicted positive iff
  // score > threshold — means the whole tied block flips together, so the
  // sweep has exactly one point per distinct score and no point that
  // splits the tie by some arbitrary intra-tie order.
  const Dataset dataset = MakeNumericDataset(
      1, {{{5.0}, true}, {{5.0}, false}, {{5.0}, true}, {{5.0}, false},
          {{5.0}, true}, {{5.0}, false}, {{9.0}, true}, {{9.0}, true}});
  ScoreByX classifier;
  const auto sweep = ThresholdSweep(classifier, dataset, kPos);
  // Distinct scores {0.5, 0.9} plus the below-everything baseline.
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep[0].second.true_positives, 5.0);
  EXPECT_DOUBLE_EQ(sweep[0].second.false_positives, 3.0);
  // Threshold at the tied score: all six tied records (and only they)
  // become negative in one step.
  EXPECT_DOUBLE_EQ(sweep[1].first, 0.5);
  EXPECT_DOUBLE_EQ(sweep[1].second.true_positives, 2.0);
  EXPECT_DOUBLE_EQ(sweep[1].second.false_positives, 0.0);
  EXPECT_DOUBLE_EQ(sweep[1].second.false_negatives, 3.0);
  EXPECT_DOUBLE_EQ(sweep[1].second.true_negatives, 3.0);
  // Threshold at the top score: nothing predicted positive.
  EXPECT_DOUBLE_EQ(sweep[2].first, 0.9);
  EXPECT_DOUBLE_EQ(sweep[2].second.true_positives, 0.0);
  EXPECT_DOUBLE_EQ(sweep[2].second.false_positives, 0.0);

  // The same collapse seen through OperatingPoints: one point per distinct
  // score, recall stepping over the whole tied block at once.
  const auto points = OperatingPoints(classifier, dataset, kPos);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_NEAR(points[1].recall, 2.0 / 5.0, 1e-12);
  EXPECT_NEAR(points[1].precision, 1.0, 1e-12);
}

TEST(CurvesTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(RocAuc({}), 0.0);
  EXPECT_DOUBLE_EQ(PrAuc({}), 0.0);
}

}  // namespace
}  // namespace pnr
