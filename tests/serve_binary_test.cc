// The compact binary predict protocol: frame parser discipline (truncated
// headers, oversize lengths, pipelined leftovers, byte-at-a-time feeds),
// payload decoding against a schema, and loopback integration — binary
// scores must be bit-identical to offline ScoreBatch, frames pipeline in
// order, content errors keep the connection, framing errors poison it, and
// HTTP stays available on the same port.

#include "serve/binary.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/net.h"
#include "serve/server.h"
#include "synth/sweep.h"

namespace pnr {
namespace {

struct Served {
  TrainTestPair data;
  PnruleClassifier model;
};

const Served& GetServed() {
  static const Served* served = [] {
    GeneralModelParams params;
    params.target_fraction = 0.05;
    TrainTestPair data = MakeGeneralPair(params, 8000, 2000, 17);
    const CategoryId target =
        data.train.schema().class_attr().FindCategory("C");
    auto model = PnruleLearner().Train(data.train, target);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return new Served{std::move(data), std::move(model).value()};
  }();
  return *served;
}

ModelRegistry* MakeRegistry() {
  auto* registry = new ModelRegistry;
  const Served& served = GetServed();
  registry->Install("m", served.data.train.schema(), served.model);
  return registry;
}

// A blocking loopback client for raw binary frames.
class BinaryClient {
 public:
  static BinaryClient Connect(uint16_t port) {
    auto fd = ConnectLoopback(port);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return BinaryClient(std::move(fd).value());
  }

  Status Send(std::string_view bytes) { return SendAll(fd_.get(), bytes); }

  /// Reads one response frame; fails the test on timeout or malformed data.
  BinaryResponse ReadResponse() {
    BinaryResponse response;
    size_t consumed = 0;
    char buf[16384];
    for (;;) {
      Status parsed = ParseBinaryResponse(leftover_, &response, &consumed);
      EXPECT_TRUE(parsed.ok()) << parsed.ToString();
      if (!parsed.ok() || consumed > 0) break;
      auto n = RecvSome(fd_.get(), buf, sizeof(buf), 30000);
      EXPECT_TRUE(n.ok()) << n.status().ToString();
      if (!n.ok() || *n == 0) break;
      leftover_.append(buf, *n);
    }
    leftover_.erase(0, consumed);
    return response;
  }

  /// True when the server closed the connection (EOF).
  bool ReadEof() {
    char buf[64];
    auto n = RecvSome(fd_.get(), buf, sizeof(buf), 30000);
    return n.ok() && *n == 0;
  }

 private:
  explicit BinaryClient(UniqueFd fd) : fd_(std::move(fd)) {}
  UniqueFd fd_;
  std::string leftover_;
};

TEST(BinaryParserTest, ParsesFrameFedByteAtATime) {
  const std::string frame = EncodeBinaryRequest("m", "payload");
  BinaryRequestParser parser;
  for (size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(parser.state(), BinaryRequestParser::State::kNeedMore)
        << "byte " << i;
    parser.Consume(frame.substr(i, 1));
  }
  ASSERT_EQ(parser.state(), BinaryRequestParser::State::kDone);
  const BinaryRequest request = parser.Take();
  EXPECT_EQ(request.model, "m");
  EXPECT_EQ(request.payload, "payload");
  EXPECT_TRUE(parser.idle());
}

TEST(BinaryParserTest, PipelinedFramesTakeInSequence) {
  const std::string burst = EncodeBinaryRequest("a", "one") +
                            EncodeBinaryRequest("b", "two");
  BinaryRequestParser parser;
  ASSERT_EQ(parser.Consume(burst), BinaryRequestParser::State::kDone);
  EXPECT_EQ(parser.Take().model, "a");
  // Take() advances straight into the buffered second frame.
  ASSERT_EQ(parser.state(), BinaryRequestParser::State::kDone);
  EXPECT_EQ(parser.Take().model, "b");
  EXPECT_TRUE(parser.idle());
}

TEST(BinaryParserTest, RejectsBadMagicVersionAndOversizeLengths) {
  {
    BinaryRequestParser parser;
    EXPECT_EQ(parser.Consume(std::string(8, '\x00')),
              BinaryRequestParser::State::kError);
    EXPECT_EQ(parser.error_code(), BinaryStatus::kBadRequest);
  }
  {
    std::string frame = EncodeBinaryRequest("m", "x");
    frame[1] = 9;  // unsupported version
    BinaryRequestParser parser;
    EXPECT_EQ(parser.Consume(frame), BinaryRequestParser::State::kError);
    EXPECT_EQ(parser.error_code(), BinaryStatus::kBadRequest);
  }
  {
    // name_len over the limit.
    std::string frame = EncodeBinaryRequest(std::string(64, 'n'), "");
    BinaryRequestParser parser(BinaryRequestParser::Limits{16, 1024});
    EXPECT_EQ(parser.Consume(frame), BinaryRequestParser::State::kError);
    EXPECT_EQ(parser.error_code(), BinaryStatus::kTooLarge);
  }
  {
    // payload_len < name_len is internally inconsistent.
    std::string frame = EncodeBinaryRequest("name", "");
    const uint32_t bogus = 1;
    std::memcpy(&frame[4], &bogus, sizeof(bogus));
    BinaryRequestParser parser;
    EXPECT_EQ(parser.Consume(frame), BinaryRequestParser::State::kError);
    EXPECT_EQ(parser.error_code(), BinaryStatus::kBadRequest);
  }
  {
    // Oversize payload dies on the header alone — no buffering of the body.
    std::string frame = EncodeBinaryRequest("m", "");
    const uint32_t huge = 1 << 30;
    std::memcpy(&frame[4], &huge, sizeof(huge));
    BinaryRequestParser parser(BinaryRequestParser::Limits{16, 1024});
    EXPECT_EQ(parser.Consume(frame.substr(0, 8)),
              BinaryRequestParser::State::kError);
    EXPECT_EQ(parser.error_code(), BinaryStatus::kTooLarge);
  }
}

TEST(BinaryCodecTest, EncodeDecodeRoundtripsRows) {
  const Served& served = GetServed();
  const Dataset& test = served.data.test;
  std::string payload;
  EncodeBinaryRows(test, 0, 16, &payload);

  RowBlock block;
  const Status decoded = DecodeBinaryRows(payload, test.schema(), &block);
  ASSERT_TRUE(decoded.ok()) << decoded.ToString();
  ASSERT_EQ(block.num_rows, 16u);
  const Schema& schema = test.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    for (RowId r = 0; r < 16; ++r) {
      if (schema.attribute(attr).is_numeric()) {
        // Bit-identity, not value equality: raw f64 travel untouched.
        double sent = test.numeric(r, attr);
        double got = block.numeric[a][r];
        EXPECT_EQ(std::memcmp(&sent, &got, sizeof(double)), 0)
            << "attr " << a << " row " << r;
      } else {
        EXPECT_EQ(block.categorical[a][r], test.categorical(r, attr))
            << "attr " << a << " row " << r;
      }
    }
  }
}

TEST(BinaryCodecTest, DecodeRejectsHostilePayloads) {
  const Schema& schema = GetServed().data.test.schema();
  RowBlock block;

  // Truncated before the row count.
  EXPECT_FALSE(DecodeBinaryRows("\x01", schema, &block).ok());

  // A huge claimed row count on a short payload dies in the admission
  // check, before any allocation.
  std::string bomb;
  const uint32_t rows = 0x7FFFFFFF;
  bomb.append(reinterpret_cast<const char*>(&rows), sizeof(rows));
  bomb.append(64, '\x00');
  EXPECT_FALSE(DecodeBinaryRows(bomb, schema, &block).ok());

  // Trailing bytes after the last column are rejected.
  std::string payload;
  EncodeBinaryRows(GetServed().data.test, 0, 2, &payload);
  EXPECT_TRUE(DecodeBinaryRows(payload, schema, &block).ok());
  payload += '\x00';
  EXPECT_FALSE(DecodeBinaryRows(payload, schema, &block).ok());
}

TEST(BinaryCodecTest, EncodeRowFromTextMatchesDatasetEncoding) {
  const Served& served = GetServed();
  const Dataset& test = served.data.test;
  const Schema& schema = test.schema();

  std::vector<std::pair<std::string, std::string>> cells;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    const Attribute& attribute = schema.attribute(attr);
    if (attribute.is_numeric()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", test.numeric(0, attr));
      cells.emplace_back(attribute.name(), buf);
    } else {
      cells.emplace_back(attribute.name(),
                         attribute.CategoryName(test.categorical(0, attr)));
    }
  }
  std::string from_text;
  ASSERT_TRUE(EncodeBinaryRowFromText(schema, cells, &from_text).ok());
  std::string from_dataset;
  EncodeBinaryRows(test, 0, 1, &from_dataset);
  // %.17g roundtrips doubles exactly, so the two encodings agree bitwise.
  EXPECT_EQ(from_text, from_dataset);

  std::string out;
  EXPECT_FALSE(EncodeBinaryRowFromText(
                   schema, {{"no_such_attr", "1"}}, &out)
                   .ok());
  out.clear();
  EXPECT_FALSE(
      EncodeBinaryRowFromText(schema, {{"n0", "not-a-number"}}, &out).ok());
}

// Loopback integration: binary scores are bit-identical to offline,
// pipelined frames answer in order, and the protocol coexists with HTTP.
TEST(BinaryServeTest, ScoresBitIdenticalAndPipelined) {
  const Served& served = GetServed();
  const Dataset& test = served.data.test;
  std::unique_ptr<ModelRegistry> registry(MakeRegistry());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 2;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kFrames = 4;
  constexpr size_t kRowsEach = 8;
  std::string burst;
  for (size_t f = 0; f < kFrames; ++f) {
    std::string payload;
    EncodeBinaryRows(test, static_cast<RowId>(f * kRowsEach),
                     static_cast<RowId>((f + 1) * kRowsEach), &payload);
    burst += EncodeBinaryRequest("m", payload);
  }

  BinaryClient client = BinaryClient::Connect(server.port());
  ASSERT_TRUE(client.Send(burst).ok());

  std::vector<RowId> rows(kFrames * kRowsEach);
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<double> expected(rows.size());
  served.model.ScoreBatch(test, rows.data(), rows.size(), expected.data());

  for (size_t f = 0; f < kFrames; ++f) {
    const BinaryResponse response = client.ReadResponse();
    ASSERT_EQ(response.status, BinaryStatus::kOk) << response.error;
    ASSERT_EQ(response.scores.size(), kRowsEach) << "frame " << f;
    for (size_t i = 0; i < kRowsEach; ++i) {
      EXPECT_EQ(response.scores[i], expected[f * kRowsEach + i])
          << "frame " << f << " row " << i;
      EXPECT_EQ(response.predicted[i],
                expected[f * kRowsEach + i] > served.model.threshold() ? 1
                                                                       : 0);
    }
  }

  // HTTP still answers on the same port, on a different connection.
  auto http = HttpClient::Connect(server.port());
  ASSERT_TRUE(http.ok());
  HttpClient http_client = std::move(http).value();
  auto health = http_client.Roundtrip("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);

  server.Shutdown();
}

TEST(BinaryServeTest, ContentErrorsKeepConnectionFramingErrorsCloseIt) {
  const Served& served = GetServed();
  const Dataset& test = served.data.test;
  std::unique_ptr<ModelRegistry> registry(MakeRegistry());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 1;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());

  BinaryClient client = BinaryClient::Connect(server.port());

  // Unknown model: an error frame, but the frame boundary held — the next
  // request on the same connection succeeds.
  ASSERT_TRUE(client.Send(EncodeBinaryRequest("nope", "")).ok());
  BinaryResponse response = client.ReadResponse();
  EXPECT_EQ(response.status, BinaryStatus::kNotFound);
  EXPECT_NE(response.error.find("nope"), std::string::npos);

  // Malformed payload (claims 5 rows, carries none): same story.
  ASSERT_TRUE(
      client.Send(EncodeBinaryRequest("m", std::string("\x05\x00\x00\x00", 4)))
          .ok());
  response = client.ReadResponse();
  EXPECT_EQ(response.status, BinaryStatus::kBadRequest);

  std::string payload;
  EncodeBinaryRows(test, 0, 2, &payload);
  ASSERT_TRUE(client.Send(EncodeBinaryRequest("m", payload)).ok());
  response = client.ReadResponse();
  ASSERT_EQ(response.status, BinaryStatus::kOk) << response.error;
  std::vector<RowId> rows = {0, 1};
  std::vector<double> expected(2);
  served.model.ScoreBatch(test, rows.data(), 2, expected.data());
  ASSERT_EQ(response.scores.size(), 2u);
  EXPECT_EQ(response.scores[0], expected[0]);
  EXPECT_EQ(response.scores[1], expected[1]);

  // Framing error: a second "frame" whose magic byte is wrong. The stream
  // offset is untrustworthy from here, so the server answers an error frame
  // and closes the connection.
  ASSERT_TRUE(client.Send(std::string(8, '\x00')).ok());
  response = client.ReadResponse();
  EXPECT_EQ(response.status, BinaryStatus::kBadRequest);
  EXPECT_TRUE(client.ReadEof());

  server.Shutdown();
}

}  // namespace
}  // namespace pnr
