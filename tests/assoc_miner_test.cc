// Frequent-itemset miner: hand-checkable supports on a tiny categorical
// dataset, the per-class rescue floor keeping rare-class itemsets alive,
// Apriori join/prune soundness, and thread-count invariance of the mined
// frequent list.

#include "assoc/miner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "assoc/discretize.h"
#include "data/dataset.h"

namespace pnr {
namespace {

// 20 rows over two categorical attributes, classes "common" (18 rows) and
// "rare" (2 rows). The pattern (a=x, b=u) appears in both rare rows and
// nowhere else, so it is invisible to any global floor above 10% but owns
// 100% of the rare class.
Dataset RarePatternData() {
  Schema schema;
  schema.AddAttribute(Attribute::Categorical("a", {"x", "y"}));
  schema.AddAttribute(Attribute::Categorical("b", {"u", "v"}));
  schema.GetOrAddClass("common");
  schema.GetOrAddClass("rare");
  Dataset data(schema);
  for (int i = 0; i < 18; ++i) {
    const RowId r = data.AddRow();
    data.set_categorical(r, 0, 1);          // a=y
    data.set_categorical(r, 1, 1);          // b=v
    data.set_label(r, 0);
  }
  for (int i = 0; i < 2; ++i) {
    const RowId r = data.AddRow();
    data.set_categorical(r, 0, 0);          // a=x
    data.set_categorical(r, 1, 0);          // b=u
    data.set_label(r, 1);
  }
  return data;
}

RowSubset AllRows(const Dataset& data) {
  RowSubset rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  return rows;
}

struct Mined {
  ItemCatalog catalog;
  VerticalIndex index;
  Discretizer discretizer;
};

Mined BuildIndex(const Dataset& data, size_t threads = 1) {
  Mined mined;
  auto fitted = Discretizer::Fit(data, AllRows(data), DiscretizeOptions{});
  EXPECT_TRUE(fitted.ok());
  mined.discretizer = std::move(fitted).value();
  mined.catalog = ItemCatalog::Build(data.schema(), mined.discretizer);
  mined.index = VerticalIndex::Build(data, AllRows(data), mined.catalog,
                                     mined.discretizer, threads);
  return mined;
}

TEST(MinerTest, OptionsValidate) {
  AssocMineOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.min_support = -0.1;
  EXPECT_FALSE(options.Validate().ok());
  options.min_support = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.min_support = 0.01;
  options.max_len = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.max_len = 3;
  options.min_confidence = 1.5;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(MinerTest, VerticalIndexCountsAreExact) {
  const Dataset data = RarePatternData();
  Mined mined = BuildIndex(data);
  // 2 attributes x 2 categories = 4 items.
  ASSERT_EQ(mined.catalog.size(), 4u);
  EXPECT_EQ(mined.index.num_rows, 20u);
  ASSERT_EQ(mined.index.class_counts.size(), 2u);
  EXPECT_EQ(mined.index.class_counts[0], 18u);
  EXPECT_EQ(mined.index.class_counts[1], 2u);
  const int32_t a_x = mined.catalog.CategoricalItem(0, 0);
  const int32_t b_v = mined.catalog.CategoricalItem(1, 1);
  ASSERT_GE(a_x, 0);
  ASSERT_GE(b_v, 0);
  EXPECT_EQ(mined.index.item_rows[a_x].Count(), 2u);
  EXPECT_EQ(mined.index.item_rows[b_v].Count(), 18u);
}

TEST(MinerTest, GlobalFloorAloneDropsTheRarePattern) {
  const Dataset data = RarePatternData();
  Mined mined = BuildIndex(data);
  AssocMineOptions options;
  options.min_support = 0.2;            // floor of 4 rows
  options.per_class_min_support = 0.0;  // rescue disabled
  options.max_len = 2;
  MineStats stats;
  auto frequent = MineFrequentItemsets(mined.index, options, &stats);
  ASSERT_TRUE(frequent.ok());
  // Only a=y, b=v and their pair clear 20% support.
  EXPECT_EQ(frequent->size(), 3u);
  EXPECT_EQ(stats.itemsets_rescued, 0u);
}

TEST(MinerTest, PerClassFloorRescuesTheRarePattern) {
  const Dataset data = RarePatternData();
  Mined mined = BuildIndex(data);
  AssocMineOptions options;
  options.min_support = 0.2;            // same hostile global floor
  options.per_class_min_support = 0.5;  // but 50% of some class rescues
  options.max_len = 2;
  MineStats stats;
  auto frequent = MineFrequentItemsets(mined.index, options, &stats);
  ASSERT_TRUE(frequent.ok());
  // Now a=x, b=u and the pair (a=x, b=u) survive via the rare class: 6 in
  // total.
  EXPECT_EQ(frequent->size(), 6u);
  EXPECT_GT(stats.itemsets_rescued, 0u);

  // The rescued pair carries exact supports: 2 global, 2 in class "rare".
  const int32_t a_x = mined.catalog.CategoricalItem(0, 0);
  const int32_t b_u = mined.catalog.CategoricalItem(1, 0);
  bool found = false;
  for (const FrequentItemset& itemset : *frequent) {
    if (itemset.items == std::vector<int32_t>{std::min(a_x, b_u),
                                              std::max(a_x, b_u)}) {
      found = true;
      EXPECT_EQ(itemset.support, 2u);
      ASSERT_EQ(itemset.class_support.size(), 2u);
      EXPECT_EQ(itemset.class_support[0], 0u);
      EXPECT_EQ(itemset.class_support[1], 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MinerTest, RuleGenerationComputesConfidenceAndLift) {
  const Dataset data = RarePatternData();
  Mined mined = BuildIndex(data);
  AssocMineOptions options;
  options.min_support = 0.05;
  options.per_class_min_support = 0.5;
  options.min_confidence = 0.9;
  options.min_lift = 1.0;
  options.max_len = 2;
  MineStats stats;
  auto frequent = MineFrequentItemsets(mined.index, options, &stats);
  ASSERT_TRUE(frequent.ok());
  const std::vector<CandidateRule> rules =
      GenerateRules(*frequent, mined.index, options, &stats);
  ASSERT_FALSE(rules.empty());
  // Find "a=x => rare": confidence 2/2 = 1, lift 1 / (2/20) = 10.
  const int32_t a_x = mined.catalog.CategoricalItem(0, 0);
  bool found = false;
  for (const CandidateRule& rule : rules) {
    if (rule.items == std::vector<int32_t>{a_x} && rule.cls == 1) {
      found = true;
      EXPECT_EQ(rule.support, 2u);
      EXPECT_EQ(rule.class_support, 2u);
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
      EXPECT_DOUBLE_EQ(rule.lift, 10.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MinerTest, NoItemsetRepeatsAnAttribute) {
  const Dataset data = RarePatternData();
  Mined mined = BuildIndex(data);
  AssocMineOptions options;
  options.min_support = 0.01;
  options.per_class_min_support = 0.0;
  options.max_len = 3;
  MineStats stats;
  auto frequent = MineFrequentItemsets(mined.index, options, &stats);
  ASSERT_TRUE(frequent.ok());
  for (const FrequentItemset& itemset : *frequent) {
    std::vector<AttrIndex> attrs;
    for (const int32_t id : itemset.items) {
      attrs.push_back(mined.catalog.item(id).attr);
    }
    std::sort(attrs.begin(), attrs.end());
    EXPECT_TRUE(std::adjacent_find(attrs.begin(), attrs.end()) == attrs.end())
        << "itemset mixes two values of one attribute";
  }
}

TEST(MinerTest, CandidateCapIsALocatedError) {
  const Dataset data = RarePatternData();
  Mined mined = BuildIndex(data);
  AssocMineOptions options;
  options.max_candidates = 2;  // absurdly small: the L1 level already busts
  MineStats stats;
  auto frequent = MineFrequentItemsets(mined.index, options, &stats);
  ASSERT_FALSE(frequent.ok());
  // Both level-cap messages name the cap and how to get under it.
  EXPECT_NE(frequent.status().message().find("cap"), std::string::npos);
  EXPECT_NE(frequent.status().message().find("--min-support"),
            std::string::npos);
}

// The repo-wide determinism contract: the frequent list (items, supports,
// order) is identical at any thread count.
TEST(MinerTest, FrequentListIsThreadCountInvariant) {
  Dataset data(RarePatternData().schema());
  {
    // A bigger, more irregular dataset: 400 rows, labels and values driven
    // by a fixed recurrence.
    uint32_t state = 12345;
    auto next = [&state] {
      state = state * 1664525u + 1013904223u;
      return state >> 16;
    };
    for (int i = 0; i < 400; ++i) {
      const RowId r = data.AddRow();
      data.set_categorical(r, 0, next() % 2);
      data.set_categorical(r, 1, next() % 2);
      data.set_label(r, next() % 20 == 0 ? 1 : 0);
    }
  }
  AssocMineOptions options;
  options.min_support = 0.02;
  options.per_class_min_support = 0.2;
  options.max_len = 2;

  auto mine_with = [&](size_t threads) {
    Mined mined = BuildIndex(data, threads);
    MineStats stats;
    auto frequent = MineFrequentItemsets(mined.index, options, &stats);
    EXPECT_TRUE(frequent.ok());
    std::string canon;
    for (const FrequentItemset& itemset : *frequent) {
      for (const int32_t id : itemset.items) {
        canon += std::to_string(id) + ",";
      }
      canon += "|" + std::to_string(itemset.support);
      for (const uint64_t c : itemset.class_support) {
        canon += ":" + std::to_string(c);
      }
      canon += "\n";
    }
    return canon;
  };
  const std::string reference = mine_with(1);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(mine_with(2), reference);
  EXPECT_EQ(mine_with(8), reference);
}

}  // namespace
}  // namespace pnr
