// Concurrent scoring-while-training over a demand-paged dataset — the
// situation `pnr stream` creates when a drift-triggered retrain runs with
// --max-resident-mb while the scoring path keeps serving windows.
//
// Scorer threads hammer their own ClonePagedView (each view pages columns
// in and out of the shared pager) while the main thread trains through
// another view under a ThreadBudget lease. TSan runs this via the
// `sanitize` label; the assertions pin the determinism side: concurrent
// paging must change neither the scores nor the trained model's bytes, and
// the budget's high-water mark must hold.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "data/shard_store.h"
#include "eval/batch.h"
#include "pnrule/model_io.h"
#include "pnrule/pnrule.h"
#include "synth/kdd_sim.h"

namespace pnr {
namespace {

TEST(PagedTrainScoreStressTest, ScoringStaysExactWhileTrainingPages) {
  KddSimParams params;
  params.train_records = 4000;
  params.test_records = 1000;
  params.seed = 1723;
  auto generated = GenerateKddSim(params);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  const Dataset& in_ram = generated->train;
  const CategoryId target = in_ram.schema().class_attr().FindCategory("dos");
  ASSERT_NE(target, kInvalidCategory);

  // Reference artifacts from the plain in-RAM dataset.
  auto ref_model = PnruleLearner(PnruleConfig()).Train(in_ram, target);
  ASSERT_TRUE(ref_model.ok()) << ref_model.status().ToString();
  const std::string ref_bytes =
      SerializePnruleModel(*ref_model, in_ram.schema());
  std::vector<RowId> rows(in_ram.num_rows());
  for (RowId row = 0; row < in_ram.num_rows(); ++row) rows[row] = row;
  std::vector<double> ref_scores(rows.size(), 0.0);
  ref_model->ScoreBatch(in_ram, rows.data(), rows.size(), ref_scores.data());

  // The same rows behind a pager whose budget forces continuous eviction.
  ShardStoreWriteOptions write_options;
  write_options.num_shards = 4;
  auto bytes = SerializeShardStore(in_ram, write_options);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto reader =
      ShardStoreReader::OpenBuffer(std::move(bytes).value(), "stress.pns");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto paged = MakePagedDataset(*reader, (*reader)->column_bytes() / 8);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  // Scoring reserves its threads up front; training may only lease what is
  // left — the stream engine's arrangement.
  ThreadBudget budget(4);
  ASSERT_EQ(budget.Reserve(2), 2u);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> score_passes{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> scorer_evictions{0};
  std::vector<std::thread> scorers;
  for (int worker = 0; worker < 2; ++worker) {
    scorers.emplace_back([&, worker] {
      // Each scorer works a private view; the backing column pager is
      // shared with the training thread, so faults interleave.
      const Dataset view = paged->ClonePagedView();
      std::vector<double> scores(rows.size(), 0.0);
      while (!stop.load(std::memory_order_acquire)) {
        const size_t begin = worker == 0 ? 0 : rows.size() / 2;
        const size_t count = rows.size() / 2;
        ref_model->ScoreBatch(
            view, rows.data() + begin, count, scores.data() + begin,
            ClampOptionsForDataset(view, BatchScoreOptions()));
        for (size_t i = begin; i < begin + count; ++i) {
          if (scores[i] != ref_scores[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        score_passes.fetch_add(1, std::memory_order_relaxed);
      }
      scorer_evictions.fetch_add(view.column_evict_count(),
                                 std::memory_order_relaxed);
    });
  }

  // Train through the pager, repeatedly, while the scorers run — each
  // round restarts the fault/evict churn, widening the overlap window.
  const Dataset train_view = paged->ClonePagedView();
  ThreadBudget::Lease lease = budget.Acquire(2);
  PnruleConfig config;
  config.num_threads = lease.count();
  for (int round = 0; round < 3; ++round) {
    auto trained = PnruleLearner(config).Train(train_view, target);
    ASSERT_TRUE(trained.ok()) << trained.status().ToString();
    EXPECT_EQ(SerializePnruleModel(*trained, train_view.schema()), ref_bytes)
        << "round " << round;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& scorer : scorers) scorer.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(score_passes.load(), 0u);
  // Every view does its own residency bookkeeping; the capped budget must
  // have forced spills on both sides of the contention.
  EXPECT_GT(train_view.column_evict_count(), 0u)
      << "training never spilled under the budget";
  EXPECT_GT(scorer_evictions.load(), 0u)
      << "scoring never spilled under the budget";
  EXPECT_LE(budget.peak_in_use(), 4u);
}

}  // namespace
}  // namespace pnr
