#include "pnrule/score_matrix.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeMixedDataset;

// P-rule 0: x <= 5 (everything in this toy set); N-rule 0: c == b.
RuleSet OnePRule() {
  RuleSet rules;
  Rule rule({Condition::LessEqual(0, 5.0)});
  rule.train_stats.covered = 10.0;
  rule.train_stats.positive = 6.0;
  rules.AddRule(rule);
  return rules;
}

RuleSet OneNRule() {
  RuleSet rules;
  rules.AddRule(Rule({Condition::CatEqual(1, 1)}));
  return rules;
}

PnruleConfig ConfigWithMinCell(double min_cell) {
  PnruleConfig config;
  config.score_min_cell_weight = min_cell;
  config.score_smoothing = 1.0;
  return config;
}

TEST(ScoreMatrixTest, EmpiricalCellProbabilities) {
  // 6 records hit (P0, N0): 5 positive. 8 records hit (P0, none): 2 pos.
  std::vector<testutil::MixedRow> rows;
  for (int i = 0; i < 5; ++i) rows.push_back({1.0, 1, true});
  rows.push_back({1.0, 1, false});
  for (int i = 0; i < 2; ++i) rows.push_back({1.0, 0, true});
  for (int i = 0; i < 6; ++i) rows.push_back({1.0, 0, false});
  const Dataset dataset = MakeMixedDataset(rows);

  const ScoreMatrix matrix =
      ScoreMatrix::Build(dataset, dataset.AllRows(), kPos, OnePRule(),
                         OneNRule(), ConfigWithMinCell(3.0));
  ASSERT_EQ(matrix.num_p_rules(), 1u);
  ASSERT_EQ(matrix.num_n_rules(), 1u);
  // Cell (0, 0): weight 6, positives 5 -> (5+1)/(6+2).
  EXPECT_DOUBLE_EQ(matrix.CellWeight(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(matrix.Score(0, 0), 6.0 / 8.0);
  // Cell (0, none): weight 8, positives 2 -> (2+1)/(8+2).
  EXPECT_DOUBLE_EQ(matrix.CellWeight(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(matrix.Score(0, 1), 3.0 / 10.0);
}

TEST(ScoreMatrixTest, SignificantCellCanOverrideNRule) {
  // The N-rule fires but the cell is mostly positive: the score stays above
  // 0.5, i.e. the N-rule is ignored for this P-rule — the paper's key
  // scoring behaviour.
  std::vector<testutil::MixedRow> rows;
  for (int i = 0; i < 9; ++i) rows.push_back({1.0, 1, true});
  rows.push_back({1.0, 1, false});
  const Dataset dataset = MakeMixedDataset(rows);
  const ScoreMatrix matrix =
      ScoreMatrix::Build(dataset, dataset.AllRows(), kPos, OnePRule(),
                         OneNRule(), ConfigWithMinCell(3.0));
  EXPECT_GT(matrix.Score(0, 0), 0.5);
}

TEST(ScoreMatrixTest, InsignificantNCellHonorsNRule) {
  // Only 1 record lands in (P0, N0) — below min cell weight — so the cell
  // falls back to the default veto semantics (score 0).
  std::vector<testutil::MixedRow> rows;
  rows.push_back({1.0, 1, true});
  for (int i = 0; i < 8; ++i) rows.push_back({1.0, 0, i % 2 == 0});
  const Dataset dataset = MakeMixedDataset(rows);
  const ScoreMatrix matrix =
      ScoreMatrix::Build(dataset, dataset.AllRows(), kPos, OnePRule(),
                         OneNRule(), ConfigWithMinCell(3.0));
  EXPECT_DOUBLE_EQ(matrix.Score(0, 0), 0.0);
}

TEST(ScoreMatrixTest, InsignificantNoneCellFallsBackToPRuleAccuracy) {
  // Nothing lands in the (P0, none) cell; it inherits the P-rule's
  // training accuracy (0.6 from OnePRule's stats).
  std::vector<testutil::MixedRow> rows;
  for (int i = 0; i < 4; ++i) rows.push_back({1.0, 1, true});
  const Dataset dataset = MakeMixedDataset(rows);
  const ScoreMatrix matrix =
      ScoreMatrix::Build(dataset, dataset.AllRows(), kPos, OnePRule(),
                         OneNRule(), ConfigWithMinCell(3.0));
  EXPECT_DOUBLE_EQ(matrix.CellWeight(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(matrix.Score(0, 1), 0.6);
}

TEST(ScoreMatrixTest, RecordsOutsidePRulesAreIgnored) {
  std::vector<testutil::MixedRow> rows;
  rows.push_back({9.0, 1, true});  // x > 5: no P-rule fires
  rows.push_back({1.0, 0, true});
  const Dataset dataset = MakeMixedDataset(rows);
  const ScoreMatrix matrix =
      ScoreMatrix::Build(dataset, dataset.AllRows(), kPos, OnePRule(),
                         OneNRule(), ConfigWithMinCell(0.0));
  EXPECT_DOUBLE_EQ(matrix.CellWeight(0, 0) + matrix.CellWeight(0, 1), 1.0);
}

TEST(ScoreMatrixTest, EmptyPRulesProduceEmptyMatrix) {
  const Dataset dataset = MakeMixedDataset({{1.0, 0, true}});
  const ScoreMatrix matrix =
      ScoreMatrix::Build(dataset, dataset.AllRows(), kPos, RuleSet(),
                         OneNRule(), ConfigWithMinCell(1.0));
  EXPECT_EQ(matrix.num_p_rules(), 0u);
}

TEST(ScoreMatrixTest, ScoresAreProbabilities) {
  std::vector<testutil::MixedRow> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({1.0, i % 3, i % 2 == 0});
  const Dataset dataset = MakeMixedDataset(rows);
  const ScoreMatrix matrix =
      ScoreMatrix::Build(dataset, dataset.AllRows(), kPos, OnePRule(),
                         OneNRule(), ConfigWithMinCell(2.0));
  for (size_t p = 0; p < matrix.num_p_rules(); ++p) {
    for (size_t n = 0; n <= matrix.num_n_rules(); ++n) {
      EXPECT_GE(matrix.Score(p, n), 0.0);
      EXPECT_LE(matrix.Score(p, n), 1.0);
    }
  }
}

}  // namespace
}  // namespace pnr
