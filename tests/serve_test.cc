// Loopback integration tests for the sharded prediction server:
// bit-identical scores vs offline ScoreBatch for 1/2/8 reactor shards,
// pipelined keep-alive ordering, deterministic 503 under batcher
// saturation, hot-swap under load (no torn snapshot), and graceful drain
// of in-flight pipelined requests. Runs under TSan via the `sanitize`
// ctest label.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.h"
#include "synth/sweep.h"

namespace pnr {
namespace {

// One trained syngen model (4 numeric + 4 categorical attributes) shared
// by every test — training once keeps the suite fast.
struct Served {
  TrainTestPair data;
  PnruleClassifier model;
};

const Served& GetServed() {
  static const Served* served = [] {
    GeneralModelParams params;
    params.target_fraction = 0.05;  // enough positives to train quickly
    TrainTestPair data = MakeGeneralPair(params, 8000, 2000, 17);
    const CategoryId target =
        data.train.schema().class_attr().FindCategory("C");
    auto model = PnruleLearner().Train(data.train, target);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return new Served{std::move(data), std::move(model).value()};
  }();
  return *served;
}

ModelRegistry* MakeRegistry() {
  auto* registry = new ModelRegistry;
  const Served& served = GetServed();
  registry->Install("m", served.data.train.schema(), served.model);
  return registry;
}

// Renders rows [begin, end) of `data` as a /v1/predict body. Numeric cells
// are emitted with AppendJsonNumber (%.17g), so the server-side ParseDouble
// recovers the exact doubles the offline scorer reads.
std::string PredictBody(const Dataset& data, RowId begin, RowId end) {
  const Schema& schema = data.schema();
  std::string body = "{\"model\":\"m\",\"rows\":[";
  for (RowId row = begin; row < end; ++row) {
    if (row != begin) body += ',';
    body += '{';
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const auto attr = static_cast<AttrIndex>(a);
      if (a > 0) body += ',';
      AppendJsonString(&body, schema.attribute(attr).name());
      body += ':';
      if (schema.attribute(attr).is_numeric()) {
        AppendJsonNumber(&body, data.numeric(row, attr));
      } else {
        AppendJsonString(&body, schema.attribute(attr).CategoryName(
                                    data.categorical(row, attr)));
      }
    }
    body += '}';
  }
  body += "]}";
  return body;
}

std::string PredictRequestFrame(const Dataset& data, RowId begin, RowId end) {
  const std::string body = PredictBody(data, begin, end);
  std::string out = "POST /v1/predict HTTP/1.1\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

struct ParsedPrediction {
  std::vector<double> scores;
  std::vector<int> predicted;
};

HttpClient MustConnect(uint16_t port) {
  auto client = HttpClient::Connect(port);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

ParsedPrediction ParsePrediction(const std::string& body) {
  ParsedPrediction out;
  auto doc = ParseJson(body);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString() << " in: " << body;
  if (!doc.ok()) return out;
  const JsonValue* scores = doc->Find("scores");
  const JsonValue* predicted = doc->Find("predicted");
  EXPECT_NE(scores, nullptr);
  EXPECT_NE(predicted, nullptr);
  if (scores == nullptr || predicted == nullptr) return out;
  for (const JsonValue& v : scores->array) out.scores.push_back(v.number_value);
  for (const JsonValue& v : predicted->array) {
    out.predicted.push_back(static_cast<int>(v.number_value));
  }
  return out;
}

// The acceptance gate: `clients` concurrent connections, each scoring its
// share of the test set in several keep-alive requests, must receive
// byte-for-byte the scores offline ScoreBatch computes — for any shard
// count and batcher setting.
void RunBitIdentityTest(size_t num_shards, bool batching, size_t clients) {
  const Served& served = GetServed();
  const Dataset& test = served.data.test;
  std::unique_ptr<ModelRegistry> registry(MakeRegistry());

  ServerConfig config;
  config.port = 0;
  config.num_shards = num_shards;
  config.batcher.enabled = batching;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());

  const size_t rows_per_client = 50;
  const size_t requests_per_client = 5;  // 10 rows per request
  const size_t total_rows = clients * rows_per_client;
  ASSERT_LE(total_rows, test.num_rows());

  std::vector<double> got_scores(total_rows, -1.0);
  std::vector<int> got_predicted(total_rows, -1);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto connect = HttpClient::Connect(server.port());
      if (!connect.ok()) {
        failures.fetch_add(1);
        return;
      }
      HttpClient client = std::move(connect).value();
      const RowId base = static_cast<RowId>(c * rows_per_client);
      const size_t chunk = rows_per_client / requests_per_client;
      for (size_t r = 0; r < requests_per_client; ++r) {
        const RowId begin = base + static_cast<RowId>(r * chunk);
        const RowId end = begin + static_cast<RowId>(chunk);
        auto response =
            client.Roundtrip("POST", "/v1/predict",
                             PredictBody(test, begin, end));
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
          return;
        }
        const ParsedPrediction parsed = ParsePrediction(response->body);
        if (parsed.scores.size() != chunk) {
          failures.fetch_add(1);
          return;
        }
        for (size_t i = 0; i < chunk; ++i) {
          got_scores[begin + i] = parsed.scores[i];
          got_predicted[begin + i] = parsed.predicted[i];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  std::vector<RowId> rows(total_rows);
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<double> expected(total_rows);
  served.model.ScoreBatch(test, rows.data(), rows.size(), expected.data());
  for (size_t i = 0; i < total_rows; ++i) {
    ASSERT_EQ(got_scores[i], expected[i])
        << "row " << i << " (shards=" << num_shards
        << " batching=" << batching << ")";
    ASSERT_EQ(got_predicted[i],
              expected[i] > served.model.threshold() ? 1 : 0)
        << "row " << i;
  }
  EXPECT_GE(server.Totals().rows_scored, total_rows);
  server.Shutdown();
}

TEST(ServeTest, BitIdentical32ClientsOneShard) {
  RunBitIdentityTest(/*num_shards=*/1, /*batching=*/true, /*clients=*/32);
}

TEST(ServeTest, BitIdentical32ClientsTwoShards) {
  RunBitIdentityTest(/*num_shards=*/2, /*batching=*/true, /*clients=*/32);
}

TEST(ServeTest, BitIdentical32ClientsEightShards) {
  RunBitIdentityTest(/*num_shards=*/8, /*batching=*/true, /*clients=*/32);
}

TEST(ServeTest, BitIdenticalWithBatchingDisabled) {
  RunBitIdentityTest(/*num_shards=*/4, /*batching=*/false, /*clients=*/32);
}

// Pipelined keep-alive: many requests written before any response is read
// must come back complete, valid, and in request order.
TEST(ServeTest, PipelinedRequestsAnswerInOrder) {
  const Served& served = GetServed();
  const Dataset& test = served.data.test;
  std::unique_ptr<ModelRegistry> registry(MakeRegistry());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 1;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kRequests = 8;
  constexpr size_t kRowsEach = 3;
  std::string burst;
  for (size_t r = 0; r < kRequests; ++r) {
    const RowId begin = static_cast<RowId>(r * kRowsEach);
    burst += PredictRequestFrame(test, begin,
                                 begin + static_cast<RowId>(kRowsEach));
  }
  HttpClient client = MustConnect(server.port());
  ASSERT_TRUE(client.SendRaw(burst).ok());

  std::vector<double> expected(kRequests * kRowsEach);
  std::vector<RowId> rows(kRequests * kRowsEach);
  std::iota(rows.begin(), rows.end(), RowId{0});
  served.model.ScoreBatch(test, rows.data(), rows.size(), expected.data());

  // Responses must arrive in request order: the i-th response carries the
  // i-th request's rows, which the distinct expected scores prove.
  for (size_t r = 0; r < kRequests; ++r) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200) << "response " << r;
    const ParsedPrediction parsed = ParsePrediction(response->body);
    ASSERT_EQ(parsed.scores.size(), kRowsEach);
    for (size_t i = 0; i < kRowsEach; ++i) {
      EXPECT_EQ(parsed.scores[i], expected[r * kRowsEach + i])
          << "response " << r << " row " << i;
    }
  }
  server.Shutdown();
}

TEST(ServeTest, MalformedRequestsAnswer4xx) {
  std::unique_ptr<ModelRegistry> registry(MakeRegistry());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 2;
  config.max_body_bytes = 4096;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());

  HttpClient client = MustConnect(server.port());

  // Unparseable JSON.
  auto response = client.Roundtrip("POST", "/v1/predict", "not json");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 400);

  // Unknown model.
  response = client.Roundtrip("POST", "/v1/predict",
                               "{\"model\":\"nope\",\"rows\":[]}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 404);
  EXPECT_NE(response->body.find("nope"), std::string::npos);

  // Row missing an attribute (error names the row and the attribute).
  response = client.Roundtrip("POST", "/v1/predict",
                               "{\"model\":\"m\",\"rows\":[{}]}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
  EXPECT_NE(response->body.find("row 0"), std::string::npos);

  // Wrong type in a numeric cell.
  response = client.Roundtrip(
      "POST", "/v1/predict",
      "{\"model\":\"m\",\"rows\":[{\"n0\":true,\"n1\":0,\"n2\":0,"
      "\"n3\":0,\"c0\":\"x\",\"c1\":\"x\",\"c2\":\"x\",\"c3\":\"x\"}]}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);

  // Wrong method / unknown path.
  response = client.Roundtrip("GET", "/v1/predict");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 405);
  response = client.Roundtrip("GET", "/bogus");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 404);

  // Body over the configured bound answers 413.
  response = client.Roundtrip("POST", "/v1/predict",
                               std::string(8192, 'x'));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 413);

  // 413 closes the connection; a malformed request line on a fresh one
  // answers 400.
  HttpClient raw = MustConnect(server.port());
  ASSERT_TRUE(raw.SendRaw("GARBAGE\r\n\r\n").ok());
  response = raw.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 400);

  EXPECT_GE(server.Totals().predict.errors_4xx, 4u);
  server.Shutdown();
}

// Satellite hardening of the JSON boundary: hostile documents that are
// syntactically "almost JSON" must come back as clean 400s with a located,
// specific error — never a crash, hang, or accepted non-finite number.
TEST(ServeTest, JsonHardeningAnswers400) {
  std::unique_ptr<ModelRegistry> registry(MakeRegistry());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 2;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());
  HttpClient client = MustConnect(server.port());

  // Nesting past the parser's depth bound: 400 naming the reason, not a
  // stack overflow.
  std::string deep = "{\"model\":\"m\",\"rows\":";
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  deep += '}';
  auto response = client.Roundtrip("POST", "/v1/predict", deep);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 400);
  EXPECT_NE(response->body.find("nesting too deep"), std::string::npos);

  // Bare NaN/Infinity tokens: JSON has no non-finite numbers, and the
  // shared ParseDouble (which ingest uses for CSV cells, where "nan" IS
  // valid) must not leak that permissiveness into this boundary.
  for (const char* bad :
       {"{\"x\":NaN}", "{\"x\":Infinity}", "{\"x\":-Infinity}",
        "{\"x\":nan}", "{\"x\":1e999}"}) {
    response = client.Roundtrip("POST", "/v1/predict", bad);
    ASSERT_TRUE(response.ok()) << bad;
    EXPECT_EQ(response->status, 400) << bad;
  }

  server.Shutdown();
}

TEST(ServeTest, UtilityEndpoints) {
  std::unique_ptr<ModelRegistry> registry(MakeRegistry());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 2;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());

  HttpClient client = MustConnect(server.port());

  auto response = client.Roundtrip("GET", "/healthz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "ok\n");

  response = client.Roundtrip("GET", "/v1/models");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"name\":\"m\""), std::string::npos);
  EXPECT_NE(response->body.find("\"version\":1"), std::string::npos);

  // The "model" field may be omitted when exactly one model is loaded.
  const Served& served = GetServed();
  std::string body = PredictBody(served.data.test, 0, 4);
  const size_t pos = body.find("\"model\":\"m\",");
  ASSERT_NE(pos, std::string::npos);
  body.erase(pos, std::string("\"model\":\"m\",").size());
  response = client.Roundtrip("POST", "/v1/predict", body);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);

  response = client.Roundtrip("GET", "/metrics");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("pnr_requests_total"), std::string::npos);
  EXPECT_NE(response->body.find("pnr_rows_scored_total 4"),
            std::string::npos);
  // The fleet exposition carries one series group per shard.
  EXPECT_NE(response->body.find(
                "pnr_serve_shard_requests_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(response->body.find(
                "pnr_serve_shard_requests_total{shard=\"1\"}"),
            std::string::npos);
  server.Shutdown();
}

// Backpressure is deterministic in the reactor: a request whose rows can
// never fit the admission bound answers 503 immediately, and the keep-alive
// connection stays usable for the next (admissible) request.
TEST(ServeTest, QueueOverflowAnswers503AndConnectionSurvives) {
  const Served& served = GetServed();
  std::unique_ptr<ModelRegistry> registry(MakeRegistry());

  ServerConfig config;
  config.port = 0;
  config.num_shards = 1;
  config.batcher.max_batch_rows = 1024;
  config.batcher.max_queue_rows = 4;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());

  HttpClient client = MustConnect(server.port());
  auto response = client.Roundtrip("POST", "/v1/predict",
                                    PredictBody(served.data.test, 0, 5));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 503);
  EXPECT_EQ(response->Header("Retry-After"), "1");
  EXPECT_GE(server.Totals().rejected_total, 1u);

  // Within the bound the same connection scores normally — the 503 did not
  // poison it.
  response = client.Roundtrip("POST", "/v1/predict",
                               PredictBody(served.data.test, 0, 4));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  const ParsedPrediction parsed = ParsePrediction(response->body);
  ASSERT_EQ(parsed.scores.size(), 4u);
  std::vector<RowId> rows = {0, 1, 2, 3};
  std::vector<double> expected(4);
  served.model.ScoreBatch(served.data.test, rows.data(), 4, expected.data());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(parsed.scores[i], expected[i]) << "row " << i;
  }
  server.Shutdown();
}

// Graceful drain completes pipelined requests already on the wire: both
// responses arrive (marked Connection: close), then the socket closes.
TEST(ServeTest, DrainCompletesInFlightPipelinedRequests) {
  const Served& served = GetServed();
  const Dataset& test = served.data.test;
  std::unique_ptr<ModelRegistry> registry(MakeRegistry());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 1;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());

  HttpClient client = MustConnect(server.port());
  std::string burst = PredictRequestFrame(test, 0, 4);
  burst += PredictRequestFrame(test, 4, 8);
  ASSERT_TRUE(client.SendRaw(burst).ok());

  // Shutdown blocks until the shard drained — the responses must already
  // sit in the socket buffer when it returns.
  server.Shutdown();
  EXPECT_FALSE(server.running());

  std::vector<RowId> rows(8);
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<double> expected(8);
  served.model.ScoreBatch(test, rows.data(), 8, expected.data());
  for (size_t r = 0; r < 2; ++r) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200) << "response " << r;
    const ParsedPrediction parsed = ParsePrediction(response->body);
    ASSERT_EQ(parsed.scores.size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(parsed.scores[i], expected[r * 4 + i])
          << "response " << r << " row " << i;
    }
  }
}

// Hot-swapping a model while clients hammer it must never serve a torn
// snapshot: every response is a 200 whose score matches one of the two
// installed versions exactly. (TSan guards the memory-order claims.)
TEST(ServeTest, HotSwapUnderLoadNeverServesTornSnapshot) {
  const Served& served = GetServed();
  const Dataset& test = served.data.test;

  // A second, deliberately different model trained on a different seed.
  GeneralModelParams params;
  params.target_fraction = 0.05;
  TrainTestPair other_data = MakeGeneralPair(params, 4000, 10, 23);
  const CategoryId target =
      other_data.train.schema().class_attr().FindCategory("C");
  auto other = PnruleLearner().Train(other_data.train, target);
  ASSERT_TRUE(other.ok()) << other.status().ToString();

  std::unique_ptr<ModelRegistry> registry(MakeRegistry());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 2;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());

  // Expected scores for row 0 under both versions. The schemas are
  // identical by construction (same generator), so either model scores the
  // request.
  std::vector<RowId> row0 = {0};
  double score_a = 0.0;
  double score_b = 0.0;
  served.model.ScoreBatch(test, row0.data(), 1, &score_a);
  other->ScoreBatch(test, row0.data(), 1, &score_b);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread hammer([&] {
    auto connect = HttpClient::Connect(server.port());
    if (!connect.ok()) {
      bad.fetch_add(1);
      return;
    }
    HttpClient client = std::move(connect).value();
    const std::string body = PredictBody(test, 0, 1);
    while (!stop.load()) {
      auto response = client.Roundtrip("POST", "/v1/predict", body);
      if (!response.ok() || response->status != 200) {
        bad.fetch_add(1);
        return;
      }
      const ParsedPrediction parsed = ParsePrediction(response->body);
      if (parsed.scores.size() != 1 ||
          (parsed.scores[0] != score_a && parsed.scores[0] != score_b)) {
        bad.fetch_add(1);
        return;
      }
    }
  });

  for (int swap = 0; swap < 50; ++swap) {
    if (swap % 2 == 0) {
      registry->Install("m", other_data.train.schema(), *other);
    } else {
      registry->Install("m", served.data.train.schema(), served.model);
    }
  }
  stop.store(true);
  hammer.join();
  EXPECT_EQ(bad.load(), 0);
  server.Shutdown();
}

TEST(ServeTest, ShutdownIsIdempotentAndRefusesNewConnections) {
  std::unique_ptr<ModelRegistry> registry(MakeRegistry());
  ServerConfig config;
  config.port = 0;
  PredictionServer server(config, registry.get());
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();
  server.Shutdown();
  server.Shutdown();  // second call is a no-op
  auto client = HttpClient::Connect(port);
  if (client.ok()) {
    // The kernel may still complete the TCP handshake against a closed
    // listener's backlog; a request must then fail or get an empty close.
    HttpClient c = std::move(client).value();
    auto response = c.Roundtrip("GET", "/healthz");
    EXPECT_FALSE(response.ok());
  }
}

}  // namespace
}  // namespace pnr
