#include "ripper/optimize.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "induction/mdl.h"
#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeNumericDataset;

// Positives: x0 > 7 (quarter of the space), plus mild label noise.
Dataset NoisyThreshold(size_t n, uint64_t seed, double noise = 0.0) {
  Rng rng(seed);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble(0, 10);
    const bool label = (x > 7.0) != rng.NextBool(noise);
    rows.push_back({{x, rng.NextDouble(0, 10)}, label});
  }
  return MakeNumericDataset(2, rows);
}

TEST(DeleteHarmfulRulesTest, RemovesCoverNothingRules) {
  const Dataset dataset = NoisyThreshold(500, 1);
  const RowSubset all = dataset.AllRows();
  const double possible = CountPossibleConditions(dataset);

  RuleSet rules;
  Rule good({Condition::Greater(0, 7.0)});
  rules.AddRule(good);
  // A rule that covers only negatives: pure DL harm.
  rules.AddRule(Rule({Condition::LessEqual(0, 1.0)}));
  DeleteHarmfulRules(dataset, all, kPos, possible, &rules);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_TRUE(rules.rule(0) == good);
}

TEST(DeleteHarmfulRulesTest, KeepsComplementaryRules) {
  // Positives live in two disjoint regions; both rules are needed.
  Rng rng(2);
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 600; ++i) {
    const double x = rng.NextDouble(0, 10);
    rows.push_back({{x, 0.0}, x < 1.0 || x > 9.0});
  }
  const Dataset dataset = MakeNumericDataset(2, rows);
  const RowSubset all = dataset.AllRows();
  const double possible = CountPossibleConditions(dataset);
  RuleSet rules;
  rules.AddRule(Rule({Condition::LessEqual(0, 1.0)}));
  rules.AddRule(Rule({Condition::Greater(0, 9.0)}));
  DeleteHarmfulRules(dataset, all, kPos, possible, &rules);
  EXPECT_EQ(rules.size(), 2u);
}

TEST(CoverPositivesTest, CoversMostPositives) {
  const Dataset dataset = NoisyThreshold(2000, 3);
  const RowSubset all = dataset.AllRows();
  RipperConfig config;
  Rng rng(config.seed);
  RuleSet rules;
  CoverPositives(dataset, all, all, kPos, config,
                 CountPossibleConditions(dataset), &rng, &rules);
  ASSERT_FALSE(rules.empty());
  size_t covered_positives = 0;
  size_t positives = 0;
  for (RowId row : all) {
    if (dataset.label(row) != kPos) continue;
    ++positives;
    if (rules.AnyMatch(dataset, row)) ++covered_positives;
  }
  EXPECT_GT(static_cast<double>(covered_positives) /
                static_cast<double>(positives),
            0.9);
}

TEST(CoverPositivesTest, RespectsMaxRules) {
  const Dataset dataset = NoisyThreshold(2000, 4, 0.1);
  const RowSubset all = dataset.AllRows();
  RipperConfig config;
  config.max_rules = 2;
  Rng rng(config.seed);
  RuleSet rules;
  CoverPositives(dataset, all, all, kPos, config,
                 CountPossibleConditions(dataset), &rng, &rules);
  EXPECT_LE(rules.size(), 2u);
}

TEST(OptimizeRuleSetTest, DoesNotHurtTrainingDescriptionLength) {
  const Dataset dataset = NoisyThreshold(2000, 5, 0.05);
  const RowSubset all = dataset.AllRows();
  RipperConfig config;
  const double possible = CountPossibleConditions(dataset);
  Rng rng(config.seed);
  RuleSet rules;
  CoverPositives(dataset, all, all, kPos, config, possible, &rng, &rules);
  const double dl_before =
      RuleSetDescriptionLength(dataset, all, kPos, rules, possible);
  OptimizeRuleSet(dataset, all, kPos, config, possible, &rng, &rules);
  const double dl_after =
      RuleSetDescriptionLength(dataset, all, kPos, rules, possible);
  EXPECT_LE(dl_after, dl_before + 1e-6);
}

TEST(OptimizeRuleSetTest, NoopOnEmptyRuleSet) {
  const Dataset dataset = NoisyThreshold(200, 6);
  const RowSubset all = dataset.AllRows();
  RipperConfig config;
  Rng rng(config.seed);
  RuleSet rules;
  // No positives reachable: positives exist, so the residual-coverage step
  // may add rules — that is the documented behaviour; just assert it does
  // not crash and leaves a consistent rule set.
  OptimizeRuleSet(dataset, all, kPos, config,
                  CountPossibleConditions(dataset), &rng, &rules);
  for (const Rule& rule : rules.rules()) {
    EXPECT_FALSE(rule.empty());
  }
}

}  // namespace
}  // namespace pnr
