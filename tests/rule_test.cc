#include "rules/rule.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pnr {
namespace {

using testutil::kPos;
using testutil::MakeMixedDataset;

Dataset FourRows() {
  return MakeMixedDataset({
      {1.0, 0, true},    // row 0: x=1, c=a, pos
      {2.0, 0, false},   // row 1: x=2, c=a, neg
      {1.5, 1, true},    // row 2: x=1.5, c=b, pos
      {0.5, 1, false},   // row 3: x=0.5, c=b, neg
  });
}

TEST(RuleTest, EmptyRuleMatchesEverything) {
  const Dataset dataset = FourRows();
  const Rule rule;
  EXPECT_TRUE(rule.empty());
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    EXPECT_TRUE(rule.Matches(dataset, r));
  }
}

TEST(RuleTest, ConjunctionSemantics) {
  const Dataset dataset = FourRows();
  Rule rule;
  rule.AddCondition(Condition::LessEqual(0, 1.5));  // rows 0, 2, 3
  rule.AddCondition(Condition::CatEqual(1, 1));     // rows 2, 3
  EXPECT_FALSE(rule.Matches(dataset, 0));
  EXPECT_FALSE(rule.Matches(dataset, 1));
  EXPECT_TRUE(rule.Matches(dataset, 2));
  EXPECT_TRUE(rule.Matches(dataset, 3));
}

TEST(RuleTest, EvaluateComputesWeightedStats) {
  Dataset dataset = FourRows();
  dataset.set_weight(2, 3.0);
  Rule rule;
  rule.AddCondition(Condition::CatEqual(1, 1));  // rows 2 (pos, w=3), 3 (neg)
  const RuleStats stats = rule.Evaluate(dataset, dataset.AllRows(), kPos);
  EXPECT_DOUBLE_EQ(stats.covered, 4.0);
  EXPECT_DOUBLE_EQ(stats.positive, 3.0);
  EXPECT_DOUBLE_EQ(stats.negative(), 1.0);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 0.75);
}

TEST(RuleTest, EmptyStatsAccuracyIsZero) {
  const RuleStats stats;
  EXPECT_DOUBLE_EQ(stats.accuracy(), 0.0);
}

TEST(RuleTest, CoveredAndUncoveredPartitionRows) {
  const Dataset dataset = FourRows();
  Rule rule;
  rule.AddCondition(Condition::Greater(0, 1.0));  // rows 1, 2
  const RowSubset all = dataset.AllRows();
  const RowSubset covered = rule.CoveredRows(dataset, all);
  const RowSubset uncovered = rule.UncoveredRows(dataset, all);
  EXPECT_EQ(covered, (RowSubset{1, 2}));
  EXPECT_EQ(uncovered, (RowSubset{0, 3}));
}

TEST(RuleTest, RemoveAndTruncate) {
  Rule rule({Condition::LessEqual(0, 5.0), Condition::CatEqual(1, 0),
             Condition::Greater(0, 1.0)});
  rule.RemoveCondition(1);
  ASSERT_EQ(rule.size(), 2u);
  EXPECT_EQ(rule.conditions()[1], Condition::Greater(0, 1.0));
  rule.TruncateTo(1);
  ASSERT_EQ(rule.size(), 1u);
  EXPECT_EQ(rule.conditions()[0], Condition::LessEqual(0, 5.0));
  rule.TruncateTo(0);
  EXPECT_TRUE(rule.empty());
}

TEST(RuleTest, ToString) {
  const Dataset dataset = FourRows();
  Rule rule;
  EXPECT_EQ(rule.ToString(dataset.schema()), "TRUE");
  rule.AddCondition(Condition::LessEqual(0, 1.5));
  rule.AddCondition(Condition::CatEqual(1, 1));
  EXPECT_EQ(rule.ToString(dataset.schema()), "x <= 1.5000 AND c = b");
}

TEST(RuleTest, StructuralEquality) {
  Rule a({Condition::LessEqual(0, 1.0)});
  Rule b({Condition::LessEqual(0, 1.0)});
  Rule c({Condition::LessEqual(0, 2.0)});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace pnr
