#include "pnrule/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "eval/metrics.h"
#include "synth/sweep.h"

namespace pnr {
namespace {

struct TrainedModel {
  TrainTestPair data;
  PnruleClassifier model;
};

TrainedModel TrainSmallModel() {
  TrainTestPair data = MakeNumericPair(NsynParams(3), 20000, 8000, 99);
  const CategoryId target =
      data.train.schema().class_attr().FindCategory("C");
  PnruleLearner learner;
  auto model = learner.Train(data.train, target);
  EXPECT_TRUE(model.ok());
  return TrainedModel{std::move(data), std::move(model).value()};
}

TEST(ModelIoTest, RoundTripPreservesPredictions) {
  TrainedModel trained = TrainSmallModel();
  const Schema& schema = trained.data.train.schema();
  const std::string text = SerializePnruleModel(trained.model, schema);
  auto reloaded = ParsePnruleModel(text, schema);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->p_rules().size(), trained.model.p_rules().size());
  ASSERT_EQ(reloaded->n_rules().size(), trained.model.n_rules().size());
  for (RowId row = 0; row < trained.data.test.num_rows(); ++row) {
    ASSERT_DOUBLE_EQ(reloaded->Score(trained.data.test, row),
                     trained.model.Score(trained.data.test, row))
        << "row " << row;
  }
}

TEST(ModelIoTest, RoundTripPreservesStructure) {
  TrainedModel trained = TrainSmallModel();
  const Schema& schema = trained.data.train.schema();
  auto reloaded =
      ParsePnruleModel(SerializePnruleModel(trained.model, schema), schema);
  ASSERT_TRUE(reloaded.ok());
  for (size_t i = 0; i < trained.model.p_rules().size(); ++i) {
    EXPECT_TRUE(reloaded->p_rules().rule(i) ==
                trained.model.p_rules().rule(i));
  }
  EXPECT_DOUBLE_EQ(reloaded->threshold(), trained.model.threshold());
  EXPECT_EQ(reloaded->use_score_matrix(), trained.model.use_score_matrix());
}

TEST(ModelIoTest, ThresholdSurvivesRoundTrip) {
  TrainedModel trained = TrainSmallModel();
  trained.model.set_threshold(0.25);
  const Schema& schema = trained.data.train.schema();
  auto reloaded =
      ParsePnruleModel(SerializePnruleModel(trained.model, schema), schema);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_DOUBLE_EQ(reloaded->threshold(), 0.25);
}

TEST(ModelIoTest, SaveAndLoadFile) {
  TrainedModel trained = TrainSmallModel();
  const Schema& schema = trained.data.train.schema();
  const std::string path = ::testing::TempDir() + "/pnr_model_test.txt";
  ASSERT_TRUE(SavePnruleModel(trained.model, schema, path).ok());
  auto reloaded = LoadPnruleModel(path, schema);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const Confusion a = EvaluateClassifier(
      trained.model, trained.data.test,
      schema.class_attr().FindCategory("C"));
  const Confusion b = EvaluateClassifier(
      *reloaded, trained.data.test, schema.class_attr().FindCategory("C"));
  EXPECT_DOUBLE_EQ(a.f_measure(), b.f_measure());
  std::remove(path.c_str());
}

TEST(ModelIoTest, ToleratesCrlfAndTrailingWhitespace) {
  // Models copied through Windows tooling arrive with CRLF endings and
  // stray trailing blanks; parsing must be byte-for-byte insensitive.
  TrainedModel trained = TrainSmallModel();
  const Schema& schema = trained.data.train.schema();
  const std::string text = SerializePnruleModel(trained.model, schema);
  std::string windows;
  for (const char c : text) {
    if (c == '\n') {
      windows += " \t\r\n";  // trailing whitespace + CRLF on every line
    } else {
      windows += c;
    }
  }
  auto reloaded = ParsePnruleModel(windows, schema);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  for (RowId row = 0; row < 500 && row < trained.data.test.num_rows();
       ++row) {
    ASSERT_DOUBLE_EQ(reloaded->Score(trained.data.test, row),
                     trained.model.Score(trained.data.test, row));
  }
}

TEST(ModelIoTest, RejectsUnknownFormatVersionByName) {
  TrainedModel trained = TrainSmallModel();
  const Schema& schema = trained.data.train.schema();
  std::string text = SerializePnruleModel(trained.model, schema);
  const size_t pos = text.find("v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "v7");
  auto parsed = ParsePnruleModel(text, schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("'v7'"), std::string::npos)
      << parsed.status().message();
}

TEST(ModelIoTest, RejectsMalformedInput) {
  TrainedModel trained = TrainSmallModel();
  const Schema& schema = trained.data.train.schema();
  EXPECT_FALSE(ParsePnruleModel("", schema).ok());
  EXPECT_FALSE(ParsePnruleModel("bogus header\n", schema).ok());
  // Truncated body.
  std::string text = SerializePnruleModel(trained.model, schema);
  text.resize(text.size() / 2);
  EXPECT_FALSE(ParsePnruleModel(text, schema).ok());
}

TEST(ModelIoTest, RejectsUnknownAttribute) {
  TrainedModel trained = TrainSmallModel();
  const Schema& schema = trained.data.train.schema();
  std::string text = SerializePnruleModel(trained.model, schema);
  // Rename an attribute reference to something the schema lacks.
  const size_t pos = text.find("cond ");
  ASSERT_NE(pos, std::string::npos);
  Schema other;  // empty feature set
  other.GetOrAddClass("C");
  other.GetOrAddClass("NC");
  EXPECT_FALSE(ParsePnruleModel(text, other).ok());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  Schema schema;
  auto loaded = LoadPnruleModel("/nonexistent/model.txt", schema);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace pnr
