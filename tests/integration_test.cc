// Cross-module integration tests verifying the paper's headline claims at
// test-suite scale (small datasets, loose thresholds — the bench binaries
// verify the full-scale shape).

#include <gtest/gtest.h>

#include "c45/rules.h"
#include "c45/tree_classifier.h"
#include "eval/metrics.h"
#include "harness/variants.h"
#include "pnrule/pnrule.h"
#include "ripper/ripper.h"
#include "synth/kdd_sim.h"
#include "synth/sweep.h"
#include "test_util.h"

namespace pnr {
namespace {

CategoryId TargetOf(const TrainTestPair& data,
                    const std::string& name = "C") {
  return data.train.schema().class_attr().FindCategory(name);
}

double TrainAndScore(const BinaryClassifier& model, const TrainTestPair& data,
                     CategoryId target) {
  return EvaluateClassifier(model, data.test, target).f_measure();
}

TEST(IntegrationTest, PnruleBeatsBaselinesOnHardNumericData) {
  // nsyn5-style: many non-target subclasses; the regime where the paper's
  // baselines splinter.
  const TrainTestPair data =
      MakeNumericPair(NsynParams(5), 60000, 30000, 1234);
  const CategoryId target = TargetOf(data);

  PnruleConfig pn_config;
  pn_config.min_coverage_fraction = 0.99;
  pn_config.n_recall_lower_limit = 0.95;
  auto pnrule = PnruleLearner(pn_config).Train(data.train, target);
  ASSERT_TRUE(pnrule.ok());
  const double f_pnrule = TrainAndScore(*pnrule, data, target);

  auto ripper = RipperLearner().Train(data.train, target);
  ASSERT_TRUE(ripper.ok());
  const double f_ripper = TrainAndScore(*ripper, data, target);

  auto c45 = C45RulesLearner().Train(data.train, target);
  ASSERT_TRUE(c45.ok());
  const double f_c45 = TrainAndScore(*c45, data, target);

  EXPECT_GT(f_pnrule, 0.7);
  EXPECT_GE(f_pnrule, f_ripper - 0.02)
      << "PNrule=" << f_pnrule << " RIPPER=" << f_ripper;
  EXPECT_GE(f_pnrule, f_c45 - 0.02)
      << "PNrule=" << f_pnrule << " C4.5rules=" << f_c45;
}

TEST(IntegrationTest, PnruleWinsOnCategoricalConjunctions) {
  const TrainTestPair data = MakeCategoricalPair(
      CoaParams("coad1"), 60000, 30000, 1235);
  const CategoryId target = TargetOf(data);
  auto pnrule = PnruleLearner().Train(data.train, target);
  ASSERT_TRUE(pnrule.ok());
  const double f_pnrule = TrainAndScore(*pnrule, data, target);
  EXPECT_GT(f_pnrule, 0.5);
}

TEST(IntegrationTest, RarityNarrowsTheGap) {
  // Table 5's dynamic: as the target class becomes prevalent, baseline F
  // improves substantially relative to its rare-class value.
  GeneralModelParams params;
  const TrainTestPair base = MakeGeneralPair(params, 60000, 30000, 1236);
  const CategoryId target = TargetOf(base);
  const TrainTestPair prevalent = SubsamplePair(base, target, 0.01, 7);

  auto rare_r = RipperLearner().Train(base.train, target);
  ASSERT_TRUE(rare_r.ok());
  const double f_rare =
      EvaluateClassifier(*rare_r, base.test, target).f_measure();

  auto prev_r = RipperLearner().Train(prevalent.train, target);
  ASSERT_TRUE(prev_r.ok());
  const double f_prev =
      EvaluateClassifier(*prev_r, prevalent.test, target).f_measure();
  EXPECT_GT(f_prev, f_rare);
}

TEST(IntegrationTest, NPhaseLiftsPrecisionOnImpureSignatures) {
  // nsyn3: target peaks inevitably capture uniform negatives; the N-phase
  // must remove them. Compare PNrule with and without the N-phase.
  const TrainTestPair data =
      MakeNumericPair(NsynParams(3), 60000, 30000, 1237);
  const CategoryId target = TargetOf(data);

  PnruleConfig full_config;
  auto full = PnruleLearner(full_config).Train(data.train, target);
  ASSERT_TRUE(full.ok());

  PnruleConfig p_only_config;
  p_only_config.max_n_rules = 0;
  auto p_only = PnruleLearner(p_only_config).Train(data.train, target);
  ASSERT_TRUE(p_only.ok());

  const Confusion full_eval = EvaluateClassifier(*full, data.test, target);
  const Confusion p_only_eval =
      EvaluateClassifier(*p_only, data.test, target);
  EXPECT_GT(full_eval.precision(), p_only_eval.precision() + 0.05)
      << "full: " << full_eval.ToString()
      << " p-only: " << p_only_eval.ToString();
}

TEST(IntegrationTest, KddRareClassesEndToEnd) {
  KddSimParams params;
  params.train_records = 60000;
  params.test_records = 30000;
  params.seed = 4242;
  auto data_or = GenerateKddSim(params);
  ASSERT_TRUE(data_or.ok());
  KddSimData kdd = std::move(data_or).value();
  const TrainTestPair data{std::move(kdd.train), std::move(kdd.test)};

  for (const std::string target_name : {"probe", "r2l"}) {
    auto result = RunVariant("P", data, target_name, 1);
    ASSERT_TRUE(result.ok()) << target_name;
    EXPECT_GT(result->metrics.f_measure, 0.1) << target_name;
  }
  // r2l recall is capped by the novel test-only subclasses.
  auto r2l = RunVariant("P", data, "r2l", 1);
  ASSERT_TRUE(r2l.ok());
  EXPECT_LT(r2l->metrics.recall, 0.7);
}

TEST(IntegrationTest, StratificationFlipsMinorityRegions) {
  // Deterministic version of the "-we" effect: in the region x > 5 the
  // target is a 30/70 minority, so an unweighted tree predicts negative
  // there (recall 0); after stratification the up-weighted positives own
  // the region (recall 1, precision 3/7).
  std::vector<std::pair<std::vector<double>, bool>> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({{static_cast<double>(i) / 25.0}, false});  // x < 4
  }
  for (int i = 0; i < 30; ++i) {
    rows.push_back({{6.0 + static_cast<double>(i) / 30.0}, true});
  }
  for (int i = 0; i < 70; ++i) {
    rows.push_back({{6.0 + static_cast<double>(i) / 70.0}, false});
  }
  Dataset train = testutil::MakeNumericDataset(1, rows);
  const TrainTestPair data{train, train};

  auto plain = RunVariant("Cte", data, "pos", 2);  // stratified tree
  ASSERT_TRUE(plain.ok());
  EXPECT_DOUBLE_EQ(plain->metrics.recall, 1.0);
  EXPECT_NEAR(plain->metrics.precision, 0.3, 0.05);

  C45TreeLearner unweighted;
  auto tree = unweighted.Train(train, testutil::kPos);
  ASSERT_TRUE(tree.ok());
  const Confusion c = EvaluateClassifier(*tree, train, testutil::kPos);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
}

}  // namespace
}  // namespace pnr
