// Metrics layer tests: histogram bucket/quantile math, cross-shard
// snapshot merging, and — the satellite gate — validity of the Prometheus
// text exposition the fleet renders: every line parses, every label set is
// well-formed, per-shard series exist for every shard, and the aggregate
// equals the sum of the shards.

#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "serve/server.h"
#include "synth/sweep.h"

namespace pnr {
namespace {

TEST(BucketHistogramTest, QuantilesBracketRecordedValues) {
  BucketHistogram histogram;
  for (uint64_t v = 0; v < 1000; ++v) histogram.Record(v);
  EXPECT_EQ(histogram.count(), 1000u);
  // Power-of-two buckets: quantiles are approximate but must bracket the
  // true value within one bucket (factor of two).
  const double p50 = histogram.Quantile(0.5);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  const double p999 = histogram.Quantile(0.999);
  EXPECT_GE(p999, 512.0);
  EXPECT_LE(p999, 2048.0);
  // Quantiles are monotone in q.
  EXPECT_LE(histogram.Quantile(0.5), histogram.Quantile(0.9));
  EXPECT_LE(histogram.Quantile(0.9), histogram.Quantile(0.99));
  EXPECT_LE(histogram.Quantile(0.99), histogram.Quantile(0.999));
}

TEST(BucketHistogramTest, EmptyHistogramQuantileIsZero) {
  BucketHistogram histogram;
  EXPECT_EQ(histogram.Quantile(0.99), 0.0);
}

TEST(BucketHistogramTest, SnapshotMergeIsAdditive) {
  BucketHistogram a;
  BucketHistogram b;
  for (uint64_t v = 0; v < 100; ++v) a.Record(v);
  for (uint64_t v = 100; v < 300; ++v) b.Record(v);
  BucketHistogram::Snapshot merged = a.Snap();
  merged.Merge(b.Snap());
  EXPECT_EQ(merged.count, 300u);
  EXPECT_EQ(merged.sum, a.sum() + b.sum());
  // The merged p999 reflects b's tail, which a alone never saw.
  EXPECT_GT(merged.Quantile(0.999), a.Snap().Quantile(0.999));
}

TEST(MetricsSnapshotTest, MergeSumsEveryCounter) {
  ServerMetrics a;
  ServerMetrics b;
  a.endpoint_predict().Record(200, 10);
  a.endpoint_predict().Record(400, 20);
  a.rows_scored.fetch_add(7);
  a.connections_total.fetch_add(2);
  b.endpoint_predict().Record(500, 30);
  b.endpoint_healthz().Record(200, 1);
  b.rows_scored.fetch_add(5);
  b.rejected_total.fetch_add(1);

  MetricsSnapshot total = a.Snap();
  total.Merge(b.Snap());
  EXPECT_EQ(total.predict.requests, 3u);
  EXPECT_EQ(total.predict.errors_4xx, 1u);
  EXPECT_EQ(total.predict.errors_5xx, 1u);
  EXPECT_EQ(total.predict.latency_us.count, 3u);
  EXPECT_EQ(total.predict.latency_us.sum, 60u);
  EXPECT_EQ(total.healthz.requests, 1u);
  EXPECT_EQ(total.rows_scored, 12u);
  EXPECT_EQ(total.connections_total, 2u);
  EXPECT_EQ(total.rejected_total, 1u);
}

TEST(MetricsSnapshotTest, ModelVersionMergesAsMaxAndSwapsAsSum) {
  ServerMetrics a;
  ServerMetrics b;
  a.model_version.store(3);
  a.model_swaps_total.store(2);
  b.model_version.store(5);
  b.model_swaps_total.store(4);
  MetricsSnapshot total = a.Snap();
  total.Merge(b.Snap());
  EXPECT_EQ(total.model_version, 5u);
  EXPECT_EQ(total.model_swaps_total, 6u);
  // Merging the other way agrees: max is symmetric.
  MetricsSnapshot reverse = b.Snap();
  reverse.Merge(a.Snap());
  EXPECT_EQ(reverse.model_version, 5u);
  EXPECT_EQ(reverse.model_swaps_total, 6u);
}

TEST(SnapshotCacheTest, RefreshCountsHotSwapsNotFirstLoads) {
  GeneralModelParams params;
  params.target_fraction = 0.05;
  TrainTestPair data = MakeGeneralPair(params, 1000, 50, 7);
  const CategoryId target = data.train.schema().class_attr().FindCategory("C");
  auto model = PnruleLearner().Train(data.train, target);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  ModelRegistry registry;
  SnapshotCache cache(&registry);
  EXPECT_EQ(cache.Refresh(), 0u);
  EXPECT_EQ(cache.max_version(), 0u);

  // First load of a name is not a swap.
  registry.Install("m", data.train.schema(), *model);
  EXPECT_EQ(cache.Refresh(), 0u);
  EXPECT_EQ(cache.max_version(), 1u);

  // One hot-swap observed as one.
  registry.Install("m", data.train.schema(), *model);
  EXPECT_EQ(cache.Refresh(), 1u);
  EXPECT_EQ(cache.max_version(), 2u);

  // Two installs between refreshes are both counted.
  registry.Install("m", data.train.schema(), *model);
  registry.Install("m", data.train.schema(), *model);
  EXPECT_EQ(cache.Refresh(), 2u);
  EXPECT_EQ(cache.max_version(), 4u);

  // A second name appearing is a load; the existing name's swap still
  // counts and max_version tracks the highest version across names.
  registry.Install("other", data.train.schema(), *model);
  registry.Install("m", data.train.schema(), *model);
  EXPECT_EQ(cache.Refresh(), 1u);
  EXPECT_EQ(cache.max_version(), 5u);

  // Removal is not a swap.
  registry.Remove("other");
  EXPECT_EQ(cache.Refresh(), 0u);
  EXPECT_EQ(cache.max_version(), 5u);

  // No mutation: refresh is a no-op.
  EXPECT_EQ(cache.Refresh(), 0u);
}

// Validates one Prometheus text-format body: every line is a comment or a
// `name[{labels}] value` sample with a parseable value and well-formed
// label pairs. Returns the sample names seen.
std::vector<std::string> ValidateExposition(const std::string& body) {
  static const std::regex kSample(
      R"(^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$)");
  static const std::regex kComment(R"(^# (HELP|TYPE) [a-zA-Z_:].*$)");
  std::vector<std::string> names;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, kComment)) << "bad comment: " << line;
      continue;
    }
    std::smatch match;
    EXPECT_TRUE(std::regex_match(line, match, kSample))
        << "bad sample line: " << line;
    if (!match.empty()) names.push_back(match[1].str());
  }
  EXPECT_FALSE(names.empty()) << "exposition had no samples";
  return names;
}

// Pulls `name{...} value` samples matching a name from the body.
uint64_t SumSamples(const std::string& body, const std::string& name) {
  uint64_t total = 0;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(name, 0) != 0) continue;
    const char next = line.size() > name.size() ? line[name.size()] : '\0';
    if (next != ' ' && next != '{') continue;
    const size_t space = line.rfind(' ');
    long long value = 0;
    if (ParseInt64(std::string_view(line).substr(space + 1), &value)) {
      total += static_cast<uint64_t>(value);
    }
  }
  return total;
}

TEST(MetricsExpositionTest, FleetRenderIsValidAndConsistent) {
  GeneralModelParams params;
  params.target_fraction = 0.05;
  TrainTestPair data = MakeGeneralPair(params, 4000, 100, 11);
  const CategoryId target = data.train.schema().class_attr().FindCategory("C");
  auto model = PnruleLearner().Train(data.train, target);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  ModelRegistry registry;
  registry.Install("m", data.train.schema(), std::move(model).value());
  ServerConfig config;
  config.port = 0;
  config.num_shards = 2;
  PredictionServer server(config, &registry);
  ASSERT_TRUE(server.Start().ok());

  auto connect = HttpClient::Connect(server.port());
  ASSERT_TRUE(connect.ok());
  HttpClient client = std::move(connect).value();
  for (int i = 0; i < 3; ++i) {
    auto health = client.Roundtrip("GET", "/healthz");
    ASSERT_TRUE(health.ok());
    ASSERT_EQ(health->status, 200);
  }
  auto response = client.Roundtrip("GET", "/metrics");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  const std::string& body = response->body;

  const std::vector<std::string> names = ValidateExposition(body);
  // Aggregate series under the established names, plus per-shard series for
  // every shard in the fleet.
  for (const char* required :
       {"pnr_requests_total", "pnr_request_latency_us",
        "pnr_rows_scored_total", "pnr_connections_total",
        "pnr_serve_shard_requests_total", "pnr_serve_shard_latency_us_count",
        "pnr_serve_shard_connections_total"}) {
    EXPECT_NE(body.find(required), std::string::npos) << required;
  }
  EXPECT_NE(body.find("pnr_serve_shard_requests_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(body.find("pnr_serve_shard_requests_total{shard=\"1\"}"),
            std::string::npos);
  // p999 appears explicitly for latency summaries.
  EXPECT_NE(body.find("quantile=\"0.999\""), std::string::npos);

  // The aggregate is rendered by merging the same per-shard snapshots the
  // shard series come from, so the two views must agree exactly.
  const uint64_t aggregate = SumSamples(body, "pnr_requests_total");
  const uint64_t sharded = SumSamples(body, "pnr_serve_shard_requests_total");
  EXPECT_EQ(aggregate, sharded);
  EXPECT_GE(aggregate, 3u);

  // Hot-swap observability: before any swap, the version gauge reflects the
  // loaded model (on whichever shards refreshed) and no swaps are counted.
  EXPECT_NE(body.find("pnr_serve_model_version"), std::string::npos);
  EXPECT_NE(body.find("pnr_serve_shard_model_version{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(body.find("pnr_serve_shard_model_swaps_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_EQ(SumSamples(body, "pnr_serve_model_swaps_total"), 0u);

  // Prime this connection's shard so its cache holds version 1 — a first
  // refresh after the swap would otherwise (correctly) see a load, not a
  // swap. Then install the same name again and re-render.
  auto prime = client.Roundtrip("GET", "/v1/models");
  ASSERT_TRUE(prime.ok());
  auto reload = PnruleLearner().Train(data.train, target);
  ASSERT_TRUE(reload.ok());
  registry.Install("m", data.train.schema(), std::move(reload).value());
  auto models = client.Roundtrip("GET", "/v1/models");
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models->status, 200);
  EXPECT_NE(models->body.find("\"version\":2"), std::string::npos)
      << models->body;
  auto after = client.Roundtrip("GET", "/metrics");
  ASSERT_TRUE(after.ok());
  ValidateExposition(after->body);
  // The refreshing shard saw one swap and now serves version 2; the fleet
  // aggregate is max(version) = 2 and sum(swaps) >= 1.
  EXPECT_EQ(SumSamples(after->body, "pnr_serve_model_version"), 2u);
  EXPECT_GE(SumSamples(after->body, "pnr_serve_model_swaps_total"), 1u);

  server.Shutdown();
}

}  // namespace
}  // namespace pnr
