// Edge-case contract of the supervised discretizer (assoc/discretize.h):
// constant columns, all-missing columns, single-row classes, and NaN cells
// must yield well-defined bins or no bins — never UB — and BinOf must agree
// exactly with the conditions AppendBinConditions emits, including at the
// cut values themselves.

#include "assoc/discretize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "data/dataset.h"
#include "rules/rule.h"

namespace pnr {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Schema NumericSchema(std::initializer_list<const char*> names) {
  Schema schema;
  for (const char* name : names) {
    schema.AddAttribute(Attribute::Numeric(name));
  }
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  return schema;
}

RowSubset AllRows(const Dataset& data) {
  RowSubset rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  return rows;
}

// Two interleaved label blocks over x: lows are "neg", highs are "pos" —
// the supervised search should find the boundary between them.
Dataset TwoClusterData() {
  Dataset data(NumericSchema({"x"}));
  for (int i = 0; i < 50; ++i) {
    const RowId r = data.AddRow();
    data.set_numeric(r, 0, static_cast<double>(i));
    data.set_label(r, i < 25 ? 0 : 1);
  }
  return data;
}

TEST(DiscretizeTest, OptionsValidate) {
  DiscretizeOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.max_bins = 1;
  EXPECT_FALSE(options.Validate().ok());
  options.max_bins = 8;
  options.candidate_bins = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(DiscretizeTest, SupervisedFindsTheClassBoundary) {
  const Dataset data = TwoClusterData();
  DiscretizeOptions options;
  options.max_bins = 2;  // exactly one cut
  auto fitted = Discretizer::Fit(data, AllRows(data), options);
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  const auto& cuts = fitted->cuts(0);
  ASSERT_EQ(cuts.size(), 1u);
  // The class boundary is between 24 and 25; the equi-depth candidate grid
  // quantizes it, so just require the cut to separate the bulk of the two
  // label blocks.
  EXPECT_GE(cuts[0], 20.0);
  EXPECT_LT(cuts[0], 25.0);
  EXPECT_EQ(fitted->num_bins(0), 2u);
}

TEST(DiscretizeTest, ConstantColumnYieldsNoBins) {
  Dataset data(NumericSchema({"c"}));
  for (int i = 0; i < 20; ++i) {
    const RowId r = data.AddRow();
    data.set_numeric(r, 0, 7.0);
    data.set_label(r, i % 2);
  }
  auto fitted = Discretizer::Fit(data, AllRows(data), DiscretizeOptions{});
  ASSERT_TRUE(fitted.ok());
  EXPECT_TRUE(fitted->cuts(0).empty());
  EXPECT_EQ(fitted->num_bins(0), 0u);
  EXPECT_EQ(fitted->BinOf(0, 7.0), -1);  // unusable attribute: no bin
}

TEST(DiscretizeTest, AllMissingColumnYieldsNoBins) {
  Dataset data(NumericSchema({"m", "x"}));
  for (int i = 0; i < 20; ++i) {
    const RowId r = data.AddRow();
    data.set_numeric(r, 0, kNaN);
    data.set_numeric(r, 1, static_cast<double>(i));
    data.set_label(r, i < 10 ? 0 : 1);
  }
  auto fitted = Discretizer::Fit(data, AllRows(data), DiscretizeOptions{});
  ASSERT_TRUE(fitted.ok());
  EXPECT_EQ(fitted->num_bins(0), 0u);      // all-NaN: nothing to cut
  EXPECT_GE(fitted->num_bins(1), 2u);      // the healthy column still bins
}

TEST(DiscretizeTest, NaNCellsAreSkippedNotPropagated) {
  Dataset data(NumericSchema({"x"}));
  for (int i = 0; i < 40; ++i) {
    const RowId r = data.AddRow();
    data.set_numeric(r, 0, i % 5 == 0 ? kNaN : static_cast<double>(i));
    data.set_label(r, i < 20 ? 0 : 1);
  }
  auto fitted = Discretizer::Fit(data, AllRows(data), DiscretizeOptions{});
  ASSERT_TRUE(fitted.ok());
  ASSERT_GE(fitted->num_bins(0), 2u);
  for (const double cut : fitted->cuts(0)) {
    EXPECT_FALSE(std::isnan(cut));
  }
  EXPECT_EQ(fitted->BinOf(0, kNaN), -1);  // missing cell maps to no bin
}

TEST(DiscretizeTest, SingleRowClassDoesNotBreakEntropy) {
  Dataset data(NumericSchema({"x"}));
  for (int i = 0; i < 30; ++i) {
    const RowId r = data.AddRow();
    data.set_numeric(r, 0, static_cast<double>(i));
    data.set_label(r, i == 29 ? 1 : 0);  // "pos" has exactly one row
  }
  auto fitted = Discretizer::Fit(data, AllRows(data), DiscretizeOptions{});
  ASSERT_TRUE(fitted.ok());
  const auto& cuts = fitted->cuts(0);
  for (size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_LT(cuts[i - 1], cuts[i]);  // strictly ascending
  }
}

TEST(DiscretizeTest, InfinitiesSortToTheExtremes) {
  Dataset data(NumericSchema({"x"}));
  const double inf = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 30; ++i) {
    const RowId r = data.AddRow();
    double v = static_cast<double>(i);
    if (i == 0) v = -inf;
    if (i == 29) v = inf;
    data.set_numeric(r, 0, v);
    data.set_label(r, i < 15 ? 0 : 1);
  }
  auto fitted = Discretizer::Fit(data, AllRows(data), DiscretizeOptions{});
  ASSERT_TRUE(fitted.ok());
  ASSERT_GE(fitted->num_bins(0), 2u);
  EXPECT_EQ(fitted->BinOf(0, -inf), 0);
  EXPECT_EQ(fitted->BinOf(0, inf),
            static_cast<int>(fitted->cuts(0).size()));
}

TEST(DiscretizeTest, TooFewRowsYieldNoBins) {
  Dataset data(NumericSchema({"x"}));
  const RowId r = data.AddRow();
  data.set_numeric(r, 0, 1.0);
  data.set_label(r, 0);
  auto fitted = Discretizer::Fit(data, AllRows(data), DiscretizeOptions{});
  ASSERT_TRUE(fitted.ok());
  EXPECT_EQ(fitted->num_bins(0), 0u);
}

// The boundary contract: for every fitted bin, the conditions emitted by
// AppendBinConditions must match exactly the rows BinOf assigns to it —
// including values that sit precisely on a cut.
TEST(DiscretizeTest, BinOfAgreesWithEmittedConditions) {
  const Dataset data = TwoClusterData();
  DiscretizeOptions options;
  options.max_bins = 4;
  auto fitted = Discretizer::Fit(data, AllRows(data), options);
  ASSERT_TRUE(fitted.ok());
  const auto& cuts = fitted->cuts(0);
  ASSERT_GE(cuts.size(), 1u);

  // Probe values: every cell, every cut, and just-above-cut values.
  std::vector<double> probes;
  for (RowId r = 0; r < data.num_rows(); ++r) {
    probes.push_back(data.numeric(r, 0));
  }
  for (const double cut : cuts) {
    probes.push_back(cut);
    probes.push_back(std::nextafter(cut, 1e300));
  }

  Dataset probe_data(data.schema());
  for (const double v : probes) {
    const RowId r = probe_data.AddRow();
    probe_data.set_numeric(r, 0, v);
  }
  for (int bin = 0; bin <= static_cast<int>(cuts.size()); ++bin) {
    Rule rule;
    fitted->AppendBinConditions(0, bin, &rule);
    for (size_t i = 0; i < probes.size(); ++i) {
      const bool in_bin = fitted->BinOf(0, probes[i]) == bin;
      EXPECT_EQ(rule.Matches(probe_data, static_cast<RowId>(i)), in_bin)
          << "value " << probes[i] << " bin " << bin;
    }
  }
}

// Determinism: two fits over the same rows produce identical cuts (the fit
// is a pure function of cells + labels).
TEST(DiscretizeTest, FitIsDeterministic) {
  const Dataset data = TwoClusterData();
  DiscretizeOptions options;
  auto a = Discretizer::Fit(data, AllRows(data), options);
  auto b = Discretizer::Fit(data, AllRows(data), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cuts(0), b->cuts(0));
}

}  // namespace
}  // namespace pnr
