// Shared helpers for building tiny hand-crafted datasets in tests.

#ifndef PNR_TESTS_TEST_UTIL_H_
#define PNR_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace pnr {
namespace testutil {

/// Builds a dataset with one numeric attribute "x" and one categorical
/// attribute "c" (values "a", "b", "c"), classes "neg" (0) / "pos" (1).
/// Each row is (x, c-index, is_positive).
struct MixedRow {
  double x;
  CategoryId c;
  bool positive;
};

inline Dataset MakeMixedDataset(const std::vector<MixedRow>& rows) {
  Schema schema;
  schema.AddAttribute(Attribute::Numeric("x"));
  schema.AddAttribute(Attribute::Categorical("c", {"a", "b", "c"}));
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  Dataset dataset(std::move(schema));
  for (const MixedRow& row : rows) {
    const RowId r = dataset.AddRow();
    dataset.set_numeric(r, 0, row.x);
    dataset.set_categorical(r, 1, row.c);
    dataset.set_label(r, row.positive ? 1 : 0);
  }
  return dataset;
}

/// Builds a numeric-only dataset with attributes "x0".."x{k-1}"; each row
/// is (values..., is_positive).
inline Dataset MakeNumericDataset(
    size_t num_attrs, const std::vector<std::pair<std::vector<double>, bool>>&
                          rows) {
  Schema schema;
  for (size_t a = 0; a < num_attrs; ++a) {
    schema.AddAttribute(Attribute::Numeric("x" + std::to_string(a)));
  }
  schema.GetOrAddClass("neg");
  schema.GetOrAddClass("pos");
  Dataset dataset(std::move(schema));
  for (const auto& [values, positive] : rows) {
    const RowId r = dataset.AddRow();
    for (size_t a = 0; a < num_attrs; ++a) {
      dataset.set_numeric(r, static_cast<AttrIndex>(a), values[a]);
    }
    dataset.set_label(r, positive ? 1 : 0);
  }
  return dataset;
}

/// The positive class id in datasets built by the helpers above.
inline constexpr CategoryId kPos = 1;

}  // namespace testutil
}  // namespace pnr

#endif  // PNR_TESTS_TEST_UTIL_H_
