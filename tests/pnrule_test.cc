#include "pnrule/pnrule.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "synth/sweep.h"

namespace pnr {
namespace {

TrainTestPair Nsyn3Pair(size_t train = 30000, size_t test = 15000,
                        uint64_t seed = 5) {
  return MakeNumericPair(NsynParams(3), train, test, seed);
}

CategoryId TargetOf(const TrainTestPair& data) {
  return data.train.schema().class_attr().FindCategory("C");
}

TEST(PnruleConfigTest, DefaultsValidate) {
  EXPECT_TRUE(PnruleConfig().Validate().ok());
}

TEST(PnruleConfigTest, RejectsOutOfRangeParameters) {
  PnruleConfig config;
  config.min_coverage_fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = PnruleConfig();
  config.n_recall_lower_limit = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config = PnruleConfig();
  config.min_support_fraction = 2.0;
  EXPECT_FALSE(config.Validate().ok());
  config = PnruleConfig();
  config.max_p_rules = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = PnruleConfig();
  config.mdl_window_bits = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = PnruleConfig();
  config.score_smoothing = -1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(PnruleConfigTest, ToStringMentionsKeyParameters) {
  PnruleConfig config;
  config.min_coverage_fraction = 0.95;
  config.legacy_mode = true;
  config.max_p_rule_length = 1;
  const std::string text = config.ToString();
  EXPECT_NE(text.find("rp=0.950"), std::string::npos);
  EXPECT_NE(text.find("legacy"), std::string::npos);
  EXPECT_NE(text.find("maxPlen=1"), std::string::npos);
}

TEST(PnruleLearnerTest, RejectsEmptyTrainingSet) {
  const TrainTestPair data = Nsyn3Pair(5000, 1000);
  PnruleLearner learner;
  auto model = learner.TrainOnRows(data.train, {}, TargetOf(data));
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInvalidArgument);
}

TEST(PnruleLearnerTest, RejectsMissingTargetClass) {
  const TrainTestPair data = Nsyn3Pair(5000, 1000);
  PnruleLearner learner;
  auto model = learner.Train(data.train, 99);
  EXPECT_FALSE(model.ok());
}

TEST(PnruleLearnerTest, RejectsInvalidConfig) {
  PnruleConfig config;
  config.min_coverage_fraction = 0.0;
  PnruleLearner learner(config);
  const TrainTestPair data = Nsyn3Pair(5000, 1000);
  auto model = learner.Train(data.train, TargetOf(data));
  EXPECT_FALSE(model.ok());
}

TEST(PnruleLearnerTest, LearnsRareClassWithHighF) {
  const TrainTestPair data = Nsyn3Pair();
  PnruleLearner learner;
  PnruleTrainInfo info;
  auto model = learner.TrainOnRows(data.train, data.train.AllRows(),
                                   TargetOf(data), &info);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT(info.num_p_rules, 0u);
  EXPECT_GE(info.p_coverage_fraction, 0.9);
  const Confusion test = EvaluateClassifier(*model, data.test, TargetOf(data));
  EXPECT_GT(test.f_measure(), 0.75);
}

TEST(PnruleLearnerTest, ScoresAreProbabilities) {
  const TrainTestPair data = Nsyn3Pair(10000, 3000);
  PnruleLearner learner;
  auto model = learner.Train(data.train, TargetOf(data));
  ASSERT_TRUE(model.ok());
  for (RowId row = 0; row < 1000; ++row) {
    const double score = model->Score(data.test, row);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
    EXPECT_EQ(model->Predict(data.test, row), score > model->threshold());
  }
}

TEST(PnruleLearnerTest, DeterministicAcrossRuns) {
  const TrainTestPair data = Nsyn3Pair(10000, 3000);
  PnruleLearner learner;
  auto a = learner.Train(data.train, TargetOf(data));
  auto b = learner.Train(data.train, TargetOf(data));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->p_rules().size(), b->p_rules().size());
  for (size_t i = 0; i < a->p_rules().size(); ++i) {
    EXPECT_TRUE(a->p_rules().rule(i) == b->p_rules().rule(i));
  }
  ASSERT_EQ(a->n_rules().size(), b->n_rules().size());
}

TEST(PnruleLearnerTest, ThresholdShiftsRecallPrecisionTradeoff) {
  const TrainTestPair data = Nsyn3Pair();
  PnruleLearner learner;
  auto model = learner.Train(data.train, TargetOf(data));
  ASSERT_TRUE(model.ok());
  PnruleClassifier strict = *model;
  strict.set_threshold(0.9);
  PnruleClassifier lax = *model;
  lax.set_threshold(0.1);
  const CategoryId target = TargetOf(data);
  const Confusion strict_eval = EvaluateClassifier(strict, data.test, target);
  const Confusion lax_eval = EvaluateClassifier(lax, data.test, target);
  EXPECT_GE(lax_eval.recall(), strict_eval.recall());
  EXPECT_GE(strict_eval.precision(), lax_eval.precision() - 1e-9);
}

TEST(PnruleLearnerTest, LegacyModeTrains) {
  PnruleConfig config;
  config.legacy_mode = true;
  PnruleLearner learner(config);
  const TrainTestPair data = Nsyn3Pair(20000, 8000);
  auto model = learner.Train(data.train, TargetOf(data));
  ASSERT_TRUE(model.ok());
  const Confusion test =
      EvaluateClassifier(*model, data.test, TargetOf(data));
  EXPECT_GT(test.f_measure(), 0.5);
}

TEST(PnruleLearnerTest, DescribeListsBothPhases) {
  const TrainTestPair data = Nsyn3Pair(10000, 3000);
  PnruleLearner learner;
  auto model = learner.Train(data.train, TargetOf(data));
  ASSERT_TRUE(model.ok());
  const std::string text = model->Describe(data.train.schema());
  EXPECT_NE(text.find("P-rules"), std::string::npos);
  EXPECT_NE(text.find("N-rules"), std::string::npos);
  EXPECT_NE(text.find("ScoreMatrix"), std::string::npos);
}

// Property sweep: PNrule trains successfully and produces a usable model
// across every metric choice.
class PnruleMetricSweep : public ::testing::TestWithParam<RuleMetricKind> {};

TEST_P(PnruleMetricSweep, TrainsAndPredicts) {
  PnruleConfig config;
  config.metric = GetParam();
  PnruleLearner learner(config);
  const TrainTestPair data = Nsyn3Pair(20000, 8000, 11);
  auto model = learner.Train(data.train, TargetOf(data));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const Confusion test =
      EvaluateClassifier(*model, data.test, TargetOf(data));
  // Any sensible metric should beat random guessing on nsyn3. Gain ratio is
  // the weakest on rare classes (its small-split bias survives even with
  // the floored denominator), so it only gets a sanity bar; the paper's
  // Z-number and the others must clear a real one.
  const double bar =
      GetParam() == RuleMetricKind::kGainRatio ? 0.05 : 0.3;
  EXPECT_GT(test.f_measure(), bar)
      << RuleMetricKindName(GetParam()) << ": " << test.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Metrics, PnruleMetricSweep,
    ::testing::Values(RuleMetricKind::kZNumber, RuleMetricKind::kInfoGain,
                      RuleMetricKind::kGainRatio, RuleMetricKind::kGini,
                      RuleMetricKind::kChiSquared));

}  // namespace
}  // namespace pnr
