// End-to-end CBA mining (MineCba): planted-rule recovery on synthetic data,
// database-coverage selection behavior, batch/per-row score agreement
// through the compiled rule path, and the degenerate default-only model.

#include "assoc/cba.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"

namespace pnr {
namespace {

RowSubset AllRows(const Dataset& data) {
  RowSubset rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  return rows;
}

// A planted two-condition rule inside noise: rows with (proto=udp AND
// flag=S0) are class "attack" (2% of rows); noise rows draw any other
// proto/flag combination, and the numeric port column is pure noise for
// everyone (it exercises the discretizer path without the label depending
// on bin boundaries).
Dataset PlantedRuleData() {
  Schema schema;
  schema.AddAttribute(Attribute::Categorical("proto", {"tcp", "udp"}));
  schema.AddAttribute(Attribute::Categorical("flag", {"SF", "S0"}));
  schema.AddAttribute(Attribute::Numeric("port"));
  schema.GetOrAddClass("normal");
  schema.GetOrAddClass("attack");
  Dataset data(schema);
  uint32_t state = 777;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int i = 0; i < 1000; ++i) {
    const RowId r = data.AddRow();
    const bool planted = i % 50 == 0;  // 20 rows = 2%
    if (planted) {
      data.set_categorical(r, 0, 1);  // udp
      data.set_categorical(r, 1, 1);  // S0
      data.set_label(r, 1);
    } else {
      // Never (udp, S0): the planted pair is unique to the rare class.
      switch (next() % 3) {
        case 0:
          data.set_categorical(r, 0, 0);  // tcp
          data.set_categorical(r, 1, 0);  // SF
          break;
        case 1:
          data.set_categorical(r, 0, 0);  // tcp
          data.set_categorical(r, 1, 1);  // S0
          break;
        default:
          data.set_categorical(r, 0, 1);  // udp
          data.set_categorical(r, 1, 0);  // SF
          break;
      }
      data.set_label(r, 0);
    }
    data.set_numeric(r, 2, static_cast<double>(next() % 4000));
  }
  return data;
}

TEST(CbaTest, RecoversThePlantedRule) {
  const Dataset data = PlantedRuleData();
  const CategoryId attack = data.schema().class_attr().FindCategory("attack");
  ASSERT_NE(attack, kInvalidCategory);
  AssocMineOptions options;
  options.min_support = 0.05;           // 2% pattern is below the global floor
  options.per_class_min_support = 0.5;  // ... but owns the rare class
  options.min_confidence = 0.8;
  options.max_len = 2;
  auto mined = MineCba(data, AllRows(data), attack, options);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  const AssocClassifier& model = mined->model;
  ASSERT_GT(model.rules().size(), 0u);

  // Perfect separation on the training sample: every planted row scores
  // above every noise row.
  const Confusion c = EvaluateClassifier(model, data, attack);
  EXPECT_DOUBLE_EQ(c.recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.precision(), 1.0);
  EXPECT_GT(mined->stats.itemsets_rescued, 0u);
}

TEST(CbaTest, BatchScoringMatchesPerRow) {
  const Dataset data = PlantedRuleData();
  const CategoryId attack = data.schema().class_attr().FindCategory("attack");
  AssocMineOptions options;
  options.per_class_min_support = 0.3;
  options.min_confidence = 0.6;
  auto mined = MineCba(data, AllRows(data), attack, options);
  ASSERT_TRUE(mined.ok());
  const AssocClassifier& model = mined->model;

  std::vector<RowId> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<double> batch(rows.size());
  BatchScoreOptions score_options;
  score_options.num_threads = 4;
  model.ScoreBatch(data, rows.data(), rows.size(), batch.data(),
                   score_options);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.Score(data, rows[i])) << "row " << i;
  }
}

TEST(CbaTest, PredictLabelFollowsFirstMatchThenDefault) {
  const Dataset data = PlantedRuleData();
  const CategoryId attack = data.schema().class_attr().FindCategory("attack");
  const CategoryId normal = data.schema().class_attr().FindCategory("normal");
  AssocMineOptions options;
  options.per_class_min_support = 0.5;
  options.min_confidence = 0.8;
  options.max_len = 2;
  auto mined = MineCba(data, AllRows(data), attack, options);
  ASSERT_TRUE(mined.ok());
  const AssocClassifier& model = mined->model;
  size_t attack_predictions = 0;
  for (RowId r = 0; r < data.num_rows(); ++r) {
    const CategoryId predicted = model.PredictLabel(data, r);
    EXPECT_TRUE(predicted == attack || predicted == normal);
    if (predicted == attack) ++attack_predictions;
  }
  EXPECT_EQ(attack_predictions, 20u);  // exactly the planted rows
}

// When no rule clears the floors the model degenerates to a pure default:
// zero rules, default class = majority, default score = target prior.
TEST(CbaTest, NoRulesYieldsDefaultOnlyModel) {
  const Dataset data = PlantedRuleData();
  const CategoryId attack = data.schema().class_attr().FindCategory("attack");
  AssocMineOptions options;
  options.min_support = 0.9999;         // nothing clears this
  options.per_class_min_support = 0.0;  // and no rescue
  auto mined = MineCba(data, AllRows(data), attack, options);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  const AssocClassifier& model = mined->model;
  EXPECT_EQ(model.rules().size(), 0u);
  const CategoryId normal = data.schema().class_attr().FindCategory("normal");
  EXPECT_EQ(model.default_class(), normal);
  EXPECT_NEAR(model.default_score(), 0.02, 1e-9);  // target prior
}

TEST(CbaTest, InvalidTargetIsAnError) {
  const Dataset data = PlantedRuleData();
  auto mined = MineCba(data, AllRows(data), static_cast<CategoryId>(99),
                       AssocMineOptions{});
  EXPECT_FALSE(mined.ok());
}

TEST(CbaTest, SortByPrecedenceIsTotalAndDeterministic) {
  std::vector<CandidateRule> rules(3);
  rules[0].items = {1};
  rules[0].confidence = 0.9;
  rules[0].class_support = 5;
  rules[1].items = {0};
  rules[1].confidence = 0.9;
  rules[1].class_support = 7;  // higher support wins at equal confidence
  rules[2].items = {2};
  rules[2].confidence = 0.95;  // highest confidence wins outright
  rules[2].class_support = 1;
  SortByPrecedence(&rules);
  EXPECT_EQ(rules[0].items, std::vector<int32_t>{2});
  EXPECT_EQ(rules[1].items, std::vector<int32_t>{0});
  EXPECT_EQ(rules[2].items, std::vector<int32_t>{1});
}

}  // namespace
}  // namespace pnr
