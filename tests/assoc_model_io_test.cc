// Assoc model serialization hardening: parse(serialize(m)) is a fixpoint,
// malformed/truncated inputs produce located errors naming the line,
// version skew is named explicitly, trailing content is rejected, and the
// serving registry sniffs + loads assoc models through the same path as
// PNrule ones.

#include "assoc/model_io.h"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "assoc/cba.h"
#include "common/file_io.h"
#include "data/dataset.h"
#include "data/schema_io.h"
#include "serve/registry.h"

namespace pnr {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.AddAttribute(Attribute::Categorical("proto", {"tcp", "udp"}));
  schema.AddAttribute(Attribute::Numeric("port"));
  schema.GetOrAddClass("normal");
  schema.GetOrAddClass("attack");
  return schema;
}

// A small hand-built model covering both condition families (attribute
// indices follow TestSchema's declaration order).
AssocClassifier TestModel(const Schema& /*schema*/) {
  RuleSet rules;
  std::vector<AssocClassifier::RuleInfo> info;
  {
    Rule rule;
    rule.AddCondition(Condition::CatEqual(0, 1));     // proto = udp
    rule.AddCondition(Condition::Greater(1, 1023.5));  // port > 1023.5
    AssocClassifier::RuleInfo ri;
    ri.cls = 1;
    ri.support = 20;
    ri.class_support = 19;
    ri.confidence = 0.95;
    ri.lift = 9.5;
    ri.target_score = 0.95;
    rules.AddRule(std::move(rule));
    info.push_back(ri);
  }
  {
    Rule rule;
    rule.AddCondition(Condition::LessEqual(1, 80.0));  // port <= 80
    AssocClassifier::RuleInfo ri;
    ri.cls = 0;
    ri.support = 500;
    ri.class_support = 499;
    ri.confidence = 0.998;
    ri.lift = 1.02;
    ri.target_score = 0.002;
    rules.AddRule(std::move(rule));
    info.push_back(ri);
  }
  AssocClassifier model(std::move(rules), std::move(info),
                        /*target=*/1, /*default_class=*/0,
                        /*default_score=*/0.1);
  model.set_threshold(0.6);
  return model;
}

// Replaces 1-based line `n` of `text` with `replacement` (empty string
// deletes the line).
std::string WithLine(const std::string& text, size_t n,
                     const std::string& replacement) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  size_t i = 0;
  while (std::getline(in, line)) {
    ++i;
    if (i == n) {
      if (!replacement.empty()) out << replacement << '\n';
    } else {
      out << line << '\n';
    }
  }
  return out.str();
}

TEST(AssocModelIoTest, RoundTripIsAFixpoint) {
  const Schema schema = TestSchema();
  const AssocClassifier model = TestModel(schema);
  const std::string text = SerializeAssocModel(model, schema);
  auto parsed = ParseAssocModel(text, schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeAssocModel(*parsed, schema), text);

  EXPECT_EQ(parsed->target(), model.target());
  EXPECT_EQ(parsed->default_class(), model.default_class());
  EXPECT_DOUBLE_EQ(parsed->default_score(), model.default_score());
  EXPECT_DOUBLE_EQ(parsed->threshold(), model.threshold());
  ASSERT_EQ(parsed->rules().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->rule_info()[0].confidence, 0.95);
  EXPECT_EQ(parsed->rule_info()[1].support, 500u);
}

TEST(AssocModelIoTest, ParsedModelScoresLikeTheOriginal) {
  const Schema schema = TestSchema();
  const AssocClassifier model = TestModel(schema);
  auto parsed = ParseAssocModel(SerializeAssocModel(model, schema), schema);
  ASSERT_TRUE(parsed.ok());
  Dataset data(schema);
  for (int i = 0; i < 10; ++i) {
    const RowId r = data.AddRow();
    data.set_categorical(r, 0, i % 2);
    data.set_numeric(r, 1, static_cast<double>(i * 300));
  }
  for (RowId r = 0; r < data.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(parsed->Score(data, r), model.Score(data, r));
  }
}

TEST(AssocModelIoTest, SniffRecognizesTheHeader) {
  const Schema schema = TestSchema();
  const std::string text = SerializeAssocModel(TestModel(schema), schema);
  EXPECT_TRUE(LooksLikeAssocModel(text));
  EXPECT_TRUE(LooksLikeAssocModel("\n  \n" + text));  // leading whitespace ok
  EXPECT_FALSE(LooksLikeAssocModel("pnr-model v3\n"));  // the PNrule header
  EXPECT_FALSE(LooksLikeAssocModel(""));
}

TEST(AssocModelIoTest, VersionSkewIsNamed) {
  const Schema schema = TestSchema();
  std::string text = SerializeAssocModel(TestModel(schema), schema);
  text = WithLine(text, 1, "pnr-assoc-model v2");
  auto parsed = ParseAssocModel(text, schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("version 'v2'"), std::string::npos);
}

TEST(AssocModelIoTest, UnknownClassIsALocatedError) {
  const Schema schema = TestSchema();
  std::string text = SerializeAssocModel(TestModel(schema), schema);
  text = WithLine(text, 2, "target martian");
  auto parsed = ParseAssocModel(text, schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("martian"), std::string::npos);
}

TEST(AssocModelIoTest, UnknownAttributeInConditionIsALocatedError) {
  const Schema schema = TestSchema();
  std::string text = SerializeAssocModel(TestModel(schema), schema);
  // Line 7 is the first condition of rule 1 ("cond cat proto udp").
  text = WithLine(text, 7, "cond cat nosuch udp");
  auto parsed = ParseAssocModel(text, schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 7"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("nosuch"), std::string::npos);
}

TEST(AssocModelIoTest, ClassSupportAboveSupportIsRejected) {
  const Schema schema = TestSchema();
  std::string text = SerializeAssocModel(TestModel(schema), schema);
  // Rule header at line 6: swap support/class_support so class > global.
  text = WithLine(text, 6, "rule 2 attack 19 20 0.95 9.5 0.95");
  auto parsed = ParseAssocModel(text, schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 6"), std::string::npos);
}

TEST(AssocModelIoTest, TruncationIsDistinguishedFromMalformation) {
  const Schema schema = TestSchema();
  const std::string text = SerializeAssocModel(TestModel(schema), schema);
  // Drop everything after the first rule header: the parser should say the
  // input *ended*, not that a line was malformed.
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  for (int i = 0; i < 6 && std::getline(in, line); ++i) out << line << '\n';
  auto parsed = ParseAssocModel(out.str(), schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unexpected end of input"),
            std::string::npos);
}

TEST(AssocModelIoTest, TrailingContentAfterEndIsRejected) {
  const Schema schema = TestSchema();
  std::string text = SerializeAssocModel(TestModel(schema), schema);
  text += "extra junk\n";
  auto parsed = ParseAssocModel(text, schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("trailing content"),
            std::string::npos);
}

TEST(AssocModelIoTest, EmptyInputIsATruncationError) {
  const Schema schema = TestSchema();
  auto parsed = ParseAssocModel("", schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unexpected end of input"),
            std::string::npos);
}

TEST(AssocModelIoTest, SaveLoadRoundTripsThroughDisk) {
  const Schema schema = TestSchema();
  const AssocClassifier model = TestModel(schema);
  const std::string path = ::testing::TempDir() + "/pnr_assoc_model_test.txt";
  ASSERT_TRUE(SaveAssocModel(model, schema, path).ok());
  auto loaded = LoadAssocModel(path, schema);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SerializeAssocModel(*loaded, schema),
            SerializeAssocModel(model, schema));
}

TEST(AssocModelIoTest, LoadOfMissingFileFails) {
  const Schema schema = TestSchema();
  auto loaded = LoadAssocModel("/nonexistent/assoc.model", schema);
  EXPECT_FALSE(loaded.ok());
}

// The serving registry accepts assoc models through the same --model path
// as PNrule ones: the format sniff routes the text, the entry reports
// kind "assoc", and scoring goes through the polymorphic classifier.
TEST(AssocModelIoTest, RegistrySniffsAndServesAssocModels) {
  const Schema schema = TestSchema();
  const AssocClassifier model = TestModel(schema);
  const std::string dir = ::testing::TempDir();
  const std::string model_path = dir + "/pnr_assoc_registry_model.txt";
  const std::string schema_path = dir + "/pnr_assoc_registry_schema.txt";
  ASSERT_TRUE(SaveAssocModel(model, schema, model_path).ok());
  ASSERT_TRUE(SaveSchema(schema, schema_path).ok());

  ModelRegistry registry;
  Status loaded = registry.Load("cars", model_path, schema_path);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  auto entry = registry.Get("cars");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, "assoc");
  EXPECT_EQ(entry->primary_rules, 2u);
  EXPECT_EQ(entry->secondary_rules, 0u);

  Dataset data(entry->schema);
  const RowId r = data.AddRow();
  data.set_categorical(r, 0, 1);      // udp
  data.set_numeric(r, 1, 4444.0);     // > 1023.5: the attack rule fires
  EXPECT_DOUBLE_EQ(entry->model->Score(data, r), 0.95);

  // A corrupt model file fails the Load with the name in the message and
  // leaves the previous version serving.
  ASSERT_TRUE(WriteStringToFile("pnr-assoc-model v1\ngarbage\n",
                                model_path).ok());
  Status reloaded = registry.Load("cars", model_path, schema_path);
  ASSERT_FALSE(reloaded.ok());
  EXPECT_NE(reloaded.message().find("cars"), std::string::npos);
  auto still = registry.Get("cars");
  ASSERT_NE(still, nullptr);
  EXPECT_EQ(still->primary_rules, 2u);
}

}  // namespace
}  // namespace pnr
