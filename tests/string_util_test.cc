#include "common/string_util.h"

#include <gtest/gtest.h>

#include <clocale>
#include <locale>

namespace pnr {
namespace {

TEST(StringUtilTest, SplitBasics) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceCollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("a b c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitWhitespace("  a \t b\r\n"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitWhitespace(""), (std::vector<std::string>{}));
  EXPECT_EQ(SplitWhitespace(" \t "), (std::vector<std::string>{}));
  EXPECT_EQ(SplitWhitespace("one"), (std::vector<std::string>{"one"}));
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace(" \t\r\n "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("a b"), "a b");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 4), "1.0000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(StringUtilTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.9707), "97.07");
  EXPECT_EQ(FormatPercent(1.0), "100.00");
  EXPECT_EQ(FormatPercent(0.0523, 1), "5.2");
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("  -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

// ParseDouble must be locale-independent: under a comma-decimal locale
// (e.g. de_DE) a locale-sensitive fallback would read "3.5" as 3 and
// accept "3,5" — model files and CSVs are always dot-decimal.
TEST(StringUtilTest, ParseDoubleIgnoresACommaDecimalLocale) {
  std::locale original;
  std::locale comma_locale;
  bool have_locale = false;
  for (const char* name : {"de_DE.UTF-8", "fr_FR.UTF-8", "de_DE", "fr_FR"}) {
    try {
      comma_locale = std::locale(name);
      have_locale = true;
      break;
    } catch (const std::runtime_error&) {
    }
  }
  if (!have_locale) {
    GTEST_SKIP() << "no comma-decimal locale installed in this environment";
  }
  std::locale::global(comma_locale);
  std::setlocale(LC_ALL, comma_locale.name().c_str());

  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-1.25e2", &v));
  EXPECT_DOUBLE_EQ(v, -125.0);
  EXPECT_FALSE(ParseDouble("3,5", &v));  // comma is never a decimal point

  std::locale::global(original);
  std::setlocale(LC_ALL, "C");
}

TEST(StringUtilTest, ParseInt64) {
  long long v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("x", &v));
}

}  // namespace
}  // namespace pnr
