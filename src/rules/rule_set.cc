#include "rules/rule_set.h"

#include <cassert>
#include <cstddef>

#include "common/string_util.h"

namespace pnr {

size_t RuleSet::AddRule(Rule rule) {
  rules_.push_back(std::move(rule));
  return rules_.size() - 1;
}

void RuleSet::RemoveRule(size_t index) {
  assert(index < rules_.size());
  rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(index));
}

int RuleSet::FirstMatch(const Dataset& dataset, RowId row) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].Matches(dataset, row)) return static_cast<int>(i);
  }
  return kNoRule;
}

RowSubset RuleSet::CoveredRows(const Dataset& dataset,
                               const RowSubset& rows) const {
  RowSubset out;
  for (RowId row : rows) {
    if (AnyMatch(dataset, row)) out.push_back(row);
  }
  return out;
}

std::string RuleSet::ToString(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    out += "[" + std::to_string(i) + "] " + rules_[i].ToString(schema);
    const RuleStats& stats = rules_[i].train_stats;
    if (stats.covered > 0.0) {
      out += "   (cov=" + FormatDouble(stats.covered, 1) +
             ", pos=" + FormatDouble(stats.positive, 1) +
             ", acc=" + FormatDouble(stats.accuracy(), 4) + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace pnr
