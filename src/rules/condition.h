// Atomic rule conditions over dataset attributes.
//
// Categorical attributes support single-value equality tests; numeric
// attributes support the three condition kinds the paper evaluates:
// one-sided A <= v, one-sided A > v, and the explicit range vl <= A <= vr
// found by PNrule's extra-scan procedure.

#ifndef PNR_RULES_CONDITION_H_
#define PNR_RULES_CONDITION_H_

#include <string>

#include "data/dataset.h"

namespace pnr {

/// Kind of test a condition performs.
enum class ConditionOp {
  kCatEqual,    ///< categorical(attr) == category
  kLessEqual,   ///< numeric(attr) <= hi
  kGreater,     ///< numeric(attr) >  lo
  kInRange,     ///< lo <= numeric(attr) <= hi
};

/// One attribute test; a Rule is a conjunction of these.
struct Condition {
  AttrIndex attr = -1;
  ConditionOp op = ConditionOp::kCatEqual;
  CategoryId category = kInvalidCategory;  ///< used by kCatEqual
  double lo = 0.0;                         ///< used by kGreater / kInRange
  double hi = 0.0;                         ///< used by kLessEqual / kInRange

  /// Builds a categorical equality test.
  static Condition CatEqual(AttrIndex attr, CategoryId category);
  /// Builds numeric(attr) <= v.
  static Condition LessEqual(AttrIndex attr, double v);
  /// Builds numeric(attr) > v.
  static Condition Greater(AttrIndex attr, double v);
  /// Builds lo <= numeric(attr) <= hi (requires lo <= hi).
  static Condition InRange(AttrIndex attr, double lo, double hi);

  /// True iff the record satisfies the test.
  bool Matches(const Dataset& dataset, RowId row) const;

  /// Human-readable form, e.g. "attr2 in [0.35, 0.42]" or "proto = tcp".
  std::string ToString(const Schema& schema) const;

  /// Structural equality (exact value comparison).
  bool operator==(const Condition& other) const;
};

}  // namespace pnr

#endif  // PNR_RULES_CONDITION_H_
