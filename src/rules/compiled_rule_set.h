// Compiled first-match evaluation of a RuleSet.
//
// RuleSet::FirstMatch interprets the decision list row-at-a-time: for every
// record it walks rules, conditions and scattered dataset cells. Compile()
// flattens the list into a "matcher program" — the distinct conditions of
// all rules deduplicated into one contiguous array grouped by attribute,
// each rule a span of indices into it — and FirstMatchBlock evaluates the
// program column-at-a-time over a block of rows:
//
//   * condition coverage BitMasks are materialized lazily, only when a
//     rule still has many rows in play: a categorical attribute group
//     fills the masks of ALL its equality tests with one scan of its
//     column through a category -> condition table, a numeric condition
//     fills its mask with one branch-free (auto-vectorizable) sweep;
//   * rule masks are AND-combinations of condition masks and
//     first-match-wins resolution is block-wise boolean algebra — but the
//     moment a rule's partial mask turns sparse, its remaining conjuncts
//     are tested row-by-row on just the surviving rows, so a selective
//     leading condition spares the whole tail of the conjunction;
//   * an optional candidate mask restricts resolution to a subset of rows,
//     and when that subset is sparse the matcher switches to a direct
//     per-row walk instead of paying for full-block scans.
//
// Shared conditions are evaluated at most once per block no matter how
// many rules use them — and not at all when every rule that wants them has
// already collapsed to the sparse path — which is what makes batch scoring
// several times faster than interpretation (see bench/batch_predict.cc).
//
// The compiled program is semantically identical to the interpreted walk:
// for every row, FirstMatchBlock yields exactly RuleSet::FirstMatch.

#ifndef PNR_RULES_COMPILED_RULE_SET_H_
#define PNR_RULES_COMPILED_RULE_SET_H_

#include <cstdint>
#include <vector>

#include "common/bitmask.h"
#include "rules/rule_set.h"

namespace pnr {

/// A RuleSet compiled for block-wise first-match evaluation. Immutable and
/// safe to share across threads; per-thread mutable state lives in Scratch.
class CompiledRuleSet {
 public:
  CompiledRuleSet() = default;

  /// Compiles `rules` (the rule list is captured by value; later mutation
  /// of the source RuleSet does not affect the program).
  static CompiledRuleSet Compile(const RuleSet& rules);

  size_t num_rules() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  /// Distinct conditions across all rules (diagnostics / tests).
  size_t num_unique_conditions() const { return conditions_.size(); }

  /// Reusable per-thread evaluation buffers. A default-constructed Scratch
  /// works for any block; masks are resized on demand and reused across
  /// blocks of the same size.
  struct Scratch {
    std::vector<BitMask> condition_masks;
    std::vector<uint8_t> evaluated;  ///< per-condition mask-filled flags
    std::vector<uint64_t> acc;       ///< mask-word staging buffer
    BitMask unresolved;
    BitMask rule_mask;
    /// Raw column pointer per condition (numeric or categorical according
    /// to the condition's op), hoisted once per FirstMatchBlock call so
    /// per-row tests skip the out-of-line Dataset accessors.
    std::vector<const void*> cond_cols;
    /// Set per block by FirstMatchBlock: rows[i] == rows[0] + i for all i,
    /// the full-table-scan layout that unlocks the contiguous SIMD sweep.
    bool rows_consecutive = false;
  };

  /// Writes the index of the first rule matching rows[i] (kNoRule when none
  /// matches) to out[i], for i in [0, count). Identical to calling
  /// RuleSet::FirstMatch per row on the source rule list.
  ///
  /// When `candidates` is non-null only rows whose bit is set are resolved
  /// (the rest keep kNoRule); a sparse candidate set short-circuits to the
  /// per-row walk. The result for candidate rows is independent of which
  /// path ran.
  void FirstMatchBlock(const Dataset& dataset, const RowId* rows, size_t count,
                       int32_t* out, Scratch* scratch,
                       const BitMask* candidates = nullptr) const;

  /// Row-at-a-time first match over the compiled program (the sparse path;
  /// exposed for tests). Identical to RuleSet::FirstMatch.
  int32_t FirstMatchRow(const Dataset& dataset, RowId row) const;

 private:
  /// One deduplicated condition (same fields as rules/condition.h, laid out
  /// flat for the columnar sweep).
  struct CompiledCondition {
    AttrIndex attr = -1;
    ConditionOp op = ConditionOp::kCatEqual;
    CategoryId category = kInvalidCategory;
    double lo = 0.0;
    double hi = 0.0;
  };

  /// A rule as a [begin, end) span over rule_conditions_.
  struct Span {
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  /// Conditions [begin, end) test the same attribute. Categorical groups
  /// are kCatEqual only and map a row's category to its condition through
  /// cat_lookup_; numeric groups just delimit the attribute's threshold
  /// tests (each evaluated with its own column sweep).
  struct AttrGroup {
    AttrIndex attr = -1;
    bool categorical = false;
    uint32_t begin = 0;
    uint32_t end = 0;
    uint32_t lookup_begin = 0;  ///< into cat_lookup_ (categorical only)
    uint32_t lookup_size = 0;
  };

  /// Fills the coverage masks of every kCatEqual condition in the
  /// categorical `group` with one scan of its column.
  void EvalCategoricalGroup(const AttrGroup& group, const Dataset& dataset,
                            const RowId* rows, size_t count,
                            Scratch* scratch) const;

  /// Fills the coverage mask of the numeric condition `ci` with one
  /// branch-free sweep of its column.
  void EvalNumericCondition(uint32_t ci, const Dataset& dataset,
                            const RowId* rows, size_t count,
                            Scratch* scratch) const;

  /// Materializes condition `ci`'s mask if it is not built yet for this
  /// block (a categorical condition brings its whole attribute group
  /// along, since the group scan costs the same as a single condition).
  void EnsureCondition(uint32_t ci, const Dataset& dataset, const RowId* rows,
                       size_t count, Scratch* scratch) const;

  /// Single-row evaluation of one compiled condition (sparse path).
  bool MatchesRow(const CompiledCondition& c, const Dataset& dataset,
                  RowId row) const;

  /// Fills scratch->cond_cols with each condition's raw column pointer.
  void BuildColumnTable(const Dataset& dataset, Scratch* scratch) const;

  /// FirstMatchRow against the hoisted column table instead of Dataset
  /// accessors (the per-row sparse paths).
  int32_t FirstMatchRowCols(const Scratch& scratch, RowId row) const;

  std::vector<CompiledCondition> conditions_;  ///< unique, grouped by attr
  std::vector<AttrGroup> groups_;              ///< attribute groups
  std::vector<uint32_t> condition_group_;      ///< condition -> its group
  std::vector<int32_t> cat_lookup_;  ///< category -> group-local slot or -1
  std::vector<uint32_t> rule_conditions_;      ///< concatenated rule programs
  std::vector<Span> rules_;                    ///< one span per rule
};

}  // namespace pnr

#endif  // PNR_RULES_COMPILED_RULE_SET_H_
