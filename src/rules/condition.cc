#include "rules/condition.h"

#include <cassert>

#include "common/string_util.h"

namespace pnr {

Condition Condition::CatEqual(AttrIndex attr, CategoryId category) {
  Condition c;
  c.attr = attr;
  c.op = ConditionOp::kCatEqual;
  c.category = category;
  return c;
}

Condition Condition::LessEqual(AttrIndex attr, double v) {
  Condition c;
  c.attr = attr;
  c.op = ConditionOp::kLessEqual;
  c.hi = v;
  return c;
}

Condition Condition::Greater(AttrIndex attr, double v) {
  Condition c;
  c.attr = attr;
  c.op = ConditionOp::kGreater;
  c.lo = v;
  return c;
}

Condition Condition::InRange(AttrIndex attr, double lo, double hi) {
  assert(lo <= hi);
  Condition c;
  c.attr = attr;
  c.op = ConditionOp::kInRange;
  c.lo = lo;
  c.hi = hi;
  return c;
}

bool Condition::Matches(const Dataset& dataset, RowId row) const {
  switch (op) {
    case ConditionOp::kCatEqual:
      return dataset.categorical(row, attr) == category;
    case ConditionOp::kLessEqual:
      return dataset.numeric(row, attr) <= hi;
    case ConditionOp::kGreater:
      return dataset.numeric(row, attr) > lo;
    case ConditionOp::kInRange: {
      const double v = dataset.numeric(row, attr);
      return v >= lo && v <= hi;
    }
  }
  return false;
}

std::string Condition::ToString(const Schema& schema) const {
  const Attribute& a = schema.attribute(attr);
  switch (op) {
    case ConditionOp::kCatEqual:
      return a.name() + " = " +
             (category == kInvalidCategory ? std::string("?")
                                           : a.CategoryName(category));
    case ConditionOp::kLessEqual:
      return a.name() + " <= " + FormatDouble(hi, 4);
    case ConditionOp::kGreater:
      return a.name() + " > " + FormatDouble(lo, 4);
    case ConditionOp::kInRange:
      return a.name() + " in [" + FormatDouble(lo, 4) + ", " +
             FormatDouble(hi, 4) + "]";
  }
  return "?";
}

bool Condition::operator==(const Condition& other) const {
  if (attr != other.attr || op != other.op) return false;
  switch (op) {
    case ConditionOp::kCatEqual:
      return category == other.category;
    case ConditionOp::kLessEqual:
      return hi == other.hi;
    case ConditionOp::kGreater:
      return lo == other.lo;
    case ConditionOp::kInRange:
      return lo == other.lo && hi == other.hi;
  }
  return false;
}

}  // namespace pnr
