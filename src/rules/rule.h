// Conjunctive rules and their coverage statistics.

#ifndef PNR_RULES_RULE_H_
#define PNR_RULES_RULE_H_

#include <string>
#include <vector>

#include "rules/condition.h"

namespace pnr {

/// Weighted coverage counts of a rule against a (sub)set of records.
struct RuleStats {
  double covered = 0.0;   ///< total weight of covered records
  double positive = 0.0;  ///< weight of covered records of the target class

  /// Weight of covered non-target records.
  double negative() const { return covered - positive; }
  /// Fraction of covered weight belonging to the target (0 if empty).
  double accuracy() const { return covered > 0.0 ? positive / covered : 0.0; }
};

/// A conjunction of conditions. An empty rule matches every record.
class Rule {
 public:
  Rule() = default;
  explicit Rule(std::vector<Condition> conditions)
      : conditions_(std::move(conditions)) {}

  const std::vector<Condition>& conditions() const { return conditions_; }
  bool empty() const { return conditions_.empty(); }
  size_t size() const { return conditions_.size(); }

  /// Appends a condition.
  void AddCondition(Condition condition) {
    conditions_.push_back(std::move(condition));
  }

  /// Removes the condition at `index`.
  void RemoveCondition(size_t index);

  /// Truncates to the first `count` conditions (generalization by prefix,
  /// as in RIPPER's pruning of a final condition sequence).
  void TruncateTo(size_t count);

  /// True iff every condition matches the record.
  bool Matches(const Dataset& dataset, RowId row) const;

  /// Weighted coverage stats of this rule over `rows` with respect to
  /// `target`.
  RuleStats Evaluate(const Dataset& dataset, const RowSubset& rows,
                     CategoryId target) const;

  /// Rows from `rows` matched by this rule.
  RowSubset CoveredRows(const Dataset& dataset, const RowSubset& rows) const;

  /// Rows from `rows` NOT matched by this rule.
  RowSubset UncoveredRows(const Dataset& dataset, const RowSubset& rows) const;

  /// "cond1 AND cond2 AND ..." ("TRUE" for the empty rule).
  std::string ToString(const Schema& schema) const;

  /// Structural equality.
  bool operator==(const Rule& other) const {
    return conditions_ == other.conditions_;
  }

  /// Training-time stats attached to the rule for reporting / scoring.
  RuleStats train_stats;

 private:
  std::vector<Condition> conditions_;
};

}  // namespace pnr

#endif  // PNR_RULES_RULE_H_
