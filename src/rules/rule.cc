#include "rules/rule.h"

#include <cassert>
#include <cstddef>

namespace pnr {

void Rule::RemoveCondition(size_t index) {
  assert(index < conditions_.size());
  conditions_.erase(conditions_.begin() + static_cast<std::ptrdiff_t>(index));
}

void Rule::TruncateTo(size_t count) {
  assert(count <= conditions_.size());
  conditions_.resize(count);
}

bool Rule::Matches(const Dataset& dataset, RowId row) const {
  for (const Condition& condition : conditions_) {
    if (!condition.Matches(dataset, row)) return false;
  }
  return true;
}

RuleStats Rule::Evaluate(const Dataset& dataset, const RowSubset& rows,
                         CategoryId target) const {
  RuleStats stats;
  for (RowId row : rows) {
    if (!Matches(dataset, row)) continue;
    const double w = dataset.weight(row);
    stats.covered += w;
    if (dataset.label(row) == target) stats.positive += w;
  }
  return stats;
}

RowSubset Rule::CoveredRows(const Dataset& dataset,
                            const RowSubset& rows) const {
  RowSubset out;
  for (RowId row : rows) {
    if (Matches(dataset, row)) out.push_back(row);
  }
  return out;
}

RowSubset Rule::UncoveredRows(const Dataset& dataset,
                              const RowSubset& rows) const {
  RowSubset out;
  for (RowId row : rows) {
    if (!Matches(dataset, row)) out.push_back(row);
  }
  return out;
}

std::string Rule::ToString(const Schema& schema) const {
  if (conditions_.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conditions_[i].ToString(schema);
  }
  return out;
}

}  // namespace pnr
