#include "rules/rule.h"

#include <cassert>
#include <cstddef>

namespace pnr {

void Rule::RemoveCondition(size_t index) {
  assert(index < conditions_.size());
  conditions_.erase(conditions_.begin() + static_cast<std::ptrdiff_t>(index));
}

void Rule::TruncateTo(size_t count) {
  assert(count <= conditions_.size());
  conditions_.resize(count);
}

bool Rule::Matches(const Dataset& dataset, RowId row) const {
  for (const Condition& condition : conditions_) {
    if (!condition.Matches(dataset, row)) return false;
  }
  return true;
}

namespace {

// Condition-major filter for demand-paged datasets: a row-major walk over a
// multi-condition rule alternates columns per row, and on a tight paging
// budget every alternation is a whole-column decode. Evaluating one pinned
// condition at a time over the surviving rows costs one fault per condition
// instead — identical results, since a conjunction is order-independent.
RowSubset CoveredConditionMajor(const std::vector<Condition>& conditions,
                                const Dataset& dataset, const RowSubset& rows) {
  RowSubset out = rows;
  for (const Condition& condition : conditions) {
    const Dataset::ColumnPin pin = dataset.PinColumn(condition.attr);
    RowSubset next;
    next.reserve(out.size());
    for (RowId row : out) {
      if (condition.Matches(dataset, row)) next.push_back(row);
    }
    out = std::move(next);
  }
  return out;
}

bool UseConditionMajor(const Dataset& dataset, size_t num_conditions) {
  return dataset.paged() && num_conditions > 1;
}

}  // namespace

RuleStats Rule::Evaluate(const Dataset& dataset, const RowSubset& rows,
                         CategoryId target) const {
  RuleStats stats;
  if (UseConditionMajor(dataset, conditions_.size())) {
    for (RowId row : CoveredConditionMajor(conditions_, dataset, rows)) {
      const double w = dataset.weight(row);
      stats.covered += w;
      if (dataset.label(row) == target) stats.positive += w;
    }
    return stats;
  }
  for (RowId row : rows) {
    if (!Matches(dataset, row)) continue;
    const double w = dataset.weight(row);
    stats.covered += w;
    if (dataset.label(row) == target) stats.positive += w;
  }
  return stats;
}

RowSubset Rule::CoveredRows(const Dataset& dataset,
                            const RowSubset& rows) const {
  if (UseConditionMajor(dataset, conditions_.size())) {
    return CoveredConditionMajor(conditions_, dataset, rows);
  }
  RowSubset out;
  for (RowId row : rows) {
    if (Matches(dataset, row)) out.push_back(row);
  }
  return out;
}

RowSubset Rule::UncoveredRows(const Dataset& dataset,
                              const RowSubset& rows) const {
  if (UseConditionMajor(dataset, conditions_.size())) {
    // `covered` is a subsequence of `rows`; subtract it in one merge walk.
    const RowSubset covered =
        CoveredConditionMajor(conditions_, dataset, rows);
    RowSubset out;
    out.reserve(rows.size() - covered.size());
    size_t c = 0;
    for (RowId row : rows) {
      if (c < covered.size() && covered[c] == row) {
        ++c;
      } else {
        out.push_back(row);
      }
    }
    return out;
  }
  RowSubset out;
  for (RowId row : rows) {
    if (!Matches(dataset, row)) out.push_back(row);
  }
  return out;
}

std::string Rule::ToString(const Schema& schema) const {
  if (conditions_.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conditions_[i].ToString(schema);
  }
  return out;
}

}  // namespace pnr
