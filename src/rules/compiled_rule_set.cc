#include "rules/compiled_rule_set.h"

#include <algorithm>
#include <tuple>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PNR_X86_SIMD 1
#endif

namespace pnr {
namespace {

// ---------------------------------------------------------------------------
// Vectorized threshold kernels (consecutive-row fast path).
//
// Each kernel sweeps a whole contiguous column span, packing the comparison
// results of every 64 values into one mask word of `out` (out[w] covers
// values [64w, 64w + 64)); the span-level shape keeps the broadcast
// threshold in registers across the sweep and costs one indirect call per
// condition instead of one per word. The baseline build targets generic
// x86-64, so wider instruction sets are selected at runtime per process
// instead of at compile time; all tiers use ordered comparisons, matching
// the scalar semantics for NaN (any comparison with NaN is false). kRange
// words are the AND of the two bound comparisons, identical to
// `v >= lo && v <= hi`.

enum class CmpKind { kLe, kGt, kRange };

uint64_t CmpBitsScalar(const double* v, size_t n, double lo, double hi,
                       CmpKind kind) {
  uint64_t bits = 0;
  switch (kind) {
    case CmpKind::kLe:
      for (size_t b = 0; b < n; ++b) {
        bits |= static_cast<uint64_t>(v[b] <= hi) << b;
      }
      break;
    case CmpKind::kGt:
      for (size_t b = 0; b < n; ++b) {
        bits |= static_cast<uint64_t>(v[b] > lo) << b;
      }
      break;
    case CmpKind::kRange:
      for (size_t b = 0; b < n; ++b) {
        bits |= static_cast<uint64_t>(v[b] >= lo && v[b] <= hi) << b;
      }
      break;
  }
  return bits;
}

[[maybe_unused]] void CmpSpanScalar(const double* v, size_t n, double lo,
                                    double hi, CmpKind kind, uint64_t* out) {
  for (size_t w = 0; w * 64 < n; ++w) {
    out[w] = CmpBitsScalar(v + w * 64, std::min<size_t>(64, n - w * 64), lo,
                           hi, kind);
  }
}

#ifdef PNR_X86_SIMD

void CmpSpanSse2(const double* v, size_t n, double lo, double hi, CmpKind kind,
                 uint64_t* out) {
  const size_t full = n / 64;
  switch (kind) {
    case CmpKind::kLe: {
      const __m128d t = _mm_set1_pd(hi);
      for (size_t w = 0; w < full; ++w) {
        const double* p = v + w * 64;
        uint64_t bits = 0;
        for (int k = 0; k < 32; ++k) {
          bits |= static_cast<uint64_t>(_mm_movemask_pd(
                      _mm_cmple_pd(_mm_loadu_pd(p + k * 2), t)))
                  << (k * 2);
        }
        out[w] = bits;
      }
      break;
    }
    case CmpKind::kGt: {
      const __m128d t = _mm_set1_pd(lo);
      for (size_t w = 0; w < full; ++w) {
        const double* p = v + w * 64;
        uint64_t bits = 0;
        for (int k = 0; k < 32; ++k) {
          bits |= static_cast<uint64_t>(_mm_movemask_pd(
                      _mm_cmpgt_pd(_mm_loadu_pd(p + k * 2), t)))
                  << (k * 2);
        }
        out[w] = bits;
      }
      break;
    }
    case CmpKind::kRange: {
      const __m128d l = _mm_set1_pd(lo);
      const __m128d h = _mm_set1_pd(hi);
      for (size_t w = 0; w < full; ++w) {
        const double* p = v + w * 64;
        uint64_t bits = 0;
        for (int k = 0; k < 32; ++k) {
          const __m128d x = _mm_loadu_pd(p + k * 2);
          bits |= static_cast<uint64_t>(_mm_movemask_pd(
                      _mm_and_pd(_mm_cmpge_pd(x, l), _mm_cmple_pd(x, h))))
                  << (k * 2);
        }
        out[w] = bits;
      }
      break;
    }
  }
  if (full * 64 < n) {
    out[full] = CmpBitsScalar(v + full * 64, n - full * 64, lo, hi, kind);
  }
}

__attribute__((target("avx"))) void CmpSpanAvx(const double* v, size_t n,
                                               double lo, double hi,
                                               CmpKind kind, uint64_t* out) {
  const size_t full = n / 64;
  switch (kind) {
    case CmpKind::kLe: {
      const __m256d t = _mm256_set1_pd(hi);
      for (size_t w = 0; w < full; ++w) {
        const double* p = v + w * 64;
        uint64_t bits = 0;
        for (int k = 0; k < 16; ++k) {
          bits |= static_cast<uint64_t>(_mm256_movemask_pd(_mm256_cmp_pd(
                      _mm256_loadu_pd(p + k * 4), t, _CMP_LE_OQ)))
                  << (k * 4);
        }
        out[w] = bits;
      }
      break;
    }
    case CmpKind::kGt: {
      const __m256d t = _mm256_set1_pd(lo);
      for (size_t w = 0; w < full; ++w) {
        const double* p = v + w * 64;
        uint64_t bits = 0;
        for (int k = 0; k < 16; ++k) {
          bits |= static_cast<uint64_t>(_mm256_movemask_pd(_mm256_cmp_pd(
                      _mm256_loadu_pd(p + k * 4), t, _CMP_GT_OQ)))
                  << (k * 4);
        }
        out[w] = bits;
      }
      break;
    }
    case CmpKind::kRange: {
      const __m256d l = _mm256_set1_pd(lo);
      const __m256d h = _mm256_set1_pd(hi);
      for (size_t w = 0; w < full; ++w) {
        const double* p = v + w * 64;
        uint64_t bits = 0;
        for (int k = 0; k < 16; ++k) {
          const __m256d x = _mm256_loadu_pd(p + k * 4);
          bits |= static_cast<uint64_t>(_mm256_movemask_pd(
                      _mm256_and_pd(_mm256_cmp_pd(x, l, _CMP_GE_OQ),
                                    _mm256_cmp_pd(x, h, _CMP_LE_OQ))))
                  << (k * 4);
        }
        out[w] = bits;
      }
      break;
    }
  }
  if (full * 64 < n) {
    out[full] = CmpBitsScalar(v + full * 64, n - full * 64, lo, hi, kind);
  }
}

__attribute__((target("avx512f"))) void CmpSpanAvx512(const double* v,
                                                      size_t n, double lo,
                                                      double hi, CmpKind kind,
                                                      uint64_t* out) {
  const size_t full = n / 64;
  switch (kind) {
    case CmpKind::kLe: {
      const __m512d t = _mm512_set1_pd(hi);
      for (size_t w = 0; w < full; ++w) {
        const double* p = v + w * 64;
        uint64_t bits = 0;
        for (int k = 0; k < 8; ++k) {
          bits |= static_cast<uint64_t>(_mm512_cmp_pd_mask(
                      _mm512_loadu_pd(p + k * 8), t, _CMP_LE_OQ))
                  << (k * 8);
        }
        out[w] = bits;
      }
      break;
    }
    case CmpKind::kGt: {
      const __m512d t = _mm512_set1_pd(lo);
      for (size_t w = 0; w < full; ++w) {
        const double* p = v + w * 64;
        uint64_t bits = 0;
        for (int k = 0; k < 8; ++k) {
          bits |= static_cast<uint64_t>(_mm512_cmp_pd_mask(
                      _mm512_loadu_pd(p + k * 8), t, _CMP_GT_OQ))
                  << (k * 8);
        }
        out[w] = bits;
      }
      break;
    }
    case CmpKind::kRange: {
      const __m512d l = _mm512_set1_pd(lo);
      const __m512d h = _mm512_set1_pd(hi);
      for (size_t w = 0; w < full; ++w) {
        const double* p = v + w * 64;
        uint64_t bits = 0;
        for (int k = 0; k < 8; ++k) {
          const __m512d x = _mm512_loadu_pd(p + k * 8);
          bits |= static_cast<uint64_t>(
                      _mm512_cmp_pd_mask(x, l, _CMP_GE_OQ) &
                      _mm512_cmp_pd_mask(x, h, _CMP_LE_OQ))
                  << (k * 8);
        }
        out[w] = bits;
      }
      break;
    }
  }
  if (full * 64 < n) {
    out[full] = CmpBitsScalar(v + full * 64, n - full * 64, lo, hi, kind);
  }
}

#endif  // PNR_X86_SIMD

using CmpSpanFn = void (*)(const double*, size_t, double, double, CmpKind,
                           uint64_t*);

CmpSpanFn PickCmpSpan() {
#ifdef PNR_X86_SIMD
  if (__builtin_cpu_supports("avx512f")) return &CmpSpanAvx512;
  if (__builtin_cpu_supports("avx")) return &CmpSpanAvx;
  return &CmpSpanSse2;
#else
  return &CmpSpanScalar;
#endif
}

/// Resolved once per process; every tier computes identical bits, so the
/// choice never affects results.
const CmpSpanFn kCmpSpan = PickCmpSpan();

/// Total order grouping conditions by attribute (then op, then operands);
/// also the dedup equality key. Exact double comparison is intentional:
/// conditions are only shared when structurally identical, the same
/// contract as Condition::operator==.
auto ConditionKey(const Condition& c) {
  return std::make_tuple(c.attr, static_cast<int>(c.op), c.category, c.lo,
                         c.hi);
}

/// Below this candidate density the per-row walk beats full-block scans:
/// the dense path costs one column pass per attribute group regardless of
/// how few rows need resolving.
constexpr size_t kSparseDivisor = 8;

/// A rule whose partial mask holds fewer than count / kSparseFinishFactor
/// rows finishes its remaining conjuncts row-by-row instead of
/// materializing more full-block condition masks. Deterministic: the
/// decision depends only on block contents, never on thread count.
constexpr size_t kSparseFinishFactor = 4;

}  // namespace

CompiledRuleSet CompiledRuleSet::Compile(const RuleSet& rules) {
  CompiledRuleSet compiled;

  // Collect and sort the distinct conditions so the evaluation sweep visits
  // columns in attribute order (each column's data stays hot while all its
  // conditions evaluate) with same-op runs contiguous inside each group.
  std::vector<Condition> unique;
  for (const Rule& rule : rules.rules()) {
    for (const Condition& c : rule.conditions()) unique.push_back(c);
  }
  std::sort(unique.begin(), unique.end(),
            [](const Condition& a, const Condition& b) {
              return ConditionKey(a) < ConditionKey(b);
            });
  unique.erase(std::unique(unique.begin(), unique.end(),
                           [](const Condition& a, const Condition& b) {
                             return ConditionKey(a) == ConditionKey(b);
                           }),
               unique.end());

  compiled.conditions_.reserve(unique.size());
  for (const Condition& c : unique) {
    compiled.conditions_.push_back(
        CompiledCondition{c.attr, c.op, c.category, c.lo, c.hi});
  }

  // Attribute groups; categorical groups also get a category ->
  // group-local-slot table so one column scan resolves every equality test
  // of the group with one lookup per row.
  compiled.condition_group_.resize(compiled.conditions_.size());
  for (uint32_t ci = 0; ci < compiled.conditions_.size();) {
    AttrGroup group;
    group.attr = compiled.conditions_[ci].attr;
    group.begin = ci;
    while (ci < compiled.conditions_.size() &&
           compiled.conditions_[ci].attr == group.attr) {
      ++ci;
    }
    group.end = ci;
    group.categorical =
        compiled.conditions_[group.begin].op == ConditionOp::kCatEqual;
    if (group.categorical) {
      CategoryId max_category = -1;
      for (uint32_t j = group.begin; j < group.end; ++j) {
        max_category =
            std::max(max_category, compiled.conditions_[j].category);
      }
      group.lookup_begin = static_cast<uint32_t>(compiled.cat_lookup_.size());
      group.lookup_size = static_cast<uint32_t>(max_category + 1);
      compiled.cat_lookup_.resize(compiled.cat_lookup_.size() +
                                      group.lookup_size,
                                  -1);
      for (uint32_t j = group.begin; j < group.end; ++j) {
        compiled.cat_lookup_[group.lookup_begin +
                             static_cast<uint32_t>(
                                 compiled.conditions_[j].category)] =
            static_cast<int32_t>(j - group.begin);
      }
    }
    for (uint32_t j = group.begin; j < group.end; ++j) {
      compiled.condition_group_[j] =
          static_cast<uint32_t>(compiled.groups_.size());
    }
    compiled.groups_.push_back(group);
  }

  // Each rule becomes a span of indices into the unique-condition array,
  // sorted ascending (conjunction order is irrelevant; ascending keeps mask
  // lookups attribute-grouped too).
  compiled.rules_.reserve(rules.size());
  for (const Rule& rule : rules.rules()) {
    Span span;
    span.begin = static_cast<uint32_t>(compiled.rule_conditions_.size());
    for (const Condition& c : rule.conditions()) {
      const auto it = std::lower_bound(
          unique.begin(), unique.end(), c,
          [](const Condition& a, const Condition& b) {
            return ConditionKey(a) < ConditionKey(b);
          });
      compiled.rule_conditions_.push_back(
          static_cast<uint32_t>(it - unique.begin()));
    }
    span.end = static_cast<uint32_t>(compiled.rule_conditions_.size());
    std::sort(compiled.rule_conditions_.begin() + span.begin,
              compiled.rule_conditions_.end());
    compiled.rules_.push_back(span);
  }
  return compiled;
}

void CompiledRuleSet::EvalCategoricalGroup(const AttrGroup& group,
                                           const Dataset& dataset,
                                           const RowId* rows, size_t count,
                                           Scratch* scratch) const {
  // Build all of the group's masks 64 rows at a time: one word accumulator
  // per condition, the column value loaded (and looked up) once per row.
  const size_t group_size = group.end - group.begin;
  std::vector<uint64_t>& acc = scratch->acc;
  if (acc.size() < group_size) acc.resize(group_size);
  const size_t num_words = (count + 63) / 64;
  const CategoryId* col = dataset.categorical_column(group.attr).data();
  const int32_t* lookup = cat_lookup_.data() + group.lookup_begin;
  size_t i = 0;
  for (size_t w = 0; w < num_words; ++w) {
    std::fill_n(acc.begin(), group_size, uint64_t{0});
    const size_t limit = std::min<size_t>(64, count - i);
    for (size_t b = 0; b < limit; ++b, ++i) {
      const CategoryId v = col[rows[i]];
      if (v >= 0 && static_cast<uint32_t>(v) < group.lookup_size) {
        const int32_t slot = lookup[v];
        if (slot >= 0) acc[static_cast<size_t>(slot)] |= uint64_t{1} << b;
      }
    }
    for (size_t g = 0; g < group_size; ++g) {
      scratch->condition_masks[group.begin + g].set_block(w, acc[g]);
    }
  }
}

void CompiledRuleSet::EvalNumericCondition(uint32_t ci, const Dataset& dataset,
                                           const RowId* rows, size_t count,
                                           Scratch* scratch) const {
  // One word-fill sweep per condition: sequential column reads against a
  // constant threshold. When the block's row ids are consecutive (the
  // full-table scan every batch consumer issues) the column slice is
  // contiguous and the runtime-dispatched SIMD kernel packs comparisons
  // 2–8 doubles at a time; otherwise a scalar gather loop runs.
  const CompiledCondition& c = conditions_[ci];
  const double* col = dataset.numeric_column(c.attr).data();
  BitMask& mask = scratch->condition_masks[ci];
  const size_t num_words = (count + 63) / 64;

  CmpKind kind = CmpKind::kLe;
  switch (c.op) {
    case ConditionOp::kLessEqual:
      kind = CmpKind::kLe;
      break;
    case ConditionOp::kGreater:
      kind = CmpKind::kGt;
      break;
    case ConditionOp::kInRange:
      kind = CmpKind::kRange;
      break;
    case ConditionOp::kCatEqual:
      return;  // unreachable: EnsureCondition routes these to the group scan
  }

  if (scratch->rows_consecutive) {
    std::vector<uint64_t>& acc = scratch->acc;
    if (acc.size() < num_words) acc.resize(num_words);
    kCmpSpan(col + rows[0], count, c.lo, c.hi, kind, acc.data());
    for (size_t w = 0; w < num_words; ++w) mask.set_block(w, acc[w]);
    return;
  }

  size_t i = 0;
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t bits = 0;
    const size_t limit = std::min<size_t>(64, count - i);
    switch (kind) {
      case CmpKind::kLe:
        for (size_t b = 0; b < limit; ++b, ++i) {
          bits |= static_cast<uint64_t>(col[rows[i]] <= c.hi) << b;
        }
        break;
      case CmpKind::kGt:
        for (size_t b = 0; b < limit; ++b, ++i) {
          bits |= static_cast<uint64_t>(col[rows[i]] > c.lo) << b;
        }
        break;
      case CmpKind::kRange:
        for (size_t b = 0; b < limit; ++b, ++i) {
          const double v = col[rows[i]];
          bits |= static_cast<uint64_t>(v >= c.lo && v <= c.hi) << b;
        }
        break;
    }
    mask.set_block(w, bits);
  }
}

void CompiledRuleSet::EnsureCondition(uint32_t ci, const Dataset& dataset,
                                      const RowId* rows, size_t count,
                                      Scratch* scratch) const {
  if (scratch->evaluated[ci]) return;
  const AttrGroup& group = groups_[condition_group_[ci]];
  if (group.categorical) {
    for (uint32_t j = group.begin; j < group.end; ++j) {
      BitMask& mask = scratch->condition_masks[j];
      if (mask.size() != count) mask = BitMask(count);
    }
    EvalCategoricalGroup(group, dataset, rows, count, scratch);
    for (uint32_t j = group.begin; j < group.end; ++j) {
      scratch->evaluated[j] = 1;
    }
  } else {
    BitMask& mask = scratch->condition_masks[ci];
    if (mask.size() != count) mask = BitMask(count);
    EvalNumericCondition(ci, dataset, rows, count, scratch);
    scratch->evaluated[ci] = 1;
  }
}

namespace {

/// Per-row test against a hoisted raw column pointer; semantically
/// identical to CompiledRuleSet::MatchesRow / Condition::Matches.
inline bool MatchesRowCol(const void* col, ConditionOp op, CategoryId category,
                          double lo, double hi, RowId row) {
  switch (op) {
    case ConditionOp::kCatEqual:
      return static_cast<const CategoryId*>(col)[row] == category;
    case ConditionOp::kLessEqual:
      return static_cast<const double*>(col)[row] <= hi;
    case ConditionOp::kGreater:
      return static_cast<const double*>(col)[row] > lo;
    case ConditionOp::kInRange: {
      const double v = static_cast<const double*>(col)[row];
      return v >= lo && v <= hi;
    }
  }
  return false;
}

}  // namespace

void CompiledRuleSet::BuildColumnTable(const Dataset& dataset,
                                       Scratch* scratch) const {
  scratch->cond_cols.resize(conditions_.size());
  for (size_t i = 0; i < conditions_.size(); ++i) {
    const CompiledCondition& c = conditions_[i];
    scratch->cond_cols[i] =
        c.op == ConditionOp::kCatEqual
            ? static_cast<const void*>(
                  dataset.categorical_column(c.attr).data())
            : static_cast<const void*>(dataset.numeric_column(c.attr).data());
  }
}

int32_t CompiledRuleSet::FirstMatchRowCols(const Scratch& scratch,
                                           RowId row) const {
  for (size_t r = 0; r < rules_.size(); ++r) {
    bool matched = true;
    for (uint32_t i = rules_[r].begin; i < rules_[r].end; ++i) {
      const uint32_t ci = rule_conditions_[i];
      const CompiledCondition& c = conditions_[ci];
      if (!MatchesRowCol(scratch.cond_cols[ci], c.op, c.category, c.lo, c.hi,
                         row)) {
        matched = false;
        break;
      }
    }
    if (matched) return static_cast<int32_t>(r);
  }
  return static_cast<int32_t>(kNoRule);
}

bool CompiledRuleSet::MatchesRow(const CompiledCondition& c,
                                 const Dataset& dataset, RowId row) const {
  switch (c.op) {
    case ConditionOp::kCatEqual:
      return dataset.categorical_column(c.attr)[row] == c.category;
    case ConditionOp::kLessEqual:
      return dataset.numeric_column(c.attr)[row] <= c.hi;
    case ConditionOp::kGreater:
      return dataset.numeric_column(c.attr)[row] > c.lo;
    case ConditionOp::kInRange: {
      const double v = dataset.numeric_column(c.attr)[row];
      return v >= c.lo && v <= c.hi;
    }
  }
  return false;
}

int32_t CompiledRuleSet::FirstMatchRow(const Dataset& dataset,
                                       RowId row) const {
  for (size_t r = 0; r < rules_.size(); ++r) {
    bool matched = true;
    for (uint32_t i = rules_[r].begin; i < rules_[r].end; ++i) {
      if (!MatchesRow(conditions_[rule_conditions_[i]], dataset, row)) {
        matched = false;
        break;
      }
    }
    if (matched) return static_cast<int32_t>(r);
  }
  return static_cast<int32_t>(kNoRule);
}

void CompiledRuleSet::FirstMatchBlock(const Dataset& dataset,
                                      const RowId* rows, size_t count,
                                      int32_t* out, Scratch* scratch,
                                      const BitMask* candidates) const {
  std::fill(out, out + count, static_cast<int32_t>(kNoRule));
  if (count == 0 || rules_.empty()) return;

  // A demand-paged dataset can evict column A while column B faults in, so
  // the hoisted raw pointers of BuildColumnTable may dangle mid-block —
  // and every fault decodes a whole column, so per-row walks that touch
  // many columns thrash the pager. Paged blocks therefore always run the
  // dense path with full mask materialization: each condition faults its
  // column at most once per block, takes the pointer right after its own
  // fault, and sweeps it with nothing else faulting in between. The sparse
  // shortcuts (identical results, different evaluation order) stay
  // pointer-hoisted and are skipped when paged.
  const bool paged = dataset.paged();

  if (candidates != nullptr && !paged) {
    const size_t active = candidates->Count();
    if (active == 0) return;
    if (active < count / kSparseDivisor) {
      // Sparse: the few candidate rows are cheaper to walk directly than
      // any full-block column scan.
      BuildColumnTable(dataset, scratch);
      candidates->ForEachSet(
          [&](size_t i) { out[i] = FirstMatchRowCols(*scratch, rows[i]); });
      return;
    }
  }
  if (candidates != nullptr && paged && !candidates->AnySet()) return;

  // First-match-wins resolution over lazily materialized condition masks.
  // `unresolved` tracks rows not yet claimed by an earlier rule; each rule
  // claims (unresolved AND all its condition masks). A condition's mask is
  // built only the first time a rule reaches it while still dense — once a
  // rule's partial mask is sparse, its remaining conjuncts are tested
  // row-by-row on just the surviving rows.
  scratch->condition_masks.resize(conditions_.size());
  scratch->evaluated.assign(conditions_.size(), 0);
  if (!paged) BuildColumnTable(dataset, scratch);
  scratch->rows_consecutive = true;
  for (size_t i = 1; i < count; ++i) {
    if (rows[i] != rows[0] + i) {
      scratch->rows_consecutive = false;
      break;
    }
  }

  BitMask& unresolved = scratch->unresolved;
  unresolved = candidates != nullptr ? *candidates : BitMask(count, true);
  BitMask& rule_mask = scratch->rule_mask;
  for (size_t r = 0; r < rules_.size(); ++r) {
    if (!unresolved.AnySet()) break;
    const Span& span = rules_[r];
    rule_mask = unresolved;
    bool alive = true;
    for (uint32_t i = span.begin; i < span.end; ++i) {
      const uint32_t ci = rule_conditions_[i];
      if (!scratch->evaluated[ci]) {
        if (!paged && rule_mask.Count() * kSparseFinishFactor < count) {
          // Sparse finish: test the remaining conjuncts directly on the
          // few rows still in play.
          rule_mask.ForEachSet([&](size_t slot) {
            const RowId row = rows[slot];
            for (uint32_t j = i; j < span.end; ++j) {
              const uint32_t cj = rule_conditions_[j];
              const CompiledCondition& c = conditions_[cj];
              if (!MatchesRowCol(scratch->cond_cols[cj], c.op, c.category,
                                 c.lo, c.hi, row)) {
                return;
              }
            }
            out[slot] = static_cast<int32_t>(r);
            unresolved.Set(slot, false);
          });
          alive = false;  // already claimed above
          break;
        }
        EnsureCondition(ci, dataset, rows, count, scratch);
      }
      rule_mask &= scratch->condition_masks[ci];
      if (!rule_mask.AnySet()) {
        alive = false;
        break;
      }
    }
    if (!alive) continue;
    rule_mask.ForEachSet(
        [&](size_t i) { out[i] = static_cast<int32_t>(r); });
    unresolved.AndNot(rule_mask);
  }
}

}  // namespace pnr
