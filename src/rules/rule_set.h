// Ordered rule lists (decision lists).

#ifndef PNR_RULES_RULE_SET_H_
#define PNR_RULES_RULE_SET_H_

#include <string>
#include <vector>

#include "rules/rule.h"

namespace pnr {

/// Index returned when no rule in a RuleSet matches.
inline constexpr int kNoRule = -1;

/// An ordered list of rules, applied first-match-wins (the order of
/// discovery is the order of significance in all learners here).
class RuleSet {
 public:
  RuleSet() = default;
  explicit RuleSet(std::vector<Rule> rules) : rules_(std::move(rules)) {}

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }
  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  const Rule& rule(size_t index) const { return rules_[index]; }
  Rule& mutable_rule(size_t index) { return rules_[index]; }

  /// Appends a rule; returns its index.
  size_t AddRule(Rule rule);

  /// Removes the rule at `index`.
  void RemoveRule(size_t index);

  /// Index of the first rule matching the record, or kNoRule.
  int FirstMatch(const Dataset& dataset, RowId row) const;

  /// True iff any rule matches the record.
  bool AnyMatch(const Dataset& dataset, RowId row) const {
    return FirstMatch(dataset, row) != kNoRule;
  }

  /// Rows from `rows` matched by at least one rule.
  RowSubset CoveredRows(const Dataset& dataset, const RowSubset& rows) const;

  /// Multi-line listing with per-rule training stats.
  std::string ToString(const Schema& schema) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace pnr

#endif  // PNR_RULES_RULE_SET_H_
