#include "testing/fault.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace pnr {
namespace fault {
namespace {

// SplitMix64: tiny, seedable, and good enough for schedule draws.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double NextUnit(uint64_t* state) {
  return static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
}

struct InjectorState {
  FaultPlan plan;
  uint64_t rng = 1;
  uint64_t hard_failures = 0;
  FaultStats stats;
};

std::mutex g_mutex;
InjectorState* g_state = nullptr;  // guarded by g_mutex

}  // namespace

FaultDecision Decide(FaultOp op, int* error_number) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_state == nullptr) return FaultDecision::kPass;
  InjectorState& s = *g_state;
  const int i = static_cast<int>(op);
  if ((s.plan.ops & OpBit(op)) == 0) return FaultDecision::kPass;
  const uint64_t call = ++s.stats.calls[i];

  const bool hard_budget_left =
      s.plan.max_hard_failures < 0 ||
      s.hard_failures < static_cast<uint64_t>(s.plan.max_hard_failures);
  if (s.plan.fail_nth[i] != 0 && call == s.plan.fail_nth[i] &&
      hard_budget_left) {
    ++s.hard_failures;
    ++s.stats.failures[i];
    *error_number = s.plan.error_number;
    return FaultDecision::kFail;
  }
  if (s.plan.eintr_prob > 0.0 && NextUnit(&s.rng) < s.plan.eintr_prob) {
    ++s.stats.eintrs[i];
    *error_number = EINTR;
    return FaultDecision::kEintr;
  }
  if (s.plan.short_prob > 0.0 &&
      (op == FaultOp::kRead || op == FaultOp::kRecv ||
       op == FaultOp::kSend) &&
      NextUnit(&s.rng) < s.plan.short_prob) {
    ++s.stats.shorts[i];
    return FaultDecision::kShort;
  }
  if (s.plan.fail_prob > 0.0 && hard_budget_left &&
      NextUnit(&s.rng) < s.plan.fail_prob) {
    ++s.hard_failures;
    ++s.stats.failures[i];
    *error_number = s.plan.error_number;
    return FaultDecision::kFail;
  }
  return FaultDecision::kPass;
}

ScopedFaultPlan::ScopedFaultPlan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_state != nullptr) {
    std::fprintf(stderr, "ScopedFaultPlan: a plan is already installed\n");
    std::abort();
  }
  auto* state = new InjectorState;
  state->plan = plan;
  state->rng = plan.seed ? plan.seed : 1;
  g_state = state;
}

ScopedFaultPlan::~ScopedFaultPlan() {
  std::lock_guard<std::mutex> lock(g_mutex);
  delete g_state;
  g_state = nullptr;
}

FaultStats ScopedFaultPlan::stats() const {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_state != nullptr ? g_state->stats : FaultStats{};
}

}  // namespace fault
}  // namespace pnr
