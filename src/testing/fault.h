// Deterministic fault injection for the I/O boundary.
//
// Every syscall the untrusted-input subsystems make — socket reads/writes,
// accept, mmap, bulk file reads, and the large allocations that back them —
// goes through the thin wrappers in common/io_hooks.h. In a build with
// PNR_FAULT_INJECT defined (the default; see the CMake option) those
// wrappers first consult the FaultPlan installed here, which can fail the
// Nth call outright, deliver EINTR, or truncate transfers to short
// reads/writes on a seeded pseudo-random schedule. Without an installed
// plan the wrappers pass straight through, and with PNR_FAULT_INJECT
// compiled out they inline to the raw syscalls.
//
// The plan is process-global (installed/removed with RAII via
// ScopedFaultPlan) and its decisions are drawn from one seeded SplitMix64
// stream under a mutex: a given seed replays the same decision sequence for
// the same call order. Concurrent callers interleave nondeterministically,
// so multi-threaded tests assert invariants (no crash, clean error Status,
// full drain), not exact outcomes.
//
// Schedule format (the knobs of FaultPlan):
//   ops          bitmask of FaultOp values the plan applies to
//   fail_nth[op] hard-fail the Nth matching call (1-based; 0 = never)
//   eintr_prob   chance a call returns EINTR without running
//   short_prob   chance a read/recv/send transfers only 1 byte
//   fail_prob    chance a call hard-fails with `error_number`
//   max_hard_failures  cap on hard failures (-1 = unlimited)

#ifndef PNR_TESTING_FAULT_H_
#define PNR_TESTING_FAULT_H_

#include <cstddef>
#include <cstdint>

namespace pnr {
namespace fault {

/// The hook points fault plans can target.
enum class FaultOp : int {
  kRead = 0,   ///< file reads (file_io, mapped-file streaming fallback)
  kWrite,      ///< file writes (file_io)
  kRecv,       ///< socket receives (common/net RecvSome)
  kSend,       ///< socket sends (common/net SendAll)
  kAccept,     ///< accept(2) (common/net AcceptConnection)
  kMmap,       ///< mmap(2) (data/mapped_file)
  kAlloc,      ///< large-buffer admission checks (file_io)
};
inline constexpr int kNumFaultOps = 7;

/// Bit for `FaultPlan::ops`.
constexpr uint32_t OpBit(FaultOp op) { return 1u << static_cast<int>(op); }
inline constexpr uint32_t kAllOps = (1u << kNumFaultOps) - 1;

/// A seeded fault schedule. See the header comment for semantics.
struct FaultPlan {
  uint64_t seed = 1;
  uint32_t ops = kAllOps;
  double eintr_prob = 0.0;
  double short_prob = 0.0;
  double fail_prob = 0.0;
  int error_number = 5;  // EIO; the errno injected hard failures carry
  int max_hard_failures = -1;
  uint64_t fail_nth[kNumFaultOps] = {0, 0, 0, 0, 0, 0, 0};
};

/// What the injector decided for one call.
enum class FaultDecision {
  kPass,   ///< perform the real operation
  kEintr,  ///< fail with EINTR without performing it
  kShort,  ///< perform it, but transfer at most 1 byte
  kFail,   ///< fail with the plan's error_number
};

/// Per-op counters of what the injector actually did (for test assertions
/// that the schedule really fired).
struct FaultStats {
  uint64_t calls[kNumFaultOps] = {};
  uint64_t eintrs[kNumFaultOps] = {};
  uint64_t shorts[kNumFaultOps] = {};
  uint64_t failures[kNumFaultOps] = {};

  uint64_t total_injected() const {
    uint64_t n = 0;
    for (int i = 0; i < kNumFaultOps; ++i) {
      n += eintrs[i] + shorts[i] + failures[i];
    }
    return n;
  }
};

/// Consults the installed plan for one call to `op`. Returns kPass when no
/// plan is installed. On kEintr/kFail, `*error_number` receives the errno
/// to report. Thread-safe.
FaultDecision Decide(FaultOp op, int* error_number);

/// Installs `plan` for the lifetime of the object (process-global; nesting
/// is not supported — constructing a second ScopedFaultPlan while one is
/// live aborts). Stats accumulate until destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  /// Snapshot of the counters so far.
  FaultStats stats() const;
};

}  // namespace fault
}  // namespace pnr

#endif  // PNR_TESTING_FAULT_H_
