// Ranking-quality summaries built on top of ThresholdSweep: ROC and
// precision/recall curves with their areas. For a 0.3%-rare class,
// PR-AUC is the informative number; ROC-AUC saturates (the paper makes the
// equivalent argument about accuracy vs recall/precision).

#ifndef PNR_EVAL_CURVES_H_
#define PNR_EVAL_CURVES_H_

#include <vector>

#include "eval/metrics.h"

namespace pnr {

/// One operating point of a scoring classifier.
struct CurvePoint {
  double threshold = 0.0;
  double recall = 0.0;            ///< = true-positive rate
  double precision = 0.0;
  double false_positive_rate = 0.0;
};

/// All distinct operating points of `classifier` on `dataset`, ordered by
/// ascending threshold (descending recall). Scores run through the batch
/// engine; `options` tunes it. Score ties inherit ThresholdSweep's
/// contract: records sharing a score form one operating point, predicted
/// positive iff score > threshold.
std::vector<CurvePoint> OperatingPoints(
    const BinaryClassifier& classifier, const Dataset& dataset,
    CategoryId target, const BatchScoreOptions& options = {});

/// Area under the ROC curve (trapezoidal over the operating points).
/// 0.5 = random ranking, 1.0 = perfect.
double RocAuc(const std::vector<CurvePoint>& points);

/// Area under the precision/recall curve (step-wise interpolation, the
/// conservative convention). The no-skill baseline is the class prior.
double PrAuc(const std::vector<CurvePoint>& points);

/// Convenience: both areas computed from one sweep.
struct RankingSummary {
  double roc_auc = 0.0;
  double pr_auc = 0.0;
};
RankingSummary SummarizeRanking(const BinaryClassifier& classifier,
                                const Dataset& dataset, CategoryId target,
                                const BatchScoreOptions& options = {});

}  // namespace pnr

#endif  // PNR_EVAL_CURVES_H_
