// Evaluation of trained classifiers against labelled datasets.

#ifndef PNR_EVAL_METRICS_H_
#define PNR_EVAL_METRICS_H_

#include <vector>

#include "eval/classifier.h"
#include "eval/confusion.h"

namespace pnr {

/// Recall / precision / F triple as the paper's tables report them.
struct BinaryMetrics {
  double recall = 0.0;
  double precision = 0.0;
  double f_measure = 0.0;
};

/// Evaluates `classifier` on every row of `dataset` (unweighted counts, as
/// test sets are never stratified) with `target` as the positive class.
/// Predictions run through PredictBatch; `options` tunes the batch engine
/// (results are identical for any setting).
Confusion EvaluateClassifier(const BinaryClassifier& classifier,
                             const Dataset& dataset, CategoryId target,
                             const BatchScoreOptions& options = {});

/// Same as EvaluateClassifier but restricted to `rows`.
Confusion EvaluateClassifierOnRows(const BinaryClassifier& classifier,
                                   const Dataset& dataset,
                                   const RowSubset& rows, CategoryId target,
                                   const BatchScoreOptions& options = {});

/// Convenience wrapper returning the metric triple directly.
BinaryMetrics Metrics(const Confusion& confusion);

/// Sweeps decision thresholds over the classifier's scores and returns the
/// (threshold, confusion) pairs for every distinct score cut, sorted by
/// threshold. Useful for recall/precision trade-off curves. Scores run
/// through ScoreBatch.
///
/// Tie-break: a record is predicted positive iff its score is strictly
/// greater than the threshold, so all records sharing a score flip together
/// and every distinct score yields exactly one sweep point — ties are never
/// split across operating points (no arbitrary intra-tie ordering can leak
/// into the curve).
std::vector<std::pair<double, Confusion>> ThresholdSweep(
    const BinaryClassifier& classifier, const Dataset& dataset,
    CategoryId target, const BatchScoreOptions& options = {});

}  // namespace pnr

#endif  // PNR_EVAL_METRICS_H_
