// Block-parallel row batching shared by every BinaryClassifier::ScoreBatch
// implementation.
//
// Scoring is embarrassingly parallel per row, so the driver splits the row
// list into fixed-size blocks, fans the blocks out over a transient
// ThreadPool, and has every block write only its own output slots — results
// are bit-identical for any thread count by construction. Below
// ThreadPool::kMinRowsPerThread rows per worker the driver runs serially,
// so small inputs never pay fan-out overhead.

#ifndef PNR_EVAL_BATCH_H_
#define PNR_EVAL_BATCH_H_

#include <cstddef>
#include <functional>

#include "data/dataset.h"

namespace pnr {

/// Knobs for batch scoring. The defaults (serial, 4096-row blocks) match
/// the training-side convention that parallelism is opt-in.
struct BatchScoreOptions {
  /// Worker threads for block fan-out: 1 = serial, 0 = hardware
  /// concurrency, n = n workers. Scores are bit-identical for any value.
  size_t num_threads = 1;

  /// Rows per evaluation block — the unit of fan-out and of the compiled
  /// matchers' columnar sweeps.
  size_t block_size = 4096;
};

/// Runs fn(begin, end) for consecutive [begin, end) slices of [0, count),
/// options.block_size rows each. Blocks run in parallel when the clamped
/// thread count (ThreadPool::ClampThreadsForRows) exceeds 1; fn must write
/// only state disjoint per row.
void ForEachRowBlock(size_t count, const BatchScoreOptions& options,
                     const std::function<void(size_t, size_t)>& fn);

/// `options` with the thread count forced to 1 when `dataset` is
/// demand-paged: block workers read feature columns without pinning them,
/// which would race with fault-driven eviction. Serial scoring on a paged
/// dataset is bit-identical (the parallel path already is), just slower.
inline BatchScoreOptions ClampOptionsForDataset(
    const Dataset& dataset, const BatchScoreOptions& options) {
  BatchScoreOptions clamped = options;
  if (dataset.paged()) clamped.num_threads = 1;
  return clamped;
}

}  // namespace pnr

#endif  // PNR_EVAL_BATCH_H_
