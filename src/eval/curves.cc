#include "eval/curves.h"

#include <algorithm>
#include <cmath>

namespace pnr {

std::vector<CurvePoint> OperatingPoints(
    const BinaryClassifier& classifier, const Dataset& dataset,
    CategoryId target, const BatchScoreOptions& options) {
  const auto sweep = ThresholdSweep(classifier, dataset, target, options);
  std::vector<CurvePoint> points;
  points.reserve(sweep.size());
  for (const auto& [threshold, confusion] : sweep) {
    CurvePoint point;
    point.threshold = threshold;
    point.recall = confusion.recall();
    point.precision = confusion.precision();
    const double negatives =
        confusion.false_positives + confusion.true_negatives;
    point.false_positive_rate =
        negatives > 0.0 ? confusion.false_positives / negatives : 0.0;
    points.push_back(point);
  }
  return points;
}

double RocAuc(const std::vector<CurvePoint>& points) {
  if (points.size() < 2) return 0.0;
  // Points are ordered by ascending threshold: recall and FPR both fall.
  double area = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    const double width =
        points[i - 1].false_positive_rate - points[i].false_positive_rate;
    const double height =
        0.5 * (points[i - 1].recall + points[i].recall);
    area += width * height;
  }
  return area;
}

double PrAuc(const std::vector<CurvePoint>& points) {
  if (points.empty()) return 0.0;
  // Average-precision convention with the interpolated envelope
  // p_interp(r) = max over points with recall >= r of their precision.
  std::vector<CurvePoint> ordered = points;
  std::sort(ordered.begin(), ordered.end(),
            [](const CurvePoint& a, const CurvePoint& b) {
              return a.recall < b.recall;
            });
  std::vector<double> envelope(ordered.size(), 0.0);
  double running_max = 0.0;
  for (size_t i = ordered.size(); i-- > 0;) {
    running_max = std::max(running_max, ordered[i].precision);
    envelope[i] = running_max;
  }
  double area = 0.0;
  double previous_recall = 0.0;
  for (size_t i = 0; i < ordered.size(); ++i) {
    area += (ordered[i].recall - previous_recall) * envelope[i];
    previous_recall = ordered[i].recall;
  }
  return area;
}

RankingSummary SummarizeRanking(const BinaryClassifier& classifier,
                                const Dataset& dataset, CategoryId target,
                                const BatchScoreOptions& options) {
  const auto points = OperatingPoints(classifier, dataset, target, options);
  return RankingSummary{RocAuc(points), PrAuc(points)};
}

}  // namespace pnr
