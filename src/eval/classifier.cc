#include "eval/classifier.h"

namespace pnr {

void BinaryClassifier::ScoreBatch(const Dataset& dataset, const RowId* rows,
                                  size_t count, double* out,
                                  const BatchScoreOptions& options) const {
  ForEachRowBlock(count, ClampOptionsForDataset(dataset, options),
                  [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = Score(dataset, rows[i]);
  });
}

void BinaryClassifier::PredictBatch(const Dataset& dataset, const RowId* rows,
                                    size_t count, uint8_t* out,
                                    const BatchScoreOptions& options) const {
  // One scores buffer, thresholded in place: any ScoreBatch override (the
  // compiled matchers) automatically accelerates prediction too.
  std::vector<double> scores(count);
  ScoreBatch(dataset, rows, count, scores.data(), options);
  for (size_t i = 0; i < count; ++i) {
    out[i] = scores[i] > threshold() ? 1 : 0;
  }
}

std::vector<double> BinaryClassifier::ScoreRows(
    const Dataset& dataset, const RowSubset& rows,
    const BatchScoreOptions& options) const {
  std::vector<double> scores(rows.size());
  ScoreBatch(dataset, rows.data(), rows.size(), scores.data(), options);
  return scores;
}

}  // namespace pnr
