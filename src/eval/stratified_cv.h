// Stratified K-fold cross-validation splitter.
//
// The tuning racer (src/tune/) scores hyperparameter configurations by
// per-fold rare-class recall/precision, so the folds themselves must be
// beyond suspicion: every fold carries the same class proportions as the
// full set (exact to ±1 record per class), down to classes with a handful
// of records — or one. A plain random split would routinely produce folds
// with zero positives at the paper's 0.1-0.3% class rates.
//
// Determinism contract: the fold assignment is a pure function of
// (labels, num_folds, seed). Per-class dealing fans out over a thread pool,
// but each class derives its own Rng stream from the seed and writes only
// its own rows' slots, so any `num_threads` yields byte-identical
// assignments — the same guarantee the condition-search and ingest engines
// give, extended to experiment design.

#ifndef PNR_EVAL_STRATIFIED_CV_H_
#define PNR_EVAL_STRATIFIED_CV_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace pnr {

/// Options for StratifiedKFold::Split.
struct StratifiedKFoldOptions {
  /// Number of folds K; must be in [2, num_rows].
  size_t num_folds = 5;
  /// Seed for the per-class shuffles and fold-offset draws.
  uint64_t seed = 20010521;
  /// Threads for the per-class dealing loop (1 = serial, 0 = hardware).
  /// The assignment is byte-identical for any value.
  size_t num_threads = 1;
};

/// An immutable stratified fold assignment over a dataset's rows.
class StratifiedKFold {
 public:
  /// Splits `dataset`'s rows into `options.num_folds` stratified folds.
  ///
  /// Per class: the class's rows are shuffled with a class-specific stream
  /// derived from the seed, then dealt round-robin starting at a
  /// seed-drawn fold offset. Round-robin makes per-fold class counts exact
  /// to ±1; the random offset keeps sub-K classes (including singletons)
  /// from all landing in fold 0.
  static StatusOr<StratifiedKFold> Split(const Dataset& dataset,
                                         const StratifiedKFoldOptions& options);

  size_t num_folds() const { return num_folds_; }
  size_t num_rows() const { return fold_of_row_.size(); }

  /// Fold holding `row` as a test record (in [0, num_folds)).
  uint32_t fold_of(RowId row) const { return fold_of_row_[row]; }

  /// The whole assignment vector (row id -> fold).
  const std::vector<uint32_t>& assignments() const { return fold_of_row_; }

  /// Rows held out by `fold` (its test split), in ascending row order.
  RowSubset TestRows(size_t fold) const;

  /// Rows available to train against `fold` (every other fold), ascending.
  RowSubset TrainRows(size_t fold) const;

 private:
  StratifiedKFold(size_t num_folds, std::vector<uint32_t> fold_of_row)
      : num_folds_(num_folds), fold_of_row_(std::move(fold_of_row)) {}

  size_t num_folds_;
  std::vector<uint32_t> fold_of_row_;
};

}  // namespace pnr

#endif  // PNR_EVAL_STRATIFIED_CV_H_
