// Abstract binary classifier interface shared by PNrule, RIPPER and C4.5.

#ifndef PNR_EVAL_CLASSIFIER_H_
#define PNR_EVAL_CLASSIFIER_H_

#include <string>

#include "data/dataset.h"

namespace pnr {

/// A trained binary model for one target class.
///
/// Implementations return a score in [0, 1] interpretable as (an
/// approximation of) the probability that the record belongs to the target
/// class; Predict() thresholds the score.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Score in [0, 1] for the record belonging to the target class.
  virtual double Score(const Dataset& dataset, RowId row) const = 0;

  /// True iff the record is predicted to be of the target class.
  virtual bool Predict(const Dataset& dataset, RowId row) const {
    return Score(dataset, row) > threshold_;
  }

  /// Decision threshold applied by the default Predict() (default 0.5).
  double threshold() const { return threshold_; }
  void set_threshold(double threshold) { threshold_ = threshold; }

  /// Human-readable description of the learned model.
  virtual std::string Describe(const Schema& schema) const = 0;

 private:
  double threshold_ = 0.5;
};

}  // namespace pnr

#endif  // PNR_EVAL_CLASSIFIER_H_
