// Abstract binary classifier interface shared by PNrule, RIPPER and C4.5.

#ifndef PNR_EVAL_CLASSIFIER_H_
#define PNR_EVAL_CLASSIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/batch.h"

namespace pnr {

/// A trained binary model for one target class.
///
/// Implementations return a score in [0, 1] interpretable as (an
/// approximation of) the probability that the record belongs to the target
/// class; Predict() thresholds the score.
///
/// The batch entry points (ScoreBatch / PredictBatch) are the fast path for
/// whole-dataset work: PNrule, RIPPER and C4.5 override them with compiled
/// column-at-a-time matchers, and the defaults fall back to the virtual
/// per-row calls. Every implementation must produce, for each row, exactly
/// the per-row result — batch output is bit-identical to row-at-a-time
/// output, for any thread count and block size.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Score in [0, 1] for the record belonging to the target class.
  virtual double Score(const Dataset& dataset, RowId row) const = 0;

  /// True iff the record is predicted to be of the target class.
  virtual bool Predict(const Dataset& dataset, RowId row) const {
    return Score(dataset, row) > threshold_;
  }

  /// Writes Score(dataset, rows[i]) to out[i] for i in [0, count).
  /// Default: row-at-a-time virtual Score, fanned out over row blocks.
  virtual void ScoreBatch(const Dataset& dataset, const RowId* rows,
                          size_t count, double* out,
                          const BatchScoreOptions& options = {}) const;

  /// Writes Predict(dataset, rows[i]) (0/1) to out[i] for i in [0, count).
  /// Default thresholds ScoreBatch scores; classifiers whose Predict is not
  /// a score threshold (C4.5's majority-leaf vote) override it.
  virtual void PredictBatch(const Dataset& dataset, const RowId* rows,
                            size_t count, uint8_t* out,
                            const BatchScoreOptions& options = {}) const;

  /// Convenience: scores an explicit row subset into a fresh vector.
  std::vector<double> ScoreRows(const Dataset& dataset, const RowSubset& rows,
                                const BatchScoreOptions& options = {}) const;

  /// Decision threshold applied by the default Predict() (default 0.5).
  double threshold() const { return threshold_; }
  void set_threshold(double threshold) { threshold_ = threshold; }

  /// Human-readable description of the learned model.
  virtual std::string Describe(const Schema& schema) const = 0;

 private:
  double threshold_ = 0.5;
};

}  // namespace pnr

#endif  // PNR_EVAL_CLASSIFIER_H_
