#include "eval/metrics.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace pnr {

Confusion EvaluateClassifier(const BinaryClassifier& classifier,
                             const Dataset& dataset, CategoryId target,
                             const BatchScoreOptions& options) {
  std::vector<RowId> rows(dataset.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  return EvaluateClassifierOnRows(classifier, dataset, rows, target, options);
}

Confusion EvaluateClassifierOnRows(const BinaryClassifier& classifier,
                                   const Dataset& dataset,
                                   const RowSubset& rows, CategoryId target,
                                   const BatchScoreOptions& options) {
  std::vector<uint8_t> predicted(rows.size());
  classifier.PredictBatch(dataset, rows.data(), rows.size(),
                          predicted.data(), options);
  Confusion confusion;
  for (size_t i = 0; i < rows.size(); ++i) {
    confusion.Add(dataset.label(rows[i]) == target, predicted[i] != 0);
  }
  return confusion;
}

BinaryMetrics Metrics(const Confusion& confusion) {
  return BinaryMetrics{confusion.recall(), confusion.precision(),
                       confusion.f_measure()};
}

std::vector<std::pair<double, Confusion>> ThresholdSweep(
    const BinaryClassifier& classifier, const Dataset& dataset,
    CategoryId target, const BatchScoreOptions& options) {
  std::vector<RowId> rows(dataset.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<double> scores(rows.size());
  classifier.ScoreBatch(dataset, rows.data(), rows.size(), scores.data(),
                        options);

  std::vector<std::pair<double, bool>> scored;
  scored.reserve(dataset.num_rows());
  double total_positives = 0.0;
  for (RowId row = 0; row < dataset.num_rows(); ++row) {
    const bool positive = dataset.label(row) == target;
    scored.emplace_back(scores[row], positive);
    if (positive) total_positives += 1.0;
  }
  std::sort(scored.begin(), scored.end());

  std::vector<std::pair<double, Confusion>> sweep;
  // Walk thresholds upward; records with score > threshold are positive.
  double tp = total_positives;
  double fp = static_cast<double>(scored.size()) - total_positives;
  size_t i = 0;
  // Threshold below all scores: everything predicted positive.
  const double lowest =
      scored.empty() ? 0.0 : scored.front().first - 1.0;
  for (double threshold = lowest;;) {
    Confusion c;
    c.true_positives = tp;
    c.false_positives = fp;
    c.false_negatives = total_positives - tp;
    c.true_negatives =
        (static_cast<double>(scored.size()) - total_positives) - fp;
    sweep.emplace_back(threshold, c);
    if (i >= scored.size()) break;
    threshold = scored[i].first;
    while (i < scored.size() && scored[i].first <= threshold) {
      if (scored[i].second) {
        tp -= 1.0;
      } else {
        fp -= 1.0;
      }
      ++i;
    }
  }
  return sweep;
}

}  // namespace pnr
