#include "eval/confusion.h"

#include "common/string_util.h"

namespace pnr {

double Confusion::recall() const {
  const double p = actual_positives();
  return p > 0.0 ? true_positives / p : 0.0;
}

double Confusion::precision() const {
  const double q = predicted_positives();
  return q > 0.0 ? true_positives / q : 0.0;
}

double Confusion::f_measure() const {
  const double r = recall();
  const double p = precision();
  return (r + p) > 0.0 ? 2.0 * r * p / (r + p) : 0.0;
}

double Confusion::f_beta(double beta) const {
  const double r = recall();
  const double p = precision();
  const double b2 = beta * beta;
  const double denom = b2 * p + r;
  return denom > 0.0 ? (1.0 + b2) * r * p / denom : 0.0;
}

double Confusion::accuracy() const {
  const double n = total();
  return n > 0.0 ? (true_positives + true_negatives) / n : 0.0;
}

void Confusion::Add(bool actual_positive, bool predicted_positive,
                    double weight) {
  if (actual_positive) {
    (predicted_positive ? true_positives : false_negatives) += weight;
  } else {
    (predicted_positive ? false_positives : true_negatives) += weight;
  }
}

void Confusion::Merge(const Confusion& other) {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  true_negatives += other.true_negatives;
  false_negatives += other.false_negatives;
}

std::string Confusion::ToString() const {
  return "TP=" + FormatDouble(true_positives, 1) +
         " FP=" + FormatDouble(false_positives, 1) +
         " TN=" + FormatDouble(true_negatives, 1) +
         " FN=" + FormatDouble(false_negatives, 1) +
         " R=" + FormatDouble(recall(), 4) +
         " P=" + FormatDouble(precision(), 4) +
         " F=" + FormatDouble(f_measure(), 4);
}

}  // namespace pnr
