#include "eval/batch.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace pnr {

void ForEachRowBlock(size_t count, const BatchScoreOptions& options,
                     const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  const size_t block = std::max<size_t>(1, options.block_size);
  const size_t num_blocks = (count + block - 1) / block;
  const auto run_block = [&](size_t b) {
    fn(b * block, std::min(count, (b + 1) * block));
  };
  const size_t threads =
      ThreadPool::ClampThreadsForRows(options.num_threads, count);
  if (threads > 1 && num_blocks > 1) {
    ThreadPool pool(threads);
    pool.ParallelFor(num_blocks, run_block);
  } else {
    for (size_t b = 0; b < num_blocks; ++b) run_block(b);
  }
}

}  // namespace pnr
