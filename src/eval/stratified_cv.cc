#include "eval/stratified_cv.h"

#include <algorithm>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace pnr {
namespace {

// Independent per-class stream: the class index is mixed into the seed with
// splitmix64's constant so neighbouring classes get uncorrelated shuffles.
// A function of (seed, cls) only — never of thread scheduling.
Rng ClassRng(uint64_t seed, size_t cls) {
  return Rng(seed ^ ((cls + 1) * 0x9E3779B97F4A7C15ULL));
}

}  // namespace

StatusOr<StratifiedKFold> StratifiedKFold::Split(
    const Dataset& dataset, const StratifiedKFoldOptions& options) {
  const size_t rows = dataset.num_rows();
  if (options.num_folds < 2) {
    return Status::InvalidArgument("num_folds must be at least 2");
  }
  if (options.num_folds > rows) {
    return Status::InvalidArgument(
        "num_folds (" + std::to_string(options.num_folds) +
        ") exceeds the number of rows (" + std::to_string(rows) + ")");
  }

  // Bucket rows by class in ascending row order (the shuffle's input order
  // must not depend on anything but the data).
  const size_t num_classes = dataset.schema().num_classes();
  std::vector<RowSubset> class_rows(num_classes);
  for (RowId row = 0; row < rows; ++row) {
    class_rows[dataset.label(row)].push_back(row);
  }

  std::vector<uint32_t> fold_of_row(rows, 0);
  const size_t threads =
      ThreadPool::ClampThreadsForRows(options.num_threads, rows);
  ThreadPool pool(threads);
  pool.ParallelFor(num_classes, [&](size_t cls) {
    RowSubset& members = class_rows[cls];
    if (members.empty()) return;
    Rng rng = ClassRng(options.seed, cls);
    rng.Shuffle(&members);
    // Dealing round-robin from a seed-drawn offset: per-fold counts are
    // floor/ceil(n/K), and classes smaller than K (rare classes at quick
    // scales, singletons in the limit) spread across folds instead of
    // stacking up in fold 0.
    const size_t start = rng.NextBelow(options.num_folds);
    for (size_t i = 0; i < members.size(); ++i) {
      fold_of_row[members[i]] =
          static_cast<uint32_t>((start + i) % options.num_folds);
    }
  });

  return StratifiedKFold(options.num_folds, std::move(fold_of_row));
}

RowSubset StratifiedKFold::TestRows(size_t fold) const {
  RowSubset rows;
  for (RowId row = 0; row < fold_of_row_.size(); ++row) {
    if (fold_of_row_[row] == fold) rows.push_back(row);
  }
  return rows;
}

RowSubset StratifiedKFold::TrainRows(size_t fold) const {
  RowSubset rows;
  for (RowId row = 0; row < fold_of_row_.size(); ++row) {
    if (fold_of_row_[row] != fold) rows.push_back(row);
  }
  return rows;
}

}  // namespace pnr
