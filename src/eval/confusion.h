// Binary confusion matrix and the recall / precision / F-measure metrics
// the paper evaluates with (van Rijsbergen's F with equal weights).

#ifndef PNR_EVAL_CONFUSION_H_
#define PNR_EVAL_CONFUSION_H_

#include <string>

namespace pnr {

/// Counts of a binary classifier's outcomes on a labelled set.
struct Confusion {
  double true_positives = 0.0;
  double false_positives = 0.0;
  double true_negatives = 0.0;
  double false_negatives = 0.0;

  /// Number of actual target-class records.
  double actual_positives() const {
    return true_positives + false_negatives;
  }
  /// Number of records predicted as target class.
  double predicted_positives() const {
    return true_positives + false_positives;
  }
  /// Total number of records.
  double total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }

  /// R = q / p: fraction of actual positives recovered (0 if none exist).
  double recall() const;
  /// P = q / (q + r): fraction of predicted positives that are correct
  /// (0 if nothing predicted positive).
  double precision() const;
  /// F = 2RP / (R + P); 0 when R + P == 0.
  double f_measure() const;
  /// F_beta = (1 + b^2) RP / (b^2 P + R).
  double f_beta(double beta) const;
  /// Plain accuracy (TP + TN) / total.
  double accuracy() const;

  /// Adds one (possibly weighted) observation.
  void Add(bool actual_positive, bool predicted_positive, double weight = 1.0);

  /// Accumulates another confusion matrix.
  void Merge(const Confusion& other);

  /// "TP=.. FP=.. TN=.. FN=.. R=.. P=.. F=.."
  std::string ToString() const;
};

}  // namespace pnr

#endif  // PNR_EVAL_CONFUSION_H_
