// Attribute descriptors: every column of a dataset is either numeric
// (continuous double) or categorical (dictionary-encoded small integers).

#ifndef PNR_DATA_ATTRIBUTE_H_
#define PNR_DATA_ATTRIBUTE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace pnr {

/// Kind of values an attribute holds.
enum class AttributeType {
  kNumeric,
  kCategorical,
};

/// Returns "numeric" or "categorical".
const char* AttributeTypeName(AttributeType type);

/// Dictionary-encoded id of a categorical value.
using CategoryId = int32_t;

/// Sentinel for "value not present in the dictionary".
inline constexpr CategoryId kInvalidCategory = -1;

/// Metadata for one column: name, type, and (for categorical columns) the
/// value dictionary mapping strings to dense CategoryIds.
class Attribute {
 public:
  /// Creates a numeric attribute.
  static Attribute Numeric(std::string name);

  /// Creates a categorical attribute with an initially empty dictionary.
  static Attribute Categorical(std::string name);

  /// Creates a categorical attribute with a fixed dictionary.
  static Attribute Categorical(std::string name,
                               std::vector<std::string> values);

  const std::string& name() const { return name_; }
  AttributeType type() const { return type_; }
  bool is_numeric() const { return type_ == AttributeType::kNumeric; }
  bool is_categorical() const { return type_ == AttributeType::kCategorical; }

  /// Number of distinct categorical values. 0 for numeric attributes.
  size_t num_categories() const { return categories_.size(); }

  /// The string for a category id; requires a valid id.
  const std::string& CategoryName(CategoryId id) const;

  /// Id for `value`, or kInvalidCategory if absent.
  CategoryId FindCategory(const std::string& value) const;

  /// Id for `value`, inserting it into the dictionary if absent.
  /// Only valid on categorical attributes.
  CategoryId GetOrAddCategory(const std::string& value);

 private:
  Attribute(std::string name, AttributeType type)
      : name_(std::move(name)), type_(type) {}

  std::string name_;
  AttributeType type_;
  std::vector<std::string> categories_;
  std::unordered_map<std::string, CategoryId> category_index_;
};

}  // namespace pnr

#endif  // PNR_DATA_ATTRIBUTE_H_
