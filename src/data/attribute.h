// Attribute descriptors: every column of a dataset is either numeric
// (continuous double) or categorical (dictionary-encoded small integers).

#ifndef PNR_DATA_ATTRIBUTE_H_
#define PNR_DATA_ATTRIBUTE_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace pnr {

/// Hash functor enabling heterogeneous (std::string_view) lookup in
/// std::unordered_map<std::string, ...> without materializing a key.
/// Word-at-a-time multiply-xor mix rather than std::hash: category values
/// are short (a handful of bytes), where the per-call overhead of the
/// library's byte-wise hash dominates dictionary-encoding hot loops.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view text) const noexcept {
    const char* p = text.data();
    size_t n = text.size();
    uint64_t h = 0x9E3779B97F4A7C15ULL ^ (n * 0xFF51AFD7ED558CCDULL);
    while (n >= 8) {
      uint64_t w;
      std::memcpy(&w, p, sizeof(w));
      h = Mix(h, w);
      p += 8;
      n -= 8;
    }
    if (n > 0) {
      uint64_t w = 0;
      for (size_t i = 0; i < n; ++i) {
        w = (w << 8) | static_cast<unsigned char>(p[i]);
      }
      h = Mix(h, w);
    }
    return static_cast<size_t>(h);
  }

 private:
  static constexpr uint64_t Mix(uint64_t h, uint64_t w) noexcept {
    h ^= w;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return h;
  }
};

/// Kind of values an attribute holds.
enum class AttributeType {
  kNumeric,
  kCategorical,
};

/// Returns "numeric" or "categorical".
const char* AttributeTypeName(AttributeType type);

/// Dictionary-encoded id of a categorical value.
using CategoryId = int32_t;

/// Sentinel for "value not present in the dictionary".
inline constexpr CategoryId kInvalidCategory = -1;

/// Metadata for one column: name, type, and (for categorical columns) the
/// value dictionary mapping strings to dense CategoryIds.
class Attribute {
 public:
  /// Creates a numeric attribute.
  static Attribute Numeric(std::string name);

  /// Creates a categorical attribute with an initially empty dictionary.
  static Attribute Categorical(std::string name);

  /// Creates a categorical attribute with a fixed dictionary.
  static Attribute Categorical(std::string name,
                               std::vector<std::string> values);

  const std::string& name() const { return name_; }
  AttributeType type() const { return type_; }
  bool is_numeric() const { return type_ == AttributeType::kNumeric; }
  bool is_categorical() const { return type_ == AttributeType::kCategorical; }

  /// Number of distinct categorical values. 0 for numeric attributes.
  size_t num_categories() const { return categories_.size(); }

  /// The string for a category id; requires a valid id.
  const std::string& CategoryName(CategoryId id) const;

  /// Id for `value`, or kInvalidCategory if absent. Accepts a string_view
  /// so hot parse loops can look up without allocating.
  CategoryId FindCategory(std::string_view value) const;

  /// Id for `value`, inserting it into the dictionary if absent.
  /// Only valid on categorical attributes.
  CategoryId GetOrAddCategory(std::string_view value);

 private:
  Attribute(std::string name, AttributeType type)
      : name_(std::move(name)), type_(type) {}

  std::string name_;
  AttributeType type_;
  std::vector<std::string> categories_;
  std::unordered_map<std::string, CategoryId, TransparentStringHash,
                     std::equal_to<>>
      category_index_;
};

}  // namespace pnr

#endif  // PNR_DATA_ATTRIBUTE_H_
