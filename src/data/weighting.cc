#include "data/weighting.h"

#include <cassert>

namespace pnr {

std::vector<double> StratifiedWeights(const Dataset& dataset,
                                      CategoryId target) {
  size_t target_count = 0;
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    if (dataset.label(r) == target) ++target_count;
  }
  const size_t non_target_count = dataset.num_rows() - target_count;
  assert(target_count > 0 && non_target_count > 0);
  const double target_weight =
      static_cast<double>(non_target_count) / static_cast<double>(target_count);
  std::vector<double> weights(dataset.num_rows(), 1.0);
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    if (dataset.label(r) == target) weights[r] = target_weight;
  }
  return weights;
}

std::pair<RowSubset, RowSubset> SplitRows(const RowSubset& rows,
                                          double first_fraction, Rng* rng) {
  assert(first_fraction >= 0.0 && first_fraction <= 1.0);
  RowSubset shuffled = rows;
  rng->Shuffle(&shuffled);
  const size_t cut = static_cast<size_t>(
      first_fraction * static_cast<double>(shuffled.size()) + 0.5);
  RowSubset first(shuffled.begin(), shuffled.begin() + cut);
  RowSubset second(shuffled.begin() + cut, shuffled.end());
  return {std::move(first), std::move(second)};
}

std::pair<RowSubset, RowSubset> StratifiedSplitRows(const Dataset& dataset,
                                                    const RowSubset& rows,
                                                    CategoryId target,
                                                    double first_fraction,
                                                    Rng* rng) {
  RowSubset positives = dataset.FilterByClass(rows, target, true);
  RowSubset negatives = dataset.FilterByClass(rows, target, false);
  auto [pos_first, pos_second] = SplitRows(positives, first_fraction, rng);
  auto [neg_first, neg_second] = SplitRows(negatives, first_fraction, rng);
  RowSubset first = std::move(pos_first);
  first.insert(first.end(), neg_first.begin(), neg_first.end());
  RowSubset second = std::move(pos_second);
  second.insert(second.end(), neg_second.begin(), neg_second.end());
  rng->Shuffle(&first);
  rng->Shuffle(&second);
  return {std::move(first), std::move(second)};
}

Dataset SubsampleNonTarget(const Dataset& source, CategoryId target,
                           double non_target_fraction, Rng* rng) {
  assert(non_target_fraction >= 0.0 && non_target_fraction <= 1.0);
  Dataset out(source.schema());
  const Schema& schema = source.schema();
  for (RowId r = 0; r < source.num_rows(); ++r) {
    if (source.label(r) != target && !rng->NextBool(non_target_fraction)) {
      continue;
    }
    const RowId nr = out.AddRow();
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const AttrIndex attr = static_cast<AttrIndex>(a);
      if (schema.attribute(attr).is_numeric()) {
        out.set_numeric(nr, attr, source.numeric(r, attr));
      } else {
        out.set_categorical(nr, attr, source.categorical(r, attr));
      }
    }
    out.set_label(nr, source.label(r));
    out.set_weight(nr, source.weight(r));
  }
  return out;
}

}  // namespace pnr
