// Columnar in-memory dataset: typed feature columns, class labels, and
// per-record weights. All learners in this library read from Dataset and
// operate on subsets of row ids, which makes sequential covering (repeatedly
// removing covered records) cheap.

#ifndef PNR_DATA_DATASET_H_
#define PNR_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace pnr {

/// Index of a record within a Dataset.
using RowId = uint32_t;

/// An explicit subset of rows (the unit sequential covering works on).
using RowSubset = std::vector<RowId>;

/// Columnar dataset.
///
/// Each feature column physically stores either doubles (numeric) or
/// CategoryIds (categorical), matching the schema. Labels are CategoryIds of
/// the schema's class attribute. Every record carries a weight (1.0 unless
/// stratification has been applied).
class Dataset {
 public:
  /// Creates an empty dataset over `schema`.
  explicit Dataset(Schema schema);

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  /// Number of records.
  size_t num_rows() const { return labels_.size(); }

  /// Appends a record with default values (0.0 / category 0 when the
  /// dictionary is non-empty, else kInvalidCategory), label 0, weight 1.
  /// Returns the new row id.
  RowId AddRow();

  /// Appends `n` records with the same defaults as AddRow in one step
  /// (single data_version bump). Returns the id of the first new row. The
  /// ingest engine sizes all storage with this before its parallel fill.
  RowId AppendRows(size_t n);

  /// Reserves capacity for `n` records.
  void Reserve(size_t n);

  // -- Cell accessors (bounds are assert-checked) ---------------------------

  double numeric(RowId row, AttrIndex attr) const;
  void set_numeric(RowId row, AttrIndex attr, double value);

  CategoryId categorical(RowId row, AttrIndex attr) const;
  void set_categorical(RowId row, AttrIndex attr, CategoryId value);

  CategoryId label(RowId row) const { return labels_[row]; }
  void set_label(RowId row, CategoryId value) { labels_[row] = value; }

  double weight(RowId row) const { return weights_[row]; }
  void set_weight(RowId row, double value) {
    weights_[row] = value;
    ++weight_version_;
  }

  // -- Mutation counters (cache invalidation) -------------------------------

  /// Incremented whenever rows are added or cell values change. Caches of
  /// derived per-column structure (e.g. sorted orders) key on this.
  uint64_t data_version() const { return data_version_; }

  /// Incremented whenever any record weight changes (stratification,
  /// N-phase re-weighting). Caches of weight-derived aggregates key on
  /// this; value-derived structure stays valid across weight changes.
  uint64_t weight_version() const { return weight_version_; }

  // -- Whole-column access (for sorted scans) -------------------------------

  /// Underlying storage of a numeric column.
  const std::vector<double>& numeric_column(AttrIndex attr) const;

  /// Underlying storage of a categorical column.
  const std::vector<CategoryId>& categorical_column(AttrIndex attr) const;

  /// All labels.
  const std::vector<CategoryId>& labels() const { return labels_; }

  // -- Bulk mutable storage (parallel ingest) -------------------------------
  //
  // Raw pointers into column/label storage for bulk fills. Callers must
  // write only existing rows (size the dataset with AppendRows first) and,
  // when writing from several threads, only disjoint row ranges. Each call
  // bumps data_version once; the pointers are invalidated by AddRow /
  // AppendRows / Reserve.

  double* mutable_numeric_data(AttrIndex attr);
  CategoryId* mutable_categorical_data(AttrIndex attr);
  CategoryId* mutable_label_data();

  /// All weights.
  const std::vector<double>& weights() const { return weights_; }

  /// Overwrites every record's weight; `weights` must have num_rows()
  /// entries.
  void SetAllWeights(std::vector<double> weights);

  /// Resets every record's weight to 1.
  void ResetWeights();

  // -- Aggregates ------------------------------------------------------------

  /// Sum of weights of records labelled `cls` among `rows`.
  double ClassWeight(const RowSubset& rows, CategoryId cls) const;

  /// Sum of weights of all records among `rows`.
  double TotalWeight(const RowSubset& rows) const;

  /// Count (unweighted) of records labelled `cls`.
  size_t CountClass(CategoryId cls) const;

  /// Row ids 0..num_rows()-1.
  RowSubset AllRows() const;

  /// Rows from `rows` whose label equals (matches==true) / differs from
  /// (matches==false) `cls`.
  RowSubset FilterByClass(const RowSubset& rows, CategoryId cls,
                          bool matches) const;

 private:
  struct Column {
    std::vector<double> numeric;
    std::vector<CategoryId> categorical;
  };

  Schema schema_;
  std::vector<Column> columns_;
  std::vector<CategoryId> labels_;
  std::vector<double> weights_;
  uint64_t data_version_ = 0;
  uint64_t weight_version_ = 0;
};

}  // namespace pnr

#endif  // PNR_DATA_DATASET_H_
