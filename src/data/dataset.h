// Columnar in-memory dataset: typed feature columns, class labels, and
// per-record weights. All learners in this library read from Dataset and
// operate on subsets of row ids, which makes sequential covering (repeatedly
// removing covered records) cheap.
//
// A Dataset may also be *demand-paged* (AttachPager): labels, weights and
// the schema stay resident while feature columns fault in from a backing
// store (e.g. data/shard_store.h) on first touch and are evicted LRU to a
// byte budget. Faulting never changes the logical cell values, so
// data_version() is stable across fault/evict and every derived cache stays
// valid; training on a paged dataset is bit-identical to training in RAM.

#ifndef PNR_DATA_DATASET_H_
#define PNR_DATA_DATASET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace pnr {

/// Index of a record within a Dataset.
using RowId = uint32_t;

/// An explicit subset of rows (the unit sequential covering works on).
using RowSubset = std::vector<RowId>;

/// Backing store for a demand-paged Dataset's feature columns.
///
/// Implementations must be thread-safe for concurrent const calls (one
/// pager is shared by every ClonePagedView of a dataset) and must fill
/// `out` with exactly num_rows values for `attr`.
class ColumnPager {
 public:
  virtual ~ColumnPager() = default;
  virtual Status FillNumeric(AttrIndex attr,
                             std::vector<double>* out) const = 0;
  virtual Status FillCategorical(AttrIndex attr,
                                 std::vector<CategoryId>* out) const = 0;
};

/// Columnar dataset.
///
/// Each feature column physically stores either doubles (numeric) or
/// CategoryIds (categorical), matching the schema. Labels are CategoryIds of
/// the schema's class attribute. Every record carries a weight (1.0 unless
/// stratification has been applied).
class Dataset {
 public:
  /// Creates an empty dataset over `schema`.
  explicit Dataset(Schema schema);

  // Copying is supported for plain in-RAM datasets only; a paged dataset
  // must be cloned with ClonePagedView instead.
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&&) noexcept = default;
  Dataset& operator=(Dataset&&) noexcept = default;

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  /// Number of records.
  size_t num_rows() const { return labels_.size(); }

  /// Appends a record with default values (0.0 / category 0 when the
  /// dictionary is non-empty, else kInvalidCategory), label 0, weight 1.
  /// Returns the new row id.
  RowId AddRow();

  /// Appends `n` records with the same defaults as AddRow in one step
  /// (single data_version bump). Returns the id of the first new row. The
  /// ingest engine sizes all storage with this before its parallel fill.
  RowId AppendRows(size_t n);

  /// Reserves capacity for `n` records.
  void Reserve(size_t n);

  // -- Cell accessors (bounds are assert-checked) ---------------------------

  double numeric(RowId row, AttrIndex attr) const;
  void set_numeric(RowId row, AttrIndex attr, double value);

  CategoryId categorical(RowId row, AttrIndex attr) const;
  void set_categorical(RowId row, AttrIndex attr, CategoryId value);

  CategoryId label(RowId row) const { return labels_[row]; }
  void set_label(RowId row, CategoryId value) { labels_[row] = value; }

  double weight(RowId row) const { return weights_[row]; }
  void set_weight(RowId row, double value) {
    weights_[row] = value;
    ++weight_version_;
  }

  // -- Mutation counters (cache invalidation) -------------------------------

  /// Incremented whenever rows are added or cell values change. Caches of
  /// derived per-column structure (e.g. sorted orders) key on this.
  /// Paging faults/evictions do NOT bump it: the logical data is unchanged.
  uint64_t data_version() const { return data_version_; }

  /// Incremented whenever any record weight changes (stratification,
  /// N-phase re-weighting). Caches of weight-derived aggregates key on
  /// this; value-derived structure stays valid across weight changes.
  uint64_t weight_version() const { return weight_version_; }

  // -- Whole-column access (for sorted scans) -------------------------------

  /// Underlying storage of a numeric column (faulted in when paged).
  const std::vector<double>& numeric_column(AttrIndex attr) const;

  /// Underlying storage of a categorical column (faulted in when paged).
  const std::vector<CategoryId>& categorical_column(AttrIndex attr) const;

  /// All labels.
  const std::vector<CategoryId>& labels() const { return labels_; }

  // -- Bulk mutable storage (parallel ingest) -------------------------------
  //
  // Raw pointers into column/label storage for bulk fills. Callers must
  // write only existing rows (size the dataset with AppendRows first) and,
  // when writing from several threads, only disjoint row ranges. Each call
  // bumps data_version once; the pointers are invalidated by AddRow /
  // AppendRows / Reserve. Feature-column mutation is forbidden on a paged
  // dataset (its cells live in the backing store).

  double* mutable_numeric_data(AttrIndex attr);
  CategoryId* mutable_categorical_data(AttrIndex attr);
  CategoryId* mutable_label_data();

  /// All weights.
  const std::vector<double>& weights() const { return weights_; }

  /// Overwrites every record's weight; `weights` must have num_rows()
  /// entries.
  void SetAllWeights(std::vector<double> weights);

  /// Resets every record's weight to 1.
  void ResetWeights();

  // -- Demand paging --------------------------------------------------------
  //
  // Threading contract: per-row and whole-column accessors fault a missing
  // column in but do not pin it. That is safe from a single thread, or
  // from many threads when each holds a ColumnPin for every column it
  // reads (the condition-search engine pins the column it scans). A
  // faulting thread can evict any unpinned column, so unpinned concurrent
  // reads race with eviction — batch scorers and tree builders therefore
  // drop to serial on paged datasets.

  /// Turns this (empty) dataset into a demand-paged view of `pager` with
  /// `num_rows` records: labels and weights are sized and resident (fill
  /// them via mutable_label_data / SetAllWeights), feature columns start
  /// non-resident. At most `budget_bytes` of unpinned feature-column bytes
  /// are kept resident (0 = evict everything unpinned after each fault).
  void AttachPager(std::shared_ptr<const ColumnPager> pager, size_t num_rows,
                   size_t budget_bytes);

  /// True when feature columns are demand-paged.
  bool paged() const { return pager_state_ != nullptr; }

  /// A new paged view over the same pager, labels, weights and hints, with
  /// its own resident set and budget. Each parallel class learner of an
  /// out-of-core multiclass run trains on its own view, so evictions in
  /// one learner never invalidate a column another learner is scanning.
  Dataset ClonePagedView() const;

  /// Keeps `attr`'s column resident until the pin is destroyed. On a
  /// non-paged dataset this is a no-op pin.
  class ColumnPin {
   public:
    ColumnPin() = default;
    ColumnPin(ColumnPin&& other) noexcept
        : dataset_(other.dataset_), attr_(other.attr_) {
      other.dataset_ = nullptr;
    }
    ColumnPin& operator=(ColumnPin&& other) noexcept {
      Release();
      dataset_ = other.dataset_;
      attr_ = other.attr_;
      other.dataset_ = nullptr;
      return *this;
    }
    ColumnPin(const ColumnPin&) = delete;
    ColumnPin& operator=(const ColumnPin&) = delete;
    ~ColumnPin() { Release(); }

   private:
    friend class Dataset;
    ColumnPin(const Dataset* dataset, AttrIndex attr)
        : dataset_(dataset), attr_(attr) {}
    void Release();
    const Dataset* dataset_ = nullptr;
    AttrIndex attr_ = 0;
  };

  /// Faults `attr` in (when paged) and pins it resident.
  ColumnPin PinColumn(AttrIndex attr) const;

  /// Currently resident feature-column bytes (all columns when not paged).
  size_t resident_column_bytes() const;

  /// High-water mark of resident feature-column bytes since AttachPager.
  size_t peak_resident_column_bytes() const;

  /// Paging traffic counters (0 when not paged).
  uint64_t column_fault_count() const;
  uint64_t column_evict_count() const;

  // -- Per-attribute value-range hints --------------------------------------
  //
  // Optional [min, max] per feature attribute (e.g. from shard-store
  // zonemaps). The condition-search engine skips numeric attributes whose
  // range is a single finite point — a constant column can never produce a
  // cut — without touching the column. Empty when unknown.

  void SetNumericRangeHints(std::vector<std::pair<double, double>> hints);
  const std::vector<std::pair<double, double>>& numeric_range_hints() const {
    return numeric_range_hints_;
  }

  // -- Aggregates ------------------------------------------------------------

  /// Sum of weights of records labelled `cls` among `rows`.
  double ClassWeight(const RowSubset& rows, CategoryId cls) const;

  /// Sum of weights of all records among `rows`.
  double TotalWeight(const RowSubset& rows) const;

  /// Count (unweighted) of records labelled `cls`.
  size_t CountClass(CategoryId cls) const;

  /// Row ids 0..num_rows()-1.
  RowSubset AllRows() const;

  /// Rows from `rows` whose label equals (matches==true) / differs from
  /// (matches==false) `cls`.
  RowSubset FilterByClass(const RowSubset& rows, CategoryId cls,
                          bool matches) const;

 private:
  struct Column {
    std::vector<double> numeric;
    std::vector<CategoryId> categorical;
  };

  // All paging bookkeeping lives behind one heap object so Dataset stays
  // movable; the mutex guards everything here except the `resident` flags,
  // which readers check with an acquire load on the fast path.
  struct PagerState {
    std::shared_ptr<const ColumnPager> pager;
    size_t budget_bytes = 0;
    mutable std::mutex mutex;
    std::unique_ptr<std::atomic<bool>[]> resident;
    std::vector<int> pins;
    std::vector<uint64_t> last_use;
    std::vector<size_t> bytes;
    uint64_t tick = 0;
    size_t resident_bytes = 0;
    size_t peak_resident_bytes = 0;
    uint64_t fault_count = 0;
    uint64_t evict_count = 0;
  };

  void EnsureResident(AttrIndex attr) const;
  void FaultColumnLocked(AttrIndex attr) const;  // pager_state_->mutex held
  void EvictToBudgetLocked(AttrIndex exclude) const;
  void UnpinColumn(AttrIndex attr) const;
  size_t ColumnByteSize(AttrIndex attr) const;

  Schema schema_;
  mutable std::vector<Column> columns_;  // mutable: paging faults fill them
  std::vector<CategoryId> labels_;
  std::vector<double> weights_;
  uint64_t data_version_ = 0;
  uint64_t weight_version_ = 0;
  std::vector<std::pair<double, double>> numeric_range_hints_;
  mutable std::unique_ptr<PagerState> pager_state_;
};

}  // namespace pnr

#endif  // PNR_DATA_DATASET_H_
