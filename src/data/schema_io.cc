#include "data/schema_io.h"

#include <sstream>
#include <vector>

#include "common/file_io.h"
#include "common/string_util.h"

namespace pnr {
namespace {

// Error on the content of line `line` (1-based physical line number).
Status ParseError(size_t line, const std::string& detail) {
  return Status::InvalidArgument("schema parse error at line " +
                                 std::to_string(line) + ": " + detail);
}

// Line cursor tolerating CRLF and trailing whitespace (every line is
// trimmed before use). Unlike the model reader this one must preserve
// blank *suffixes* of keyword lines ("value" with an empty value), so it
// does not skip lines that trim to a bare keyword. Tracks the 1-based
// physical line number so parse errors can name where they happened.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : stream_(text) {}

  bool Next(std::string* line) {
    while (std::getline(stream_, *line)) {
      ++line_;
      *line = std::string(TrimWhitespace(*line));
      if (!line->empty()) return true;
    }
    return false;
  }

  /// Physical line of the last line Next returned (0 before the first).
  size_t line() const { return line_; }

 private:
  std::istringstream stream_;
  size_t line_ = 0;
};

// Error for input that ended mid-record: names the last line that existed
// and the token the parser was still waiting for, so a truncated file is
// distinguishable from a malformed one.
Status TruncatedError(const LineReader& reader, const std::string& expected) {
  return Status::InvalidArgument(
      "schema parse error: unexpected end of input after line " +
      std::to_string(reader.line()) + ": expected " + expected);
}

// Splits a trimmed line into its first token and the trimmed remainder
// ("categorical 3 proto type" -> "categorical", "3 proto type").
void SplitKeyword(const std::string& line, std::string* keyword,
                  std::string* rest) {
  size_t space = 0;
  while (space < line.size() && line[space] != ' ' && line[space] != '\t') {
    ++space;
  }
  *keyword = line.substr(0, space);
  *rest = std::string(TrimWhitespace(line.substr(space)));
}

// Splits `rest` into a leading integer and the trimmed remainder.
bool SplitCount(const std::string& rest, long long* count,
                std::string* name) {
  std::string count_token;
  SplitKeyword(rest, &count_token, name);
  return ParseInt64(count_token, count) && *count >= 0;
}

}  // namespace

std::string SerializeSchema(const Schema& schema) {
  std::ostringstream out;
  out << "pnrule-schema v1\n";
  out << "attributes " << schema.num_attributes() << '\n';
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(static_cast<AttrIndex>(a));
    if (attr.is_numeric()) {
      out << "numeric " << attr.name() << '\n';
    } else {
      out << "categorical " << attr.num_categories() << ' ' << attr.name()
          << '\n';
      for (size_t v = 0; v < attr.num_categories(); ++v) {
        out << "value " << attr.CategoryName(static_cast<CategoryId>(v))
            << '\n';
      }
    }
  }
  const Attribute& cls = schema.class_attr();
  out << "class " << cls.num_categories() << ' ' << cls.name() << '\n';
  for (size_t v = 0; v < cls.num_categories(); ++v) {
    out << "label " << cls.CategoryName(static_cast<CategoryId>(v)) << '\n';
  }
  out << "end\n";
  return out.str();
}

StatusOr<Schema> ParseSchema(const std::string& text) {
  LineReader reader(text);
  std::string line;
  std::string keyword;
  std::string rest;
  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'pnrule-schema v1' header");
  }
  SplitKeyword(line, &keyword, &rest);
  if (keyword != "pnrule-schema") {
    return ParseError(reader.line(), "missing 'pnrule-schema v1' header");
  }
  if (rest != "v1") {
    return Status::InvalidArgument("unsupported schema format version '" +
                                   rest + "' (this build reads v1)");
  }

  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'attributes <n>'");
  }
  SplitKeyword(line, &keyword, &rest);
  long long num_attrs = 0;
  if (keyword != "attributes" || !ParseInt64(rest, &num_attrs) ||
      num_attrs < 0) {
    return ParseError(reader.line(), "expected 'attributes <n>'");
  }

  Schema schema;
  for (long long a = 0; a < num_attrs; ++a) {
    if (!reader.Next(&line)) {
      return TruncatedError(reader, "attribute " + std::to_string(a + 1) +
                                        " of " + std::to_string(num_attrs));
    }
    SplitKeyword(line, &keyword, &rest);
    if (keyword == "numeric") {
      if (rest.empty()) {
        return ParseError(reader.line(), "numeric attribute without name");
      }
      schema.AddAttribute(Attribute::Numeric(rest));
      continue;
    }
    if (keyword != "categorical") {
      return ParseError(reader.line(),
                        "expected 'numeric' or 'categorical', got '" +
                            keyword + "'");
    }
    long long num_values = 0;
    std::string name;
    if (!SplitCount(rest, &num_values, &name) || name.empty()) {
      return ParseError(reader.line(), "expected 'categorical <k> <name>'");
    }
    std::vector<std::string> values;
    values.reserve(static_cast<size_t>(num_values));
    for (long long v = 0; v < num_values; ++v) {
      if (!reader.Next(&line)) {
        return TruncatedError(reader, "value " + std::to_string(v + 1) +
                                          " of " +
                                          std::to_string(num_values) +
                                          " for attribute '" + name + "'");
      }
      SplitKeyword(line, &keyword, &rest);
      if (keyword != "value") {
        return ParseError(reader.line(), "expected 'value <v>'");
      }
      values.push_back(rest);
    }
    schema.AddAttribute(Attribute::Categorical(name, std::move(values)));
  }

  if (!reader.Next(&line)) {
    return TruncatedError(reader, "'class <k> <name>'");
  }
  SplitKeyword(line, &keyword, &rest);
  long long num_labels = 0;
  std::string class_name;
  if (keyword != "class" || !SplitCount(rest, &num_labels, &class_name) ||
      class_name.empty()) {
    return ParseError(reader.line(), "expected 'class <k> <name>'");
  }
  // The default-constructed class attribute is named "class"; rebuild it
  // with the recorded name so round-trips are exact.
  schema.class_attr() = Attribute::Categorical(class_name);
  for (long long v = 0; v < num_labels; ++v) {
    if (!reader.Next(&line)) {
      return TruncatedError(reader, "label " + std::to_string(v + 1) +
                                        " of " + std::to_string(num_labels));
    }
    SplitKeyword(line, &keyword, &rest);
    if (keyword != "label") {
      return ParseError(reader.line(), "expected 'label <v>'");
    }
    schema.GetOrAddClass(rest);
  }
  if (!reader.Next(&line)) return TruncatedError(reader, "'end' marker");
  if (line != "end") {
    return ParseError(reader.line(), "missing 'end' marker");
  }
  // Content after 'end' means concatenation or corruption; reject rather
  // than silently ignore.
  if (reader.Next(&line)) {
    return ParseError(reader.line(), "trailing content after 'end'");
  }
  return schema;
}

Status SaveSchema(const Schema& schema, const std::string& path) {
  // Routed through file_io so fault-injection tests can exercise failed and
  // short writes; a failed save surfaces as a clean IOError.
  return WriteStringToFile(SerializeSchema(schema), path);
}

StatusOr<Schema> LoadSchema(const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseSchema(*text);
}

}  // namespace pnr
