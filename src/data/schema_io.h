// Text serialization of Schemas ("schema sidecars").
//
// Model files (pnrule/model_io.h) reference attributes and categories by
// name, so loading one requires a Schema — which, offline, comes from the
// dataset being scored. A serving process has no dataset at startup: it
// needs the training schema as a standalone artifact. `pnr train` writes
// one next to every saved model (`<model>.schema`), and the serving
// registry loads the pair.
//
// Format (v1), line-oriented like the model format; names and values are
// the remainder of their line, so they may contain internal spaces:
//   pnrule-schema v1
//   attributes <n>
//   numeric <name>               | categorical <k> <name>
//                                |   value <v>     (k lines, in id order)
//   class <k> <name>
//   label <v>                    (k lines, in id order)
//   end
//
// Category and label ids are assigned in file order, so a parsed schema
// dictionary-encodes values identically to the one it was written from.

#ifndef PNR_DATA_SCHEMA_IO_H_
#define PNR_DATA_SCHEMA_IO_H_

#include <string>

#include "common/status.h"
#include "data/schema.h"

namespace pnr {

/// Renders `schema` in the v1 sidecar format.
std::string SerializeSchema(const Schema& schema);

/// Parses a v1 schema sidecar. Tolerates CRLF endings and trailing
/// whitespace; rejects unknown format versions with an InvalidArgument
/// naming the version.
StatusOr<Schema> ParseSchema(const std::string& text);

/// Convenience wrappers writing to / reading from a file.
Status SaveSchema(const Schema& schema, const std::string& path);
StatusOr<Schema> LoadSchema(const std::string& path);

}  // namespace pnr

#endif  // PNR_DATA_SCHEMA_IO_H_
