// Parallel data-ingestion engine: chunked CSV/ARFF parsing over
// memory-mapped input with a deterministic dictionary merge.
//
// Every workload in this library starts by turning raw bytes into a
// columnar Dataset, and on rare-class problems the training sets are large
// precisely because positives are scarce. The engine makes that first stage
// parallel without giving up the repository-wide determinism contract:
//
//   1. The file is memory-mapped (streaming fallback) and a quote-aware
//      structural scan splits it into row-aligned chunks.
//   2. Chunks are parsed concurrently on a ThreadPool into thread-local
//      columnar blocks: numeric cells go straight into per-chunk double
//      vectors, categorical cells into per-chunk local dictionaries (values
//      kept in chunk-local first-appearance order) plus local codes.
//   3. Local dictionaries are merged serially in file order: walking chunks
//      first-to-last and each chunk's values in local first-appearance
//      order visits every distinct string exactly in its global
//      first-appearance row order, so the CategoryIds — and every model
//      trained downstream — are byte-identical to the serial parse for any
//      thread count and any chunking.
//   4. A final parallel pass rewrites the local codes to global ids; each
//      chunk owns a disjoint row range of the pre-sized Dataset storage.
//
// The serial reference parsers (the `--threads 1` path) implement the same
// grammar independently; tests assert the two produce bitwise-identical
// datasets, which is what protects the concurrency orchestration.

#ifndef PNR_DATA_INGEST_H_
#define PNR_DATA_INGEST_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "data/arff.h"
#include "data/csv.h"
#include "data/dataset.h"

namespace pnr {

/// Knobs controlling how the ingest engine reads and parallelizes.
struct IngestOptions {
  /// Worker threads for chunk parsing: 1 = the serial reference parser,
  /// 0 = all hardware threads, n = n threads. The loaded Dataset is
  /// byte-identical for every value.
  size_t num_threads = 1;

  /// Target chunk size in bytes; 0 picks one automatically (enough chunks
  /// to balance the pool, floored at ThreadPool::kMinBytesPerThread). When
  /// set explicitly the byte-based thread clamp is bypassed — tests use
  /// tiny values to force many chunks on small inputs.
  size_t chunk_bytes = 0;

  /// Load files via mmap when possible; false forces streaming reads.
  bool allow_mmap = true;
};

/// The ingestion engine. Stateless apart from its options; one engine can
/// load any number of files. `ReadCsv` / `ReadArff` are thin wrappers that
/// construct one from the per-format read options.
class IngestEngine {
 public:
  explicit IngestEngine(IngestOptions options = {}) : options_(options) {}

  const IngestOptions& options() const { return options_; }

  /// Loads a CSV file (mmap + chunk-parallel parse). The `num_threads`
  /// field of `options` is ignored; the engine's own options win.
  StatusOr<Dataset> LoadCsv(const std::string& path,
                            const CsvReadOptions& options = {}) const;

  /// Parses CSV from an in-memory buffer (same semantics as LoadCsv).
  StatusOr<Dataset> ParseCsv(std::string_view text,
                             const CsvReadOptions& options = {}) const;

  /// Loads an ARFF file: serial header parse, chunk-parallel @data parse.
  StatusOr<Dataset> LoadArff(const std::string& path,
                             const ArffReadOptions& options = {}) const;

  /// Parses ARFF from an in-memory buffer (same semantics as LoadArff).
  StatusOr<Dataset> ParseArff(std::string_view text,
                              const ArffReadOptions& options = {}) const;

 private:
  IngestOptions options_;
};

// -- Path-level entry points (exposed for tests and benchmarks) -------------

/// The serial reference CSV parser: record-at-a-time scalar scan that
/// materializes every cell, infers column types, then builds the Dataset in
/// row order. Deliberately simple — it is the correctness baseline the
/// parallel engine is verified against (and the benchmark's serial lane).
StatusOr<Dataset> IngestCsvSerial(std::string_view text,
                                  const CsvReadOptions& options);

/// The chunk-parallel CSV engine described in the file comment. Produces a
/// Dataset bitwise-identical to IngestCsvSerial for any `ingest` settings.
StatusOr<Dataset> IngestCsvParallel(std::string_view text,
                                    const CsvReadOptions& options,
                                    const IngestOptions& ingest);

/// Serial reference parser for an ARFF `@data` section. `layout` comes from
/// ParseArffHeader (data/arff.h) and is consumed; the returned Dataset owns
/// its schema.
StatusOr<Dataset> IngestArffRowsSerial(std::string_view text,
                                       ArffLayout layout);

/// Chunk-parallel parser for an ARFF `@data` section. ARFF dictionaries are
/// fixed by the header declarations, so no merge is needed; rows land in
/// pre-sized storage at global offsets. Bitwise-identical to the serial
/// reference for any settings.
StatusOr<Dataset> IngestArffRowsParallel(std::string_view text,
                                         ArffLayout layout,
                                         const IngestOptions& ingest);

}  // namespace pnr

#endif  // PNR_DATA_INGEST_H_
