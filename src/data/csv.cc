#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pnr {
namespace {

StatusOr<Dataset> BuildDataset(
    const std::vector<std::vector<std::string>>& cells,
    const std::vector<std::string>& names, size_t class_col) {
  const size_t num_cols = names.size();
  // Pass 1: decide per-column type.
  std::vector<bool> numeric(num_cols, true);
  for (const auto& row : cells) {
    for (size_t c = 0; c < num_cols; ++c) {
      if (c == class_col || !numeric[c]) continue;
      double value = 0.0;
      if (!ParseDouble(row[c], &value)) numeric[c] = false;
    }
  }

  Schema schema;
  std::vector<AttrIndex> attr_of_col(num_cols, -1);
  for (size_t c = 0; c < num_cols; ++c) {
    if (c == class_col) continue;
    attr_of_col[c] = schema.AddAttribute(
        numeric[c] ? Attribute::Numeric(names[c])
                   : Attribute::Categorical(names[c]));
  }

  Dataset dataset(std::move(schema));
  dataset.Reserve(cells.size());
  for (const auto& row : cells) {
    const RowId r = dataset.AddRow();
    for (size_t c = 0; c < num_cols; ++c) {
      if (c == class_col) {
        dataset.set_label(
            r, dataset.mutable_schema().GetOrAddClass(row[c]));
        continue;
      }
      const AttrIndex a = attr_of_col[c];
      if (numeric[c]) {
        double value = 0.0;
        if (!ParseDouble(row[c], &value)) {
          return Status::InvalidArgument("non-numeric cell in numeric column " +
                                         names[c]);
        }
        dataset.set_numeric(r, a, value);
      } else {
        dataset.set_categorical(
            r, a, dataset.mutable_schema().attribute(a).GetOrAddCategory(
                      row[c]));
      }
    }
  }
  return dataset;
}

}  // namespace

StatusOr<Dataset> ReadCsvFromString(const std::string& text,
                                    const CsvReadOptions& options) {
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> names;
  std::istringstream stream(text);
  std::string line;
  size_t num_cols = 0;
  bool first = true;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (TrimWhitespace(line).empty()) continue;
    std::vector<std::string> fields = SplitString(line, options.delimiter);
    for (auto& field : fields) field = std::string(TrimWhitespace(field));
    if (first) {
      num_cols = fields.size();
      if (num_cols < 2) {
        return Status::InvalidArgument("CSV needs at least 2 columns");
      }
      if (options.has_header) {
        names = fields;
        first = false;
        continue;
      }
      names.resize(num_cols);
      for (size_t c = 0; c < num_cols; ++c) {
        names[c] = "attr" + std::to_string(c);
      }
      first = false;
    }
    if (fields.size() != num_cols) {
      return Status::InvalidArgument(
          "row with " + std::to_string(fields.size()) + " fields, expected " +
          std::to_string(num_cols));
    }
    cells.push_back(std::move(fields));
  }
  if (num_cols == 0) return Status::InvalidArgument("empty CSV input");
  if (cells.empty()) return Status::InvalidArgument("CSV has no data rows");

  size_t class_col = num_cols - 1;
  if (!options.class_column.empty()) {
    bool found = false;
    for (size_t c = 0; c < num_cols; ++c) {
      if (names[c] == options.class_column) {
        class_col = c;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("class column '" + options.class_column +
                              "' not present");
    }
  }
  return BuildDataset(cells, names, class_col);
}

StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvReadOptions& options) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsvFromString(buffer.str(), options);
}

Status WriteCsv(const Dataset& dataset, const std::string& path,
                char delimiter) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "' for write");
  const Schema& schema = dataset.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    file << schema.attribute(static_cast<AttrIndex>(a)).name() << delimiter;
  }
  file << schema.class_attr().name() << '\n';
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const AttrIndex attr = static_cast<AttrIndex>(a);
      if (schema.attribute(attr).is_numeric()) {
        file << dataset.numeric(r, attr);
      } else {
        const CategoryId id = dataset.categorical(r, attr);
        file << (id == kInvalidCategory
                     ? "?"
                     : schema.attribute(attr).CategoryName(id));
      }
      file << delimiter;
    }
    file << schema.class_attr().CategoryName(dataset.label(r)) << '\n';
  }
  if (!file) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace pnr
