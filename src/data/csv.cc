// CSV entry points. Parsing lives in the ingest engine (data/ingest.cc):
// these wrappers only pick the engine options from CsvReadOptions. WriteCsv
// stays here.

#include "data/csv.h"

#include <fstream>

#include "data/ingest.h"

namespace pnr {
namespace {

IngestOptions EngineOptions(const CsvReadOptions& options) {
  IngestOptions ingest;
  ingest.num_threads = options.num_threads;
  return ingest;
}

}  // namespace

StatusOr<Dataset> ReadCsvFromString(const std::string& text,
                                    const CsvReadOptions& options) {
  return IngestEngine(EngineOptions(options)).ParseCsv(text, options);
}

StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvReadOptions& options) {
  return IngestEngine(EngineOptions(options)).LoadCsv(path, options);
}

Status WriteCsv(const Dataset& dataset, const std::string& path,
                char delimiter) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "' for write");
  const Schema& schema = dataset.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    file << schema.attribute(static_cast<AttrIndex>(a)).name() << delimiter;
  }
  file << schema.class_attr().name() << '\n';
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const AttrIndex attr = static_cast<AttrIndex>(a);
      if (schema.attribute(attr).is_numeric()) {
        file << dataset.numeric(r, attr);
      } else {
        const CategoryId id = dataset.categorical(r, attr);
        file << (id == kInvalidCategory
                     ? "?"
                     : schema.attribute(attr).CategoryName(id));
      }
      file << delimiter;
    }
    file << schema.class_attr().CategoryName(dataset.label(r)) << '\n';
  }
  if (!file) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace pnr
