// Schema: an ordered list of attributes plus the class attribute.

#ifndef PNR_DATA_SCHEMA_H_
#define PNR_DATA_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/attribute.h"

namespace pnr {

/// Index of an attribute within a schema.
using AttrIndex = int32_t;

/// Ordered collection of feature attributes plus a categorical class
/// attribute. The class attribute is stored separately from the features.
class Schema {
 public:
  Schema() : class_attr_(Attribute::Categorical("class")) {}

  /// Appends a feature attribute; returns its index.
  AttrIndex AddAttribute(Attribute attr);

  /// Number of feature attributes.
  size_t num_attributes() const { return attributes_.size(); }

  /// Feature attribute at `index` (0 <= index < num_attributes()).
  const Attribute& attribute(AttrIndex index) const;
  Attribute& attribute(AttrIndex index);

  /// Index of the feature named `name`, or error if absent.
  StatusOr<AttrIndex> FindAttribute(const std::string& name) const;

  /// The class attribute (categorical; labels are its CategoryIds).
  const Attribute& class_attr() const { return class_attr_; }
  Attribute& class_attr() { return class_attr_; }

  /// Registers (or finds) a class label and returns its id.
  CategoryId GetOrAddClass(std::string_view label) {
    return class_attr_.GetOrAddCategory(label);
  }

  /// Number of distinct class labels.
  size_t num_classes() const { return class_attr_.num_categories(); }

 private:
  std::vector<Attribute> attributes_;
  Attribute class_attr_;
};

}  // namespace pnr

#endif  // PNR_DATA_SCHEMA_H_
