#include "data/dataset.h"

#include <cassert>

namespace pnr {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

RowId Dataset::AddRow() {
  const RowId row = static_cast<RowId>(num_rows());
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Attribute& attr = schema_.attribute(static_cast<AttrIndex>(i));
    if (attr.is_numeric()) {
      columns_[i].numeric.push_back(0.0);
    } else {
      columns_[i].categorical.push_back(
          attr.num_categories() > 0 ? 0 : kInvalidCategory);
    }
  }
  labels_.push_back(0);
  weights_.push_back(1.0);
  ++data_version_;
  return row;
}

RowId Dataset::AppendRows(size_t n) {
  const RowId first = static_cast<RowId>(num_rows());
  const size_t total = num_rows() + n;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Attribute& attr = schema_.attribute(static_cast<AttrIndex>(i));
    if (attr.is_numeric()) {
      columns_[i].numeric.resize(total, 0.0);
    } else {
      columns_[i].categorical.resize(
          total, attr.num_categories() > 0 ? 0 : kInvalidCategory);
    }
  }
  labels_.resize(total, 0);
  weights_.resize(total, 1.0);
  ++data_version_;
  return first;
}

void Dataset::Reserve(size_t n) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Attribute& attr = schema_.attribute(static_cast<AttrIndex>(i));
    if (attr.is_numeric()) {
      columns_[i].numeric.reserve(n);
    } else {
      columns_[i].categorical.reserve(n);
    }
  }
  labels_.reserve(n);
  weights_.reserve(n);
}

double Dataset::numeric(RowId row, AttrIndex attr) const {
  assert(schema_.attribute(attr).is_numeric());
  assert(row < num_rows());
  return columns_[static_cast<size_t>(attr)].numeric[row];
}

void Dataset::set_numeric(RowId row, AttrIndex attr, double value) {
  assert(schema_.attribute(attr).is_numeric());
  assert(row < num_rows());
  columns_[static_cast<size_t>(attr)].numeric[row] = value;
  ++data_version_;
}

CategoryId Dataset::categorical(RowId row, AttrIndex attr) const {
  assert(schema_.attribute(attr).is_categorical());
  assert(row < num_rows());
  return columns_[static_cast<size_t>(attr)].categorical[row];
}

void Dataset::set_categorical(RowId row, AttrIndex attr, CategoryId value) {
  assert(schema_.attribute(attr).is_categorical());
  assert(row < num_rows());
  columns_[static_cast<size_t>(attr)].categorical[row] = value;
  ++data_version_;
}

const std::vector<double>& Dataset::numeric_column(AttrIndex attr) const {
  assert(schema_.attribute(attr).is_numeric());
  return columns_[static_cast<size_t>(attr)].numeric;
}

const std::vector<CategoryId>& Dataset::categorical_column(
    AttrIndex attr) const {
  assert(schema_.attribute(attr).is_categorical());
  return columns_[static_cast<size_t>(attr)].categorical;
}

double* Dataset::mutable_numeric_data(AttrIndex attr) {
  assert(schema_.attribute(attr).is_numeric());
  ++data_version_;
  return columns_[static_cast<size_t>(attr)].numeric.data();
}

CategoryId* Dataset::mutable_categorical_data(AttrIndex attr) {
  assert(schema_.attribute(attr).is_categorical());
  ++data_version_;
  return columns_[static_cast<size_t>(attr)].categorical.data();
}

CategoryId* Dataset::mutable_label_data() {
  ++data_version_;
  return labels_.data();
}

void Dataset::SetAllWeights(std::vector<double> weights) {
  assert(weights.size() == num_rows());
  weights_ = std::move(weights);
  ++weight_version_;
}

void Dataset::ResetWeights() {
  weights_.assign(num_rows(), 1.0);
  ++weight_version_;
}

double Dataset::ClassWeight(const RowSubset& rows, CategoryId cls) const {
  double total = 0.0;
  for (RowId row : rows) {
    if (labels_[row] == cls) total += weights_[row];
  }
  return total;
}

double Dataset::TotalWeight(const RowSubset& rows) const {
  double total = 0.0;
  for (RowId row : rows) total += weights_[row];
  return total;
}

size_t Dataset::CountClass(CategoryId cls) const {
  size_t count = 0;
  for (CategoryId label : labels_) {
    if (label == cls) ++count;
  }
  return count;
}

RowSubset Dataset::AllRows() const {
  RowSubset rows(num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<RowId>(i);
  return rows;
}

RowSubset Dataset::FilterByClass(const RowSubset& rows, CategoryId cls,
                                 bool matches) const {
  RowSubset out;
  out.reserve(rows.size());
  for (RowId row : rows) {
    if ((labels_[row] == cls) == matches) out.push_back(row);
  }
  return out;
}

}  // namespace pnr
