#include "data/dataset.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace pnr {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

Dataset::Dataset(const Dataset& other)
    : schema_(other.schema_),
      columns_(other.columns_),
      labels_(other.labels_),
      weights_(other.weights_),
      data_version_(other.data_version_),
      weight_version_(other.weight_version_),
      numeric_range_hints_(other.numeric_range_hints_) {
  assert(other.pager_state_ == nullptr &&
         "copying a paged dataset is unsupported; use ClonePagedView");
}

Dataset& Dataset::operator=(const Dataset& other) {
  assert(other.pager_state_ == nullptr &&
         "copying a paged dataset is unsupported; use ClonePagedView");
  if (this == &other) return *this;
  schema_ = other.schema_;
  columns_ = other.columns_;
  labels_ = other.labels_;
  weights_ = other.weights_;
  data_version_ = other.data_version_;
  weight_version_ = other.weight_version_;
  numeric_range_hints_ = other.numeric_range_hints_;
  pager_state_.reset();
  return *this;
}

RowId Dataset::AddRow() {
  assert(!paged() && "cannot mutate rows of a paged dataset");
  const RowId row = static_cast<RowId>(num_rows());
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Attribute& attr = schema_.attribute(static_cast<AttrIndex>(i));
    if (attr.is_numeric()) {
      columns_[i].numeric.push_back(0.0);
    } else {
      columns_[i].categorical.push_back(
          attr.num_categories() > 0 ? 0 : kInvalidCategory);
    }
  }
  labels_.push_back(0);
  weights_.push_back(1.0);
  ++data_version_;
  return row;
}

RowId Dataset::AppendRows(size_t n) {
  assert(!paged() && "cannot mutate rows of a paged dataset");
  const RowId first = static_cast<RowId>(num_rows());
  const size_t total = num_rows() + n;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Attribute& attr = schema_.attribute(static_cast<AttrIndex>(i));
    if (attr.is_numeric()) {
      columns_[i].numeric.resize(total, 0.0);
    } else {
      columns_[i].categorical.resize(
          total, attr.num_categories() > 0 ? 0 : kInvalidCategory);
    }
  }
  labels_.resize(total, 0);
  weights_.resize(total, 1.0);
  ++data_version_;
  return first;
}

void Dataset::Reserve(size_t n) {
  assert(!paged() && "cannot mutate rows of a paged dataset");
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Attribute& attr = schema_.attribute(static_cast<AttrIndex>(i));
    if (attr.is_numeric()) {
      columns_[i].numeric.reserve(n);
    } else {
      columns_[i].categorical.reserve(n);
    }
  }
  labels_.reserve(n);
  weights_.reserve(n);
}

double Dataset::numeric(RowId row, AttrIndex attr) const {
  assert(schema_.attribute(attr).is_numeric());
  assert(row < num_rows());
  EnsureResident(attr);
  return columns_[static_cast<size_t>(attr)].numeric[row];
}

void Dataset::set_numeric(RowId row, AttrIndex attr, double value) {
  assert(!paged() && "cannot mutate feature cells of a paged dataset");
  assert(schema_.attribute(attr).is_numeric());
  assert(row < num_rows());
  columns_[static_cast<size_t>(attr)].numeric[row] = value;
  ++data_version_;
}

CategoryId Dataset::categorical(RowId row, AttrIndex attr) const {
  assert(schema_.attribute(attr).is_categorical());
  assert(row < num_rows());
  EnsureResident(attr);
  return columns_[static_cast<size_t>(attr)].categorical[row];
}

void Dataset::set_categorical(RowId row, AttrIndex attr, CategoryId value) {
  assert(!paged() && "cannot mutate feature cells of a paged dataset");
  assert(schema_.attribute(attr).is_categorical());
  assert(row < num_rows());
  columns_[static_cast<size_t>(attr)].categorical[row] = value;
  ++data_version_;
}

const std::vector<double>& Dataset::numeric_column(AttrIndex attr) const {
  assert(schema_.attribute(attr).is_numeric());
  EnsureResident(attr);
  return columns_[static_cast<size_t>(attr)].numeric;
}

const std::vector<CategoryId>& Dataset::categorical_column(
    AttrIndex attr) const {
  assert(schema_.attribute(attr).is_categorical());
  EnsureResident(attr);
  return columns_[static_cast<size_t>(attr)].categorical;
}

double* Dataset::mutable_numeric_data(AttrIndex attr) {
  assert(!paged() && "cannot mutate feature cells of a paged dataset");
  assert(schema_.attribute(attr).is_numeric());
  ++data_version_;
  return columns_[static_cast<size_t>(attr)].numeric.data();
}

CategoryId* Dataset::mutable_categorical_data(AttrIndex attr) {
  assert(!paged() && "cannot mutate feature cells of a paged dataset");
  assert(schema_.attribute(attr).is_categorical());
  ++data_version_;
  return columns_[static_cast<size_t>(attr)].categorical.data();
}

CategoryId* Dataset::mutable_label_data() {
  ++data_version_;
  return labels_.data();
}

void Dataset::SetAllWeights(std::vector<double> weights) {
  assert(weights.size() == num_rows());
  weights_ = std::move(weights);
  ++weight_version_;
}

void Dataset::ResetWeights() {
  weights_.assign(num_rows(), 1.0);
  ++weight_version_;
}

// -- Demand paging ----------------------------------------------------------

void Dataset::AttachPager(std::shared_ptr<const ColumnPager> pager,
                          size_t num_rows, size_t budget_bytes) {
  assert(pager != nullptr);
  assert(!paged() && "pager already attached");
  assert(this->num_rows() == 0 && "AttachPager requires an empty dataset");
  labels_.assign(num_rows, 0);
  weights_.assign(num_rows, 1.0);
  for (Column& column : columns_) {
    std::vector<double>().swap(column.numeric);
    std::vector<CategoryId>().swap(column.categorical);
  }
  auto state = std::make_unique<PagerState>();
  state->pager = std::move(pager);
  state->budget_bytes = budget_bytes;
  const size_t n = columns_.size();
  state->resident = std::make_unique<std::atomic<bool>[]>(n);
  for (size_t i = 0; i < n; ++i) {
    state->resident[i].store(false, std::memory_order_relaxed);
  }
  state->pins.assign(n, 0);
  state->last_use.assign(n, 0);
  state->bytes.assign(n, 0);
  pager_state_ = std::move(state);
  ++data_version_;
}

Dataset Dataset::ClonePagedView() const {
  assert(paged());
  Dataset clone(schema_);
  clone.AttachPager(pager_state_->pager, num_rows(),
                    pager_state_->budget_bytes);
  clone.labels_ = labels_;
  clone.weights_ = weights_;
  clone.numeric_range_hints_ = numeric_range_hints_;
  return clone;
}

size_t Dataset::ColumnByteSize(AttrIndex attr) const {
  const Column& column = columns_[static_cast<size_t>(attr)];
  return column.numeric.size() * sizeof(double) +
         column.categorical.size() * sizeof(CategoryId);
}

void Dataset::EnsureResident(AttrIndex attr) const {
  PagerState* state = pager_state_.get();
  if (state == nullptr) return;
  if (state->resident[static_cast<size_t>(attr)].load(
          std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  FaultColumnLocked(attr);
}

void Dataset::FaultColumnLocked(AttrIndex attr) const {
  PagerState* state = pager_state_.get();
  const size_t idx = static_cast<size_t>(attr);
  if (state->resident[idx].load(std::memory_order_relaxed)) {
    state->last_use[idx] = ++state->tick;
    return;
  }
  Column& column = columns_[idx];
  const Attribute& attribute = schema_.attribute(attr);
  const Status status =
      attribute.is_numeric()
          ? state->pager->FillNumeric(attr, &column.numeric)
          : state->pager->FillCategorical(attr, &column.categorical);
  if (!status.ok()) {
    // The backing store was fully validated when it was opened, so a fault
    // failure means the file changed underneath us or the device failed —
    // there is no caller to surface a Status to from a cell accessor.
    std::fprintf(stderr, "pnr: fatal: column fault failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  const size_t filled = attribute.is_numeric() ? column.numeric.size()
                                               : column.categorical.size();
  assert(filled == num_rows() && "pager filled wrong row count");
  (void)filled;
  state->bytes[idx] = ColumnByteSize(attr);
  state->resident_bytes += state->bytes[idx];
  if (state->resident_bytes > state->peak_resident_bytes) {
    state->peak_resident_bytes = state->resident_bytes;
  }
  ++state->fault_count;
  state->last_use[idx] = ++state->tick;
  state->resident[idx].store(true, std::memory_order_release);
  EvictToBudgetLocked(attr);
}

void Dataset::EvictToBudgetLocked(AttrIndex exclude) const {
  PagerState* state = pager_state_.get();
  while (state->resident_bytes > state->budget_bytes) {
    size_t victim = columns_.size();
    uint64_t oldest = 0;
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i == static_cast<size_t>(exclude)) continue;
      if (!state->resident[i].load(std::memory_order_relaxed)) continue;
      if (state->pins[i] > 0) continue;
      if (victim == columns_.size() || state->last_use[i] < oldest) {
        victim = i;
        oldest = state->last_use[i];
      }
    }
    if (victim == columns_.size()) return;  // everything left is pinned
    state->resident[victim].store(false, std::memory_order_release);
    Column& column = columns_[victim];
    std::vector<double>().swap(column.numeric);
    std::vector<CategoryId>().swap(column.categorical);
    state->resident_bytes -= state->bytes[victim];
    state->bytes[victim] = 0;
    ++state->evict_count;
  }
}

Dataset::ColumnPin Dataset::PinColumn(AttrIndex attr) const {
  PagerState* state = pager_state_.get();
  if (state == nullptr) return ColumnPin();
  std::lock_guard<std::mutex> lock(state->mutex);
  FaultColumnLocked(attr);
  ++state->pins[static_cast<size_t>(attr)];
  return ColumnPin(this, attr);
}

void Dataset::UnpinColumn(AttrIndex attr) const {
  PagerState* state = pager_state_.get();
  std::lock_guard<std::mutex> lock(state->mutex);
  assert(state->pins[static_cast<size_t>(attr)] > 0);
  --state->pins[static_cast<size_t>(attr)];
}

void Dataset::ColumnPin::Release() {
  if (dataset_ == nullptr) return;
  dataset_->UnpinColumn(attr_);
  dataset_ = nullptr;
}

size_t Dataset::resident_column_bytes() const {
  PagerState* state = pager_state_.get();
  if (state == nullptr) {
    size_t total = 0;
    for (size_t i = 0; i < columns_.size(); ++i) {
      total += ColumnByteSize(static_cast<AttrIndex>(i));
    }
    return total;
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  return state->resident_bytes;
}

size_t Dataset::peak_resident_column_bytes() const {
  PagerState* state = pager_state_.get();
  if (state == nullptr) return resident_column_bytes();
  std::lock_guard<std::mutex> lock(state->mutex);
  return state->peak_resident_bytes;
}

uint64_t Dataset::column_fault_count() const {
  PagerState* state = pager_state_.get();
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state->mutex);
  return state->fault_count;
}

uint64_t Dataset::column_evict_count() const {
  PagerState* state = pager_state_.get();
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state->mutex);
  return state->evict_count;
}

void Dataset::SetNumericRangeHints(
    std::vector<std::pair<double, double>> hints) {
  assert(hints.empty() || hints.size() == schema_.num_attributes());
  numeric_range_hints_ = std::move(hints);
}

// -- Aggregates -------------------------------------------------------------

double Dataset::ClassWeight(const RowSubset& rows, CategoryId cls) const {
  double total = 0.0;
  for (RowId row : rows) {
    if (labels_[row] == cls) total += weights_[row];
  }
  return total;
}

double Dataset::TotalWeight(const RowSubset& rows) const {
  double total = 0.0;
  for (RowId row : rows) total += weights_[row];
  return total;
}

size_t Dataset::CountClass(CategoryId cls) const {
  size_t count = 0;
  for (CategoryId label : labels_) {
    if (label == cls) ++count;
  }
  return count;
}

RowSubset Dataset::AllRows() const {
  RowSubset rows(num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<RowId>(i);
  return rows;
}

RowSubset Dataset::FilterByClass(const RowSubset& rows, CategoryId cls,
                                 bool matches) const {
  RowSubset out;
  out.reserve(rows.size());
  for (RowId row : rows) {
    if ((labels_[row] == cls) == matches) out.push_back(row);
  }
  return out;
}

}  // namespace pnr
