// Compressed columnar on-disk shard format for out-of-core training.
//
// A shard store holds one Dataset as a single file: the schema (embedded as
// a v1 sidecar blob), the class labels, optional record weights, and every
// feature column split into `num_shards` contiguous row ranges. Categorical
// columns are dictionary-coded by the schema and bit-packed to
// ceil(log2(k+1)) bits per code; numeric columns are raw little-endian
// doubles. Every blob carries an FNV-1a 64 checksum and every column shard
// a min/max zonemap, so a reader can prune shards without decoding them and
// a corrupted byte is always caught before it reaches a learner.
//
// Layout (all integers little-endian):
//
//   header (64 bytes)
//     0  magic "PNRSHRD1"
//     8  u32 version (1)
//     12 u32 flags (bit 0: has_weights; all other bits reserved, must be 0)
//     16 u64 num_rows          (>= 1)
//     24 u32 num_attrs         (== schema feature count)
//     28 u32 num_shards        (1 <= num_shards <= num_rows)
//     32 u64 directory_offset
//     40 u64 directory_size
//     48 u64 directory_checksum
//     56 u64 file_size         (must equal the actual byte count)
//   payload blobs, in canonical write order: schema text, label shards,
//     weight shards (when flagged), feature columns attr-major/shard-minor
//   directory (at directory_offset; its size is an exact function of
//     num_attrs, num_shards and flags):
//     schema  BlobRef{u64 offset, u64 size, u64 checksum}
//     shard row ranges: num_shards x {u64 begin, u64 end} — must partition
//       [0, num_rows) in order with no empty shard
//     u32 label_bit_width (== bits for num_classes - 1)
//     label BlobRefs: num_shards
//     weight BlobRefs: num_shards when has_weights, else absent
//     per attribute:
//       u8 type (0 numeric, 1 categorical), u8[3] zero padding
//       u32 bit_width (categorical: bits for num_categories, i.e. the
//         packed width of codes 0..k where k encodes kInvalidCategory;
//         numeric: 0)
//       per shard: BlobRef + zonemap (16 bytes: numeric f64 min/max
//         computed by a first-element-seeded fold and compared bitwise on
//         read, so NaN and -0.0 round-trip exactly; categorical u32
//         min/max code + u64 zero padding)
//
// The reader is strict: magic/version/flags, counts, row-range partition,
// blob bounds and exact blob sizes are all validated at Open (O(directory)
// work — no payload is touched, so opening a 100 GB store is cheap);
// checksums and zonemaps are validated on every blob decode. Errors carry
// the store name and the failing location ("shard_store: <name>: attr 3
// shard 1: checksum mismatch"). Serialize-load-serialize is a fixpoint,
// which the shard fuzz target enforces on arbitrary bytes.

#ifndef PNR_DATA_SHARD_STORE_H_
#define PNR_DATA_SHARD_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/mapped_file.h"
#include "data/schema.h"

namespace pnr {

/// Knobs for writing a shard store.
struct ShardStoreWriteOptions {
  /// Requested shard count; clamped to [1, num_rows]. Rows are split into
  /// contiguous ranges of size floor(n/s) with the remainder spread over
  /// the leading shards (the same canonical split at any request).
  uint32_t num_shards = 1;

  /// Force a weight section even when every weight is 1.0. By default the
  /// section is written exactly when some weight differs from 1.0, which
  /// keeps the serialized form canonical.
  bool include_weights = false;
};

/// Renders `dataset` as a shard-store file image. InvalidArgument when the
/// dataset is empty or a label/weight falls outside what the format can
/// represent (labels must index the class dictionary; weights and the
/// section layout must be finite/encodable).
StatusOr<std::string> SerializeShardStore(const Dataset& dataset,
                                          const ShardStoreWriteOptions& options);

/// SerializeShardStore + WriteStringToFile.
Status WriteShardStore(const Dataset& dataset, const std::string& path,
                       const ShardStoreWriteOptions& options);

/// Renders only the rows `rows[0..count)` of `dataset` (in that order) as a
/// shard-store file image, without materializing an intermediate Dataset —
/// the stream retrain orchestrator snapshots a trailing window this way.
/// Row ids may repeat and appear in any order; each must be < num_rows().
/// Passing the identity list [0, num_rows) produces bytes identical to
/// SerializeShardStore. InvalidArgument on an empty or out-of-range list and
/// under the same label/weight constraints as the full serializer.
StatusOr<std::string> SerializeShardStoreRows(
    const Dataset& dataset, const RowId* rows, size_t count,
    const ShardStoreWriteOptions& options);

/// SerializeShardStoreRows + WriteStringToFile.
Status WriteShardStoreRows(const Dataset& dataset, const RowId* rows,
                           size_t count, const std::string& path,
                           const ShardStoreWriteOptions& options);

/// Returns true when `bytes` begins with the shard-store magic (used by the
/// CLI to sniff shard files apart from CSV/ARFF).
bool LooksLikeShardStore(std::string_view bytes);

/// Validating reader over one shard-store file or buffer.
///
/// All methods are const and touch no mutable state, so one reader may be
/// shared by any number of threads (each per-class learner of an
/// out-of-core multiclass run pages through the same reader).
class ShardStoreReader {
 public:
  /// Opens `path` (memory-mapped when possible) and validates the header
  /// and directory. The returned reader is shared so demand-paged Datasets
  /// can keep it alive.
  static StatusOr<std::shared_ptr<const ShardStoreReader>> Open(
      const std::string& path);

  /// Same, over an in-memory image (tests, fuzzing). `name` labels errors.
  static StatusOr<std::shared_ptr<const ShardStoreReader>> OpenBuffer(
      std::string buffer, std::string name);

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  uint32_t num_attrs() const { return num_attrs_; }
  uint32_t num_shards() const { return num_shards_; }
  bool has_weights() const { return has_weights_; }

  /// [begin, end) row range of `shard`.
  std::pair<uint64_t, uint64_t> shard_rows(uint32_t shard) const;

  /// Decoded size of all feature columns (the in-RAM footprint a
  /// non-paged load would have); used to pick paging budgets.
  size_t column_bytes() const;

  /// On-disk size.
  size_t file_bytes() const { return data_.size(); }

  // -- Whole-column decode (checksum + zonemap validated per shard) ---------

  Status FillNumeric(AttrIndex attr, std::vector<double>* out) const;
  Status FillCategorical(AttrIndex attr, std::vector<CategoryId>* out) const;
  Status FillLabels(std::vector<CategoryId>* out) const;
  /// All-1.0 when the store has no weight section.
  Status FillWeights(std::vector<double>* out) const;

  /// Aggregated per-attribute numeric zonemaps: {min over shards, max over
  /// shards}. Categorical attributes and attributes whose zonemap is not
  /// finite report {+inf, -inf} ("unknown"). The condition-search engine
  /// skips numeric attributes whose hint is a single point — a constant
  /// column can never yield a cut — without faulting the column in.
  std::vector<std::pair<double, double>> NumericRangeHints() const;

  /// Decodes the whole store into an in-RAM Dataset (with range hints
  /// attached). Every blob is checksum- and zonemap-validated.
  StatusOr<Dataset> LoadDataset() const;

 private:
  struct BlobRef {
    uint64_t offset = 0;
    uint64_t size = 0;
    uint64_t checksum = 0;
  };
  struct ColumnShard {
    BlobRef blob;
    // Numeric zonemap (bit-exact fold results) or categorical code range.
    double zmin = 0.0;
    double zmax = 0.0;
    uint32_t cmin = 0;
    uint32_t cmax = 0;
  };
  struct ColumnDir {
    bool numeric = false;
    uint32_t bit_width = 0;
    std::vector<ColumnShard> shards;
  };

  ShardStoreReader() = default;

  static StatusOr<std::shared_ptr<const ShardStoreReader>> Validate(
      std::shared_ptr<ShardStoreReader> reader);
  Status ParseHeaderAndDirectory();
  Status DecodeNumericShard(AttrIndex attr, uint32_t shard, double* out) const;
  Status DecodeCategoricalShard(AttrIndex attr, uint32_t shard,
                                CategoryId* out) const;
  Status CheckBlob(const BlobRef& blob, const std::string& what) const;
  Status LocatedError(const std::string& what, const std::string& msg) const;

  std::string name_;
  MappedFile file_;      // backing storage when opened from a path
  std::string buffer_;   // backing storage when opened from memory
  std::string_view data_;

  Schema schema_;
  uint64_t num_rows_ = 0;
  uint32_t num_attrs_ = 0;
  uint32_t num_shards_ = 0;
  bool has_weights_ = false;
  uint32_t label_bit_width_ = 0;
  BlobRef schema_blob_;
  std::vector<std::pair<uint64_t, uint64_t>> ranges_;
  std::vector<BlobRef> label_blobs_;
  std::vector<BlobRef> weight_blobs_;
  std::vector<ColumnDir> columns_;
};

/// Builds a demand-paged Dataset over `reader`: schema, labels, weights and
/// numeric range hints are resident; feature columns fault in on first
/// touch and are evicted LRU to keep resident feature bytes at or under
/// `budget_bytes` (see Dataset::AttachPager for the threading contract).
/// `budget_bytes` = 0 keeps only pinned columns resident.
StatusOr<Dataset> MakePagedDataset(
    std::shared_ptr<const ShardStoreReader> reader, size_t budget_bytes);

}  // namespace pnr

#endif  // PNR_DATA_SHARD_STORE_H_
