// Read-only memory-mapped file with a streaming fallback.
//
// The ingest engine parses straight out of the page cache via mmap when the
// platform allows it; when mmap is unavailable (non-regular files, exotic
// filesystems, or when the caller forces streaming) the whole file is read
// into an owned buffer instead. Either way the content is exposed as one
// contiguous std::string_view, so parsing code never branches on the
// transport.

#ifndef PNR_DATA_MAPPED_FILE_H_
#define PNR_DATA_MAPPED_FILE_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace pnr {

/// A file's bytes, memory-mapped when possible, buffered otherwise.
class MappedFile {
 public:
  /// Opens `path` read-only. With `allow_mmap` false (or when mapping
  /// fails) the file is read into memory via streaming I/O instead; the
  /// result is indistinguishable to callers apart from peak memory.
  static StatusOr<MappedFile> Open(const std::string& path,
                                   bool allow_mmap = true);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// The file content.
  std::string_view bytes() const {
    return data_ == nullptr ? std::string_view() : std::string_view(data_, size_);
  }

  /// True when the content is an actual mmap (false: owned buffer).
  bool is_mapped() const { return mapped_; }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::string buffer_;  // owns the bytes when !mapped_
};

}  // namespace pnr

#endif  // PNR_DATA_MAPPED_FILE_H_
