// Implementation of the parallel ingestion engine (see data/ingest.h for
// the architecture). Layout of this file:
//
//   1. SWAR scanning primitives and the shared CSV grammar (SpanScanner for
//      the engine, RecordScanner for the serial reference).
//   2. The CSV prelude (BOM, header record, class-column resolution) shared
//      by both paths.
//   3. IngestCsvSerial — the materializing reference parser.
//   4. IngestCsvParallel — structural scan, chunk passes, dictionary merge.
//   5. ARFF row parsers (serial reference and chunk-parallel).
//   6. IngestEngine method bodies.

#include "data/ingest.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/mapped_file.h"

namespace pnr {
namespace {

// ---------------------------------------------------------------------------
// Scanning primitives.
// ---------------------------------------------------------------------------

// Whitespace trimmed around CSV fields. '\n' is deliberately absent — it is
// structural (record separator) and never part of a field.
constexpr bool IsFieldSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

constexpr uint64_t BroadcastByte(char c) {
  return 0x0101010101010101ULL * static_cast<unsigned char>(c);
}

// Classic SWAR zero-byte test: the high bit of every zero byte of `w` is
// set in the result, every other high bit is clear.
constexpr uint64_t HasZeroByte(uint64_t w) {
  return (w - 0x0101010101010101ULL) & ~w & 0x8080808080808080ULL;
}

// First occurrence of `a` or `b` in [p, end), or end. Processes 8 bytes per
// step on little-endian targets; the scalar tail doubles as the big-endian
// fallback (countr_zero's byte arithmetic assumes little-endian lanes).
inline const char* ScanFor2(const char* p, const char* end, char a, char b) {
  if constexpr (std::endian::native == std::endian::little) {
    const uint64_t broadcast_a = BroadcastByte(a);
    const uint64_t broadcast_b = BroadcastByte(b);
    while (end - p >= 8) {
      uint64_t word;
      std::memcpy(&word, p, sizeof(word));
      const uint64_t hit =
          HasZeroByte(word ^ broadcast_a) | HasZeroByte(word ^ broadcast_b);
      if (hit != 0) return p + (std::countr_zero(hit) >> 3);
      p += 8;
    }
  }
  while (p < end && *p != a && *p != b) ++p;
  return p;
}

inline size_t CountNewlines(const char* p, const char* q) {
  return static_cast<size_t>(std::count(p, q, '\n'));
}

// ParseDouble minus its defensive re-trim, valid only for text with no
// leading/trailing field-space — which tokenized unquoted fields guarantee.
// Must accept exactly the strings ParseDouble accepts for such input, or
// the serial and parallel type inference would diverge.
inline bool ParseTrimmedDouble(std::string_view text, double* out) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  if (text.empty()) return false;
  if (text.front() == '+') {
    text.remove_prefix(1);
    if (text.empty()) return false;
  }
  double value = 0.0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    return false;
  }
  *out = value;
  return true;
#else
  return ParseDouble(text, out);
#endif
}

// Clinger fast path for plain decimal strings. A significand of at most 15
// digits is exactly representable in a double, and 10^k is exact for
// k <= 22, so one IEEE division of exact operands is correctly rounded —
// bit-identical to from_chars. Anything else (exponents, specials, long
// significands, junk) falls back to ParseTrimmedDouble.
inline bool FastParseTrimmedDouble(std::string_view text, double* out) {
  static constexpr double kPow10[] = {
      1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
      1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22};
  const char* p = text.data();
  const char* end = p + text.size();
  if (p == end) return false;
  bool negative = false;
  if (*p == '-' || *p == '+') {
    negative = *p == '-';
    ++p;
  }
  uint64_t mantissa = 0;
  int digits = 0;
  int frac = -1;  // digits after the '.'; -1 = no '.' seen yet
  for (; p < end; ++p) {
    const char c = *p;
    if (c >= '0' && c <= '9') {
      mantissa = mantissa * 10 + static_cast<uint64_t>(c - '0');
      ++digits;
      if (frac >= 0) ++frac;
    } else if (c == '.' && frac < 0) {
      frac = 0;
    } else {
      return ParseTrimmedDouble(text, out);
    }
  }
  if (digits == 0 || digits > 15 || frac > 22) {
    return ParseTrimmedDouble(text, out);
  }
  double value = static_cast<double>(mantissa);
  if (frac > 0) value /= kPow10[frac];
  *out = negative ? -value : value;
  return true;
}

// Location of a parse error: physical (1-based) line of the record, 1-based
// field index (0 = whole-record error), and the detail text (which carries
// the offending token where there is one).
struct Located {
  size_t line = 0;
  size_t column = 0;
  std::string detail;
};

Status CsvError(const Located& e) {
  std::string message = "CSV line " + std::to_string(e.line);
  if (e.column > 0) message += ", column " + std::to_string(e.column);
  message += ": " + e.detail;
  return Status::InvalidArgument(std::move(message));
}

// ---------------------------------------------------------------------------
// The CSV grammar. Both scanners implement exactly this; tests assert the
// serial and parallel paths agree bitwise, which keeps them honest:
//
//   * A record is a delimiter-separated list of fields ending at '\n' or
//     EOF. Records whose only content is one empty unquoted field (blank or
//     whitespace-only lines) are skipped.
//   * A field starts after optional field-space. If the first byte is '"'
//     the field is quoted: content runs to the matching quote, '""' encodes
//     a literal quote, and the content may contain the delimiter and
//     newlines; it is NOT trimmed. Anything but field-space, the delimiter,
//     or a record end after the closing quote is an error. A '"' anywhere
//     else in a field is a literal character.
//   * Unquoted fields run to the next delimiter/'\n' and are trimmed of
//     field-space on both sides ('\r' before '\n' disappears here, which is
//     what makes CRLF input free).
//   * Line numbers are physical: every '\n' counts, including ones inside
//     quoted fields; a record's line is the line its first byte sits on.
// ---------------------------------------------------------------------------

// A field as byte range into the input. `escaped` marks quoted fields that
// contain doubled quotes and need unescaping (rare; keeps the common case
// zero-copy).
struct FieldRef {
  const char* begin = nullptr;
  uint32_t len = 0;
  bool quoted = false;
  bool escaped = false;
};

// Returns the decoded content of `f`, using `scratch` only when unescaping
// is needed.
std::string_view DecodeField(const FieldRef& f, std::string* scratch) {
  if (!f.escaped) return {f.begin, f.len};
  scratch->clear();
  for (uint32_t i = 0; i < f.len; ++i) {
    scratch->push_back(f.begin[i]);
    if (f.begin[i] == '"') ++i;  // skip the second quote of a '""' pair
  }
  return *scratch;
}

// Zero-copy CSV record scanner used by the structural scan and the chunk
// parsers. Yields FieldRefs into the input buffer.
class SpanScanner {
 public:
  enum class Next { kRecord, kEof, kError };

  SpanScanner(std::string_view text, char delim, size_t first_line)
      : p_(text.data()),
        end_(text.data() + text.size()),
        delim_(delim),
        line_(first_line) {}

  // Scans the next non-blank record into `fields`. On kRecord,
  // `*record_line` is the line the record starts on; on kError, `*error` is
  // filled and the scanner must not be used further.
  Next NextRecord(std::vector<FieldRef>* fields, size_t* record_line,
                  Located* error) {
    for (;;) {
      if (p_ >= end_) return Next::kEof;
      const size_t start_line = line_;
      fields->clear();
      bool saw_quote = false;
      bool saw_delim = false;
      bool saw_content = false;
      for (;;) {  // one field per iteration
        while (p_ < end_ && IsFieldSpace(*p_)) ++p_;
        if (p_ < end_ && *p_ == '"') {
          saw_quote = true;
          const size_t open_line = line_;
          const size_t open_column = fields->size() + 1;
          ++p_;
          const char* content = p_;
          bool escaped = false;
          for (;;) {
            const char* q = static_cast<const char*>(
                std::memchr(p_, '"', static_cast<size_t>(end_ - p_)));
            if (q == nullptr) {
              *error = {open_line, open_column, "unterminated quoted field"};
              return Next::kError;
            }
            line_ += CountNewlines(p_, q);
            p_ = q + 1;
            if (p_ < end_ && *p_ == '"') {  // '""' -> literal quote
              escaped = true;
              ++p_;
              continue;
            }
            fields->push_back(
                {content, static_cast<uint32_t>(q - content), true, escaped});
            break;
          }
          while (p_ < end_ && IsFieldSpace(*p_)) ++p_;
          if (p_ < end_ && *p_ != delim_ && *p_ != '\n') {
            *error = {line_, fields->size(),
                      std::string("unexpected character '") + *p_ +
                          "' after closing quote"};
            return Next::kError;
          }
        } else {
          const char* start = p_;
          p_ = ScanFor2(p_, end_, delim_, '\n');
          const char* stop = p_;
          while (stop > start && IsFieldSpace(stop[-1])) --stop;
          if (stop > start) saw_content = true;
          fields->push_back(
              {start, static_cast<uint32_t>(stop - start), false, false});
        }
        if (p_ < end_ && *p_ == delim_) {
          saw_delim = true;
          ++p_;
          continue;
        }
        break;
      }
      if (p_ < end_ && *p_ == '\n') {
        ++p_;
        ++line_;
      }
      if (!saw_delim && !saw_quote && !saw_content) continue;  // blank line
      *record_line = start_line;
      return Next::kRecord;
    }
  }

  const char* position() const { return p_; }
  size_t line() const { return line_; }

 private:
  const char* p_;
  const char* end_;
  char delim_;
  size_t line_;
};

// Boundary-only scanner for the structural pre-scan: advances over records
// of the same grammar as SpanScanner without materializing fields, so the
// chunking pass costs a fraction of a real tokenization. On a malformed
// record it reports kError and the caller extends the current chunk to EOF
// — the chunk parser then rediscovers the error with full location info.
class RecordSkimmer {
 public:
  enum class Next { kRecord, kEof, kError };

  RecordSkimmer(std::string_view text, char delim, size_t first_line)
      : p_(text.data()),
        end_(text.data() + text.size()),
        delim_(delim),
        line_(first_line) {}

  // Landmark scan: instead of walking field by field, jump straight to the
  // next '"' or '\n' — everything in between is structurally inert. A quote
  // landmark opens a quoted field iff, walking back over field-space, it is
  // preceded by the record start or a raw delimiter byte (raw delimiters
  // are always structural outside quotes, and closed quoted fields admit
  // only field-space before the next delimiter, so the walk never crosses
  // other structure). This skims a record in O(landmarks) SWAR spans
  // rather than O(fields) scanner iterations.
  Next Skim() {
    for (;;) {
      if (p_ >= end_) return Next::kEof;
      const char* record_start = p_;
      bool saw_quote = false;
      for (;;) {
        const char* q = ScanFor2(p_, end_, '"', '\n');
        if (q == end_ || *q == '\n') {  // record ends at newline or EOF
          const char* record_end = q;
          p_ = q == end_ ? end_ : q + 1;
          if (q != end_) ++line_;
          if (saw_quote) return Next::kRecord;
          // Blank iff every byte is field-space (no quote was seen, and
          // delimiters/content are non-space). First byte usually decides.
          const char* r = record_start;
          while (r < record_end && IsFieldSpace(*r)) ++r;
          if (r < record_end) return Next::kRecord;
          break;  // blank line: skip, rescan from p_
        }
        const char* r = q;  // classify the quote: opener or literal?
        while (r > record_start && IsFieldSpace(r[-1])) --r;
        if (r != record_start && r[-1] != delim_) {
          p_ = q + 1;  // literal quote inside an unquoted field
          continue;
        }
        saw_quote = true;
        p_ = q + 1;
        for (;;) {  // quoted content: scan to the closing quote
          const char* c = static_cast<const char*>(
              std::memchr(p_, '"', static_cast<size_t>(end_ - p_)));
          if (c == nullptr) {  // unterminated quote
            line_ += CountNewlines(p_, end_);
            p_ = end_;
            return Next::kError;
          }
          line_ += CountNewlines(p_, c);
          p_ = c + 1;
          if (p_ < end_ && *p_ == '"') {
            ++p_;  // '""' escape
            continue;
          }
          break;
        }
        while (p_ < end_ && IsFieldSpace(*p_)) ++p_;
        if (p_ >= end_) return Next::kRecord;
        if (*p_ == '\n') {
          ++p_;
          ++line_;
          return Next::kRecord;
        }
        if (*p_ != delim_) return Next::kError;  // junk after closing quote
        ++p_;
        record_start = p_;  // next field starts a fresh walk-back bound
      }
    }
  }

  const char* position() const { return p_; }
  size_t line() const { return line_; }

 private:
  const char* p_;
  const char* end_;
  char delim_;
  size_t line_;
};

// Materializing scalar scanner for the serial reference path (and the
// shared prelude). Same grammar as SpanScanner, independent implementation.
class RecordScanner {
 public:
  enum class Next { kRecord, kEof, kError };

  RecordScanner(std::string_view text, char delim, size_t first_line)
      : p_(text.data()),
        end_(text.data() + text.size()),
        delim_(delim),
        line_(first_line) {}

  Next NextRecord(std::vector<std::string>* fields, size_t* record_line,
                  Located* error) {
    for (;;) {
      if (p_ >= end_) return Next::kEof;
      record_begin_ = p_;
      record_line_ = line_;
      fields->clear();
      bool saw_quote = false;
      bool saw_delim = false;
      bool saw_content = false;
      for (;;) {
        while (p_ < end_ && IsFieldSpace(*p_)) ++p_;
        if (p_ < end_ && *p_ == '"') {
          saw_quote = true;
          const size_t open_line = line_;
          const size_t open_column = fields->size() + 1;
          ++p_;
          field_.clear();
          for (;;) {
            const char* q = static_cast<const char*>(
                std::memchr(p_, '"', static_cast<size_t>(end_ - p_)));
            if (q == nullptr) {
              *error = {open_line, open_column, "unterminated quoted field"};
              return Next::kError;
            }
            field_.append(p_, q);
            line_ += CountNewlines(p_, q);
            p_ = q + 1;
            if (p_ < end_ && *p_ == '"') {
              field_.push_back('"');
              ++p_;
              continue;
            }
            break;
          }
          while (p_ < end_ && IsFieldSpace(*p_)) ++p_;
          if (p_ < end_ && *p_ != delim_ && *p_ != '\n') {
            *error = {line_, fields->size() + 1,
                      std::string("unexpected character '") + *p_ +
                          "' after closing quote"};
            return Next::kError;
          }
          fields->push_back(field_);
        } else {
          const char* start = p_;
          while (p_ < end_ && *p_ != delim_ && *p_ != '\n') ++p_;
          const char* stop = p_;
          while (stop > start && IsFieldSpace(stop[-1])) --stop;
          if (stop > start) saw_content = true;
          fields->emplace_back(start, stop);
        }
        if (p_ < end_ && *p_ == delim_) {
          saw_delim = true;
          ++p_;
          continue;
        }
        break;
      }
      if (p_ < end_ && *p_ == '\n') {
        ++p_;
        ++line_;
      }
      if (!saw_delim && !saw_quote && !saw_content) continue;
      *record_line = record_line_;
      return Next::kRecord;
    }
  }

  const char* position() const { return p_; }
  size_t line() const { return line_; }
  // Where the last record returned by NextRecord began (byte + line); used
  // by the prelude to rewind when the first record is data, not a header.
  const char* record_begin() const { return record_begin_; }
  size_t record_line_number() const { return record_line_; }

 private:
  const char* p_;
  const char* end_;
  char delim_;
  size_t line_;
  const char* record_begin_ = nullptr;
  size_t record_line_ = 1;
  std::string field_;
};

// ---------------------------------------------------------------------------
// CSV prelude: BOM, header record, class column.
// ---------------------------------------------------------------------------

std::string_view StripBom(std::string_view text) {
  if (text.size() >= 3 && std::memcmp(text.data(), "\xEF\xBB\xBF", 3) == 0) {
    text.remove_prefix(3);
  }
  return text;
}

struct CsvPrelude {
  std::vector<std::string> names;
  size_t num_cols = 0;
  size_t class_col = 0;
  size_t data_offset = 0;      // into the BOM-stripped text
  size_t data_first_line = 1;  // physical line at data_offset
};

StatusOr<CsvPrelude> ParseCsvPrelude(std::string_view text,
                                     const CsvReadOptions& options) {
  CsvPrelude out;
  RecordScanner scanner(text, options.delimiter, 1);
  std::vector<std::string> fields;
  size_t line = 0;
  Located error;
  const RecordScanner::Next next = scanner.NextRecord(&fields, &line, &error);
  if (next == RecordScanner::Next::kError) return CsvError(error);
  if (next == RecordScanner::Next::kEof) {
    return Status::InvalidArgument("empty CSV input");
  }
  out.num_cols = fields.size();
  if (out.num_cols < 2) {
    return Status::InvalidArgument("CSV needs at least 2 columns");
  }
  if (options.has_header) {
    out.names = std::move(fields);
    out.data_offset = static_cast<size_t>(scanner.position() - text.data());
    out.data_first_line = scanner.line();
  } else {
    // The record we just read is data: rewind to its start.
    out.names.resize(out.num_cols);
    for (size_t c = 0; c < out.num_cols; ++c) {
      out.names[c] = "attr" + std::to_string(c);
    }
    out.data_offset =
        static_cast<size_t>(scanner.record_begin() - text.data());
    out.data_first_line = scanner.record_line_number();
  }
  out.class_col = out.num_cols - 1;
  if (!options.class_column.empty()) {
    bool found = false;
    for (size_t c = 0; c < out.num_cols; ++c) {
      if (out.names[c] == options.class_column) {
        out.class_col = c;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("class column '" + options.class_column +
                              "' not present");
    }
  }
  return out;
}

Located RaggedRow(size_t line, size_t got, size_t expected) {
  return {line, 0,
          "row has " + std::to_string(got) + " fields, expected " +
              std::to_string(expected)};
}

}  // namespace

// ---------------------------------------------------------------------------
// Serial reference CSV parser.
// ---------------------------------------------------------------------------

StatusOr<Dataset> IngestCsvSerial(std::string_view text,
                                  const CsvReadOptions& options) {
  text = StripBom(text);
  auto prelude_or = ParseCsvPrelude(text, options);
  if (!prelude_or.ok()) return prelude_or.status();
  const CsvPrelude prelude = std::move(prelude_or).value();
  const size_t num_cols = prelude.num_cols;

  std::vector<std::vector<std::string>> cells;
  std::vector<size_t> row_lines;
  {
    RecordScanner scanner(text.substr(prelude.data_offset), options.delimiter,
                          prelude.data_first_line);
    std::vector<std::string> fields;
    size_t line = 0;
    Located error;
    for (;;) {
      const RecordScanner::Next next =
          scanner.NextRecord(&fields, &line, &error);
      if (next == RecordScanner::Next::kEof) break;
      if (next == RecordScanner::Next::kError) return CsvError(error);
      if (fields.size() != num_cols) {
        return CsvError(RaggedRow(line, fields.size(), num_cols));
      }
      cells.push_back(std::move(fields));
      row_lines.push_back(line);
    }
  }
  if (cells.empty()) return Status::InvalidArgument("CSV has no data rows");

  // Pass 1: per-column type inference. The class column is always
  // categorical and never inferred.
  std::vector<bool> numeric(num_cols, true);
  numeric[prelude.class_col] = false;
  for (const auto& row : cells) {
    for (size_t c = 0; c < num_cols; ++c) {
      if (c == prelude.class_col || !numeric[c]) continue;
      double value = 0.0;
      if (!ParseDouble(row[c], &value)) numeric[c] = false;
    }
  }

  Schema schema;
  std::vector<AttrIndex> attr_of(num_cols, -1);
  for (size_t c = 0; c < num_cols; ++c) {
    if (c == prelude.class_col) continue;
    attr_of[c] = schema.AddAttribute(numeric[c]
                                         ? Attribute::Numeric(prelude.names[c])
                                         : Attribute::Categorical(
                                               prelude.names[c]));
  }

  // Pass 2: build the dataset in row order.
  Dataset dataset(std::move(schema));
  dataset.Reserve(cells.size());
  for (size_t r = 0; r < cells.size(); ++r) {
    const RowId row = dataset.AddRow();
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& cell = cells[r][c];
      if (c == prelude.class_col) {
        dataset.set_label(row, dataset.mutable_schema().GetOrAddClass(cell));
        continue;
      }
      const AttrIndex a = attr_of[c];
      if (numeric[c]) {
        double value = 0.0;
        if (!ParseDouble(cell, &value)) {
          return CsvError({row_lines[r], c + 1,
                           "non-numeric cell '" + cell +
                               "' in numeric column '" + prelude.names[c] +
                               "'"});
        }
        dataset.set_numeric(row, a, value);
      } else {
        dataset.set_categorical(
            row, a,
            dataset.mutable_schema().attribute(a).GetOrAddCategory(cell));
      }
    }
  }
  return dataset;
}

// ---------------------------------------------------------------------------
// Chunk-parallel CSV engine.
// ---------------------------------------------------------------------------

namespace {

// A row-aligned slice of the data section.
struct ChunkInfo {
  size_t begin = 0;       // byte offsets into the data section
  size_t end = 0;
  size_t first_line = 1;  // physical line at `begin`
  size_t first_row = 0;   // global index of the chunk's first record
  size_t rows = 0;        // records in the chunk
};

// Serial structural scan: skims the whole data section with the chunk
// parsers' grammar (record boundaries only, no field materialization) and
// closes a chunk at the first record boundary past `target_bytes`. Quoted
// newlines can therefore never split a record across chunks. If the scan
// trips on a malformed record it stops and extends the current chunk to
// EOF — the chunk parser rediscovers the error and reports it with full
// location.
std::vector<ChunkInfo> ScanChunks(std::string_view data, char delim,
                                  size_t first_line, size_t target_bytes) {
  std::vector<ChunkInfo> chunks;
  RecordSkimmer scanner(data, delim, first_line);
  ChunkInfo current{0, 0, first_line, 0, 0};
  size_t total_rows = 0;
  for (;;) {
    const RecordSkimmer::Next next = scanner.Skim();
    if (next == RecordSkimmer::Next::kEof) break;
    if (next == RecordSkimmer::Next::kError) {
      current.rows += 1;
      current.end = data.size();
      chunks.push_back(current);
      return chunks;
    }
    current.rows += 1;
    total_rows += 1;
    const size_t pos = static_cast<size_t>(scanner.position() - data.data());
    if (pos - current.begin >= target_bytes) {
      current.end = pos;
      chunks.push_back(current);
      current = {pos, pos, scanner.line(), total_rows, 0};
    }
  }
  if (current.rows > 0) {
    current.end = data.size();
    chunks.push_back(current);
  }
  return chunks;
}

// Per-chunk dictionary: values in chunk-local first-appearance order plus a
// transparent-hash index for allocation-free lookups.
// Thread-local string dictionary in first-appearance order. Open-addressing
// (linear probing over a power-of-two table of id+1 slots, 0 = empty) keeps
// the per-cell lookup to one hash, usually one cache line, and one string
// compare — measurably cheaper than a node-based map in the pass-A hot
// loop. Ids are dense first-appearance indices either way, so the table
// layout has no effect on the deterministic merge.
struct LocalDict {
  std::vector<std::string> values;

  CategoryId GetOrAdd(std::string_view value) {
    // Last-hit memo: categorical columns (the class column above all) are
    // dominated by runs of the same value, so a single equality check
    // usually beats the hash lookup.
    if (last_ != kInvalidCategory && values[last_] == value) return last_;
    if (slots_.empty()) Grow();
    const uint64_t hash = TransparentStringHash{}(value);
    size_t i = static_cast<size_t>(hash) & mask_;
    while (slots_[i] != 0) {
      const CategoryId id = static_cast<CategoryId>(slots_[i] - 1);
      if (hashes_[static_cast<size_t>(id)] == hash && values[id] == value) {
        return last_ = id;
      }
      i = (i + 1) & mask_;
    }
    const CategoryId id = static_cast<CategoryId>(values.size());
    values.emplace_back(value);
    hashes_.push_back(hash);
    slots_[i] = static_cast<uint32_t>(id) + 1;
    if ((values.size() + 1) * 4 > slots_.size() * 3) Grow();
    return last_ = id;
  }

 private:
  void Grow() {
    const size_t capacity = slots_.empty() ? 64 : slots_.size() * 2;
    slots_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (size_t id = 0; id < values.size(); ++id) {
      size_t i = static_cast<size_t>(hashes_[id]) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = static_cast<uint32_t>(id) + 1;
    }
  }

  std::vector<uint32_t> slots_;  // id + 1; 0 marks an empty slot
  std::vector<uint64_t> hashes_;  // per-id, avoids rehash on growth
  size_t mask_ = 0;
  CategoryId last_ = kInvalidCategory;
};

// One column's thread-local parse state. While `all_numeric` holds, cells
// accumulate in `nums`; the first unparseable cell flips the column and
// subsequent cells (including that one) are dictionary-coded. The class
// column starts flipped.
struct ColBlock {
  bool all_numeric = true;
  std::vector<double> nums;
  LocalDict dict;
  std::vector<CategoryId> codes;
  std::vector<CategoryId> remap;  // local id -> global id, filled by merge
};

struct ChunkBlock {
  std::vector<ColBlock> cols;
  std::vector<CategoryId> class_remap;
  std::optional<Located> error;
  size_t rows_parsed = 0;
};

// Pass A: tokenize one chunk into thread-local columnar state.
void ParseChunkPassA(std::string_view data, const ChunkInfo& chunk,
                     const CsvPrelude& prelude, char delim,
                     ChunkBlock* block) {
  const size_t num_cols = prelude.num_cols;
  block->cols.assign(num_cols, ColBlock{});
  block->cols[prelude.class_col].all_numeric = false;
  for (size_t c = 0; c < num_cols; ++c) {
    if (c == prelude.class_col) {
      block->cols[c].codes.reserve(chunk.rows);
    } else {
      block->cols[c].nums.reserve(chunk.rows);
    }
  }
  SpanScanner scanner(data.substr(chunk.begin, chunk.end - chunk.begin),
                      delim, chunk.first_line);
  std::vector<FieldRef> fields;
  std::string scratch;
  for (;;) {
    size_t line = 0;
    Located error;
    const SpanScanner::Next next = scanner.NextRecord(&fields, &line, &error);
    if (next == SpanScanner::Next::kEof) break;
    if (next == SpanScanner::Next::kError) {
      block->error = error;
      return;
    }
    if (fields.size() != num_cols) {
      block->error = RaggedRow(line, fields.size(), num_cols);
      return;
    }
    for (size_t c = 0; c < num_cols; ++c) {
      ColBlock& col = block->cols[c];
      const std::string_view cell = DecodeField(fields[c], &scratch);
      if (col.all_numeric) {
        // Unquoted cells are already trimmed by the scanner, so the no-trim
        // from_chars fast path is exact; quoted content is untrimmed and
        // must go through the full ParseDouble (which trims) to keep type
        // inference identical to the serial reference.
        double value = 0.0;
        if (fields[c].quoted ? ParseDouble(cell, &value)
                             : FastParseTrimmedDouble(cell, &value)) {
          col.nums.push_back(value);
          continue;
        }
        col.all_numeric = false;  // fall through: this cell gets coded
      }
      col.codes.push_back(col.dict.GetOrAdd(cell));
    }
    ++block->rows_parsed;
  }
}

// Pass B: land the chunk's values in the pre-sized global storage. Columns
// this chunk parsed (partly) as numbers but that another chunk proved
// categorical are rebuilt by re-tokenizing the chunk — the rebuilt local
// dictionary must be in row-first-appearance order, which splicing the
// numeric prefix into the pass-A dictionary would violate.
void ParseChunkPassB(std::string_view data, const ChunkInfo& chunk,
                     const CsvPrelude& prelude, char delim,
                     const std::vector<bool>& numeric_final,
                     ChunkBlock* block, const std::vector<double*>& num_data,
                     const std::vector<CategoryId*>& cat_data,
                     CategoryId* labels) {
  const size_t num_cols = prelude.num_cols;
  const size_t rows = block->rows_parsed;
  std::vector<size_t> rebuild;
  for (size_t c = 0; c < num_cols; ++c) {
    if (c == prelude.class_col || numeric_final[c]) continue;
    if (!block->cols[c].nums.empty()) rebuild.push_back(c);
  }
  if (!rebuild.empty()) {
    for (const size_t c : rebuild) {
      block->cols[c] = ColBlock{};
      block->cols[c].all_numeric = false;
      block->cols[c].codes.reserve(rows);
    }
    SpanScanner scanner(data.substr(chunk.begin, chunk.end - chunk.begin),
                        delim, chunk.first_line);
    std::vector<FieldRef> fields;
    std::string scratch;
    for (;;) {
      size_t line = 0;
      Located error;
      const SpanScanner::Next next =
          scanner.NextRecord(&fields, &line, &error);
      if (next != SpanScanner::Next::kRecord) break;  // pass A vetted it
      for (const size_t c : rebuild) {
        ColBlock& col = block->cols[c];
        const std::string_view cell = DecodeField(fields[c], &scratch);
        col.codes.push_back(col.dict.GetOrAdd(cell));
      }
    }
  }
  const size_t off = chunk.first_row;
  for (size_t c = 0; c < num_cols; ++c) {
    ColBlock& col = block->cols[c];
    if (c == prelude.class_col) {
      std::memcpy(labels + off, col.codes.data(), rows * sizeof(CategoryId));
    } else if (numeric_final[c]) {
      std::memcpy(num_data[c] + off, col.nums.data(), rows * sizeof(double));
    } else {
      std::memcpy(cat_data[c] + off, col.codes.data(),
                  rows * sizeof(CategoryId));
    }
  }
}

}  // namespace

StatusOr<Dataset> IngestCsvParallel(std::string_view text,
                                    const CsvReadOptions& options,
                                    const IngestOptions& ingest) {
  text = StripBom(text);
  auto prelude_or = ParseCsvPrelude(text, options);
  if (!prelude_or.ok()) return prelude_or.status();
  const CsvPrelude prelude = std::move(prelude_or).value();
  const size_t num_cols = prelude.num_cols;
  const std::string_view data = text.substr(prelude.data_offset);

  size_t threads = 0;
  size_t target_bytes = 0;
  if (ingest.chunk_bytes > 0) {
    // Explicit chunk size bypasses the byte clamp: tests use tiny chunks to
    // force genuinely concurrent parses of small inputs.
    threads = ThreadPool::ResolveThreadCount(ingest.num_threads);
    target_bytes = ingest.chunk_bytes;
  } else {
    threads = ThreadPool::ClampThreadsForBytes(ingest.num_threads,
                                               data.size());
    // ~4 chunks per thread balances the pool without shrinking per-chunk
    // dictionaries (more chunks = more merge work).
    target_bytes = std::max(ThreadPool::kMinBytesPerThread,
                            data.size() / (threads * 4) + 1);
  }

  const std::vector<ChunkInfo> chunks =
      ScanChunks(data, options.delimiter, prelude.data_first_line,
                 target_bytes);
  if (chunks.empty()) return Status::InvalidArgument("CSV has no data rows");

  ThreadPool pool(threads);
  std::vector<ChunkBlock> blocks(chunks.size());
  pool.ParallelFor(chunks.size(), [&](size_t k) {
    ParseChunkPassA(data, chunks[k], prelude, options.delimiter, &blocks[k]);
  });

  // Chunk order is line order, so the first erroring chunk holds the same
  // error the serial parse would report first.
  for (const ChunkBlock& block : blocks) {
    if (block.error) return CsvError(*block.error);
  }
  size_t total_rows = 0;
  for (size_t k = 0; k < chunks.size(); ++k) {
    if (blocks[k].rows_parsed != chunks[k].rows ||
        chunks[k].first_row != total_rows) {
      return Status::Internal("ingest chunk accounting mismatch");
    }
    total_rows += chunks[k].rows;
  }

  // A column is numeric iff every chunk kept it numeric.
  std::vector<bool> numeric_final(num_cols, true);
  numeric_final[prelude.class_col] = false;
  for (size_t c = 0; c < num_cols; ++c) {
    if (c == prelude.class_col) continue;
    for (const ChunkBlock& block : blocks) {
      if (!block.cols[c].all_numeric) {
        numeric_final[c] = false;
        break;
      }
    }
  }

  Schema schema;
  std::vector<AttrIndex> attr_of(num_cols, -1);
  for (size_t c = 0; c < num_cols; ++c) {
    if (c == prelude.class_col) continue;
    attr_of[c] = schema.AddAttribute(
        numeric_final[c] ? Attribute::Numeric(prelude.names[c])
                         : Attribute::Categorical(prelude.names[c]));
  }
  Dataset dataset(std::move(schema));
  dataset.AppendRows(total_rows);

  std::vector<double*> num_data(num_cols, nullptr);
  std::vector<CategoryId*> cat_data(num_cols, nullptr);
  for (size_t c = 0; c < num_cols; ++c) {
    if (c == prelude.class_col) continue;
    if (numeric_final[c]) {
      num_data[c] = dataset.mutable_numeric_data(attr_of[c]);
    } else {
      cat_data[c] = dataset.mutable_categorical_data(attr_of[c]);
    }
  }
  CategoryId* labels = dataset.mutable_label_data();

  pool.ParallelFor(chunks.size(), [&](size_t k) {
    ParseChunkPassB(data, chunks[k], prelude, options.delimiter,
                    numeric_final, &blocks[k], num_data, cat_data, labels);
  });

  // Deterministic dictionary merge: chunks first-to-last, each local
  // dictionary in its first-appearance order. This visits every distinct
  // string exactly in global first-appearance row order — the same order
  // the serial parser's GetOrAddCategory calls see.
  Schema& built = dataset.mutable_schema();
  for (ChunkBlock& block : blocks) {
    for (size_t c = 0; c < num_cols; ++c) {
      if (c == prelude.class_col || numeric_final[c]) continue;
      ColBlock& col = block.cols[c];
      Attribute& attr = built.attribute(attr_of[c]);
      col.remap.reserve(col.dict.values.size());
      for (const std::string& value : col.dict.values) {
        col.remap.push_back(attr.GetOrAddCategory(value));
      }
    }
    ColBlock& cls = block.cols[prelude.class_col];
    block.class_remap.reserve(cls.dict.values.size());
    for (const std::string& value : cls.dict.values) {
      block.class_remap.push_back(built.GetOrAddClass(value));
    }
  }

  // Pass C: rewrite local codes to global ids; every chunk owns a disjoint
  // row range.
  pool.ParallelFor(chunks.size(), [&](size_t k) {
    const size_t off = chunks[k].first_row;
    const size_t rows = chunks[k].rows;
    for (size_t c = 0; c < num_cols; ++c) {
      if (c == prelude.class_col || numeric_final[c]) continue;
      const std::vector<CategoryId>& remap = blocks[k].cols[c].remap;
      CategoryId* cells = cat_data[c];
      for (size_t i = 0; i < rows; ++i) {
        cells[off + i] = remap[static_cast<size_t>(cells[off + i])];
      }
    }
    const std::vector<CategoryId>& class_remap = blocks[k].class_remap;
    for (size_t i = 0; i < rows; ++i) {
      labels[off + i] = class_remap[static_cast<size_t>(labels[off + i])];
    }
  });

  return dataset;
}

// ---------------------------------------------------------------------------
// ARFF @data row parsers.
// ---------------------------------------------------------------------------

namespace {

Status ArffError(size_t line, size_t column, const std::string& detail) {
  std::string message = "ARFF line " + std::to_string(line);
  if (column > 0) message += ", column " + std::to_string(column);
  return Status::InvalidArgument(message + ": " + detail);
}

// View-based twin of ArffUnquote: trims, then strips one layer of matching
// quotes. No escape processing — ARFF nominal values have none.
std::string_view ArffUnquoteView(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.size() >= 2 && ((text.front() == '\'' && text.back() == '\'') ||
                           (text.front() == '"' && text.back() == '"'))) {
    return text.substr(1, text.size() - 2);
  }
  return text;
}

// Calls fn(line_number, content) for every non-blank @data line, after
// comment stripping ('%' anywhere starts a comment, matching the historical
// reader) and trimming. Stops early if fn returns a non-OK status.
template <typename Fn>
Status ForEachArffRow(std::string_view data, size_t first_line, Fn&& fn) {
  size_t pos = 0;
  size_t line_number = first_line;
  while (pos < data.size()) {
    const size_t nl = data.find('\n', pos);
    const size_t line_end = (nl == std::string_view::npos) ? data.size() : nl;
    std::string_view raw = data.substr(pos, line_end - pos);
    pos = (nl == std::string_view::npos) ? data.size() : nl + 1;
    const size_t comment = raw.find('%');
    if (comment != std::string_view::npos) raw = raw.substr(0, comment);
    const std::string_view content = TrimWhitespace(raw);
    if (!content.empty()) {
      Status status = fn(line_number, content);
      if (!status.ok()) return status;
    }
    ++line_number;
  }
  return Status::OK();
}

// Splits an ARFF row on ',' (no quote awareness — the historical grammar)
// into trimmed+unquoted views.
void SplitArffRow(std::string_view content, std::vector<std::string_view>* out) {
  out->clear();
  size_t start = 0;
  for (;;) {
    const size_t comma = content.find(',', start);
    if (comma == std::string_view::npos) {
      out->push_back(ArffUnquoteView(content.substr(start)));
      return;
    }
    out->push_back(ArffUnquoteView(content.substr(start, comma - start)));
    start = comma + 1;
  }
}

// Parses one ARFF row's field into the right columnar slot. Shared by the
// serial and parallel paths so their value conversion is identical.
struct ArffRowSink {
  const ArffLayout* layout;
  // Exactly one of these is used per declared attribute.
  std::vector<std::vector<double>>* nums;
  std::vector<std::vector<CategoryId>>* cats;
  std::vector<CategoryId>* labels;
  const Schema* schema;

  Status Consume(size_t line, size_t decl, std::string_view field) {
    if (decl == layout->class_index) {
      const CategoryId label = schema->class_attr().FindCategory(field);
      if (label == kInvalidCategory) {
        return ArffError(line, decl + 1,
                         "undeclared class value '" + std::string(field) +
                             "'");
      }
      labels->push_back(label);
      return Status::OK();
    }
    if (layout->numeric[decl]) {
      double value = 0.0;
      if (field == "?") {
        value = 0.0;  // documented missing-value convention
      } else if (!ParseDouble(field, &value)) {
        return ArffError(line, decl + 1,
                         "non-numeric value '" + std::string(field) +
                             "' in attribute '" + layout->names[decl] + "'");
      }
      (*nums)[decl].push_back(value);
      return Status::OK();
    }
    if (field == "?") {
      (*cats)[decl].push_back(kInvalidCategory);
      return Status::OK();
    }
    const AttrIndex attr = layout->attr_of[decl];
    const CategoryId id = schema->attribute(attr).FindCategory(field);
    if (id == kInvalidCategory) {
      return ArffError(line, decl + 1,
                       "value '" + std::string(field) +
                           "' not in the declared domain of '" +
                           layout->names[decl] + "'");
    }
    (*cats)[decl].push_back(id);
    return Status::OK();
  }
};

// Columnar staging for a run of ARFF rows plus the machinery to fill it.
struct ArffBlock {
  std::vector<std::vector<double>> nums;
  std::vector<std::vector<CategoryId>> cats;
  std::vector<CategoryId> labels;
  size_t rows = 0;
  Status error = Status::OK();

  // Parses every row of `data` into this block; stops at the first error.
  void Parse(std::string_view data, size_t first_line,
             const ArffLayout& layout, const Schema& schema) {
    const size_t num_decls = layout.attr_of.size();
    nums.resize(num_decls);
    cats.resize(num_decls);
    ArffRowSink sink{&layout, &nums, &cats, &labels, &schema};
    std::vector<std::string_view> fields;
    error = ForEachArffRow(
        data, first_line, [&](size_t line, std::string_view content) {
          SplitArffRow(content, &fields);
          if (fields.size() != num_decls) {
            return ArffError(line, 0,
                             "row has " + std::to_string(fields.size()) +
                                 " fields, expected " +
                                 std::to_string(num_decls));
          }
          for (size_t i = 0; i < num_decls; ++i) {
            Status status = sink.Consume(line, i, fields[i]);
            if (!status.ok()) return status;
          }
          ++rows;
          return Status::OK();
        });
  }
};

// Copies a parsed block into the dataset's pre-sized storage at row `off`.
void FlushArffBlock(const ArffBlock& block, const ArffLayout& layout,
                    size_t off, const std::vector<double*>& num_data,
                    const std::vector<CategoryId*>& cat_data,
                    CategoryId* labels) {
  for (size_t decl = 0; decl < layout.attr_of.size(); ++decl) {
    if (decl == layout.class_index) continue;
    if (layout.numeric[decl]) {
      std::memcpy(num_data[decl] + off, block.nums[decl].data(),
                  block.rows * sizeof(double));
    } else {
      std::memcpy(cat_data[decl] + off, block.cats[decl].data(),
                  block.rows * sizeof(CategoryId));
    }
  }
  std::memcpy(labels + off, block.labels.data(),
              block.rows * sizeof(CategoryId));
}

// Gathers the per-declaration storage pointers for FlushArffBlock.
void ArffStoragePointers(Dataset* dataset, const ArffLayout& layout,
                         std::vector<double*>* num_data,
                         std::vector<CategoryId*>* cat_data,
                         CategoryId** labels) {
  const size_t num_decls = layout.attr_of.size();
  num_data->assign(num_decls, nullptr);
  cat_data->assign(num_decls, nullptr);
  for (size_t decl = 0; decl < num_decls; ++decl) {
    if (decl == layout.class_index) continue;
    if (layout.numeric[decl]) {
      (*num_data)[decl] = dataset->mutable_numeric_data(layout.attr_of[decl]);
    } else {
      (*cat_data)[decl] =
          dataset->mutable_categorical_data(layout.attr_of[decl]);
    }
  }
  *labels = dataset->mutable_label_data();
}

}  // namespace

StatusOr<Dataset> IngestArffRowsSerial(std::string_view text,
                                       ArffLayout layout) {
  const std::string_view data = text.substr(layout.data_offset);
  ArffBlock block;
  Schema schema = std::move(layout.schema);
  block.Parse(data, layout.data_first_line, layout, schema);
  if (!block.error.ok()) return block.error;
  if (block.rows == 0) {
    return Status::InvalidArgument("ARFF has no data rows");
  }
  Dataset dataset(std::move(schema));
  dataset.AppendRows(block.rows);
  std::vector<double*> num_data;
  std::vector<CategoryId*> cat_data;
  CategoryId* labels = nullptr;
  ArffStoragePointers(&dataset, layout, &num_data, &cat_data, &labels);
  FlushArffBlock(block, layout, 0, num_data, cat_data, labels);
  return dataset;
}

StatusOr<Dataset> IngestArffRowsParallel(std::string_view text,
                                         ArffLayout layout,
                                         const IngestOptions& ingest) {
  const std::string_view data = text.substr(layout.data_offset);

  size_t threads = 0;
  size_t target_bytes = 0;
  if (ingest.chunk_bytes > 0) {
    threads = ThreadPool::ResolveThreadCount(ingest.num_threads);
    target_bytes = ingest.chunk_bytes;
  } else {
    threads = ThreadPool::ClampThreadsForBytes(ingest.num_threads,
                                               data.size());
    target_bytes = std::max(ThreadPool::kMinBytesPerThread,
                            data.size() / (threads * 4) + 1);
  }

  // Newline-aligned chunks; ARFF rows never span lines, so no structural
  // grammar scan is needed — just line accounting.
  struct RowChunk {
    size_t begin = 0;
    size_t end = 0;
    size_t first_line = 1;
  };
  std::vector<RowChunk> chunks;
  {
    size_t pos = 0;
    size_t line = layout.data_first_line;
    while (pos < data.size()) {
      size_t end = data.size();
      if (pos + target_bytes < data.size()) {
        const size_t nl = data.find('\n', pos + target_bytes);
        end = (nl == std::string_view::npos) ? data.size() : nl + 1;
      }
      chunks.push_back({pos, end, line});
      line += CountNewlines(data.data() + pos, data.data() + end);
      pos = end;
    }
  }
  if (chunks.empty()) {
    return Status::InvalidArgument("ARFF has no data rows");
  }

  Schema schema = std::move(layout.schema);
  ThreadPool pool(threads);
  std::vector<ArffBlock> blocks(chunks.size());
  pool.ParallelFor(chunks.size(), [&](size_t k) {
    blocks[k].Parse(data.substr(chunks[k].begin, chunks[k].end - chunks[k].begin),
                    chunks[k].first_line, layout, schema);
  });
  size_t total_rows = 0;
  for (const ArffBlock& block : blocks) {
    if (!block.error.ok()) return block.error;  // chunk order = line order
    total_rows += block.rows;
  }
  if (total_rows == 0) {
    return Status::InvalidArgument("ARFF has no data rows");
  }

  Dataset dataset(std::move(schema));
  dataset.AppendRows(total_rows);
  std::vector<double*> num_data;
  std::vector<CategoryId*> cat_data;
  CategoryId* labels = nullptr;
  ArffStoragePointers(&dataset, layout, &num_data, &cat_data, &labels);
  std::vector<size_t> offsets(chunks.size(), 0);
  size_t off = 0;
  for (size_t k = 0; k < chunks.size(); ++k) {
    offsets[k] = off;
    off += blocks[k].rows;
  }
  pool.ParallelFor(chunks.size(), [&](size_t k) {
    FlushArffBlock(blocks[k], layout, offsets[k], num_data, cat_data, labels);
  });
  return dataset;
}

// ---------------------------------------------------------------------------
// IngestEngine methods.
// ---------------------------------------------------------------------------

StatusOr<Dataset> IngestEngine::ParseCsv(std::string_view text,
                                         const CsvReadOptions& options) const {
  if (options_.num_threads == 1) return IngestCsvSerial(text, options);
  return IngestCsvParallel(text, options, options_);
}

StatusOr<Dataset> IngestEngine::LoadCsv(const std::string& path,
                                        const CsvReadOptions& options) const {
  auto file = MappedFile::Open(path, options_.allow_mmap);
  if (!file.ok()) return file.status();
  return ParseCsv(file.value().bytes(), options);
}

StatusOr<Dataset> IngestEngine::ParseArff(
    std::string_view text, const ArffReadOptions& options) const {
  auto layout = ParseArffHeader(text, options);
  if (!layout.ok()) return layout.status();
  if (options_.num_threads == 1) {
    return IngestArffRowsSerial(text, std::move(layout).value());
  }
  return IngestArffRowsParallel(text, std::move(layout).value(), options_);
}

StatusOr<Dataset> IngestEngine::LoadArff(const std::string& path,
                                         const ArffReadOptions& options) const {
  auto file = MappedFile::Open(path, options_.allow_mmap);
  if (!file.ok()) return file.status();
  return ParseArff(file.value().bytes(), options);
}

}  // namespace pnr
