#include "data/attribute.h"

#include <cassert>

namespace pnr {

const char* AttributeTypeName(AttributeType type) {
  switch (type) {
    case AttributeType::kNumeric:
      return "numeric";
    case AttributeType::kCategorical:
      return "categorical";
  }
  return "unknown";
}

Attribute Attribute::Numeric(std::string name) {
  return Attribute(std::move(name), AttributeType::kNumeric);
}

Attribute Attribute::Categorical(std::string name) {
  return Attribute(std::move(name), AttributeType::kCategorical);
}

Attribute Attribute::Categorical(std::string name,
                                 std::vector<std::string> values) {
  Attribute attr(std::move(name), AttributeType::kCategorical);
  for (auto& value : values) {
    attr.GetOrAddCategory(value);
  }
  return attr;
}

const std::string& Attribute::CategoryName(CategoryId id) const {
  assert(id >= 0 && static_cast<size_t>(id) < categories_.size());
  return categories_[static_cast<size_t>(id)];
}

CategoryId Attribute::FindCategory(std::string_view value) const {
  auto it = category_index_.find(value);
  return it == category_index_.end() ? kInvalidCategory : it->second;
}

CategoryId Attribute::GetOrAddCategory(std::string_view value) {
  assert(is_categorical());
  auto it = category_index_.find(value);
  if (it != category_index_.end()) return it->second;
  const CategoryId id = static_cast<CategoryId>(categories_.size());
  categories_.emplace_back(value);
  category_index_.emplace(categories_.back(), id);
  return id;
}

}  // namespace pnr
