// Record-weighting and splitting utilities.
//
// The paper's "-we" classifier variants use a *stratified* training set in
// which every target-class record is up-weighted so the two classes carry
// equal total weight. Grow/prune splits (RIPPER) and rarity sweeps (Table 5)
// also live here.

#ifndef PNR_DATA_WEIGHTING_H_
#define PNR_DATA_WEIGHTING_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace pnr {

/// Weights for the paper's stratified ("-we") training variant: each record
/// of `target` gets weight (total non-target records) / (target records);
/// every other record gets weight 1. Requires at least one record per side.
std::vector<double> StratifiedWeights(const Dataset& dataset,
                                      CategoryId target);

/// Randomly partitions `rows` into (first, second) with `first_fraction` of
/// the rows in the first part (RIPPER uses 2/3 grow / 1/3 prune).
std::pair<RowSubset, RowSubset> SplitRows(const RowSubset& rows,
                                          double first_fraction, Rng* rng);

/// Stratified variant of SplitRows: the split preserves the proportion of
/// `target` labels on both sides (so a very rare class cannot end up
/// entirely in one part by chance).
std::pair<RowSubset, RowSubset> StratifiedSplitRows(const Dataset& dataset,
                                                    const RowSubset& rows,
                                                    CategoryId target,
                                                    double first_fraction,
                                                    Rng* rng);

/// Builds a new dataset that keeps every `target` record of `source` and a
/// random `non_target_fraction` of the rest (Table 5's rarity sweep).
Dataset SubsampleNonTarget(const Dataset& source, CategoryId target,
                           double non_target_fraction, Rng* rng);

}  // namespace pnr

#endif  // PNR_DATA_WEIGHTING_H_
