// ARFF import (Weka's Attribute-Relation File Format) — the canonical
// distribution format for the rule-learning datasets of the paper's era.
//
// Supported subset: @relation, @attribute <name> numeric/real/integer,
// @attribute <name> {v1, v2, ...} (nominal), @data with comma-separated
// rows, '%' comments, quoted nominal values, and '?' missing values
// (mapped to kInvalidCategory for nominal attributes and NaN-free 0.0 for
// numeric ones — PNrule's condition semantics treat both as
// "matches nothing specific"). The last nominal attribute is the class
// unless `class_attribute` names another.
//
// The header is parsed serially; the `@data` section goes through the
// ingest engine (data/ingest.h): `num_threads = 1` is the serial reference
// row loop, anything else the chunk-parallel parser. ARFF dictionaries are
// fixed by the declarations, so both paths trivially assign the same ids;
// tests still assert bitwise-identical datasets. Parse errors report the
// line number, attribute index and offending token.

#ifndef PNR_DATA_ARFF_H_
#define PNR_DATA_ARFF_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace pnr {

/// Options controlling ARFF import.
struct ArffReadOptions {
  /// Name of the attribute to use as the class; empty = the last declared
  /// nominal attribute.
  std::string class_attribute;
  /// Worker threads for the @data parse: 1 = serial reference, 0 = all
  /// hardware threads, n = chunk-parallel with n threads. The result is
  /// bitwise-identical for every value.
  size_t num_threads = 1;
};

/// Everything the @data parser needs from a parsed ARFF header: the built
/// schema (declared dictionaries included), the per-declaration mapping to
/// feature attributes, and where the data section starts.
struct ArffLayout {
  Schema schema;
  std::vector<AttrIndex> attr_of;  ///< per declared attribute; -1 = class
  std::vector<bool> numeric;       ///< per declared attribute
  std::vector<std::string> names;  ///< per declared attribute (for errors)
  size_t class_index = 0;          ///< declaration index of the class
  size_t data_offset = 0;          ///< byte offset of the @data rows
  size_t data_first_line = 1;      ///< 1-based line number at data_offset
};

/// Parses the ARFF header (everything through the @data line) and resolves
/// the class attribute. The returned layout points into `text` via
/// data_offset; rows are parsed by the ingest engine.
StatusOr<ArffLayout> ParseArffHeader(std::string_view text,
                                     const ArffReadOptions& options = {});

/// Trims `text` and strips one layer of matching single or double quotes —
/// ARFF's field decoding, shared by the header and the row parsers.
std::string ArffUnquote(std::string_view text);

/// Parses ARFF text into a Dataset.
StatusOr<Dataset> ReadArffFromString(const std::string& text,
                                     const ArffReadOptions& options = {});

/// Reads an .arff file (memory-mapped when possible).
StatusOr<Dataset> ReadArff(const std::string& path,
                           const ArffReadOptions& options = {});

}  // namespace pnr

#endif  // PNR_DATA_ARFF_H_
