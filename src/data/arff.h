// ARFF import (Weka's Attribute-Relation File Format) — the canonical
// distribution format for the rule-learning datasets of the paper's era.
//
// Supported subset: @relation, @attribute <name> numeric/real/integer,
// @attribute <name> {v1, v2, ...} (nominal), @data with comma-separated
// rows, '%' comments, quoted nominal values, and '?' missing values
// (mapped to kInvalidCategory for nominal attributes and NaN-free 0.0 for
// numeric ones — PNrule's condition semantics treat both as
// "matches nothing specific"). The last nominal attribute is the class
// unless `class_attribute` names another.

#ifndef PNR_DATA_ARFF_H_
#define PNR_DATA_ARFF_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace pnr {

/// Options controlling ARFF import.
struct ArffReadOptions {
  /// Name of the attribute to use as the class; empty = the last declared
  /// nominal attribute.
  std::string class_attribute;
};

/// Parses ARFF text into a Dataset.
StatusOr<Dataset> ReadArffFromString(const std::string& text,
                                     const ArffReadOptions& options = {});

/// Reads an .arff file.
StatusOr<Dataset> ReadArff(const std::string& path,
                           const ArffReadOptions& options = {});

}  // namespace pnr

#endif  // PNR_DATA_ARFF_H_
