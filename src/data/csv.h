// CSV import/export for datasets.
//
// Import infers a schema: a column whose every field parses as a double
// becomes numeric; anything else becomes categorical. One column is
// designated the class column (by name, or the last column by default).
//
// The grammar is quote-aware RFC-4180-style CSV: fields may be wrapped in
// double quotes to embed the delimiter, newlines, or (doubled) quotes;
// unquoted fields are trimmed of surrounding whitespace. A UTF-8 BOM and
// CRLF line endings are tolerated, and a missing trailing newline is fine.
// Parse errors report the line number, column index and offending token.
//
// Loading goes through the ingest engine (data/ingest.h): `num_threads = 1`
// runs the serial reference parser, anything else the memory-mapped,
// chunk-parallel engine. The loaded Dataset is byte-identical either way.

#ifndef PNR_DATA_CSV_H_
#define PNR_DATA_CSV_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace pnr {

/// Options controlling CSV import.
struct CsvReadOptions {
  /// Field delimiter.
  char delimiter = ',';
  /// Whether the first row is a header with attribute names.
  bool has_header = true;
  /// Name of the class column; empty means "last column".
  std::string class_column;
  /// Worker threads for parsing: 1 = serial reference parser, 0 = all
  /// hardware threads, n = chunk-parallel engine with n threads. The
  /// result is bitwise-identical for every value.
  size_t num_threads = 1;
};

/// Reads `path` into a Dataset (memory-mapped when possible). All rows must
/// have the same arity.
StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvReadOptions& options = {});

/// Parses CSV from an in-memory string (same semantics as ReadCsv).
StatusOr<Dataset> ReadCsvFromString(const std::string& text,
                                    const CsvReadOptions& options = {});

/// Writes `dataset` to `path` with a header row; the class column is last.
Status WriteCsv(const Dataset& dataset, const std::string& path,
                char delimiter = ',');

}  // namespace pnr

#endif  // PNR_DATA_CSV_H_
