// CSV import/export for datasets.
//
// Import infers a schema: a column whose every non-empty field parses as a
// double becomes numeric; anything else becomes categorical. One column is
// designated the class column (by name, or the last column by default).

#ifndef PNR_DATA_CSV_H_
#define PNR_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace pnr {

/// Options controlling CSV import.
struct CsvReadOptions {
  /// Field delimiter.
  char delimiter = ',';
  /// Whether the first row is a header with attribute names.
  bool has_header = true;
  /// Name of the class column; empty means "last column".
  std::string class_column;
};

/// Reads `path` into a Dataset. All rows must have the same arity.
StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvReadOptions& options = {});

/// Parses CSV from an in-memory string (same semantics as ReadCsv).
StatusOr<Dataset> ReadCsvFromString(const std::string& text,
                                    const CsvReadOptions& options = {});

/// Writes `dataset` to `path` with a header row; the class column is last.
Status WriteCsv(const Dataset& dataset, const std::string& path,
                char delimiter = ',');

}  // namespace pnr

#endif  // PNR_DATA_CSV_H_
