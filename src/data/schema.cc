#include "data/schema.h"

#include <cassert>

namespace pnr {

AttrIndex Schema::AddAttribute(Attribute attr) {
  attributes_.push_back(std::move(attr));
  return static_cast<AttrIndex>(attributes_.size() - 1);
}

const Attribute& Schema::attribute(AttrIndex index) const {
  assert(index >= 0 && static_cast<size_t>(index) < attributes_.size());
  return attributes_[static_cast<size_t>(index)];
}

Attribute& Schema::attribute(AttrIndex index) {
  assert(index >= 0 && static_cast<size_t>(index) < attributes_.size());
  return attributes_[static_cast<size_t>(index)];
}

StatusOr<AttrIndex> Schema::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name() == name) return static_cast<AttrIndex>(i);
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

}  // namespace pnr
