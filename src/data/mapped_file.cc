#include "data/mapped_file.h"

#include <utility>

#include "common/file_io.h"

#if defined(__unix__) || defined(__APPLE__)
#define PNR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/io_hooks.h"
#endif

namespace pnr {

MappedFile::MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  this->~MappedFile();
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  buffer_ = std::move(other.buffer_);
  if (!mapped_) data_ = buffer_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

MappedFile::~MappedFile() {
#if PNR_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path,
                                      bool allow_mmap) {
#if PNR_HAVE_MMAP
  if (allow_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError("cannot open '" + path + "'");
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      ::close(fd);  // pipes, devices etc. fall back to streaming below
    } else if (st.st_size == 0) {
      ::close(fd);
      return MappedFile();  // mmap of length 0 is invalid; empty view
    } else {
      // A failed map (including an injected failure) falls through to the
      // streaming read below — mmap is an optimization, never a requirement.
      void* addr = io::Mmap(nullptr, static_cast<size_t>(st.st_size),
                            PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (addr != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
        ::madvise(addr, static_cast<size_t>(st.st_size), MADV_SEQUENTIAL);
#endif
        MappedFile file;
        file.data_ = static_cast<const char*>(addr);
        file.size_ = static_cast<size_t>(st.st_size);
        file.mapped_ = true;
        return file;
      }
    }
  }
#else
  (void)allow_mmap;
#endif
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  MappedFile file;
  file.buffer_ = std::move(content).value();
  file.data_ = file.buffer_.data();
  file.size_ = file.buffer_.size();
  file.mapped_ = false;
  return file;
}

}  // namespace pnr
