// ARFF header parsing and entry points. The @data section is parsed by the
// ingest engine (data/ingest.cc); this file owns everything up to and
// including the @data line: attribute declarations, class resolution, and
// schema construction.

#include "data/arff.h"

#include <cctype>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "data/ingest.h"

namespace pnr {
namespace {

// Case-insensitive prefix test.
bool StartsWithNoCase(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

struct ArffAttribute {
  std::string name;
  bool numeric = true;
  std::vector<std::string> values;  // nominal domain
};

Status ParseError(size_t line_number, const std::string& detail) {
  return Status::InvalidArgument("ARFF line " + std::to_string(line_number) +
                                 ": " + detail);
}

StatusOr<ArffAttribute> ParseAttributeDecl(std::string_view body,
                                           size_t line_number) {
  // body = "<name> <type>" where name may be quoted.
  std::string_view view = TrimWhitespace(body);
  if (view.empty()) return ParseError(line_number, "empty @attribute");
  std::string name;
  std::string_view rest;
  if (view.front() == '\'' || view.front() == '"') {
    const char quote = view.front();
    const size_t end = view.find(quote, 1);
    if (end == std::string_view::npos) {
      return ParseError(line_number, "unterminated quoted attribute name");
    }
    name = std::string(view.substr(1, end - 1));
    rest = TrimWhitespace(view.substr(end + 1));
  } else {
    const size_t space = view.find_first_of(" \t");
    if (space == std::string_view::npos) {
      return ParseError(line_number, "missing attribute type");
    }
    name = std::string(view.substr(0, space));
    rest = TrimWhitespace(view.substr(space));
  }
  ArffAttribute attr;
  attr.name = std::move(name);
  if (rest.empty()) return ParseError(line_number, "missing attribute type");
  if (rest.front() == '{') {
    if (rest.back() != '}') {
      return ParseError(line_number, "unterminated nominal domain");
    }
    attr.numeric = false;
    for (const std::string& value :
         SplitString(rest.substr(1, rest.size() - 2), ',')) {
      attr.values.push_back(ArffUnquote(value));
    }
    if (attr.values.empty()) {
      return ParseError(line_number, "empty nominal domain");
    }
    return attr;
  }
  const std::string type(rest);
  if (StartsWithNoCase(type, "numeric") || StartsWithNoCase(type, "real") ||
      StartsWithNoCase(type, "integer")) {
    attr.numeric = true;
    return attr;
  }
  if (StartsWithNoCase(type, "string") || StartsWithNoCase(type, "date")) {
    return ParseError(line_number,
                      "unsupported attribute type '" + type + "'");
  }
  return ParseError(line_number, "unknown attribute type '" + type + "'");
}

}  // namespace

std::string ArffUnquote(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.size() >= 2 && ((text.front() == '\'' && text.back() == '\'') ||
                           (text.front() == '"' && text.back() == '"'))) {
    return std::string(text.substr(1, text.size() - 2));
  }
  return std::string(text);
}

StatusOr<ArffLayout> ParseArffHeader(std::string_view text,
                                     const ArffReadOptions& options) {
  // Offsets in the returned layout are relative to `text` as passed in, so
  // a BOM just advances the cursor.
  size_t pos = 0;
  if (text.size() >= 3 && std::memcmp(text.data(), "\xEF\xBB\xBF", 3) == 0) {
    pos = 3;
  }
  size_t line_number = 0;
  std::vector<ArffAttribute> attributes;
  bool in_data = false;
  size_t data_offset = text.size();
  size_t data_first_line = 1;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    const size_t line_end = (nl == std::string_view::npos) ? text.size() : nl;
    std::string_view raw = text.substr(pos, line_end - pos);
    pos = (nl == std::string_view::npos) ? text.size() : nl + 1;
    ++line_number;
    // Strip comments ('%' anywhere starts one) and whitespace.
    const size_t comment = raw.find('%');
    if (comment != std::string_view::npos) raw = raw.substr(0, comment);
    const std::string_view line = TrimWhitespace(raw);
    if (line.empty()) continue;
    if (StartsWithNoCase(line, "@relation")) continue;
    if (StartsWithNoCase(line, "@attribute")) {
      auto attr = ParseAttributeDecl(line.substr(10), line_number);
      if (!attr.ok()) return attr.status();
      attributes.push_back(std::move(attr).value());
      continue;
    }
    if (StartsWithNoCase(line, "@data")) {
      in_data = true;
      data_offset = pos;
      data_first_line = line_number + 1;
      break;
    }
    return ParseError(line_number,
                      "unexpected header line '" + std::string(line) + "'");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("ARFF declares no attributes");
  }
  // A header without @data yields an empty data section; the row parsers
  // then report "ARFF has no data rows", matching the historical reader.
  (void)in_data;

  // Choose the class attribute.
  size_t class_index = attributes.size();
  if (!options.class_attribute.empty()) {
    for (size_t i = 0; i < attributes.size(); ++i) {
      if (attributes[i].name == options.class_attribute) {
        class_index = i;
        break;
      }
    }
    if (class_index == attributes.size()) {
      return Status::NotFound("class attribute '" + options.class_attribute +
                              "' not declared");
    }
  } else {
    for (size_t i = attributes.size(); i-- > 0;) {
      if (!attributes[i].numeric) {
        class_index = i;
        break;
      }
    }
    if (class_index == attributes.size()) {
      return Status::InvalidArgument(
          "no nominal attribute available as the class");
    }
  }
  if (attributes[class_index].numeric) {
    return Status::InvalidArgument("class attribute must be nominal");
  }

  ArffLayout layout;
  layout.class_index = class_index;
  layout.data_offset = data_offset;
  layout.data_first_line = data_first_line;
  layout.attr_of.assign(attributes.size(), -1);
  layout.numeric.resize(attributes.size());
  layout.names.resize(attributes.size());
  for (size_t i = 0; i < attributes.size(); ++i) {
    layout.numeric[i] = attributes[i].numeric;
    layout.names[i] = attributes[i].name;
    if (i == class_index) {
      for (const std::string& value : attributes[i].values) {
        layout.schema.GetOrAddClass(value);
      }
      continue;
    }
    layout.attr_of[i] = layout.schema.AddAttribute(
        attributes[i].numeric
            ? Attribute::Numeric(attributes[i].name)
            : Attribute::Categorical(attributes[i].name,
                                     attributes[i].values));
  }
  return layout;
}

namespace {

IngestOptions EngineOptions(const ArffReadOptions& options) {
  IngestOptions ingest;
  ingest.num_threads = options.num_threads;
  return ingest;
}

}  // namespace

StatusOr<Dataset> ReadArffFromString(const std::string& text,
                                     const ArffReadOptions& options) {
  return IngestEngine(EngineOptions(options)).ParseArff(text, options);
}

StatusOr<Dataset> ReadArff(const std::string& path,
                           const ArffReadOptions& options) {
  return IngestEngine(EngineOptions(options)).LoadArff(path, options);
}

}  // namespace pnr
