#include "data/arff.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pnr {
namespace {

// Case-insensitive prefix test.
bool StartsWithNoCase(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

std::string Unquote(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.size() >= 2 &&
      ((text.front() == '\'' && text.back() == '\'') ||
       (text.front() == '"' && text.back() == '"'))) {
    return std::string(text.substr(1, text.size() - 2));
  }
  return std::string(text);
}

struct ArffAttribute {
  std::string name;
  bool numeric = true;
  std::vector<std::string> values;  // nominal domain
};

Status ParseError(size_t line_number, const std::string& detail) {
  return Status::InvalidArgument("ARFF line " + std::to_string(line_number) +
                                 ": " + detail);
}

StatusOr<ArffAttribute> ParseAttributeDecl(const std::string& body,
                                           size_t line_number) {
  // body = "<name> <type>" where name may be quoted.
  std::string_view view = TrimWhitespace(body);
  if (view.empty()) return ParseError(line_number, "empty @attribute");
  std::string name;
  std::string_view rest;
  if (view.front() == '\'' || view.front() == '"') {
    const char quote = view.front();
    const size_t end = view.find(quote, 1);
    if (end == std::string_view::npos) {
      return ParseError(line_number, "unterminated quoted attribute name");
    }
    name = std::string(view.substr(1, end - 1));
    rest = TrimWhitespace(view.substr(end + 1));
  } else {
    const size_t space = view.find_first_of(" \t");
    if (space == std::string_view::npos) {
      return ParseError(line_number, "missing attribute type");
    }
    name = std::string(view.substr(0, space));
    rest = TrimWhitespace(view.substr(space));
  }
  ArffAttribute attr;
  attr.name = std::move(name);
  if (rest.empty()) return ParseError(line_number, "missing attribute type");
  if (rest.front() == '{') {
    if (rest.back() != '}') {
      return ParseError(line_number, "unterminated nominal domain");
    }
    attr.numeric = false;
    for (const std::string& value :
         SplitString(rest.substr(1, rest.size() - 2), ',')) {
      attr.values.push_back(Unquote(value));
    }
    if (attr.values.empty()) {
      return ParseError(line_number, "empty nominal domain");
    }
    return attr;
  }
  const std::string type(rest);
  if (StartsWithNoCase(type, "numeric") || StartsWithNoCase(type, "real") ||
      StartsWithNoCase(type, "integer")) {
    attr.numeric = true;
    return attr;
  }
  if (StartsWithNoCase(type, "string") || StartsWithNoCase(type, "date")) {
    return ParseError(line_number,
                      "unsupported attribute type '" + type + "'");
  }
  return ParseError(line_number, "unknown attribute type '" + type + "'");
}

}  // namespace

StatusOr<Dataset> ReadArffFromString(const std::string& text,
                                     const ArffReadOptions& options) {
  std::istringstream stream(text);
  std::string raw;
  size_t line_number = 0;

  std::vector<ArffAttribute> attributes;
  bool in_data = false;
  std::vector<std::vector<std::string>> rows;
  while (std::getline(stream, raw)) {
    ++line_number;
    // Strip comments and whitespace.
    const size_t comment = raw.find('%');
    if (comment != std::string::npos) raw.resize(comment);
    const std::string line(TrimWhitespace(raw));
    if (line.empty()) continue;
    if (!in_data) {
      if (StartsWithNoCase(line, "@relation")) continue;
      if (StartsWithNoCase(line, "@attribute")) {
        auto attr = ParseAttributeDecl(line.substr(10), line_number);
        if (!attr.ok()) return attr.status();
        attributes.push_back(std::move(attr).value());
        continue;
      }
      if (StartsWithNoCase(line, "@data")) {
        in_data = true;
        continue;
      }
      return ParseError(line_number, "unexpected header line '" + line + "'");
    }
    std::vector<std::string> fields = SplitString(line, ',');
    if (fields.size() != attributes.size()) {
      return ParseError(line_number,
                        "row has " + std::to_string(fields.size()) +
                            " fields, expected " +
                            std::to_string(attributes.size()));
    }
    for (std::string& field : fields) field = Unquote(field);
    rows.push_back(std::move(fields));
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("ARFF declares no attributes");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("ARFF has no data rows");
  }

  // Choose the class attribute.
  size_t class_index = attributes.size();
  if (!options.class_attribute.empty()) {
    for (size_t i = 0; i < attributes.size(); ++i) {
      if (attributes[i].name == options.class_attribute) {
        class_index = i;
        break;
      }
    }
    if (class_index == attributes.size()) {
      return Status::NotFound("class attribute '" + options.class_attribute +
                              "' not declared");
    }
  } else {
    for (size_t i = attributes.size(); i-- > 0;) {
      if (!attributes[i].numeric) {
        class_index = i;
        break;
      }
    }
    if (class_index == attributes.size()) {
      return Status::InvalidArgument(
          "no nominal attribute available as the class");
    }
  }
  if (attributes[class_index].numeric) {
    return Status::InvalidArgument("class attribute must be nominal");
  }

  Schema schema;
  std::vector<AttrIndex> attr_of(attributes.size(), -1);
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (i == class_index) {
      for (const std::string& value : attributes[i].values) {
        schema.GetOrAddClass(value);
      }
      continue;
    }
    attr_of[i] = schema.AddAttribute(
        attributes[i].numeric
            ? Attribute::Numeric(attributes[i].name)
            : Attribute::Categorical(attributes[i].name,
                                     attributes[i].values));
  }

  Dataset dataset(std::move(schema));
  dataset.Reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    const RowId row = dataset.AddRow();
    for (size_t i = 0; i < attributes.size(); ++i) {
      const std::string& field = rows[r][i];
      if (i == class_index) {
        const CategoryId label =
            dataset.schema().class_attr().FindCategory(field);
        if (label == kInvalidCategory) {
          return Status::InvalidArgument("undeclared class value '" + field +
                                         "'");
        }
        dataset.set_label(row, label);
        continue;
      }
      const AttrIndex attr = attr_of[i];
      if (attributes[i].numeric) {
        double value = 0.0;
        if (field == "?") {
          value = 0.0;  // documented missing-value convention
        } else if (!ParseDouble(field, &value)) {
          return Status::InvalidArgument("non-numeric value '" + field +
                                         "' in attribute '" +
                                         attributes[i].name + "'");
        }
        dataset.set_numeric(row, attr, value);
      } else {
        if (field == "?") {
          dataset.set_categorical(row, attr, kInvalidCategory);
          continue;
        }
        const CategoryId id =
            dataset.schema().attribute(attr).FindCategory(field);
        if (id == kInvalidCategory) {
          return Status::InvalidArgument(
              "value '" + field + "' not in the declared domain of '" +
              attributes[i].name + "'");
        }
        dataset.set_categorical(row, attr, id);
      }
    }
  }
  return dataset;
}

StatusOr<Dataset> ReadArff(const std::string& path,
                           const ArffReadOptions& options) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadArffFromString(buffer.str(), options);
}

}  // namespace pnr
