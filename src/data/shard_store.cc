#include "data/shard_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/file_io.h"
#include "data/schema_io.h"

namespace pnr {
namespace {

constexpr char kMagic[8] = {'P', 'N', 'R', 'S', 'H', 'R', 'D', '1'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kFlagHasWeights = 1u << 0;
constexpr size_t kHeaderSize = 64;
constexpr size_t kBlobRefSize = 24;

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = 14695981039346656037ULL;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Bits needed to represent every value in [0, max_value].
uint32_t BitsForMaxValue(uint64_t max_value) {
  uint32_t bits = 1;
  while (max_value >>= 1) ++bits;
  return bits;
}

size_t PackedBytes(uint64_t values, uint32_t width) {
  return static_cast<size_t>((values * width + 7) / 8);
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

double ReadF64(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

// LSB-first bit packing of `n` codes at `width` bits each.
void PackCodes(const uint32_t* codes, size_t n, uint32_t width,
               std::string* out) {
  const size_t base = out->size();
  out->resize(base + PackedBytes(n, width), '\0');
  unsigned char* bytes =
      reinterpret_cast<unsigned char*>(&(*out)[0]) + base;
  size_t bit = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t code = codes[i];
    for (uint32_t b = 0; b < width; ++b, ++bit) {
      if ((code >> b) & 1u) bytes[bit >> 3] |= 1u << (bit & 7);
    }
  }
}

void UnpackCodes(const unsigned char* bytes, size_t n, uint32_t width,
                 uint32_t* out) {
  size_t bit = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t code = 0;
    for (uint32_t b = 0; b < width; ++b, ++bit) {
      code |= static_cast<uint32_t>((bytes[bit >> 3] >> (bit & 7)) & 1u) << b;
    }
    out[i] = code;
  }
}

// First-element-seeded min/max fold; shared by writer and reader so the
// stored zonemap compares bit-equal to the recomputed one (NaN seeds stay
// NaN, -0.0 stays -0.0).
void NumericZone(const double* values, size_t n, double* zmin, double* zmax) {
  double mn = values[0];
  double mx = values[0];
  for (size_t i = 1; i < n; ++i) {
    if (values[i] < mn) mn = values[i];
    if (values[i] > mx) mx = values[i];
  }
  *zmin = mn;
  *zmax = mx;
}

void CodeZone(const uint32_t* codes, size_t n, uint32_t* cmin,
              uint32_t* cmax) {
  uint32_t mn = codes[0];
  uint32_t mx = codes[0];
  for (size_t i = 1; i < n; ++i) {
    mn = std::min(mn, codes[i]);
    mx = std::max(mx, codes[i]);
  }
  *cmin = mn;
  *cmax = mx;
}

// Canonical contiguous row split: floor(n/s) rows each, remainder spread
// over the leading shards.
std::vector<std::pair<uint64_t, uint64_t>> SplitRows(uint64_t num_rows,
                                                     uint32_t num_shards) {
  std::vector<std::pair<uint64_t, uint64_t>> ranges(num_shards);
  const uint64_t base = num_rows / num_shards;
  const uint64_t extra = num_rows % num_shards;
  uint64_t begin = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const uint64_t size = base + (s < extra ? 1 : 0);
    ranges[s] = {begin, begin + size};
    begin += size;
  }
  return ranges;
}

size_t DirectorySize(uint32_t num_attrs, uint32_t num_shards,
                     bool has_weights) {
  const size_t s = num_shards;
  size_t size = kBlobRefSize;            // schema blob
  size += 16 * s;                        // row ranges
  size += 4;                             // label bit width
  size += kBlobRefSize * s;              // label blobs
  if (has_weights) size += kBlobRefSize * s;
  size += static_cast<size_t>(num_attrs) * (8 + (kBlobRefSize + 16) * s);
  return size;
}

struct PendingBlob {
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};

// Appends `payload` to `file` and records its ref.
PendingBlob EmitBlob(std::string* file, const std::string& payload) {
  PendingBlob blob;
  blob.offset = file->size();
  blob.size = payload.size();
  blob.checksum = Fnv1a(payload);
  file->append(payload);
  return blob;
}

void AppendBlobRef(std::string* dir, const PendingBlob& blob) {
  AppendU64(dir, blob.offset);
  AppendU64(dir, blob.size);
  AppendU64(dir, blob.checksum);
}

}  // namespace

bool LooksLikeShardStore(std::string_view bytes) {
  return bytes.size() >= sizeof(kMagic) &&
         std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
}

// Shared serializer core. `rows` selects the records to write in order;
// nullptr means the identity list [0, count) (the whole-dataset path, which
// skips the gather copy for numeric columns). Both paths emit the same
// bytes for the same logical row sequence.
static StatusOr<std::string> SerializeRowsImpl(
    const Dataset& dataset,
                                        const RowId* rows, uint64_t num_rows,
                                        const ShardStoreWriteOptions& options) {
  const Schema& schema = dataset.schema();
  if (num_rows == 0) {
    return Status::InvalidArgument("shard_store: cannot write an empty dataset");
  }
  const size_t num_classes = schema.num_classes();
  if (num_classes == 0) {
    return Status::InvalidArgument(
        "shard_store: dataset schema has no class labels");
  }
  if (rows != nullptr) {
    for (uint64_t i = 0; i < num_rows; ++i) {
      if (rows[i] >= dataset.num_rows()) {
        return Status::InvalidArgument(
            "shard_store: row id " + std::to_string(rows[i]) +
            " outside the dataset");
      }
    }
  }
  for (uint64_t i = 0; i < num_rows; ++i) {
    const CategoryId label = dataset.labels()[rows ? rows[i] : i];
    if (label < 0 || static_cast<size_t>(label) >= num_classes) {
      return Status::InvalidArgument(
          "shard_store: label outside the class dictionary");
    }
  }
  bool has_weights = options.include_weights;
  for (uint64_t i = 0; i < num_rows; ++i) {
    const double w = dataset.weights()[rows ? rows[i] : i];
    if (!std::isfinite(w)) {
      return Status::InvalidArgument("shard_store: non-finite record weight");
    }
    if (w != 1.0) has_weights = true;
  }

  const uint32_t num_attrs = static_cast<uint32_t>(schema.num_attributes());
  const uint32_t num_shards = static_cast<uint32_t>(std::min<uint64_t>(
      std::max<uint32_t>(options.num_shards, 1), num_rows));
  const auto ranges = SplitRows(num_rows, num_shards);
  const uint32_t label_width = BitsForMaxValue(num_classes - 1);

  std::string file;
  file.resize(kHeaderSize, '\0');  // header is patched in at the end

  // Schema blob.
  const PendingBlob schema_blob = EmitBlob(&file, SerializeSchema(schema));

  // Label shards.
  std::vector<PendingBlob> label_blobs(num_shards);
  std::vector<uint32_t> codes;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const size_t shard_rows = ranges[s].second - ranges[s].first;
    codes.resize(shard_rows);
    for (size_t i = 0; i < shard_rows; ++i) {
      const uint64_t pos = ranges[s].first + i;
      codes[i] = static_cast<uint32_t>(
          dataset.labels()[rows ? rows[pos] : pos]);
    }
    std::string payload;
    PackCodes(codes.data(), shard_rows, label_width, &payload);
    label_blobs[s] = EmitBlob(&file, payload);
  }

  // Weight shards.
  std::vector<PendingBlob> weight_blobs;
  if (has_weights) {
    weight_blobs.resize(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      std::string payload;
      for (uint64_t pos = ranges[s].first; pos < ranges[s].second; ++pos) {
        AppendF64(&payload, dataset.weights()[rows ? rows[pos] : pos]);
      }
      weight_blobs[s] = EmitBlob(&file, payload);
    }
  }

  // Feature columns, attr-major / shard-minor.
  struct PendingShard {
    PendingBlob blob;
    double zmin = 0.0, zmax = 0.0;
    uint32_t cmin = 0, cmax = 0;
  };
  std::vector<std::vector<PendingShard>> column_shards(num_attrs);
  std::vector<double> gathered;
  for (uint32_t a = 0; a < num_attrs; ++a) {
    const AttrIndex attr = static_cast<AttrIndex>(a);
    const Attribute& attribute = schema.attribute(attr);
    column_shards[a].resize(num_shards);
    if (attribute.is_numeric()) {
      const std::vector<double>& column = dataset.numeric_column(attr);
      for (uint32_t s = 0; s < num_shards; ++s) {
        const size_t shard_rows = ranges[s].second - ranges[s].first;
        const double* values;
        if (rows == nullptr) {
          values = column.data() + ranges[s].first;
        } else {
          gathered.resize(shard_rows);
          for (size_t i = 0; i < shard_rows; ++i) {
            gathered[i] = column[rows[ranges[s].first + i]];
          }
          values = gathered.data();
        }
        std::string payload;
        payload.resize(shard_rows * sizeof(double));
        std::memcpy(&payload[0], values, shard_rows * sizeof(double));
        PendingShard& shard = column_shards[a][s];
        NumericZone(values, shard_rows, &shard.zmin, &shard.zmax);
        shard.blob = EmitBlob(&file, payload);
      }
    } else {
      const std::vector<CategoryId>& column = dataset.categorical_column(attr);
      const uint32_t invalid_code =
          static_cast<uint32_t>(attribute.num_categories());
      const uint32_t width = BitsForMaxValue(invalid_code);
      for (uint32_t s = 0; s < num_shards; ++s) {
        const size_t shard_rows = ranges[s].second - ranges[s].first;
        codes.resize(shard_rows);
        for (size_t i = 0; i < shard_rows; ++i) {
          const uint64_t pos = ranges[s].first + i;
          const CategoryId cell = column[rows ? rows[pos] : pos];
          if (cell == kInvalidCategory) {
            codes[i] = invalid_code;
          } else if (cell >= 0 &&
                     static_cast<uint32_t>(cell) < invalid_code) {
            codes[i] = static_cast<uint32_t>(cell);
          } else {
            return Status::InvalidArgument(
                "shard_store: categorical cell outside attribute '" +
                attribute.name() + "' dictionary");
          }
        }
        std::string payload;
        PackCodes(codes.data(), shard_rows, width, &payload);
        PendingShard& shard = column_shards[a][s];
        CodeZone(codes.data(), shard_rows, &shard.cmin, &shard.cmax);
        shard.blob = EmitBlob(&file, payload);
      }
    }
  }

  // Directory.
  const uint64_t dir_offset = file.size();
  std::string dir;
  dir.reserve(DirectorySize(num_attrs, num_shards, has_weights));
  AppendBlobRef(&dir, schema_blob);
  for (uint32_t s = 0; s < num_shards; ++s) {
    AppendU64(&dir, ranges[s].first);
    AppendU64(&dir, ranges[s].second);
  }
  AppendU32(&dir, label_width);
  for (uint32_t s = 0; s < num_shards; ++s) AppendBlobRef(&dir, label_blobs[s]);
  for (const PendingBlob& blob : weight_blobs) AppendBlobRef(&dir, blob);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    const Attribute& attribute = schema.attribute(static_cast<AttrIndex>(a));
    dir.push_back(attribute.is_numeric() ? '\0' : '\1');
    dir.append(3, '\0');
    AppendU32(&dir, attribute.is_numeric()
                        ? 0
                        : BitsForMaxValue(attribute.num_categories()));
    for (uint32_t s = 0; s < num_shards; ++s) {
      const PendingShard& shard = column_shards[a][s];
      AppendBlobRef(&dir, shard.blob);
      if (attribute.is_numeric()) {
        AppendF64(&dir, shard.zmin);
        AppendF64(&dir, shard.zmax);
      } else {
        AppendU32(&dir, shard.cmin);
        AppendU32(&dir, shard.cmax);
        AppendU64(&dir, 0);
      }
    }
  }
  assert(dir.size() == DirectorySize(num_attrs, num_shards, has_weights));
  const uint64_t dir_checksum = Fnv1a(dir);
  file.append(dir);

  // Patch the header.
  std::string header;
  header.reserve(kHeaderSize);
  header.append(kMagic, sizeof(kMagic));
  AppendU32(&header, kVersion);
  AppendU32(&header, has_weights ? kFlagHasWeights : 0);
  AppendU64(&header, num_rows);
  AppendU32(&header, num_attrs);
  AppendU32(&header, num_shards);
  AppendU64(&header, dir_offset);
  AppendU64(&header, dir.size());
  AppendU64(&header, dir_checksum);
  AppendU64(&header, file.size());
  assert(header.size() == kHeaderSize);
  std::memcpy(&file[0], header.data(), kHeaderSize);
  return file;
}

StatusOr<std::string> SerializeShardStore(
    const Dataset& dataset, const ShardStoreWriteOptions& options) {
  return SerializeRowsImpl(dataset, nullptr, dataset.num_rows(), options);
}

Status WriteShardStore(const Dataset& dataset, const std::string& path,
                       const ShardStoreWriteOptions& options) {
  StatusOr<std::string> image = SerializeShardStore(dataset, options);
  if (!image.ok()) return image.status();
  return WriteStringToFile(*image, path);
}

StatusOr<std::string> SerializeShardStoreRows(
    const Dataset& dataset, const RowId* rows, size_t count,
    const ShardStoreWriteOptions& options) {
  assert(rows != nullptr || count == 0);
  return SerializeRowsImpl(dataset, rows, count, options);
}

Status WriteShardStoreRows(const Dataset& dataset, const RowId* rows,
                           size_t count, const std::string& path,
                           const ShardStoreWriteOptions& options) {
  StatusOr<std::string> image =
      SerializeShardStoreRows(dataset, rows, count, options);
  if (!image.ok()) return image.status();
  return WriteStringToFile(*image, path);
}

// -- Reader -----------------------------------------------------------------

Status ShardStoreReader::LocatedError(const std::string& what,
                                      const std::string& msg) const {
  std::string full = "shard_store: " + name_ + ": ";
  if (!what.empty()) full += what + ": ";
  full += msg;
  return Status::InvalidArgument(std::move(full));
}

Status ShardStoreReader::CheckBlob(const BlobRef& blob,
                                   const std::string& what) const {
  if (blob.offset < kHeaderSize || blob.offset > data_.size() ||
      blob.size > data_.size() - blob.offset) {
    return LocatedError(what, "blob out of bounds");
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const ShardStoreReader>> ShardStoreReader::Validate(
    std::shared_ptr<ShardStoreReader> reader) {
  Status status = reader->ParseHeaderAndDirectory();
  if (!status.ok()) return status;
  return std::shared_ptr<const ShardStoreReader>(std::move(reader));
}

StatusOr<std::shared_ptr<const ShardStoreReader>> ShardStoreReader::Open(
    const std::string& path) {
  StatusOr<MappedFile> file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  auto reader = std::shared_ptr<ShardStoreReader>(new ShardStoreReader());
  reader->name_ = path;
  reader->file_ = std::move(file).value();
  reader->data_ = reader->file_.bytes();
  return Validate(std::move(reader));
}

StatusOr<std::shared_ptr<const ShardStoreReader>> ShardStoreReader::OpenBuffer(
    std::string buffer, std::string name) {
  auto reader = std::shared_ptr<ShardStoreReader>(new ShardStoreReader());
  reader->name_ = std::move(name);
  reader->buffer_ = std::move(buffer);
  reader->data_ = reader->buffer_;
  return Validate(std::move(reader));
}

Status ShardStoreReader::ParseHeaderAndDirectory() {
  if (data_.size() < kHeaderSize) {
    return LocatedError("header", "file shorter than the 64-byte header");
  }
  const char* head = data_.data();
  if (std::memcmp(head, kMagic, sizeof(kMagic)) != 0) {
    return LocatedError("header", "bad magic");
  }
  const uint32_t version = ReadU32(head + 8);
  if (version != kVersion) {
    return LocatedError("header",
                        "unsupported version " + std::to_string(version));
  }
  const uint32_t flags = ReadU32(head + 12);
  if ((flags & ~kFlagHasWeights) != 0) {
    return LocatedError("header", "unknown flag bits");
  }
  has_weights_ = (flags & kFlagHasWeights) != 0;
  num_rows_ = ReadU64(head + 16);
  num_attrs_ = ReadU32(head + 24);
  num_shards_ = ReadU32(head + 28);
  const uint64_t dir_offset = ReadU64(head + 32);
  const uint64_t dir_size = ReadU64(head + 40);
  const uint64_t dir_checksum = ReadU64(head + 48);
  const uint64_t file_size = ReadU64(head + 56);
  if (num_rows_ == 0) return LocatedError("header", "num_rows is 0");
  if (num_rows_ > UINT32_MAX) {
    return LocatedError("header", "num_rows exceeds the row-id range");
  }
  if (num_shards_ == 0 || num_shards_ > num_rows_) {
    return LocatedError("header", "num_shards outside [1, num_rows]");
  }
  if (file_size != data_.size()) {
    return LocatedError("header", "file_size field does not match the file");
  }
  if (dir_offset < kHeaderSize || dir_offset > data_.size() ||
      dir_size > data_.size() - dir_offset) {
    return LocatedError("header", "directory out of bounds");
  }
  const size_t expected_dir =
      DirectorySize(num_attrs_, num_shards_, has_weights_);
  if (dir_size != expected_dir) {
    return LocatedError("header", "directory size mismatch (expected " +
                                      std::to_string(expected_dir) + " bytes)");
  }
  const std::string_view dir = data_.substr(dir_offset, dir_size);
  if (Fnv1a(dir) != dir_checksum) {
    return LocatedError("header", "directory checksum mismatch");
  }

  const char* p = dir.data();
  schema_blob_ = {ReadU64(p), ReadU64(p + 8), ReadU64(p + 16)};
  p += kBlobRefSize;
  Status status = CheckBlob(schema_blob_, "schema");
  if (!status.ok()) return status;
  const std::string_view schema_bytes =
      data_.substr(schema_blob_.offset, schema_blob_.size);
  if (Fnv1a(schema_bytes) != schema_blob_.checksum) {
    return LocatedError("schema", "checksum mismatch");
  }
  StatusOr<Schema> schema = ParseSchema(std::string(schema_bytes));
  if (!schema.ok()) {
    return LocatedError("schema", schema.status().message());
  }
  schema_ = std::move(schema).value();
  if (schema_.num_attributes() != num_attrs_) {
    return LocatedError(
        "schema", "attribute count does not match the header");
  }
  if (schema_.num_classes() == 0) {
    return LocatedError("schema", "class dictionary is empty");
  }

  ranges_.resize(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    ranges_[s] = {ReadU64(p), ReadU64(p + 8)};
    p += 16;
    const uint64_t expected_begin = s == 0 ? 0 : ranges_[s - 1].second;
    if (ranges_[s].first != expected_begin ||
        ranges_[s].second <= ranges_[s].first ||
        ranges_[s].second > num_rows_) {
      return LocatedError("shard " + std::to_string(s),
                          "row range does not partition [0, num_rows)");
    }
  }
  if (ranges_.back().second != num_rows_) {
    return LocatedError("shard " + std::to_string(num_shards_ - 1),
                        "row ranges do not cover num_rows");
  }

  label_bit_width_ = ReadU32(p);
  p += 4;
  if (label_bit_width_ != BitsForMaxValue(schema_.num_classes() - 1)) {
    return LocatedError("labels", "bit width does not match the class count");
  }
  label_blobs_.resize(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    label_blobs_[s] = {ReadU64(p), ReadU64(p + 8), ReadU64(p + 16)};
    p += kBlobRefSize;
    status = CheckBlob(label_blobs_[s], "labels shard " + std::to_string(s));
    if (!status.ok()) return status;
    const uint64_t rows = ranges_[s].second - ranges_[s].first;
    if (label_blobs_[s].size != PackedBytes(rows, label_bit_width_)) {
      return LocatedError("labels shard " + std::to_string(s),
                          "blob size mismatch");
    }
  }
  weight_blobs_.clear();
  if (has_weights_) {
    weight_blobs_.resize(num_shards_);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      weight_blobs_[s] = {ReadU64(p), ReadU64(p + 8), ReadU64(p + 16)};
      p += kBlobRefSize;
      status =
          CheckBlob(weight_blobs_[s], "weights shard " + std::to_string(s));
      if (!status.ok()) return status;
      const uint64_t rows = ranges_[s].second - ranges_[s].first;
      if (weight_blobs_[s].size != rows * sizeof(double)) {
        return LocatedError("weights shard " + std::to_string(s),
                            "blob size mismatch");
      }
    }
  }

  columns_.resize(num_attrs_);
  for (uint32_t a = 0; a < num_attrs_; ++a) {
    const std::string where = "attr " + std::to_string(a);
    const Attribute& attribute = schema_.attribute(static_cast<AttrIndex>(a));
    const unsigned char type = static_cast<unsigned char>(p[0]);
    if (type > 1) return LocatedError(where, "unknown column type");
    if (p[1] != 0 || p[2] != 0 || p[3] != 0) {
      return LocatedError(where, "nonzero padding");
    }
    ColumnDir& column = columns_[a];
    column.numeric = type == 0;
    if (column.numeric != attribute.is_numeric()) {
      return LocatedError(where, "column type does not match the schema");
    }
    column.bit_width = ReadU32(p + 4);
    p += 8;
    const uint32_t expected_width =
        column.numeric ? 0 : BitsForMaxValue(attribute.num_categories());
    if (column.bit_width != expected_width) {
      return LocatedError(where, "bit width does not match the dictionary");
    }
    column.shards.resize(num_shards_);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      const std::string shard_where = where + " shard " + std::to_string(s);
      ColumnShard& shard = column.shards[s];
      shard.blob = {ReadU64(p), ReadU64(p + 8), ReadU64(p + 16)};
      p += kBlobRefSize;
      status = CheckBlob(shard.blob, shard_where);
      if (!status.ok()) return status;
      const uint64_t rows = ranges_[s].second - ranges_[s].first;
      if (column.numeric) {
        if (shard.blob.size != rows * sizeof(double)) {
          return LocatedError(shard_where, "blob size mismatch");
        }
        shard.zmin = ReadF64(p);
        shard.zmax = ReadF64(p + 8);
      } else {
        if (shard.blob.size != PackedBytes(rows, column.bit_width)) {
          return LocatedError(shard_where, "blob size mismatch");
        }
        shard.cmin = ReadU32(p);
        shard.cmax = ReadU32(p + 4);
        if (ReadU64(p + 8) != 0) {
          return LocatedError(shard_where, "nonzero zonemap padding");
        }
        const uint32_t invalid_code =
            static_cast<uint32_t>(attribute.num_categories());
        if (shard.cmin > shard.cmax || shard.cmax > invalid_code) {
          return LocatedError(shard_where, "zonemap code range out of bounds");
        }
      }
      p += 16;
    }
  }
  assert(p == dir.data() + dir.size());
  return Status::OK();
}

std::pair<uint64_t, uint64_t> ShardStoreReader::shard_rows(
    uint32_t shard) const {
  assert(shard < num_shards_);
  return ranges_[shard];
}

size_t ShardStoreReader::column_bytes() const {
  size_t total = 0;
  for (const ColumnDir& column : columns_) {
    total += num_rows_ *
             (column.numeric ? sizeof(double) : sizeof(CategoryId));
  }
  return total;
}

Status ShardStoreReader::DecodeNumericShard(AttrIndex attr, uint32_t shard,
                                            double* out) const {
  const ColumnDir& column = columns_[static_cast<size_t>(attr)];
  const ColumnShard& cs = column.shards[shard];
  const std::string where = "attr " + std::to_string(attr) + " shard " +
                            std::to_string(shard);
  const std::string_view bytes = data_.substr(cs.blob.offset, cs.blob.size);
  if (Fnv1a(bytes) != cs.blob.checksum) {
    return LocatedError(where, "checksum mismatch");
  }
  const size_t rows = ranges_[shard].second - ranges_[shard].first;
  std::memcpy(out, bytes.data(), rows * sizeof(double));
  double zmin, zmax;
  NumericZone(out, rows, &zmin, &zmax);
  if (std::memcmp(&zmin, &cs.zmin, sizeof(double)) != 0 ||
      std::memcmp(&zmax, &cs.zmax, sizeof(double)) != 0) {
    return LocatedError(where, "zonemap does not match the decoded values");
  }
  return Status::OK();
}

Status ShardStoreReader::DecodeCategoricalShard(AttrIndex attr, uint32_t shard,
                                                CategoryId* out) const {
  const ColumnDir& column = columns_[static_cast<size_t>(attr)];
  const ColumnShard& cs = column.shards[shard];
  const std::string where = "attr " + std::to_string(attr) + " shard " +
                            std::to_string(shard);
  const std::string_view bytes = data_.substr(cs.blob.offset, cs.blob.size);
  if (Fnv1a(bytes) != cs.blob.checksum) {
    return LocatedError(where, "checksum mismatch");
  }
  const size_t rows = ranges_[shard].second - ranges_[shard].first;
  std::vector<uint32_t> codes(rows);
  UnpackCodes(reinterpret_cast<const unsigned char*>(bytes.data()), rows,
              column.bit_width, codes.data());
  const uint32_t invalid_code = static_cast<uint32_t>(
      schema_.attribute(attr).num_categories());
  uint32_t cmin, cmax;
  CodeZone(codes.data(), rows, &cmin, &cmax);
  if (cmax > invalid_code) {
    return LocatedError(where, "code outside the dictionary");
  }
  if (cmin != cs.cmin || cmax != cs.cmax) {
    return LocatedError(where, "zonemap does not match the decoded values");
  }
  for (size_t i = 0; i < rows; ++i) {
    out[i] = codes[i] == invalid_code ? kInvalidCategory
                                      : static_cast<CategoryId>(codes[i]);
  }
  return Status::OK();
}

Status ShardStoreReader::FillNumeric(AttrIndex attr,
                                     std::vector<double>* out) const {
  assert(attr >= 0 && static_cast<uint32_t>(attr) < num_attrs_);
  if (!columns_[static_cast<size_t>(attr)].numeric) {
    return LocatedError("attr " + std::to_string(attr), "not numeric");
  }
  out->resize(num_rows_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    Status status = DecodeNumericShard(attr, s, out->data() + ranges_[s].first);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status ShardStoreReader::FillCategorical(AttrIndex attr,
                                         std::vector<CategoryId>* out) const {
  assert(attr >= 0 && static_cast<uint32_t>(attr) < num_attrs_);
  if (columns_[static_cast<size_t>(attr)].numeric) {
    return LocatedError("attr " + std::to_string(attr), "not categorical");
  }
  out->resize(num_rows_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    Status status =
        DecodeCategoricalShard(attr, s, out->data() + ranges_[s].first);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status ShardStoreReader::FillLabels(std::vector<CategoryId>* out) const {
  out->resize(num_rows_);
  const uint32_t num_classes = static_cast<uint32_t>(schema_.num_classes());
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const std::string where = "labels shard " + std::to_string(s);
    const BlobRef& blob = label_blobs_[s];
    const std::string_view bytes = data_.substr(blob.offset, blob.size);
    if (Fnv1a(bytes) != blob.checksum) {
      return LocatedError(where, "checksum mismatch");
    }
    const size_t rows = ranges_[s].second - ranges_[s].first;
    std::vector<uint32_t> codes(rows);
    UnpackCodes(reinterpret_cast<const unsigned char*>(bytes.data()), rows,
                label_bit_width_, codes.data());
    CategoryId* dst = out->data() + ranges_[s].first;
    for (size_t i = 0; i < rows; ++i) {
      if (codes[i] >= num_classes) {
        return LocatedError(where, "label outside the class dictionary");
      }
      dst[i] = static_cast<CategoryId>(codes[i]);
    }
  }
  return Status::OK();
}

Status ShardStoreReader::FillWeights(std::vector<double>* out) const {
  out->assign(num_rows_, 1.0);
  if (!has_weights_) return Status::OK();
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const std::string where = "weights shard " + std::to_string(s);
    const BlobRef& blob = weight_blobs_[s];
    const std::string_view bytes = data_.substr(blob.offset, blob.size);
    if (Fnv1a(bytes) != blob.checksum) {
      return LocatedError(where, "checksum mismatch");
    }
    const size_t rows = ranges_[s].second - ranges_[s].first;
    double* dst = out->data() + ranges_[s].first;
    for (size_t i = 0; i < rows; ++i) {
      const double w = ReadF64(bytes.data() + i * sizeof(double));
      if (!std::isfinite(w)) {
        return LocatedError(where, "non-finite record weight");
      }
      dst[i] = w;
    }
  }
  return Status::OK();
}

std::vector<std::pair<double, double>> ShardStoreReader::NumericRangeHints()
    const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::pair<double, double>> hints(
      num_attrs_, {kInf, -kInf});
  for (uint32_t a = 0; a < num_attrs_; ++a) {
    const ColumnDir& column = columns_[a];
    if (!column.numeric) continue;
    double mn = kInf, mx = -kInf;
    bool known = true;
    for (const ColumnShard& shard : column.shards) {
      if (!std::isfinite(shard.zmin) || !std::isfinite(shard.zmax)) {
        known = false;
        break;
      }
      mn = std::min(mn, shard.zmin);
      mx = std::max(mx, shard.zmax);
    }
    if (known) hints[a] = {mn, mx};
  }
  return hints;
}

StatusOr<Dataset> ShardStoreReader::LoadDataset() const {
  Dataset dataset(schema_);
  dataset.AppendRows(num_rows_);
  std::vector<CategoryId> ids;
  Status status = FillLabels(&ids);
  if (!status.ok()) return status;
  std::copy(ids.begin(), ids.end(), dataset.mutable_label_data());
  std::vector<double> weights;
  status = FillWeights(&weights);
  if (!status.ok()) return status;
  dataset.SetAllWeights(std::move(weights));
  for (uint32_t a = 0; a < num_attrs_; ++a) {
    const AttrIndex attr = static_cast<AttrIndex>(a);
    if (columns_[a].numeric) {
      double* out = dataset.mutable_numeric_data(attr);
      for (uint32_t s = 0; s < num_shards_; ++s) {
        status = DecodeNumericShard(attr, s, out + ranges_[s].first);
        if (!status.ok()) return status;
      }
    } else {
      CategoryId* out = dataset.mutable_categorical_data(attr);
      for (uint32_t s = 0; s < num_shards_; ++s) {
        status = DecodeCategoricalShard(attr, s, out + ranges_[s].first);
        if (!status.ok()) return status;
      }
    }
  }
  dataset.SetNumericRangeHints(NumericRangeHints());
  return dataset;
}

// -- Demand paging ----------------------------------------------------------

namespace {

class ShardStorePager : public ColumnPager {
 public:
  explicit ShardStorePager(std::shared_ptr<const ShardStoreReader> reader)
      : reader_(std::move(reader)) {}

  Status FillNumeric(AttrIndex attr,
                     std::vector<double>* out) const override {
    return reader_->FillNumeric(attr, out);
  }
  Status FillCategorical(AttrIndex attr,
                         std::vector<CategoryId>* out) const override {
    return reader_->FillCategorical(attr, out);
  }

 private:
  std::shared_ptr<const ShardStoreReader> reader_;
};

}  // namespace

StatusOr<Dataset> MakePagedDataset(
    std::shared_ptr<const ShardStoreReader> reader, size_t budget_bytes) {
  assert(reader != nullptr);
  std::vector<CategoryId> labels;
  Status status = reader->FillLabels(&labels);
  if (!status.ok()) return status;
  std::vector<double> weights;
  status = reader->FillWeights(&weights);
  if (!status.ok()) return status;
  Dataset dataset(reader->schema());
  dataset.AttachPager(std::make_shared<ShardStorePager>(reader),
                      reader->num_rows(), budget_bytes);
  std::copy(labels.begin(), labels.end(), dataset.mutable_label_data());
  dataset.SetAllWeights(std::move(weights));
  dataset.SetNumericRangeHints(reader->NumericRangeHints());
  return dataset;
}

}  // namespace pnr
