// The pnr CLI's subcommand catalog and usage text, factored out of the
// tool so tests can hold them against the actual dispatch table.
//
// The usage text used to live as one literal inside tools/pnr_cli.cc and
// drifted: subcommands and flags were added to the dispatcher without ever
// reaching the help screen. Keeping the canonical subcommand list here —
// with the dispatcher built positionally on top of it (static_assert'ed to
// the same length) and a test asserting every name appears in the rendered
// usage — turns that silent drift into a compile- or test-time failure.

#ifndef PNR_CLI_USAGE_H_
#define PNR_CLI_USAGE_H_

#include <cstddef>
#include <string>

namespace pnr {

/// Every subcommand `pnr` dispatches, in dispatch order. The CLI's handler
/// table pairs with this list by position.
inline constexpr const char* kPnrSubcommands[] = {
    "train", "eval", "predict", "shard", "mine",
    "serve", "probe", "tune",   "stream",
};

inline constexpr size_t kNumPnrSubcommands =
    sizeof(kPnrSubcommands) / sizeof(kPnrSubcommands[0]);

/// The full usage text printed on no/unknown subcommand. Mentions every
/// entry of kPnrSubcommands (enforced by cli_usage_test).
std::string PnrUsageText();

}  // namespace pnr

#endif  // PNR_CLI_USAGE_H_
