#include "harness/experiment.h"

#include <cstring>
#include <string>

#include "common/string_util.h"

namespace pnr {
namespace {

constexpr size_t kPaperTrain = 500000;
constexpr size_t kPaperTest = 250000;

void ApplyFactor(ExperimentScale* scale, double factor) {
  scale->factor = factor;
  scale->train_records =
      static_cast<size_t>(static_cast<double>(kPaperTrain) * factor + 0.5);
  scale->test_records =
      static_cast<size_t>(static_cast<double>(kPaperTest) * factor + 0.5);
}

}  // namespace

ExperimentScale ScaleFromArgs(int argc, char** argv) {
  return ScaleFromArgsWithDefault(argc, argv, 0.2);
}

ExperimentScale ScaleFromArgsWithDefault(int argc, char** argv,
                                         double default_factor) {
  ExperimentScale scale;
  ApplyFactor(&scale, default_factor);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--paper-scale") {
      ApplyFactor(&scale, 1.0);
    } else if (arg == "--quick") {
      ApplyFactor(&scale, 0.05);
    } else if (arg.rfind("--scale=", 0) == 0) {
      double factor = 0.0;
      if (ParseDouble(arg.substr(8), &factor) && factor > 0.0) {
        ApplyFactor(&scale, factor);
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      long long seed = 0;
      if (ParseInt64(arg.substr(7), &seed)) {
        scale.seed = static_cast<uint64_t>(seed);
      }
    }
  }
  return scale;
}

std::string DescribeScale(const ExperimentScale& scale) {
  return "scale=" + FormatDouble(scale.factor, 2) +
         " train=" + std::to_string(scale.train_records) +
         " test=" + std::to_string(scale.test_records) +
         " seed=" + std::to_string(scale.seed);
}

}  // namespace pnr
