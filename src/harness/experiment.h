// Experiment scaling and shared bench plumbing.
//
// The paper's experiments use 500k training / 250k test records with a
// 0.3% target class. Benchmarks default to a 0.2x scale (100k / 50k) so
// that the whole suite runs in minutes; pass --paper-scale for full size or
// --scale=<f> / --quick for other factors. The class geometry (fractions,
// peak widths) is scale-invariant.

#ifndef PNR_HARNESS_EXPERIMENT_H_
#define PNR_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <string>

namespace pnr {

/// Sizes of one experiment's train/test splits.
struct ExperimentScale {
  size_t train_records = 100000;
  size_t test_records = 50000;
  double factor = 0.2;
  uint64_t seed = 20010521;
};

/// Parses --paper-scale / --scale=<f> / --quick / --seed=<n> from argv.
/// Unknown arguments are ignored (benchmarks may define their own).
ExperimentScale ScaleFromArgs(int argc, char** argv);

/// Same, but with a bench-specific default factor used when the caller
/// passes no scale flag (syngen-based tables need 0.4 for the paper shape
/// to emerge; see EXPERIMENTS.md).
ExperimentScale ScaleFromArgsWithDefault(int argc, char** argv,
                                         double default_factor);

/// Header line describing the scale ("scale=0.2 train=100000 test=50000").
std::string DescribeScale(const ExperimentScale& scale);

}  // namespace pnr

#endif  // PNR_HARNESS_EXPERIMENT_H_
