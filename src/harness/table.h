// Plain-text table rendering for the benchmark binaries, matching the
// paper's Rec / Prec / F reporting style.

#ifndef PNR_HARNESS_TABLE_H_
#define PNR_HARNESS_TABLE_H_

#include <string>
#include <vector>

#include "harness/variants.h"

namespace pnr {

/// Column-aligned ASCII table builder.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with aligned columns and a header separator.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "97.07" — recall/precision as percentages, paper style.
std::string PercentCell(double fraction);

/// ".9792" — F-measure with 4 digits, paper style.
std::string FMeasureCell(double f);

/// Appends one variant's Rec / Prec / F cells to `row`.
void AppendMetricsCells(const VariantResult& result,
                        std::vector<std::string>* row);

}  // namespace pnr

#endif  // PNR_HARNESS_TABLE_H_
