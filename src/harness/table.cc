#include "harness/table.h"

#include <cassert>

#include "common/string_util.h"

namespace pnr {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string PercentCell(double fraction) {
  return FormatPercent(fraction, 2);
}

std::string FMeasureCell(double f) {
  std::string cell = FormatDouble(f, 4);
  // Paper style: ".9792" rather than "0.9792".
  if (cell.size() > 1 && cell[0] == '0') cell.erase(0, 1);
  return cell;
}

void AppendMetricsCells(const VariantResult& result,
                        std::vector<std::string>* row) {
  row->push_back(PercentCell(result.metrics.recall));
  row->push_back(PercentCell(result.metrics.precision));
  row->push_back(FMeasureCell(result.metrics.f_measure));
}

}  // namespace pnr
