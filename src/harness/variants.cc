#include "harness/variants.h"

#include "c45/rules.h"
#include "c45/tree_classifier.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/weighting.h"
#include "ripper/ripper.h"

namespace pnr {
namespace {

StatusOr<CategoryId> ResolveTarget(const Dataset& dataset,
                                   const std::string& target_class) {
  const CategoryId target =
      dataset.schema().class_attr().FindCategory(target_class);
  if (target == kInvalidCategory) {
    return Status::NotFound("class '" + target_class +
                            "' not present in the training schema");
  }
  return target;
}

VariantResult Finish(const std::string& name, const BinaryClassifier& model,
                     const Dataset& test, CategoryId target,
                     double train_seconds, std::string detail = {}) {
  VariantResult result;
  result.variant = name;
  result.confusion = EvaluateClassifier(model, test, target);
  result.metrics = Metrics(result.confusion);
  result.train_seconds = train_seconds;
  result.detail = std::move(detail);
  return result;
}

// Stratified copy of the training set for the "-we" variants.
Dataset StratifiedCopy(const Dataset& train, CategoryId target) {
  Dataset copy = train;
  copy.SetAllWeights(StratifiedWeights(train, target));
  return copy;
}

StatusOr<VariantResult> RunPnruleBestOfFour(const TrainTestPair& data,
                                            CategoryId target) {
  VariantResult best;
  bool have_best = false;
  for (double rp : {0.95, 0.99}) {
    for (double rn : {0.7, 0.95}) {
      PnruleConfig config;
      config.min_coverage_fraction = rp;
      config.n_recall_lower_limit = rn;
      Timer timer;
      PnruleLearner learner(config);
      auto model = learner.Train(data.train, target);
      if (!model.ok()) return model.status();
      VariantResult result =
          Finish("P", *model, data.test, target, timer.ElapsedSeconds(),
                 "rp=" + FormatDouble(rp, 2) + ",rn=" + FormatDouble(rn, 2));
      if (!have_best || result.metrics.f_measure > best.metrics.f_measure) {
        best = result;
        have_best = true;
      }
    }
  }
  return best;
}

}  // namespace

const std::vector<std::string>& StandardVariants() {
  static const std::vector<std::string> kVariants = {"C", "Cte", "R", "Re",
                                                     "P"};
  return kVariants;
}

StatusOr<VariantResult> RunVariant(const std::string& name,
                                   const TrainTestPair& data,
                                   const std::string& target_class,
                                   uint64_t seed) {
  auto target_or = ResolveTarget(data.train, target_class);
  if (!target_or.ok()) return target_or.status();
  const CategoryId target = *target_or;

  if (name == "C") {
    Timer timer;
    C45RulesLearner learner;
    auto model = learner.Train(data.train, target);
    if (!model.ok()) return model.status();
    return Finish(name, *model, data.test, target, timer.ElapsedSeconds());
  }
  if (name == "Cte") {
    Timer timer;
    const Dataset stratified = StratifiedCopy(data.train, target);
    C45TreeLearner learner;
    auto model = learner.Train(stratified, target);
    if (!model.ok()) return model.status();
    return Finish(name, *model, data.test, target, timer.ElapsedSeconds());
  }
  if (name == "R" || name == "Re") {
    Timer timer;
    RipperConfig config;
    config.seed = seed;
    RipperLearner learner(config);
    if (name == "Re") {
      const Dataset stratified = StratifiedCopy(data.train, target);
      auto model = learner.Train(stratified, target);
      if (!model.ok()) return model.status();
      return Finish(name, *model, data.test, target, timer.ElapsedSeconds());
    }
    auto model = learner.Train(data.train, target);
    if (!model.ok()) return model.status();
    return Finish(name, *model, data.test, target, timer.ElapsedSeconds());
  }
  if (name == "P") {
    return RunPnruleBestOfFour(data, target);
  }
  if (name == "P1") {
    PnruleConfig config;
    config.max_p_rule_length = 1;
    config.min_coverage_fraction = 0.95;
    config.n_recall_lower_limit = 0.95;
    auto result = RunPnruleConfigured(config, data, target_class);
    if (!result.ok()) return result.status();
    VariantResult named = *result;
    named.variant = "P1";
    return named;
  }
  if (name == "Pold") {
    PnruleConfig config;
    config.legacy_mode = true;
    auto result = RunPnruleConfigured(config, data, target_class);
    if (!result.ok()) return result.status();
    VariantResult named = *result;
    named.variant = "Pold";
    return named;
  }
  return Status::NotFound("unknown variant '" + name + "'");
}

StatusOr<VariantResult> RunPnruleConfigured(const PnruleConfig& config,
                                            const TrainTestPair& data,
                                            const std::string& target_class) {
  auto target_or = ResolveTarget(data.train, target_class);
  if (!target_or.ok()) return target_or.status();
  Timer timer;
  PnruleLearner learner(config);
  auto model = learner.Train(data.train, *target_or);
  if (!model.ok()) return model.status();
  return Finish("P", *model, data.test, *target_or, timer.ElapsedSeconds(),
                config.ToString());
}

}  // namespace pnr
