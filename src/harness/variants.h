// Classifier-variant registry used by every benchmark table.
//
// Variant names follow the paper's notation:
//   "C"   — C4.5rules, unit-weight training set
//   "Cte" — C4.5-we: pruned C4.5 *tree* trained on the stratified set
//   "R"   — RIPPER (RIPPER2), unit weights
//   "Re"  — RIPPER-we: RIPPER on the stratified set
//   "P"   — PNrule: best of the paper's four (rp, rn) combinations,
//           rp in {0.95, 0.99} x rn in {0.7, 0.95}, selected by test F
//           (the paper's comparison strategy, section 3.1)
//   "P1"  — PNrule with P-rule length restricted to 1 (section 4)
//   "Pold"— legacy-mode PNrule approximating the SDM'01 version (Table 6)

#ifndef PNR_HARNESS_VARIANTS_H_
#define PNR_HARNESS_VARIANTS_H_

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "pnrule/pnrule.h"
#include "synth/sweep.h"

namespace pnr {

/// Outcome of training + evaluating one variant on one train/test pair.
struct VariantResult {
  std::string variant;
  BinaryMetrics metrics;
  Confusion confusion;
  double train_seconds = 0.0;
  /// Variant-specific detail (e.g. the (rp, rn) combination P selected).
  std::string detail;
};

/// Names of the paper's five standard comparison variants, in table order.
const std::vector<std::string>& StandardVariants();

/// Trains variant `name` on `data.train` for class `target_class` and
/// evaluates on `data.test`. `seed` controls any internal randomness
/// (RIPPER's grow/prune splits).
StatusOr<VariantResult> RunVariant(const std::string& name,
                                   const TrainTestPair& data,
                                   const std::string& target_class,
                                   uint64_t seed);

/// Runs PNrule with an explicit configuration (the section-4 parameter
/// studies sweep rp / rn / P-rule length directly).
StatusOr<VariantResult> RunPnruleConfigured(const PnruleConfig& config,
                                            const TrainTestPair& data,
                                            const std::string& target_class);

}  // namespace pnr

#endif  // PNR_HARNESS_VARIANTS_H_
