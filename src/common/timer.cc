#include "common/timer.h"

namespace pnr {

void Timer::Reset() { start_ = std::chrono::steady_clock::now(); }

double Timer::ElapsedSeconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Timer::ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

}  // namespace pnr
