// The syscall boundary of the untrusted-input subsystems.
//
// common/net, common/file_io and data/mapped_file perform their I/O through
// these wrappers instead of calling read/recv/send/accept/mmap directly.
// In a PNR_FAULT_INJECT build (the default) each wrapper first asks the
// fault injector (testing/fault.h) whether to fail the call, deliver
// EINTR, or truncate the transfer — which is how the fault tests prove the
// error paths actually retry, degrade, and drain. With PNR_FAULT_INJECT
// compiled out every wrapper is an inline pass-through to the raw syscall.
//
// Callers treat these exactly like the syscalls they wrap: same return
// conventions, errors reported via errno.

#ifndef PNR_COMMON_IO_HOOKS_H_
#define PNR_COMMON_IO_HOOKS_H_

#include <sys/types.h>

#include <cstddef>

#ifndef PNR_FAULT_INJECT
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace pnr {
namespace io {

#ifdef PNR_FAULT_INJECT

ssize_t Read(int fd, void* buf, size_t count);
ssize_t Write(int fd, const void* buf, size_t count);
ssize_t Recv(int fd, void* buf, size_t count, int flags);
ssize_t Send(int fd, const void* buf, size_t count, int flags);
int Accept(int listen_fd);
void* Mmap(void* addr, size_t length, int prot, int flags, int fd,
           off_t offset);
/// Admission check before a large buffer allocation; false simulates
/// allocation failure (errno = ENOMEM). Always true without a fault plan.
bool AllocOk(size_t bytes);

#else  // !PNR_FAULT_INJECT

inline ssize_t Read(int fd, void* buf, size_t count) {
  return ::read(fd, buf, count);
}
inline ssize_t Write(int fd, const void* buf, size_t count) {
  return ::write(fd, buf, count);
}
inline ssize_t Recv(int fd, void* buf, size_t count, int flags) {
  return ::recv(fd, buf, count, flags);
}
inline ssize_t Send(int fd, const void* buf, size_t count, int flags) {
  return ::send(fd, buf, count, flags);
}
inline int Accept(int listen_fd) {
  return ::accept(listen_fd, nullptr, nullptr);
}
inline void* Mmap(void* addr, size_t length, int prot, int flags, int fd,
                  off_t offset) {
  return ::mmap(addr, length, prot, flags, fd, offset);
}
inline bool AllocOk(size_t) { return true; }

#endif  // PNR_FAULT_INJECT

}  // namespace io
}  // namespace pnr

#endif  // PNR_COMMON_IO_HOOKS_H_
