// Wall-clock timing for experiment reporting.

#ifndef PNR_COMMON_TIMER_H_
#define PNR_COMMON_TIMER_H_

#include <chrono>

namespace pnr {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() { Reset(); }

  /// Restarts the stopwatch.
  void Reset();

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pnr

#endif  // PNR_COMMON_TIMER_H_
