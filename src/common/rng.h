// Deterministic, seedable pseudo-random number generation.
//
// All synthetic data generation and random splitting in this library flows
// through Rng so that experiments are exactly reproducible from a seed.
// The core generator is xoshiro256**, seeded via splitmix64.

#ifndef PNR_COMMON_RNG_H_
#define PNR_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pnr {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
///
/// Not thread-safe; create one Rng per thread or task. The same seed always
/// produces the same stream on every platform.
class Rng {
 public:
  /// Creates a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Box-Muller, cached pair).
  double NextGaussian();

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p);

  /// Symmetric triangular variate on [lo, hi] with mode at the midpoint.
  double NextTriangular(double lo, double hi);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// All weights must be >= 0 and at least one must be > 0.
  size_t NextIndexWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator (for parallel substreams).
  Rng Fork();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace pnr

#endif  // PNR_COMMON_RNG_H_
