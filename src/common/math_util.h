// Numeric helpers shared across induction algorithms:
//  - safe log2 / entropy terms,
//  - binomial upper confidence limits (C4.5 pessimistic error estimates),
//  - subset/description-length coding helpers for MDL computations.

#ifndef PNR_COMMON_MATH_UTIL_H_
#define PNR_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace pnr {

/// x * log2(x) with the convention 0 * log2(0) == 0. Requires x >= 0.
double XLog2X(double x);

/// log2(x) for x > 0; returns 0 for x <= 0 (callers guard semantics).
double SafeLog2(double x);

/// Binary entropy of a Bernoulli(p): -p log2 p - (1-p) log2 (1-p).
/// p is clamped into [0, 1].
double BinaryEntropy(double p);

/// Upper confidence limit on the true error probability given `errors`
/// observed errors in `n` trials, at confidence level `cf` (C4.5 uses 0.25).
///
/// This mirrors C4.5 Release 8's pessimistic error estimate: the value U
/// such that P[Binomial(n, U) <= errors] == cf, computed with the usual
/// C4.5 special cases for errors == 0 and errors < 1, using a continuous
/// (incomplete-beta) interpolation. Returns a probability in [0, 1].
double BinomialUpperLimit(double n, double errors, double cf);

/// Natural-log of Gamma(x) for x > 0.
double LogGamma(double x);

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, x in [0,1].
double IncompleteBeta(double a, double b, double x);

/// log2 of C(n, k) computed via LogGamma; n >= k >= 0.
double Log2Choose(double n, double k);

/// Quinlan/Cohen "subset" description length in bits: the cost of
/// identifying which `k` of `n` elements are exceptions when each element is
/// an exception with prior probability `p`.
///
///   S(n, k, p) = -k*log2(p) - (n-k)*log2(1-p)   (0 when k==0 and p==0)
double SubsetDescriptionBits(double n, double k, double p);

/// Universal-prior style cost of transmitting a non-negative integer k
/// (used by RIPPER's rule coding): log2(k+1) smoothed. Cohen's
/// implementation approximates ||k|| ~ log2(k) + log2(log2(k)) + ...;
/// we use the standard log*(k) truncated sum.
double IntegerCodingBits(double k);

/// True iff |a - b| <= tol * max(1, |a|, |b|).
bool ApproxEqual(double a, double b, double tol = 1e-9);

/// Equi-depth histogram cut points over a sorted sample. Returns exactly
/// `bins - 1` upper-closed edges, where edge k is the sample value at rank
/// min(n - 1, (k + 1) * n / bins); an empty sample yields all-zero edges.
/// A constant sample yields equal edges (all mass in bin 0). This is the
/// shared binning rule of the stream drift histograms (DriftDetector) and
/// the associative-miner discretizer, so both see identical bin boundaries.
/// Requires `bins >= 1` and `sorted` ascending.
std::vector<double> EquiDepthEdges(const std::vector<double>& sorted,
                                   size_t bins);

}  // namespace pnr

#endif  // PNR_COMMON_MATH_UTIL_H_
