#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <locale>
#include <sstream>

namespace pnr {

std::vector<std::string> SplitString(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits);
}

bool ParseDouble(std::string_view text, double* out) {
  text = TrimWhitespace(text);
  if (text.empty()) return false;
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  // Allocation-free fast path; this runs once per numeric cell during
  // ingestion, so it is on the hot path of every data load. from_chars does
  // not accept a leading '+', which strtod did; strip it for compatibility.
  if (text.front() == '+') {
    text.remove_prefix(1);
    if (text.empty()) return false;
  }
  double value = 0.0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    return false;
  }
  *out = value;
  return true;
#else
  // Fallback: an istream imbued with the classic "C" locale. std::strtod is
  // locale-dependent — under an LC_NUMERIC with a comma decimal separator it
  // rejects "0.5" (or worse, accepts "0,5") — so parses would silently change
  // with the process locale. The classic locale pins '.' as the only decimal
  // separator regardless of the environment.
  std::istringstream in{std::string(text)};
  in.imbue(std::locale::classic());
  double value = 0.0;
  in >> value;
  if (in.fail() || in.peek() != std::istringstream::traits_type::eof()) {
    return false;
  }
  *out = value;
  return true;
#endif
}

bool ParseInt64(std::string_view text, long long* out) {
  text = TrimWhitespace(text);
  if (text.empty()) return false;
  long long value = 0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace pnr
