#include "common/thread_pool.h"

#include <algorithm>

namespace pnr {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    workers.swap(threads_);  // second Shutdown finds nothing to join
  }
  work_cv_.notify_all();
  for (std::thread& thread : workers) thread.join();
  // A job in flight when Shutdown was called still completes: workers
  // finish the indices they claimed before exiting, and the ParallelFor
  // caller drains whatever remains. Later ParallelFors see an empty
  // threads_ and run inline.
}

size_t ThreadPool::ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

size_t ThreadPool::ClampThreadsForRows(size_t requested, size_t rows) {
  const size_t resolved = ResolveThreadCount(requested);
  const size_t cap = std::max<size_t>(1, rows / kMinRowsPerThread);
  return std::min(resolved, cap);
}

size_t ThreadPool::ClampThreadsForBytes(size_t requested, size_t bytes) {
  const size_t resolved = ResolveThreadCount(requested);
  const size_t cap = std::max<size_t>(1, bytes / kMinBytesPerThread);
  return std::min(resolved, cap);
}

void ThreadPool::DrainJob(std::unique_lock<std::mutex>& lock) {
  while (job_fn_ != nullptr && next_index_ < job_count_) {
    const size_t index = next_index_++;
    const std::function<void(size_t)>* fn = job_fn_;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !error_) error_ = error;
    ++completed_;
    if (completed_ == job_count_) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return shutdown_ || (job_fn_ != nullptr && next_index_ < job_count_);
    });
    if (shutdown_) return;
    DrainJob(lock);
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  job_fn_ = &fn;
  job_count_ = count;
  next_index_ = 0;
  completed_ = 0;
  error_ = nullptr;
  work_cv_.notify_all();
  DrainJob(lock);  // the caller participates instead of idling
  done_cv_.wait(lock, [this] { return completed_ == job_count_; });
  job_fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadBudget::ThreadBudget(size_t total_threads)
    : total_(ThreadPool::ResolveThreadCount(total_threads)) {}

size_t ThreadBudget::Reserve(size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t granted = std::min(count, total_ - in_use_);
  in_use_ += granted;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  return granted;
}

ThreadBudget::Lease ThreadBudget::Acquire(size_t want) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t extras =
      want > 1 ? std::min(want - 1, total_ - in_use_) : 0;
  in_use_ += extras;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  return Lease(this, 1 + extras);
}

size_t ThreadBudget::in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

size_t ThreadBudget::peak_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_in_use_;
}

void ThreadBudget::ReleaseExtras(size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  in_use_ -= count;
}

ThreadBudget::Lease::Lease(Lease&& other) noexcept
    : budget_(other.budget_), count_(other.count_) {
  other.budget_ = nullptr;
  other.count_ = 1;
}

ThreadBudget::Lease::~Lease() {
  if (budget_ != nullptr && count_ > 1) budget_->ReleaseExtras(count_ - 1);
}

}  // namespace pnr
