// A small fixed-size thread pool for data-parallel loops.
//
// The pool is built for the induction engine's attribute-parallel scans:
// one blocking ParallelFor at a time, issued from one controlling thread,
// with the workers and the caller draining a shared index range. Results
// must be written to per-index slots; the caller then reduces them in a
// deterministic order, which is how parallel runs stay bit-identical to
// serial ones (see induction/condition_search.h).

#ifndef PNR_COMMON_THREAD_POOL_H_
#define PNR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pnr {

/// Fixed pool of worker threads executing indexed loop bodies.
///
/// Thread-safety contract: ParallelFor may not be called concurrently from
/// two threads, and loop bodies must not call back into the same pool
/// (no nesting). Loop bodies run concurrently and must only write state
/// disjoint per index.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 or 1 spawns none: every ParallelFor
  /// runs inline on the calling thread (the degenerate serial pool).
  explicit ThreadPool(size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Drains the in-flight job (if any) and joins the workers. Idempotent,
  /// and callable from a thread other than the controlling one — this is
  /// the SIGTERM path for long-lived services, which must release pool
  /// threads before process teardown without waiting for the destructor.
  /// After Shutdown every ParallelFor still completes, running inline on
  /// its calling thread (the pool degrades to the serial pool rather than
  /// dropping work).
  void Shutdown();

  /// Number of worker threads (0 for the serial pool).
  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(0) .. fn(count - 1), distributing indices over the workers and
  /// the calling thread; blocks until every index completed. The first
  /// exception thrown by a body is rethrown here (remaining indices still
  /// run).
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Maps a user-facing thread-count knob to a concrete count: 0 means
  /// "auto" (hardware concurrency, at least 1); anything else is itself.
  static size_t ResolveThreadCount(size_t requested);

  /// Minimum rows of work each worker should receive before parallel
  /// fan-out pays for itself. Shared by the condition-search engine and the
  /// batch scorer: below the cutoff both run serially, so small inputs
  /// never pay pool wake-up and cache-contention overhead (the regime where
  /// BENCH_condition_search.json measured 2/8 threads slower than 1).
  static constexpr size_t kMinRowsPerThread = 16384;

  /// Threads actually worth using for `rows` rows of data-parallel work:
  /// ResolveThreadCount(requested) capped so every thread gets at least
  /// kMinRowsPerThread rows. Never returns 0; returning 1 means "run
  /// serial". Using the clamped count never changes results — every
  /// parallel loop here writes disjoint per-index slots.
  static size_t ClampThreadsForRows(size_t requested, size_t rows);

  /// Minimum bytes of raw input each worker should receive before chunked
  /// ingestion fans out. The ingest engine splits files into row-aligned
  /// chunks of at least this size; smaller inputs parse serially, where the
  /// structural pre-scan would otherwise dominate.
  static constexpr size_t kMinBytesPerThread = size_t{1} << 20;

  /// ClampThreadsForRows' byte-based counterpart for the ingest engine:
  /// ResolveThreadCount(requested) capped so every thread gets at least
  /// kMinBytesPerThread bytes of input. Never returns 0.
  static size_t ClampThreadsForBytes(size_t requested, size_t bytes);

 private:
  void WorkerLoop();
  /// Claims and runs indices of the current job while any remain. Must be
  /// entered with `lock` held; returns with it held.
  void DrainJob(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< signals workers: job posted/shutdown
  std::condition_variable done_cv_;  ///< signals the caller: job finished
  const std::function<void(size_t)>* job_fn_ = nullptr;  // non-null while a job runs
  size_t job_count_ = 0;
  size_t next_index_ = 0;
  size_t completed_ = 0;
  std::exception_ptr error_;
  bool shutdown_ = false;
};

/// Cooperative thread budget for nested fan-outs.
///
/// ThreadPool forbids nesting, so engines that compose — the tuning racer
/// fanning config×fold tasks out over one pool while each task trains a
/// learner whose ConditionSearchEngine owns another pool — would naively
/// multiply their thread counts (an outer width of 8 running 8-thread
/// learners is 64 live workers on an 8-core box). A shared ThreadBudget
/// caps the *sum* instead: the orchestrator reserves its outer workers
/// up front with Reserve(), and each task leases the inner width it may
/// use through Acquire(). Leases always grant at least 1 (the task's own
/// thread, already covered by the reservation) plus whatever unreserved
/// capacity remains, so total live workers never exceed the budget and no
/// task can starve.
///
/// Determinism: the granted width varies with timing, but every engine in
/// this library produces bit-identical results at any thread count, so a
/// budget only ever changes speed — never bytes. Only sub-tasks whose
/// output is thread-count-invariant may size themselves from a lease.
class ThreadBudget {
 public:
  /// Creates a budget of `total_threads` concurrently live workers
  /// (0 = hardware concurrency).
  explicit ThreadBudget(size_t total_threads);

  /// Permanently sets aside `count` threads (an outer pool's workers plus
  /// its participating caller). Returns the number actually reserved —
  /// clamped to the remaining capacity, so callers can size an outer pool
  /// as `Reserve(desired)` and never overdraw.
  size_t Reserve(size_t count);

  /// A RAII lease of worker threads; releases its extras on destruction.
  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    /// Threads this task may run concurrently (>= 1): its own thread plus
    /// the granted extras. Pass as a learner's num_threads knob.
    size_t count() const { return count_; }

   private:
    friend class ThreadBudget;
    Lease(ThreadBudget* budget, size_t count)
        : budget_(budget), count_(count) {}
    ThreadBudget* budget_;
    size_t count_;
  };

  /// Leases up to `want` threads: 1 for the calling task itself (assumed
  /// covered by a prior Reserve) plus at most `want - 1` extras from the
  /// unleased remainder. Never blocks and never grants less than 1.
  Lease Acquire(size_t want);

  /// The budget's total capacity.
  size_t total() const { return total_; }

  /// Currently reserved + leased threads (test/diagnostic hook).
  size_t in_use() const;

  /// High-water mark of in_use() over the budget's lifetime. Lets tests
  /// assert a fan-out never exceeded its cap — the composition guarantee
  /// the budget exists to provide.
  size_t peak_in_use() const;

 private:
  void ReleaseExtras(size_t count);

  const size_t total_;
  mutable std::mutex mutex_;
  size_t in_use_ = 0;
  size_t peak_in_use_ = 0;
};

}  // namespace pnr

#endif  // PNR_COMMON_THREAD_POOL_H_
