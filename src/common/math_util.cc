#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pnr {

double XLog2X(double x) {
  assert(x >= 0.0);
  if (x <= 0.0) return 0.0;
  return x * std::log2(x);
}

double SafeLog2(double x) {
  if (x <= 0.0) return 0.0;
  return std::log2(x);
}

double BinaryEntropy(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return -XLog2X(p) - XLog2X(1.0 - p);
}

double LogGamma(double x) {
  assert(x > 0.0);
  return std::lgamma(x);
}

namespace {

// Continued-fraction evaluation for the incomplete beta function
// (Numerical Recipes' betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double IncompleteBeta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                         a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_beta);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - std::exp(LogGamma(a + b) - LogGamma(b) - LogGamma(a) +
                        b * std::log(1.0 - x) + a * std::log(x)) *
                   BetaContinuedFraction(b, a, 1.0 - x) / b;
}

namespace {

// P[Binomial(n, p) <= k] via the regularized incomplete beta identity,
// with k allowed to be fractional (linear interpolation between integer
// CDF values is replaced by the continuous beta form C4.5 effectively uses).
double BinomialCdf(double n, double k, double p) {
  if (k < 0.0) return 0.0;
  if (k >= n) return 1.0;
  // P[X <= k] = I_{1-p}(n - k, k + 1).
  return IncompleteBeta(n - k, k + 1.0, 1.0 - p);
}

}  // namespace

double BinomialUpperLimit(double n, double errors, double cf) {
  assert(n > 0.0);
  assert(errors >= 0.0);
  assert(cf > 0.0 && cf < 1.0);
  if (errors >= n) return 1.0;
  // C4.5 special case: zero observed errors.
  if (errors < 1e-12) {
    return 1.0 - std::pow(cf, 1.0 / n);
  }
  // C4.5 interpolates between the zero-error limit and the errors==1 limit
  // when 0 < errors < 1; the continuous beta form below already handles the
  // fractional-error case smoothly, so solve directly.
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (BinomialCdf(n, errors, mid) > cf) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  return 0.5 * (lo + hi);
}

double Log2Choose(double n, double k) {
  assert(n >= k && k >= 0.0);
  if (k <= 0.0 || k >= n) return 0.0;
  constexpr double kLn2 = 0.6931471805599453;
  return (LogGamma(n + 1.0) - LogGamma(k + 1.0) - LogGamma(n - k + 1.0)) /
         kLn2;
}

double SubsetDescriptionBits(double n, double k, double p) {
  assert(n >= 0.0 && k >= 0.0 && k <= n + 1e-9);
  if (n <= 0.0) return 0.0;
  if (p <= 0.0) return k > 0.0 ? 1e30 : 0.0;
  if (p >= 1.0) return (n - k) > 1e-12 ? 1e30 : 0.0;
  return -k * std::log2(p) - (n - k) * std::log2(1.0 - p);
}

double IntegerCodingBits(double k) {
  // Rissanen's log* universal code: log2(c) + log2 k + log2 log2 k + ...
  constexpr double kLog2C = 1.5186;  // log2(2.865064)
  double bits = kLog2C;
  double term = std::log2(std::max(k, 1.0));
  while (term > 0.0) {
    bits += term;
    term = std::log2(term);
  }
  return bits;
}

bool ApproxEqual(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

std::vector<double> EquiDepthEdges(const std::vector<double>& sorted,
                                   size_t bins) {
  assert(bins >= 1);
  std::vector<double> edges(bins - 1, 0.0);
  if (sorted.empty()) return edges;
  for (size_t k = 0; k + 1 < bins; ++k) {
    const size_t pos =
        std::min(sorted.size() - 1, (k + 1) * sorted.size() / bins);
    edges[k] = sorted[pos];
  }
  return edges;
}

}  // namespace pnr
