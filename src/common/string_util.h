// Small string helpers used by CSV parsing and table formatting.

#ifndef PNR_COMMON_STRING_UTIL_H_
#define PNR_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pnr {

/// Splits `text` on `delim` (no trimming; empty fields preserved).
std::vector<std::string> SplitString(std::string_view text, char delim);

/// Splits `text` on runs of ASCII whitespace; never yields empty tokens.
/// The forgiving tokenizer for line-oriented formats (model files, schema
/// sidecars) that must survive CRLF endings, tabs, and doubled spaces.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats a fraction as a percentage string, e.g. 0.1234 -> "12.34".
std::string FormatPercent(double fraction, int digits = 2);

/// True iff `text` parses fully as a floating point number.
bool ParseDouble(std::string_view text, double* out);

/// True iff `text` parses fully as a signed 64-bit integer.
bool ParseInt64(std::string_view text, long long* out);

}  // namespace pnr

#endif  // PNR_COMMON_STRING_UTIL_H_
