#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace pnr {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Debiased modulo via rejection on the top of the range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextTriangular(double lo, double hi) {
  // Sum of two uniforms has a symmetric triangular distribution.
  return lo + (hi - lo) * 0.5 * (NextDouble() + NextDouble());
}

size_t Rng::NextIndexWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double pick = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack: last positive bucket.
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace pnr
