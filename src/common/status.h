// Lightweight Status / StatusOr error-handling primitives (RocksDB-style).
//
// Fallible operations (I/O, configuration validation, parsing) return a
// Status or a StatusOr<T>; programming errors use assertions instead.

#ifndef PNR_COMMON_STATUS_H_
#define PNR_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace pnr {

/// Result state of a fallible operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnavailable,        ///< transient overload — retry later (serving 503)
  kDeadlineExceeded,   ///< request deadline elapsed (serving 504)
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that can fail without producing a value.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// message. Statuses are cheap to copy (message is shared only by value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with `message`.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns a NotFound status with `message`.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns an IOError status with `message`.
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  /// Returns an OutOfRange status with `message`.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns a FailedPrecondition status with `message`.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Returns an Internal status with `message`.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Returns an Unavailable status with `message`.
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  /// Returns a DeadlineExceeded status with `message`.
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return message_; }
  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
///
/// Access to the value asserts that the status is OK.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (OK).
  StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a non-OK status.
  StatusOr(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "StatusOr must not be constructed from an OK status");
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status (OK when a value is present).
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  /// The contained value; asserts ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  /// Moves out the contained value; asserts ok().
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(payload_));
  }
  /// Pointer-like access; asserts ok().
  const T* operator->() const {
    assert(ok());
    return &std::get<T>(payload_);
  }
  /// Dereference; asserts ok().
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace pnr

#endif  // PNR_COMMON_STATUS_H_
