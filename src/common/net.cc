#include "common/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>

#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "common/io_hooks.h"

namespace pnr {
namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

StatusOr<UniqueFd> ListenTcp(uint16_t port, int backlog, uint16_t* bound_port,
                             bool reuse_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
          0) {
    return Errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

StatusOr<UniqueFd> ConnectLoopback(uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

StatusOr<UniqueFd> AcceptConnection(int listen_fd) {
  for (;;) {
    const int fd = io::Accept(listen_fd);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return UniqueFd(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EBADF || errno == EINVAL) {
      return Status::NotFound("listener closed");
    }
    return Errno("accept");
  }
}

Status SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n =
        io::Send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

StatusOr<bool> WaitReadable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;  // readable, HUP, or error — recv reports which
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

StatusOr<int> WaitAnyReadable(const int* fds, size_t n, int timeout_ms) {
  pollfd pfds[8];
  if (n > 8) return Status::InvalidArgument("WaitAnyReadable: too many fds");
  for (size_t i = 0; i < n; ++i) {
    pfds[i].fd = fds[i];
    pfds[i].events = POLLIN;
    pfds[i].revents = 0;
  }
  for (;;) {
    const int rc = ::poll(pfds, static_cast<nfds_t>(n), timeout_ms);
    if (rc > 0) {
      for (size_t i = 0; i < n; ++i) {
        if (pfds[i].revents != 0) return static_cast<int>(i);
      }
      return Status::IOError("poll: spurious readiness");
    }
    if (rc == 0) return -1;
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

StatusOr<size_t> RecvSome(int fd, char* buf, size_t cap, int timeout_ms) {
  auto readable = WaitReadable(fd, timeout_ms);
  if (!readable.ok()) return readable.status();
  if (!*readable) return Status::IOError("read timeout");
  for (;;) {
    const ssize_t n = io::Recv(fd, buf, cap, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

void WakePipe::Wake() const {
  const char byte = 1;
  [[maybe_unused]] ssize_t rc = ::write(write_end.get(), &byte, 1);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

StatusOr<IoResult> RecvNb(int fd, char* buf, size_t cap) {
  for (;;) {
    const ssize_t n = io::Recv(fd, buf, cap, 0);
    if (n > 0) return IoResult{static_cast<size_t>(n), false, false};
    if (n == 0) return IoResult{0, false, true};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{0, true, false};
    }
    return Errno("recv");
  }
}

StatusOr<IoResult> SendNb(int fd, std::string_view data) {
  IoResult result;
  while (result.bytes < data.size()) {
    const ssize_t n = io::Send(fd, data.data() + result.bytes,
                               data.size() - result.bytes, MSG_NOSIGNAL);
    if (n > 0) {
      result.bytes += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      result.would_block = true;
      return result;
    }
    return Errno("send");
  }
  return result;
}

StatusOr<UniqueFd> AcceptNb(int listen_fd) {
  for (;;) {
    const int fd = io::Accept(listen_fd);
    if (fd >= 0) {
      UniqueFd accepted(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const Status nb = SetNonBlocking(fd);
      if (!nb.ok()) return nb;
      return accepted;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("accept would block");
    }
    if (errno == EBADF || errno == EINVAL) {
      return Status::NotFound("listener closed");
    }
    return Errno("accept");
  }
}

StatusOr<EventFd> EventFd::Create() {
  const int fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (fd < 0) return Errno("eventfd");
  EventFd out;
  out.fd_ = UniqueFd(fd);
  return out;
}

void EventFd::Signal() const {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t rc = ::write(fd_.get(), &one, sizeof(one));
}

void EventFd::Drain() const {
  uint64_t counter = 0;
  [[maybe_unused]] ssize_t rc = ::read(fd_.get(), &counter, sizeof(counter));
}

StatusOr<EpollSet> EpollSet::Create() {
  const int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) return Errno("epoll_create1");
  EpollSet out;
  out.fd_ = UniqueFd(fd);
  return out;
}

namespace {

Status EpollCtl(int epfd, int op, int fd, uint32_t events, uint64_t tag) {
  epoll_event event{};
  event.events = events;
  event.data.u64 = tag;
  if (::epoll_ctl(epfd, op, fd, &event) != 0) return Errno("epoll_ctl");
  return Status::OK();
}

}  // namespace

Status EpollSet::Add(int fd, uint32_t events, uint64_t tag) {
  return EpollCtl(fd_.get(), EPOLL_CTL_ADD, fd, events, tag);
}

Status EpollSet::Mod(int fd, uint32_t events, uint64_t tag) {
  return EpollCtl(fd_.get(), EPOLL_CTL_MOD, fd, events, tag);
}

Status EpollSet::Del(int fd) {
  if (::epoll_ctl(fd_.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::OK();
}

StatusOr<int> EpollSet::Wait(epoll_event* out, int cap, int timeout_ms) {
  for (;;) {
    const int rc = ::epoll_wait(fd_.get(), out, cap, timeout_ms);
    if (rc >= 0) return rc;
    if (errno == EINTR) continue;
    return Errno("epoll_wait");
  }
}

StatusOr<WakePipe> MakeWakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) return Errno("pipe");
  WakePipe pipe;
  pipe.read_end = UniqueFd(fds[0]);
  pipe.write_end = UniqueFd(fds[1]);
  // Non-blocking write end: Wake from a signal context must never block.
  const int flags = ::fcntl(pipe.write_end.get(), F_GETFL, 0);
  ::fcntl(pipe.write_end.get(), F_SETFL, flags | O_NONBLOCK);
  return pipe;
}

}  // namespace pnr
