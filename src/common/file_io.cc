#include "common/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/io_hooks.h"

namespace pnr {
namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("cannot open", path);
  struct stat st = {};
  size_t size_hint = 0;
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    size_hint = static_cast<size_t>(st.st_size);
  }
  if (!io::AllocOk(size_hint)) {
    ::close(fd);
    return Errno("cannot allocate buffer for", path);
  }
  std::string out;
  out.reserve(size_hint);
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = io::Read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;  // EOF: every byte accounted for
    if (errno == EINTR) continue;
    const Status status = Errno("read of", path);
    ::close(fd);
    return status;
  }
  ::close(fd);
  return out;
}

Status WriteStringToFile(const std::string& content,
                         const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot open for write", path);
  const char* p = content.data();
  size_t remaining = content.size();
  while (remaining > 0) {
    const ssize_t n = io::Write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("write to", path);
      ::close(fd);
      return status;
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (::close(fd) != 0) return Errno("close of", path);
  return Status::OK();
}

}  // namespace pnr
