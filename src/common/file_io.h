// Whole-file reads and writes over the hookable syscall boundary.
//
// The model/schema loaders and the mapped-file streaming fallback read
// files through ReadFileToString rather than iostreams: POSIX read(2) in a
// loop, EINTR retried, short reads accumulated, every byte accounted for —
// and because the loop runs on common/io_hooks.h, the fault tests can
// inject EINTR storms, short reads, mid-file failures and allocation
// failure and assert a clean IOError Status (never a partial parse).

#ifndef PNR_COMMON_FILE_IO_H_
#define PNR_COMMON_FILE_IO_H_

#include <string>

#include "common/status.h"

namespace pnr {

/// Reads the entire file at `path`. IOError (with the path and the errno
/// text) on open/read/allocation failure; truncation mid-read is an error,
/// never a silent prefix.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path` (created/truncated). IOError on any failure;
/// short writes are retried until complete.
Status WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace pnr

#endif  // PNR_COMMON_FILE_IO_H_
