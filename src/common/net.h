// Minimal POSIX TCP helpers for the serving subsystem.
//
// Wraps the handful of socket calls the prediction server needs — bounded,
// Status-returning, EINTR-safe — so src/serve/ contains no raw ::socket()
// plumbing. Everything here is blocking-with-poll: readiness waits go
// through poll(2) with millisecond timeouts, which is all a
// thread-per-request server requires (no event loop).

#ifndef PNR_COMMON_NET_H_
#define PNR_COMMON_NET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace pnr {

/// Owning file descriptor (closes on destruction). Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { Reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the descriptor (if any).
  void Reset();

 private:
  int fd_ = -1;
};

/// Opens a TCP listener on 127.0.0.1:`port` (SO_REUSEADDR). `port` 0 binds
/// an ephemeral port; `*bound_port` receives the actual port either way.
StatusOr<UniqueFd> ListenTcp(uint16_t port, int backlog,
                             uint16_t* bound_port);

/// Connects to 127.0.0.1:`port` (blocking). The client side used by tests
/// and the load generator.
StatusOr<UniqueFd> ConnectLoopback(uint16_t port);

/// Accepts one connection; blocks. Returns NotFound when the listener was
/// closed / shut down from another thread.
StatusOr<UniqueFd> AcceptConnection(int listen_fd);

/// Writes all of `data`, retrying short writes and EINTR. MSG_NOSIGNAL, so
/// a peer that closed mid-response yields IOError instead of SIGPIPE.
Status SendAll(int fd, std::string_view data);

/// Waits up to `timeout_ms` for `fd` to become readable. Returns true when
/// readable, false on timeout; Status error on poll failure.
StatusOr<bool> WaitReadable(int fd, int timeout_ms);

/// Waits for any of `fds[0..n)` to become readable (`timeout_ms` < 0 waits
/// forever). Returns the index of a readable descriptor, or -1 on timeout.
StatusOr<int> WaitAnyReadable(const int* fds, size_t n, int timeout_ms);

/// Reads at most `cap` bytes into `buf`. Returns the byte count, 0 at
/// orderly EOF. Blocks until data, EOF, or `timeout_ms` elapses (timeout
/// yields IOError "read timeout").
StatusOr<size_t> RecvSome(int fd, char* buf, size_t cap, int timeout_ms);

/// A pipe whose write end can wake a thread blocked in poll on the read
/// end — the shutdown signal for accept loops.
struct WakePipe {
  UniqueFd read_end;
  UniqueFd write_end;
  /// Writes one byte (best-effort; never blocks).
  void Wake() const;
};
StatusOr<WakePipe> MakeWakePipe();

}  // namespace pnr

#endif  // PNR_COMMON_NET_H_
