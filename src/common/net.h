// Minimal POSIX TCP helpers for the serving subsystem.
//
// Wraps the socket calls the prediction server needs — bounded,
// Status-returning, EINTR-safe — so src/serve/ contains no raw ::socket()
// plumbing. Two families coexist:
//
//   * blocking-with-poll (SendAll/RecvSome/WaitReadable): what the loopback
//     test/bench clients use — one request at a time, no event loop;
//   * edge-of-readiness non-blocking (RecvNb/SendNb/AcceptNb) plus EpollSet
//     and EventFd: the per-shard reactor hot path. Non-blocking calls never
//     sleep; readiness comes from epoll, and cross-thread wakeups (shutdown)
//     come from an eventfd instead of any periodic poll.

#ifndef PNR_COMMON_NET_H_
#define PNR_COMMON_NET_H_

#include <sys/epoll.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace pnr {

/// Owning file descriptor (closes on destruction). Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { Reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the descriptor (if any).
  void Reset();

 private:
  int fd_ = -1;
};

/// Opens a TCP listener on 127.0.0.1:`port` (SO_REUSEADDR). `port` 0 binds
/// an ephemeral port; `*bound_port` receives the actual port either way.
/// With `reuse_port`, SO_REUSEPORT is set before bind so several listeners
/// (one per serving shard) can share the port; the kernel then distributes
/// incoming connections across them by 4-tuple hash.
StatusOr<UniqueFd> ListenTcp(uint16_t port, int backlog, uint16_t* bound_port,
                             bool reuse_port = false);

/// Connects to 127.0.0.1:`port` (blocking). The client side used by tests
/// and the load generator.
StatusOr<UniqueFd> ConnectLoopback(uint16_t port);

/// Accepts one connection; blocks. Returns NotFound when the listener was
/// closed / shut down from another thread.
StatusOr<UniqueFd> AcceptConnection(int listen_fd);

/// Writes all of `data`, retrying short writes and EINTR. MSG_NOSIGNAL, so
/// a peer that closed mid-response yields IOError instead of SIGPIPE.
Status SendAll(int fd, std::string_view data);

/// Waits up to `timeout_ms` for `fd` to become readable. Returns true when
/// readable, false on timeout; Status error on poll failure.
StatusOr<bool> WaitReadable(int fd, int timeout_ms);

/// Waits for any of `fds[0..n)` to become readable (`timeout_ms` < 0 waits
/// forever). Returns the index of a readable descriptor, or -1 on timeout.
StatusOr<int> WaitAnyReadable(const int* fds, size_t n, int timeout_ms);

/// Reads at most `cap` bytes into `buf`. Returns the byte count, 0 at
/// orderly EOF. Blocks until data, EOF, or `timeout_ms` elapses (timeout
/// yields IOError "read timeout").
StatusOr<size_t> RecvSome(int fd, char* buf, size_t cap, int timeout_ms);

/// A pipe whose write end can wake a thread blocked in poll on the read
/// end — the shutdown signal for accept loops.
struct WakePipe {
  UniqueFd read_end;
  UniqueFd write_end;
  /// Writes one byte (best-effort; never blocks).
  void Wake() const;
};
StatusOr<WakePipe> MakeWakePipe();

/// Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

/// Outcome of one non-blocking transfer attempt. Exactly one of the flags
/// is meaningful when `bytes` is 0.
struct IoResult {
  size_t bytes = 0;
  bool would_block = false;  ///< EAGAIN/EWOULDBLOCK: retry after readiness
  bool eof = false;          ///< orderly peer shutdown (recv only)
};

/// Non-blocking read: returns immediately with whatever is buffered (EINTR
/// retried inline). Never sleeps; `would_block` means "nothing yet".
StatusOr<IoResult> RecvNb(int fd, char* buf, size_t cap);

/// Non-blocking write of as much of `data` as the socket accepts right now
/// (MSG_NOSIGNAL; EINTR retried inline). `bytes` may be short of
/// data.size(); `would_block` means the send buffer is full.
StatusOr<IoResult> SendNb(int fd, std::string_view data);

/// Non-blocking accept on an O_NONBLOCK listener. The accepted socket is
/// returned non-blocking with TCP_NODELAY set. `would_block` (reported via
/// Status code kUnavailable) means no pending connection; kNotFound means
/// the listener was closed.
StatusOr<UniqueFd> AcceptNb(int listen_fd);

/// An eventfd used as a cross-thread wakeup for a reactor blocked in
/// epoll_wait: Signal() from any thread, Drain() from the reactor once the
/// readiness fires. Replaces every periodic poll in the serving tier.
class EventFd {
 public:
  static StatusOr<EventFd> Create();
  int fd() const { return fd_.get(); }
  /// Increments the counter (async-signal-safe, never blocks).
  void Signal() const;
  /// Consumes the counter so level-triggered epoll stops reporting it.
  void Drain() const;

 private:
  UniqueFd fd_;
};

/// Thin RAII epoll set. Registrations carry a uint64 tag the reactor maps
/// back to its connection table.
class EpollSet {
 public:
  static StatusOr<EpollSet> Create();
  Status Add(int fd, uint32_t events, uint64_t tag);
  Status Mod(int fd, uint32_t events, uint64_t tag);
  Status Del(int fd);
  /// Waits up to `timeout_ms` (-1 = forever; EINTR retried) and fills
  /// `out[0..cap)`. Returns the number of ready events (0 on timeout).
  StatusOr<int> Wait(epoll_event* out, int cap, int timeout_ms);

 private:
  UniqueFd fd_;
};

}  // namespace pnr

#endif  // PNR_COMMON_NET_H_
