#include "common/io_hooks.h"

#ifdef PNR_FAULT_INJECT

#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "testing/fault.h"

namespace pnr {
namespace io {
namespace {

using fault::Decide;
using fault::FaultDecision;
using fault::FaultOp;

// Transfer-style ops: EINTR and hard failures return -1 with errno set;
// short transfers clamp the count to 1 byte before the real call.
template <typename Call>
ssize_t Transfer(FaultOp op, size_t count, Call&& call) {
  int error_number = 0;
  switch (Decide(op, &error_number)) {
    case FaultDecision::kEintr:
    case FaultDecision::kFail:
      errno = error_number;
      return -1;
    case FaultDecision::kShort:
      return call(count > 1 ? 1 : count);
    case FaultDecision::kPass:
      break;
  }
  return call(count);
}

}  // namespace

ssize_t Read(int fd, void* buf, size_t count) {
  return Transfer(FaultOp::kRead, count,
                  [&](size_t n) { return ::read(fd, buf, n); });
}

ssize_t Write(int fd, const void* buf, size_t count) {
  return Transfer(FaultOp::kWrite, count,
                  [&](size_t n) { return ::write(fd, buf, n); });
}

ssize_t Recv(int fd, void* buf, size_t count, int flags) {
  return Transfer(FaultOp::kRecv, count,
                  [&](size_t n) { return ::recv(fd, buf, n, flags); });
}

ssize_t Send(int fd, const void* buf, size_t count, int flags) {
  return Transfer(FaultOp::kSend, count,
                  [&](size_t n) { return ::send(fd, buf, n, flags); });
}

int Accept(int listen_fd) {
  int error_number = 0;
  switch (Decide(FaultOp::kAccept, &error_number)) {
    case FaultDecision::kEintr:
    case FaultDecision::kFail:
      errno = error_number;
      return -1;
    default:
      return ::accept(listen_fd, nullptr, nullptr);
  }
}

void* Mmap(void* addr, size_t length, int prot, int flags, int fd,
           off_t offset) {
  int error_number = 0;
  switch (Decide(FaultOp::kMmap, &error_number)) {
    case FaultDecision::kEintr:
    case FaultDecision::kFail:
      errno = error_number == EINTR ? ENOMEM : error_number;
      return MAP_FAILED;
    default:
      return ::mmap(addr, length, prot, flags, fd, offset);
  }
}

bool AllocOk(size_t) {
  int error_number = 0;
  switch (Decide(FaultOp::kAlloc, &error_number)) {
    case FaultDecision::kEintr:
    case FaultDecision::kFail:
      errno = ENOMEM;
      return false;
    default:
      return true;
  }
}

}  // namespace io
}  // namespace pnr

#endif  // PNR_FAULT_INJECT
