// Dense bitmask over row indices, used by C4.5rules' generalization and
// rule-subset selection to make repeated coverage queries cheap.

#ifndef PNR_COMMON_BITMASK_H_
#define PNR_COMMON_BITMASK_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pnr {

/// Fixed-size bit vector with block-wise boolean algebra.
class BitMask {
 public:
  BitMask() = default;
  /// Creates `size` bits, all equal to `value`.
  explicit BitMask(size_t size, bool value = false)
      : size_(size),
        blocks_((size + 63) / 64, value ? ~uint64_t{0} : uint64_t{0}) {
    TrimTail();
  }

  size_t size() const { return size_; }

  bool Get(size_t index) const {
    assert(index < size_);
    return (blocks_[index / 64] >> (index % 64)) & 1u;
  }

  void Set(size_t index, bool value = true) {
    assert(index < size_);
    const uint64_t bit = uint64_t{1} << (index % 64);
    if (value) {
      blocks_[index / 64] |= bit;
    } else {
      blocks_[index / 64] &= ~bit;
    }
  }

  /// Number of set bits.
  size_t Count() const {
    size_t count = 0;
    for (uint64_t block : blocks_) count += std::popcount(block);
    return count;
  }

  /// True iff any bit is set.
  bool AnySet() const {
    for (uint64_t block : blocks_) {
      if (block != 0) return true;
    }
    return false;
  }

  /// Number of set bits in (*this & other).
  size_t CountAnd(const BitMask& other) const {
    assert(size_ == other.size_);
    size_t count = 0;
    for (size_t i = 0; i < blocks_.size(); ++i) {
      count += std::popcount(blocks_[i] & other.blocks_[i]);
    }
    return count;
  }

  /// Number of set bits in (*this & ~other).
  size_t CountAndNot(const BitMask& other) const {
    assert(size_ == other.size_);
    size_t count = 0;
    for (size_t i = 0; i < blocks_.size(); ++i) {
      count += std::popcount(blocks_[i] & ~other.blocks_[i]);
    }
    return count;
  }

  BitMask& operator&=(const BitMask& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < blocks_.size(); ++i) {
      blocks_[i] &= other.blocks_[i];
    }
    return *this;
  }

  BitMask& operator|=(const BitMask& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < blocks_.size(); ++i) {
      blocks_[i] |= other.blocks_[i];
    }
    return *this;
  }

  /// In-place *this &= ~other.
  BitMask& AndNot(const BitMask& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < blocks_.size(); ++i) {
      blocks_[i] &= ~other.blocks_[i];
    }
    return *this;
  }

  friend BitMask operator&(BitMask lhs, const BitMask& rhs) {
    lhs &= rhs;
    return lhs;
  }

  friend BitMask operator|(BitMask lhs, const BitMask& rhs) {
    lhs |= rhs;
    return lhs;
  }

  bool operator==(const BitMask& other) const {
    return size_ == other.size_ && blocks_ == other.blocks_;
  }

  // -- Raw 64-bit block access (bulk mask construction) ---------------------

  /// Number of 64-bit storage blocks.
  size_t num_blocks() const { return blocks_.size(); }

  /// Block `index` (bit i of the mask is bit i%64 of block i/64).
  uint64_t block(size_t index) const { return blocks_[index]; }

  /// Overwrites block `index`; bits past size() are cleared.
  void set_block(size_t index, uint64_t value) {
    assert(index < blocks_.size());
    blocks_[index] = value;
    if (index + 1 == blocks_.size()) TrimTail();
  }

  /// Calls `fn(index)` for every set bit, ascending.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t b = 0; b < blocks_.size(); ++b) {
      uint64_t block = blocks_[b];
      while (block != 0) {
        const int bit = std::countr_zero(block);
        fn(b * 64 + static_cast<size_t>(bit));
        block &= block - 1;
      }
    }
  }

 private:
  void TrimTail() {
    const size_t tail = size_ % 64;
    if (tail != 0 && !blocks_.empty()) {
      blocks_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t size_ = 0;
  std::vector<uint64_t> blocks_;
};

}  // namespace pnr

#endif  // PNR_COMMON_BITMASK_H_
