#include "ripper/optimize.h"

#include <algorithm>
#include <cassert>

#include "data/weighting.h"
#include "induction/mdl.h"
#include "ripper/grow_prune.h"

namespace pnr {
namespace {

double RuleSetDl(const Dataset& dataset, const RowSubset& rows,
                 CategoryId target, const RuleSet& rules,
                 double possible_conditions) {
  return RuleSetDescriptionLength(dataset, rows, target, rules,
                                  possible_conditions);
}

}  // namespace

void CoverPositives(ConditionSearchEngine& engine, const RowSubset& all_rows,
                    const RowSubset& remaining_in, CategoryId target,
                    const RipperConfig& config, double possible_conditions,
                    Rng* rng, RuleSet* rules) {
  const Dataset& dataset = engine.dataset();
  RowSubset remaining = remaining_in;
  double min_dl =
      RuleSetDl(dataset, all_rows, target, *rules, possible_conditions);

  while (rules->size() < config.max_rules &&
         dataset.ClassWeight(remaining, target) > 0.0) {
    auto [grow_rows, prune_rows] = StratifiedSplitRows(
        dataset, remaining, target, config.grow_fraction, rng);
    Rule rule = GrowRuleFoil(engine, grow_rows, target, Rule());
    rule = PruneRuleIrep(dataset, prune_rows, target, rule);
    if (rule.empty()) break;

    // Prune-set error gate (Cohen): reject rules that are wrong more often
    // than not on held-out data, and stop adding rules.
    const RuleStats prune_stats = rule.train_stats;  // set by PruneRuleIrep
    if (prune_stats.covered > 0.0 &&
        prune_stats.negative() / prune_stats.covered >=
            config.max_prune_error_rate) {
      break;
    }

    const RuleStats remaining_stats =
        rule.Evaluate(dataset, remaining, target);
    if (remaining_stats.positive <= 0.0) break;
    rule.train_stats = remaining_stats;

    rules->AddRule(rule);
    const double dl =
        RuleSetDl(dataset, all_rows, target, *rules, possible_conditions);
    if (dl > min_dl + config.mdl_window_bits) {
      rules->RemoveRule(rules->size() - 1);
      break;
    }
    min_dl = std::min(min_dl, dl);
    remaining = rule.UncoveredRows(dataset, remaining);
  }
}

void DeleteHarmfulRules(const Dataset& dataset, const RowSubset& rows,
                        CategoryId target, double possible_conditions,
                        RuleSet* rules) {
  double current_dl =
      RuleSetDl(dataset, rows, target, *rules, possible_conditions);
  for (size_t i = rules->size(); i-- > 0;) {
    RuleSet without = *rules;
    without.RemoveRule(i);
    const double dl =
        RuleSetDl(dataset, rows, target, without, possible_conditions);
    if (dl < current_dl) {
      *rules = std::move(without);
      current_dl = dl;
    }
  }
}

void OptimizeRuleSet(ConditionSearchEngine& engine, const RowSubset& rows,
                     CategoryId target, const RipperConfig& config,
                     double possible_conditions, Rng* rng, RuleSet* rules) {
  const Dataset& dataset = engine.dataset();
  for (size_t i = 0; i < rules->size(); ++i) {
    // The rule's niche: records no *other* rule covers. The replacement and
    // revision are grown/pruned on this context so they compete for the
    // same part of the space.
    RuleSet others = *rules;
    others.RemoveRule(i);
    RowSubset context;
    context.reserve(rows.size());
    for (RowId row : rows) {
      if (!others.AnyMatch(dataset, row)) context.push_back(row);
    }
    if (dataset.ClassWeight(context, target) <= 0.0) continue;

    auto [grow_rows, prune_rows] = StratifiedSplitRows(
        dataset, context, target, config.grow_fraction, rng);

    Rule replacement = GrowRuleFoil(engine, grow_rows, target, Rule());
    replacement = PruneRuleIrep(dataset, prune_rows, target, replacement);

    Rule revision = GrowRuleFoil(engine, grow_rows, target, rules->rule(i));
    revision = PruneRuleIrep(dataset, prune_rows, target, revision);

    // Choose among {original, replacement, revision} by the DL of the whole
    // rule set with the variant substituted.
    const Rule original = rules->rule(i);
    double best_dl =
        RuleSetDl(dataset, rows, target, *rules, possible_conditions);
    Rule best = original;
    for (const Rule* variant : {&replacement, &revision}) {
      if (variant->empty()) continue;
      RuleSet trial = *rules;
      trial.mutable_rule(i) = *variant;
      const double dl =
          RuleSetDl(dataset, rows, target, trial, possible_conditions);
      if (dl < best_dl) {
        best_dl = dl;
        best = *variant;
      }
    }
    rules->mutable_rule(i) = std::move(best);
  }

  // Cover any positives the optimized rules no longer reach.
  RowSubset uncovered;
  for (RowId row : rows) {
    if (!rules->AnyMatch(dataset, row)) uncovered.push_back(row);
  }
  CoverPositives(engine, rows, uncovered, target, config,
                 possible_conditions, rng, rules);
  DeleteHarmfulRules(dataset, rows, target, possible_conditions, rules);
}

void CoverPositives(const Dataset& dataset, const RowSubset& all_rows,
                    const RowSubset& remaining, CategoryId target,
                    const RipperConfig& config, double possible_conditions,
                    Rng* rng, RuleSet* rules) {
  ConditionSearchEngine engine(dataset, config.num_threads);
  CoverPositives(engine, all_rows, remaining, target, config,
                 possible_conditions, rng, rules);
}

void OptimizeRuleSet(const Dataset& dataset, const RowSubset& rows,
                     CategoryId target, const RipperConfig& config,
                     double possible_conditions, Rng* rng, RuleSet* rules) {
  ConditionSearchEngine engine(dataset, config.num_threads);
  OptimizeRuleSet(engine, rows, target, config, possible_conditions, rng,
                  rules);
}

}  // namespace pnr
