#include "ripper/grow_prune.h"

#include "induction/condition_search.h"
#include "induction/metric.h"

namespace pnr {

Rule GrowRuleFoil(ConditionSearchEngine& engine, const RowSubset& grow_rows,
                  CategoryId target, const Rule& seed) {
  const Dataset& dataset = engine.dataset();
  Rule rule = seed;
  RowSubset covered = rule.empty() ? grow_rows
                                   : rule.CoveredRows(dataset, grow_rows);
  RuleStats parent = rule.Evaluate(dataset, grow_rows, target);

  ConditionSearchOptions options;
  // RIPPER considers single-sided numeric tests only.
  options.enable_range_conditions = false;
  // A refinement must keep at least some positive coverage to have gain.
  options.min_positive_weight = 1e-9;

  for (;;) {
    if (parent.covered > 0.0 && parent.negative() <= 0.0) break;  // pure
    ConditionScorer scorer = [&parent](const RuleStats& refined) {
      return FoilGain(parent, refined);
    };
    const auto candidate = engine.FindBest(covered, target, scorer, options);
    if (!candidate.has_value() || candidate->value <= 0.0) break;
    rule.AddCondition(candidate->condition);
    covered = rule.CoveredRows(dataset, covered);
    parent = candidate->stats;
    rule.train_stats = parent;
  }
  return rule;
}

Rule GrowRuleFoil(const Dataset& dataset, const RowSubset& grow_rows,
                  CategoryId target, const Rule& seed) {
  ConditionSearchEngine engine(dataset, /*num_threads=*/1);
  return GrowRuleFoil(engine, grow_rows, target, seed);
}

Rule PruneRuleIrep(const Dataset& dataset, const RowSubset& prune_rows,
                   CategoryId target, const Rule& rule) {
  // Evaluate every prefix (deleting a final sequence of conditions).
  // v(R) = (p - n) / (p + n) over the prune set; for the prefix of length 0
  // the rule covers everything.
  double best_value = -2.0;
  size_t best_length = rule.size();
  RuleStats best_stats;
  Rule prefix;
  // Walk lengths from 0 upward, reusing coverage refinement.
  RowSubset covered = prune_rows;
  for (size_t len = 0; len <= rule.size(); ++len) {
    if (len > 0) {
      prefix.AddCondition(rule.conditions()[len - 1]);
      RowSubset next;
      next.reserve(covered.size());
      const Condition& condition = rule.conditions()[len - 1];
      for (RowId row : covered) {
        if (condition.Matches(dataset, row)) next.push_back(row);
      }
      covered = std::move(next);
    }
    RuleStats stats;
    for (RowId row : covered) {
      const double w = dataset.weight(row);
      stats.covered += w;
      if (dataset.label(row) == target) stats.positive += w;
    }
    if (stats.covered <= 0.0) continue;
    const double value =
        (stats.positive - stats.negative()) / stats.covered;
    // Strictly-greater keeps the shortest rule among ties, maximizing
    // generalization (Cohen prefers the more general rule on ties).
    if (value > best_value) {
      best_value = value;
      best_length = len;
      best_stats = stats;
    }
  }
  Rule pruned = rule;
  pruned.TruncateTo(best_length);
  pruned.train_stats = best_stats;
  return pruned;
}

}  // namespace pnr
