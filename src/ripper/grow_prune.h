// IREP* grow and prune primitives shared by RIPPER's covering loop and its
// optimization passes.

#ifndef PNR_RIPPER_GROW_PRUNE_H_
#define PNR_RIPPER_GROW_PRUNE_H_

#include "induction/condition_search.h"
#include "rules/rule.h"

namespace pnr {

/// Grows a rule over `grow_rows` by repeatedly adding the condition with the
/// highest FOIL information gain, starting from `seed` (empty for a fresh
/// rule; the current rule for RIPPER's "revision" variant). Growth stops
/// when the rule covers no negatives or no condition has positive gain.
Rule GrowRuleFoil(ConditionSearchEngine& engine, const RowSubset& grow_rows,
                  CategoryId target, const Rule& seed);

/// Convenience overload: builds a transient serial engine.
Rule GrowRuleFoil(const Dataset& dataset, const RowSubset& grow_rows,
                  CategoryId target, const Rule& seed);

/// IREP* pruning: among all truncations of `rule` to a prefix of its
/// conditions (deleting a final sequence), returns the one maximizing
///   v(R) = (p - n) / (p + n)
/// on `prune_rows`. Ties prefer the shorter rule. May return an empty rule
/// (rejected later by the error gate). The returned rule's train_stats hold
/// its prune-set coverage.
Rule PruneRuleIrep(const Dataset& dataset, const RowSubset& prune_rows,
                   CategoryId target, const Rule& rule);

}  // namespace pnr

#endif  // PNR_RIPPER_GROW_PRUNE_H_
