#include "ripper/ripper.h"

#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "induction/mdl.h"
#include "ripper/optimize.h"

namespace pnr {

Status RipperConfig::Validate() const {
  if (grow_fraction <= 0.0 || grow_fraction >= 1.0) {
    return Status::InvalidArgument("grow_fraction must be in (0, 1)");
  }
  if (mdl_window_bits < 0.0) {
    return Status::InvalidArgument("mdl_window_bits must be >= 0");
  }
  if (max_prune_error_rate <= 0.0 || max_prune_error_rate > 1.0) {
    return Status::InvalidArgument("max_prune_error_rate must be in (0, 1]");
  }
  if (max_rules == 0) {
    return Status::InvalidArgument("max_rules must be positive");
  }
  return Status::OK();
}

RipperClassifier::RipperClassifier(RuleSet rules)
    : rules_(std::move(rules)), compiled_(CompiledRuleSet::Compile(rules_)) {
  rule_scores_.reserve(rules_.size());
  for (const Rule& rule : rules_.rules()) {
    rule_scores_.push_back((rule.train_stats.positive + 1.0) /
                           (rule.train_stats.covered + 2.0));
  }
}

double RipperClassifier::Score(const Dataset& dataset, RowId row) const {
  const int match = rules_.FirstMatch(dataset, row);
  if (match == kNoRule) return 0.0;
  return rule_scores_[static_cast<size_t>(match)];
}

void RipperClassifier::ScoreBatch(const Dataset& dataset, const RowId* rows,
                                  size_t count, double* out,
                                  const BatchScoreOptions& options) const {
  ForEachRowBlock(count, ClampOptionsForDataset(dataset, options),
                  [&](size_t begin, size_t end) {
    const size_t n = end - begin;
    // thread_local so consecutive blocks on a worker reuse the scratch
    // masks instead of reallocating them; scratch contents never affect
    // results, so reuse cannot perturb scores.
    thread_local CompiledRuleSet::Scratch scratch;
    thread_local std::vector<int32_t> first;
    first.resize(n);
    compiled_.FirstMatchBlock(dataset, rows + begin, n, first.data(),
                              &scratch);
    for (size_t i = 0; i < n; ++i) {
      out[begin + i] = first[i] == kNoRule
                           ? 0.0
                           : rule_scores_[static_cast<size_t>(first[i])];
    }
  });
}

std::string RipperClassifier::Describe(const Schema& schema) const {
  std::string out = "RIPPER model (default = not-target)\n";
  out += rules_.empty() ? "(no rules: always predicts not-target)\n"
                        : rules_.ToString(schema);
  return out;
}

RipperLearner::RipperLearner(RipperConfig config)
    : config_(std::move(config)) {}

StatusOr<RipperClassifier> RipperLearner::Train(const Dataset& dataset,
                                                CategoryId target) const {
  return TrainOnRows(dataset, dataset.AllRows(), target);
}

StatusOr<RipperClassifier> RipperLearner::TrainOnRows(
    const Dataset& dataset, const RowSubset& rows, CategoryId target) const {
  Status status = config_.Validate();
  if (!status.ok()) return status;
  if (rows.empty()) {
    return Status::InvalidArgument("training set is empty");
  }

  Rng rng(config_.seed);
  const double possible_conditions = CountPossibleConditions(dataset);

  // One engine for the whole run: column sorts are cached across every
  // grow/prune split and optimization pass.
  ConditionSearchEngine engine(dataset, config_.num_threads);
  RuleSet rules;
  CoverPositives(engine, rows, rows, target, config_, possible_conditions,
                 &rng, &rules);
  for (size_t pass = 0; pass < config_.optimization_passes; ++pass) {
    OptimizeRuleSet(engine, rows, target, config_, possible_conditions, &rng,
                    &rules);
  }
  DeleteHarmfulRules(dataset, rows, target, possible_conditions, &rules);

  // Final per-rule stats under decision-list semantics: each training record
  // is attributed to the first rule matching it, which is what the
  // classifier's Laplace score uses.
  for (Rule& rule : rules.mutable_rules()) {
    rule.train_stats = RuleStats{};
  }
  for (RowId row : rows) {
    const int match = rules.FirstMatch(dataset, row);
    if (match == kNoRule) continue;
    RuleStats& stats = rules.mutable_rule(static_cast<size_t>(match))
                           .train_stats;
    const double w = dataset.weight(row);
    stats.covered += w;
    if (dataset.label(row) == target) stats.positive += w;
  }
  return RipperClassifier(std::move(rules));
}

}  // namespace pnr
